"""§7 "Alternative OS mechanisms": kernel balloons vs scheduler activations
vs the psbox-aware userspace daemon, head to head."""

from repro.apps.base import App
from repro.analysis.report import format_table
from repro.core.activations import UserLevelCoscheduler
from repro.hw.platform import Platform
from repro.kernel.actions import Compute, Sleep
from repro.kernel.kernel import Kernel
from repro.sim.clock import MSEC, SEC, from_msec, from_usec
from repro.userspace.render_service import RenderService

from benchmarks.conftest import report


def _cpu_main(kernel):
    app = App(kernel, "main")

    def behavior():
        for _ in range(25):
            yield Compute(5e6)
            yield Sleep(from_usec(200))

    app.spawn(behavior())
    return app


def _cpu_noise(kernel):
    app = App(kernel, "noise")

    def behavior():
        while True:
            yield Compute(4e6)
            yield Sleep(from_usec(150))

    app.spawn(behavior())
    return app


def _drift(run):
    alone = run(False)
    corun = run(True)
    return 100.0 * abs(corun - alone) / alone


def test_cpu_mechanism_alternatives(benchmark):
    def kernel_mechanism(with_noise, seed=52):
        platform = Platform.am57(seed=seed)
        kern = Kernel(platform)
        app = _cpu_main(kern)
        box = app.create_psbox(("cpu",))
        box.enter()
        if with_noise:
            _cpu_noise(kern)
        platform.sim.run(until=6 * SEC)
        return box.vmeter.energy(0, app.finished_at)

    def activations_clean(with_noise, seed=52):
        platform = Platform.am57(seed=seed)
        kern = Kernel(platform)
        app = App(kern, "main")

        def behavior():
            for _ in range(25):
                yield Compute(5e6)
                yield Sleep(from_usec(200))

        main_task = app.spawn(behavior())
        cosched = UserLevelCoscheduler(kern, app)
        cosched.engage()
        if with_noise:
            _cpu_noise(kern)
        platform.sim.run(until=6 * SEC)
        return cosched.energy(0, main_task.finished_at)

    def sweep():
        return {
            "kernel balloons (psbox)": _drift(kernel_mechanism),
            "scheduler activations [3]": _drift(activations_clean),
        }

    drifts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["CPU insulation mechanism", "observed-energy drift under co-run"],
        [[name, "{:.1f}%".format(value)] for name, value in drifts.items()],
        title="Alternative OS mechanisms (§7): user-level coscheduling "
              "insulates, but weaker — dummies compete instead of exclude, "
              "and they burn power",
    )
    report("ALT-CPU-MECHANISMS", text)
    assert drifts["kernel balloons (psbox)"] < \
        drifts["scheduler activations [3]"]


def test_daemon_awareness(benchmark):
    def run(psbox_aware, with_other, seed=14):
        platform = Platform.full(seed=seed)
        kern = Kernel(platform)
        service = RenderService(kern, psbox_aware=psbox_aware)
        boxed = App(kern, "boxed")
        meter = service.connect(boxed)
        service.enter_psbox(boxed)

        def producer():
            for _ in range(12):
                service.submit(boxed, "frame", 1.5e6, 0.6)
                yield from_msec(30)

        platform.sim.spawn(producer())
        if with_other:
            other = App(kern, "other")
            service.connect(other)

            def other_producer():
                for _ in range(60):
                    service.submit(other, "frame", 2e6, 0.9)
                    yield from_msec(7)

            platform.sim.spawn(other_producer())
        platform.sim.run(until=2 * SEC)
        return meter.energy(0, 600 * MSEC)

    def sweep():
        aware = 100.0 * abs(run(True, True) - run(True, False)) \
            / run(True, False)
        unaware_sees = run(False, True)
        return {"aware_drift_pct": aware, "unaware_observed_mJ":
                unaware_sees * 1000}

    values = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["userspace daemon configuration", "result"],
        [
            ["psbox-aware: client drift under co-run",
             "{:.1f}%".format(values["aware_drift_pct"])],
            ["unaware: client observes (idle only)",
             "{:.1f} mJ".format(values["unaware_observed_mJ"])],
        ],
        title="Userspace daemon multiplexing (§7): kernel psbox alone is "
              "blind behind a daemon; daemon awareness restores insulation",
    )
    report("ALT-DAEMON", text)
    assert values["aware_drift_pct"] < 45
