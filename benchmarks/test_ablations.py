"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.accounting import PerSampleUsageAccounting
from repro.analysis.report import format_table
from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.actions import Compute, Sleep, SubmitAccel
from repro.kernel.kernel import Kernel, KernelConfig
from repro.sim.clock import MSEC, SEC, USEC, from_usec

from benchmarks.conftest import report


def _gpu_fixed(kernel, n=15):
    app = App(kernel, "main")

    def behavior():
        for _ in range(n):
            yield SubmitAccel("gpu", "draw", 2.5e6, 0.7, wait=True)
            yield Sleep(from_usec(700))

    app.spawn(behavior())
    return app


def _gpu_noise(kernel):
    app = App(kernel, "noise")

    def behavior():
        while True:
            yield SubmitAccel("gpu", "noise", 3e6, 0.9, wait=True)

    app.spawn(behavior())
    return app


def _psbox_drift(config, seed=11):
    def run(with_noise):
        platform = Platform.full(seed=seed)
        kernel = Kernel(platform, config)
        app = _gpu_fixed(kernel)
        box = app.create_psbox(("gpu",))
        box.enter()
        if with_noise:
            _gpu_noise(kernel)
        platform.sim.run(until=8 * SEC)
        return box.vmeter.energy(0, app.finished_at)

    alone = run(False)
    corun = run(True)
    return 100.0 * abs(corun - alone) / alone


def test_ablation_mechanisms(benchmark):
    def sweep():
        return {
            "full psbox": _psbox_drift(KernelConfig()),
            "no draining": _psbox_drift(KernelConfig(draining_enabled=False)),
            "no vstate": _psbox_drift(KernelConfig(vstate_enabled=False)),
        }

    drifts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["configuration", "GPU psbox energy drift under co-run"],
        [[name, "{:.1f}%".format(value)] for name, value in drifts.items()],
        title="Each mechanism matters: drift of the insulated observation",
    )
    report("ABLATION-MECHANISMS", text)
    assert drifts["full psbox"] < drifts["no draining"]


def test_ablation_loans(benchmark):
    def spinner(kernel, name):
        app = App(kernel, name)

        def behavior():
            while True:
                yield Compute(4e6)
                app.count("work", 1)
                yield Sleep(from_usec(150))

        app.spawn(behavior())
        return app

    def run(loans):
        platform = Platform.am57(seed=1)
        kernel = Kernel(platform, KernelConfig(loans_enabled=loans))
        apps = [spinner(kernel, "i{}".format(i)) for i in range(3)]
        box = apps[2].create_psbox(("cpu",))
        platform.sim.at(int(0.8 * SEC), box.enter)
        platform.sim.run(until=int(2.6 * SEC))
        t0, t1 = int(1.0 * SEC), int(2.6 * SEC)
        return [app.rate("work", t0, t1) for app in apps]

    def sweep():
        return run(True), run(False)

    with_loans, without = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["configuration", "other1", "other2", "sandboxed*"],
        [
            ["loans on (charging)",
             *("{:.0f}".format(r) for r in with_loans)],
            ["loans off (naive)",
             *("{:.0f}".format(r) for r in without)],
        ],
        title="Loan charging confines the loss (work/s per instance)",
    )
    report("ABLATION-LOANS", text)
    assert with_loans[2] < 0.7 * min(with_loans[:2])
    assert min(without[:2]) < min(with_loans[:2])


def test_ablation_metering_rate(benchmark):
    """§2.3: finer baseline sampling does not fix entanglement."""

    def drift_at(dt):
        def run(with_noise):
            platform = Platform.full(seed=13)
            kernel = Kernel(platform)
            app = _gpu_fixed(kernel)
            ids = [app.id]
            if with_noise:
                ids.append(_gpu_noise(kernel).id)
            platform.sim.run(until=8 * SEC)
            acct = PerSampleUsageAccounting(platform, "gpu", dt=dt)
            return acct.energies(ids, 0, app.finished_at)[app.id]

        alone = run(False)
        corun = run(True)
        return 100.0 * abs(corun - alone) / alone

    def sweep():
        return [(dt, drift_at(dt)) for dt in
                (10 * USEC, 100 * USEC, MSEC, 10 * MSEC)]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["sampling interval", "baseline attribution drift"],
        [["{} us".format(dt // 1000), "{:.1f}%".format(value)]
         for dt, value in results],
        title="Metering-rate sweep: accounting error vs sampling interval",
    )
    report("ABLATION-METERING-RATE", text)
    finest = results[0][1]
    assert finest > 8.0, "even 10us sampling cannot undo entanglement"
