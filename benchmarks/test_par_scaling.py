"""Parallel-runner scaling: wall-clock vs. job count, plus cache replay.

Emits ``BENCH_par.json`` at the repo root — the scaling data point the
parallel runner promises: the full fault-scenario campaign at two seeds
run serially, then fanned across 2 and 4 processes, then replayed from a
warm result cache.  Speedup depends on the CI machine's core count (each
spawned worker also pays an interpreter-boot cost of a second or two, so
tiny workloads can come out slower), so the assertions only pin what must
always hold — parallel results identical to serial, the replay all-cached
and cheaper than recomputing — while the JSON carries the honest timings.
"""

import json
import os
from time import perf_counter

from repro.analysis.report import format_table
from repro.experiments.faults_exp import campaign_items
from repro.faults import SCENARIOS
from repro.par import ParallelRunner, ResultCache

from benchmarks.conftest import report

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_par.json")

SEEDS = (0, 1)


def _cells():
    return campaign_items(SEEDS, SCENARIOS)


def _timed_run(jobs, cache=None):
    runner = ParallelRunner(jobs=jobs, cache=cache)
    start = perf_counter()
    payloads = runner.run(_cells())
    return perf_counter() - start, payloads, runner


def test_bench_par_scaling_and_emit_json(tmp_path):
    serial_s, serial_payloads, serial_runner = _timed_run(jobs=1)
    jobs2_s, jobs2_payloads, _ = _timed_run(jobs=2)
    jobs4_s, jobs4_payloads, _ = _timed_run(jobs=4)

    # the core guarantee: fan-out never changes a result
    assert jobs2_payloads == serial_payloads
    assert jobs4_payloads == serial_payloads

    cache_dir = str(tmp_path / "parcache")
    _populate_s, _, _ = _timed_run(jobs=2, cache=ResultCache(cache_dir))
    replay_s, replay_payloads, replay_runner = _timed_run(
        jobs=2, cache=ResultCache(cache_dir))
    assert replay_payloads == serial_payloads
    assert replay_runner.stats.cached == len(serial_payloads)
    assert replay_runner.stats.executed == 0
    assert replay_s < serial_s

    payload = {
        "workload": "full faults campaign, seeds {}".format(list(SEEDS)),
        "cells": len(serial_payloads),
        "cpu_count": os.cpu_count(),
        "serial_s": serial_s,
        "serial_cell_cost_s": serial_runner.stats.cell_wall_s,
        "jobs2_s": jobs2_s,
        "jobs4_s": jobs4_s,
        "speedup_jobs2": serial_s / jobs2_s,
        "speedup_jobs4": serial_s / jobs4_s,
        "cache_replay_s": replay_s,
        "cache_replay_speedup": serial_s / replay_s,
        "replay_all_cached": True,
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    rows = [
        ["serial (jobs=1)", "{:.2f}".format(serial_s), "1.00x"],
        ["jobs=2", "{:.2f}".format(jobs2_s),
         "{:.2f}x".format(payload["speedup_jobs2"])],
        ["jobs=4", "{:.2f}".format(jobs4_s),
         "{:.2f}x".format(payload["speedup_jobs4"])],
        ["cache replay", "{:.2f}".format(replay_s),
         "{:.2f}x".format(payload["cache_replay_speedup"])],
    ]
    report("PAR-SCALING", format_table(
        ["configuration", "wall s", "speedup"], rows,
        title="Parallel runner scaling — {} cells on {} host cores "
              "(byte-identical results in every configuration)".format(
                  payload["cells"], payload["cpu_count"]),
    ))
