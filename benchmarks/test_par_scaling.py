"""Parallel-runner scaling: wall-clock vs. backend choice, plus cache replay.

Emits ``BENCH_par.json`` at the repo root — the scaling data point the
parallel runner promises: the full fault-scenario campaign at two seeds
run serially, fanned across the spawn pool at 2 and 4 jobs, run under
``--backend auto`` (the cost model decides whether a pool can pay for its
interpreter boots on this host), then replayed from a warm result cache.
Pool speedup depends on the machine's core count, so the spawn rows carry
honest timings without assertions; ``auto`` is the row with a contract —
it must never be meaningfully slower than serial, because on hosts where
the pool cannot win the cost model must pick ``inline``.
"""

import json
import os
from time import perf_counter

from repro.analysis.report import format_table
from repro.experiments.faults_exp import campaign_items
from repro.faults import SCENARIOS
from repro.par import ParallelRunner, ResultCache

from benchmarks.conftest import report

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_par.json")

SEEDS = (0, 1)

#: scheduling overhead (wall beyond the cells' own cost) auto may pay —
#: the old bug was exactly this number blowing up (interpreter boots on a
#: host with no spare cores added seconds of pure overhead); the bound is
#: within-run, so cross-run timer noise on shared CI hosts cannot trip it
AUTO_OVERHEAD_FRAC = 0.05
AUTO_OVERHEAD_FLOOR_S = 0.5


def _cells():
    return campaign_items(SEEDS, SCENARIOS)


def _timed_run(jobs, cache=None, backend="auto"):
    runner = ParallelRunner(jobs=jobs, cache=cache, backend=backend)
    start = perf_counter()
    payloads = runner.run(_cells())
    return perf_counter() - start, payloads, runner


def test_bench_par_scaling_and_emit_json(tmp_path):
    # the serial baseline also warms the in-process cost model, so the
    # auto run below decides from a measured per-cell estimate — exactly
    # what a second invocation on a real host would see
    serial_s, serial_payloads, serial_runner = _timed_run(
        jobs=1, backend="inline")
    jobs2_s, jobs2_payloads, _ = _timed_run(jobs=2, backend="spawn")
    jobs4_s, jobs4_payloads, _ = _timed_run(jobs=4, backend="spawn")
    auto_s, auto_payloads, auto_runner = _timed_run(jobs=4, backend="auto")

    # the core guarantee: fan-out never changes a result
    assert jobs2_payloads == serial_payloads
    assert jobs4_payloads == serial_payloads
    assert auto_payloads == serial_payloads

    # the bugfix contract: whatever backend auto resolves to, the run pays
    # (almost) nothing beyond the cells' own cost.  On a 1-core host that
    # means auto refused the pool; on multicore the pool overlaps cells and
    # the overhead goes *negative*.  The old behaviour — spawn on a host
    # with no spare cores — pays workers x ~1 s of interpreter boot here
    # and fails by an order of magnitude.
    auto_overhead_s = auto_s - auto_runner.stats.cell_wall_s
    assert auto_overhead_s <= AUTO_OVERHEAD_FRAC * auto_s + \
        AUTO_OVERHEAD_FLOOR_S, (
        "auto backend ({}) paid {:.2f}s scheduling overhead on a "
        "{:.2f}s run".format(auto_runner.stats.backend, auto_overhead_s,
                             auto_s))

    cache_dir = str(tmp_path / "parcache")
    _populate_s, _, _ = _timed_run(jobs=2, cache=ResultCache(cache_dir))
    replay_s, replay_payloads, replay_runner = _timed_run(
        jobs=2, cache=ResultCache(cache_dir))
    assert replay_payloads == serial_payloads
    assert replay_runner.stats.cached == len(serial_payloads)
    assert replay_runner.stats.executed == 0
    assert replay_s < serial_s

    trajectory = [
        {"label": "serial (jobs=1, inline)", "backend": "inline",
         "wall_s": serial_s, "speedup": 1.0},
        {"label": "spawn pool (jobs=2)", "backend": "spawn",
         "wall_s": jobs2_s, "speedup": serial_s / jobs2_s},
        {"label": "spawn pool (jobs=4)", "backend": "spawn",
         "wall_s": jobs4_s, "speedup": serial_s / jobs4_s},
        {"label": "auto (jobs=4, resolved {})".format(
            auto_runner.stats.backend),
         "backend": auto_runner.stats.backend,
         "wall_s": auto_s, "speedup": serial_s / auto_s},
        {"label": "cache replay (jobs=2)", "backend": "cache",
         "wall_s": replay_s, "speedup": serial_s / replay_s},
    ]

    payload = {
        "workload": "full faults campaign, seeds {}".format(list(SEEDS)),
        "cells": len(serial_payloads),
        "cpu_count": os.cpu_count(),
        "serial_s": serial_s,
        "serial_cell_cost_s": serial_runner.stats.cell_wall_s,
        "jobs2_s": jobs2_s,
        "jobs4_s": jobs4_s,
        "auto_s": auto_s,
        "auto_backend": auto_runner.stats.backend,
        "auto_overhead_s": auto_overhead_s,
        "speedup_jobs2": serial_s / jobs2_s,
        "speedup_jobs4": serial_s / jobs4_s,
        "speedup_auto": serial_s / auto_s,
        "cache_replay_s": replay_s,
        "cache_replay_speedup": serial_s / replay_s,
        "replay_all_cached": True,
        "trajectory": trajectory,
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    rows = [
        [step["label"], "{:.2f}".format(step["wall_s"]),
         "{:.2f}x".format(step["speedup"])]
        for step in trajectory
    ]
    report("PAR-SCALING", format_table(
        ["configuration", "wall s", "speedup"], rows,
        title="Parallel runner scaling — {} cells on {} host cores "
              "(byte-identical results in every configuration)".format(
                  payload["cells"], payload["cpu_count"]),
    ))
