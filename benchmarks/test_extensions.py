"""Benches for the §7/§8 extensions: display, GPS, LTE, model metering."""

from repro.accounting import LinearPowerModel, PixelAccounting
from repro.analysis.report import format_table
from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.actions import (
    AcquireGps,
    Compute,
    ReleaseGps,
    SendPacket,
    Sleep,
    UpdateSurface,
)
from repro.kernel.kernel import Kernel
from repro.sim.clock import MSEC, SEC, from_msec, from_usec

from benchmarks.conftest import report


def test_display_and_gps_extensions(benchmark):
    def run():
        platform = Platform.extended(seed=3)
        kernel = Kernel(platform)
        ui = App(kernel, "ui")
        nav = App(kernel, "nav")

        def ui_behavior():
            yield UpdateSurface(0.6, 0.9)
            yield Sleep(SEC)

        def nav_behavior():
            yield UpdateSurface(0.2, 0.4)
            yield AcquireGps()
            yield Sleep(SEC)
            yield ReleaseGps()

        ui.spawn(ui_behavior())
        nav.spawn(nav_behavior())
        ui_box = ui.create_psbox(("display",))
        nav_box = nav.create_psbox(("display", "gps"))
        ui_box.enter()
        nav_box.enter()
        platform.sim.run(until=int(1.2 * SEC))
        pixel = PixelAccounting(platform)
        shares = pixel.energies([ui.id, nav.id], 0, SEC)
        return {
            "ui_psbox_mJ": ui_box.vmeter.energy(0, SEC, "display") * 1000,
            "ui_pixel_mJ": shares[ui.id] * 1000,
            "nav_display_mJ": nav_box.vmeter.energy(0, SEC, "display") * 1000,
            "nav_gps_mJ": nav_box.vmeter.energy(0, SEC, "gps") * 1000,
            "gps_rail_mJ": platform.meter.energy("gps", 0, SEC) * 1000,
        }

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["quantity", "mJ"],
        [[k, "{:.1f}".format(v)] for k, v in values.items()],
        title="Display (exact pixel division) and GPS (operating-state-"
              "gated reveal) — paper §7 items 1 and 2",
    )
    report("EXT-DISPLAY-GPS", text)
    # Display: psbox == pixel accounting exactly (no entanglement).
    assert abs(values["ui_psbox_mJ"] - values["ui_pixel_mJ"]) < 1e-6
    # GPS: the cold start is hidden, so the psbox sees less than the rail.
    assert values["nav_gps_mJ"] < values["gps_rail_mJ"]


def test_lte_negative_result(benchmark):
    def drift(device):
        def run(with_noise):
            platform = Platform.extended(seed=6)
            kernel = Kernel(platform)
            app = App(kernel, "main")

            def behavior():
                for _ in range(5):
                    yield SendPacket(20_000, wait=True, device=device)
                    yield Sleep(from_msec(1100))

            app.spawn(behavior())
            box = app.create_psbox((device,))
            box.enter()
            if with_noise:
                noise = App(kernel, "noise")

                def noisy():
                    while True:
                        yield SendPacket(30_000, wait=True, device=device)

                noise.spawn(noisy())
            platform.sim.run(until=20 * SEC)
            return box.vmeter.energy(0, app.finished_at)

        alone = run(False)
        corun = run(True)
        return 100.0 * abs(corun - alone) / alone

    def sweep():
        return {"wifi": drift("wifi"), "lte": drift("lte")}

    drifts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["radio", "psbox energy drift under co-run"],
        [[name, "{:.1f}%".format(value)] for name, value in drifts.items()],
        title="Cellular negative result (§7 item 3): RRC states are not "
              "OS-controllable, so LTE insulation is weaker than WiFi's",
    )
    report("EXT-LTE-NEGATIVE", text)
    assert drifts["lte"] > drifts["wifi"]


def test_model_metering_limits(benchmark):
    def run():
        platform = Platform.am57(seed=9)
        kernel = Kernel(platform)
        app = App(kernel, "rampy")

        def behavior():
            for _ in range(300):
                yield Compute(0.4e6)
                yield Sleep(from_usec(2500))
            while True:
                yield Compute(5e6)
                yield Sleep(from_usec(100))

        app.spawn(behavior())
        platform.sim.run(until=3 * SEC)
        ids = [app.id]
        model = LinearPowerModel(platform, "cpu").fit(ids, 0, SEC)
        return {
            "in-distribution (light phase)":
                model.mean_power_error_pct(ids, 200 * MSEC, 800 * MSEC),
            "out-of-distribution (heavy phase)":
                model.mean_power_error_pct(ids, 2 * SEC, 3 * SEC),
        }

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["workload phase", "linear-model mean power error"],
        [[k, "{:.1f}%".format(v)] for k, v in errors.items()],
        title="Model-based metering (§2.2): utilization features miss "
              "DVFS-driven power, so models break out of distribution",
    )
    report("EXT-MODEL-METERING", text)
    assert errors["out-of-distribution (heavy phase)"] > \
        errors["in-distribution (light phase)"]
