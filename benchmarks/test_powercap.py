"""Benches for the powercap extension: hierarchical budget enforcement.

The closed loop reads per-psbox virtual meters, water-fills an
oversubscribed platform -> tenant -> app budget tree, and throttles
through the kernel's own mechanisms.  Three claims are checked: the
aggregate settles on the cap, idle tenants' slack flows to busy siblings,
and the whole daemon is deterministic (and inert when not started).
"""

from repro.analysis.report import format_table
from repro.experiments.powercap_exp import (
    HORIZON_S,
    PowerCapController,
    _scenario,
    build_bindings,
    build_budget_tree,
    run_powercap,
)
from repro.sim.clock import SEC

from benchmarks.conftest import report


def test_powercap_enforcement(benchmark):
    result = benchmark.pedantic(run_powercap, rounds=1, iterations=1)
    rows = [
        ["uncapped aggregate", "{:.2f} W".format(result.uncapped_w)],
        ["platform cap (70%)", "{:.2f} W".format(result.cap_w)],
        ["steady aggregate", "{:.2f} W".format(result.steady_w)],
        ["cap compliance", "{:+.1f}%".format(result.compliance_pct)],
        ["aggregate after B idles", "{:.2f} W".format(result.relaxed_w)],
        ["tenant A grant gain", "{:+.2f} W".format(result.tenant_a_gain_w)],
        ["tenant B idle draw", "{:.2f} W".format(result.tenant_b_idle_w)],
        ["throttle/relax actions", str(result.throttle_actions)],
    ]
    for leaf in sorted(result.grants_contended):
        rows.append(["grant {} (contended / relaxed)".format(leaf),
                     "{:.2f} / {:.2f} W".format(
                         result.grants_contended[leaf],
                         result.grants_relaxed[leaf])])
    text = format_table(
        ["quantity", "value"], rows,
        title="Power capping over psbox meters: oversubscribed two-tenant "
              "tree, 70% platform cap, water-filled slack redistribution",
    )
    report("EXT-POWERCAP", text)
    # Claim 1 — compliance: the aggregate settles within 5% of the cap
    # while both tenants contend, and stays capped after B idles.
    assert abs(result.compliance_pct) <= 5.0
    assert result.relaxed_w <= result.cap_w * 1.05
    # Claim 2 — slack redistribution: tenant B's freed budget reaches
    # tenant A's leaves as larger grants.
    assert result.tenant_a_gain_w > 0.5
    assert result.tenant_b_idle_w < 0.2
    # The loop actually actuated (not a vacuous pass on an idle system).
    assert result.throttle_actions > 50


def test_powercap_determinism(benchmark):
    def run():
        return run_powercap(seed=11), run_powercap(seed=11)

    first, second = benchmark.pedantic(run, rounds=1, iterations=1)
    # Claim 3 — the daemon is ordinary simulation machinery: a fixed seed
    # reproduces every controller decision bit for bit.
    assert first.telemetry_json == second.telemetry_json
    assert first.steady_w == second.steady_w
    assert first.grants_contended == second.grants_contended


def test_powercap_daemon_off_is_inert(benchmark):
    def run():
        def rail_energies(with_daemon):
            platform, kernel, apps, boxes = _scenario(seed=11)
            if with_daemon:
                tree = build_budget_tree(cap_w=3.0)
                PowerCapController(
                    kernel, tree, build_bindings(kernel, apps, boxes)
                )  # constructed but never started
            platform.sim.run(until=HORIZON_S * SEC)
            return {
                name: rail.energy(0, HORIZON_S * SEC)
                for name, rail in platform.rails.items()
            }

        return rail_energies(False), rail_energies(True)

    plain, instantiated = benchmark.pedantic(run, rounds=1, iterations=1)
    # An unstarted controller must leave the simulation bit-identical:
    # no events, no clamps, no gates.
    assert plain == instantiated
