"""Figure 7: resource multiplexing with and without balloons."""

from repro.analysis.report import format_series, format_table
from repro.experiments.fig7 import (
    run_fig7_cpu,
    run_fig7_dsp,
    run_fig7_gpu,
    run_fig7_wifi,
)
from repro.sim.clock import SEC

from benchmarks.conftest import report


def test_fig7_cpu_spatial_balloons(benchmark):
    with_box = benchmark.pedantic(run_fig7_cpu, kwargs={"use_psbox": True},
                                  rounds=1, iterations=1)
    without = run_fig7_cpu(use_psbox=False)
    duration = 2 * SEC
    rows = []
    for label, result in (("w/o psbox", without), ("w/ psbox", with_box)):
        idle = [0, 0]
        for core, segments in enumerate(result.core_owner_segments):
            idle[core] = sum(t1 - t0 for t0, t1, o in segments if o == -1)
        rows.append([
            label,
            str(len(result.windows)),
            "{:.0f}".format(result.forced_idle_ns / 1e6),
            "{:.0f}/{:.0f}".format(idle[0] / 1e6, idle[1] / 1e6),
            "{:.2f}".format(result.watts.mean()),
        ])
    text = "\n".join([
        format_table(
            ["scenario", "balloons", "forced idle ms", "core idle ms",
             "mean W"],
            rows,
            title="Dual-core CPU multiplexing, calib3d* + bodytrack "
                  "(paper Fig 7a/b)",
        ),
        format_series(without.watts, label="w/o psbox W"),
        format_series(with_box.watts, label="w/  psbox W"),
    ])
    report("FIG7-CPU spatial balloons", text)
    assert with_box.forced_idle_ns > 0
    assert without.forced_idle_ns == 0 or not without.windows


def test_fig7_dsp_temporal_balloons(benchmark):
    with_box = benchmark.pedantic(run_fig7_dsp, kwargs={"use_psbox": True},
                                  rounds=1, iterations=1)
    without = run_fig7_dsp(use_psbox=False)

    def cross_app_overlap(result):
        overlap = 0
        for i, (app_a, _k, a0, a1) in enumerate(result.commands):
            for app_b, _k2, b0, b1 in result.commands[i + 1:]:
                if app_a != app_b:
                    overlap += max(0, min(a1, b1) - max(a0, b0))
        return overlap

    rows = [
        ["w/o psbox", str(len(without.commands)),
         "{:.0f}".format(cross_app_overlap(without) / 1e6), "--"],
        ["w/ psbox", str(len(with_box.commands)),
         "{:.0f}".format(cross_app_overlap(with_box) / 1e6),
         "{:.1f}".format(with_box.foreign_overlap_ns / 1e6)],
    ]
    text = "\n".join([
        format_table(
            ["scenario", "commands", "cross-app overlap ms",
             "foreign-in-window ms"],
            rows,
            title="DSP command timeline, dgemm* + sgemm + monte "
                  "(paper Fig 7c/d)",
        ),
        format_series(without.watts, label="w/o psbox W"),
        format_series(with_box.watts, label="w/  psbox W"),
    ])
    report("FIG7-DSP temporal balloons", text)
    assert cross_app_overlap(without) > 0
    assert with_box.foreign_overlap_ns == 0


def test_fig7_gpu_and_wifi_extension(benchmark):
    """Beyond the paper's panels: the boundary invariant on GPU and WiFi."""

    def sweep():
        return {
            "gpu": (run_fig7_gpu(use_psbox=True),
                    run_fig7_gpu(use_psbox=False)),
            "wifi": (run_fig7_wifi(use_psbox=True),
                     run_fig7_wifi(use_psbox=False)),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for comp, (with_box, without) in results.items():
        overlap_free = 0
        for i, (app_a, _k, a0, a1) in enumerate(without.commands):
            for app_b, _k2, b0, b1 in without.commands[i + 1:]:
                if app_a != app_b:
                    overlap_free += max(0, min(a1, b1) - max(a0, b0))
        rows.append([comp, str(len(with_box.windows)),
                     "{:.1f}".format(overlap_free / 1e6),
                     "{:.1f}".format(with_box.foreign_overlap_ns / 1e6)])
    text = format_table(
        ["component", "balloons", "free cross-app overlap ms",
         "foreign-in-window ms"],
        rows,
        title="Balloon boundary detail on GPU and WiFi (extension of "
              "paper Fig 7)",
    )
    report("FIG7-EXT gpu+wifi balloons", text)
    for comp, (with_box, _without) in results.items():
        assert with_box.windows, comp
        assert with_box.foreign_overlap_ns == 0, comp
