"""Seed robustness of the §6.1 headline: mean ± spread over seeds."""

import statistics

from repro.analysis.report import format_table
from repro.experiments.fig6 import run_fig6_row

from benchmarks.conftest import report

SEEDS = (3, 11, 27)


def test_fig6_headline_across_seeds(benchmark):
    def sweep():
        rows = {}
        for component in ("cpu", "gpu"):
            psbox = []
            baseline = []
            for seed in SEEDS:
                row = run_fig6_row(component, seed=seed)
                psbox.append(row.max_psbox_delta)
                baseline.append(row.max_baseline_delta)
            rows[component] = (psbox, baseline)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    def fmt(values):
        return "{:.1f}% ± {:.1f}".format(
            statistics.mean(values),
            statistics.stdev(values) if len(values) > 1 else 0.0,
        )

    table = [
        [component, fmt(psbox), fmt(baseline)]
        for component, (psbox, baseline) in rows.items()
    ]
    text = format_table(
        ["row", "psbox max |delta| (mean±sd over {} seeds)".format(
            len(SEEDS)), "existing approach"],
        table,
        title="Figure 6 headline is seed-robust, not a lucky draw",
    )
    report("FIG6-SEED-ROBUSTNESS", text)
    for component, (psbox, baseline) in rows.items():
        assert max(psbox) < min(baseline), (
            "{}: psbox must beat the baseline on every seed".format(component)
        )
