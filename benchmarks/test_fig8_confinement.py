"""Figure 8: confinement of throughput loss to the sandboxed app."""

import pytest

from repro.analysis.report import format_table
from repro.experiments.fig8 import run_fig8

from benchmarks.conftest import report

UNITS = {"cpu": "KB/s", "dsp": "GFLOPS", "gpu": "cmds/s", "wifi": "KB/s"}
PHASES = {"cpu": 2.0, "dsp": 4.0, "gpu": 2.0, "wifi": 2.5}


@pytest.mark.parametrize("component", ["cpu", "dsp", "gpu", "wifi"])
def test_fig8_panel(component, benchmark):
    result = benchmark.pedantic(
        run_fig8, args=(component,), kwargs={"phase_s": PHASES[component]},
        rounds=1, iterations=1,
    )
    rows = [
        [i.name + ("*" if i.sandboxed else ""),
         "{:.1f}".format(i.before), "{:.1f}".format(i.after),
         "{:+.1f}%".format(-i.loss_pct)]
        for i in result.instances
    ]
    text = format_table(
        ["instance", "before " + UNITS[component],
         "after " + UNITS[component], "change"],
        rows,
        title="{}: throughput before/after * enters psbox (paper Fig 8)"
        .format(component.upper()),
    )
    text += "\ntotal hardware throughput loss: {:.1f}%".format(
        result.total_loss_pct)
    report("FIG8-{} confinement".format(component.upper()), text)

    # Shape: the sandboxed instance carries the loss; others stay put.
    max_other = max((o.loss_pct for o in result.others), default=0.0)
    assert result.sandboxed.loss_pct > max_other
    assert max_other < 16
