"""Figure 6 + §6.1 headline: elimination of power entanglement.

For each hardware component: the app's psbox-observed energy stays
consistent across co-runners (paper: <5% in most sets) while the existing
per-sample accounting drifts by tens of percent (paper: up to 60%).
"""

import pytest

from repro.analysis.report import format_series, format_table
from repro.experiments.fig6 import run_fig6_row

from benchmarks.conftest import report

#: loose per-row ceilings for the psbox delta and floors for the baseline
#: (shape assertions, not absolute-number matching).
ROW_LIMITS = {
    "cpu": (8.0, 5.0),
    "dsp": (10.0, 10.0),
    "gpu": (8.0, 15.0),
    "wifi": (12.0, 10.0),
}


@pytest.mark.parametrize("component", ["cpu", "dsp", "gpu", "wifi"])
def test_fig6_row(component, benchmark):
    row = benchmark.pedantic(run_fig6_row, args=(component,),
                             kwargs={"keep_traces": True},
                             rounds=1, iterations=1)
    rows = [["alone (psbox)", "{:.0f}".format(row.alone.energy_j * 1000),
             "--", "{:.2f}s".format(row.alone.duration_s)]]
    for cell in row.psbox_cells:
        rows.append(["psbox {}".format(cell.label),
                     "{:.0f}".format(cell.energy_j * 1000),
                     "{:+.1f}%".format(cell.delta_pct),
                     "{:.2f}s".format(cell.duration_s)])
    for cell in row.baseline_cells:
        rows.append(["existing {}".format(cell.label),
                     "{:.0f}".format(cell.energy_j * 1000),
                     "{:+.1f}%".format(cell.delta_pct),
                     "{:.2f}s".format(cell.duration_s)])
    text = format_table(
        ["scenario", "energy mJ", "delta vs alone", "duration"], rows,
        title="{} row of Figure 6".format(component.upper()),
    )
    text += (
        "\nrow max |delta|: psbox {:.1f}% vs existing approach {:.1f}%"
        .format(row.max_psbox_delta, row.max_baseline_delta)
    )
    traces = [("alone (psbox)", row.alone)]
    traces += [("psbox " + c.label, c) for c in row.psbox_cells]
    traces += [("existing " + c.label, c) for c in row.baseline_cells]
    for label, cell in traces:
        if cell.watts is not None and len(cell.watts):
            text += "\n" + format_series(
                cell.watts, label="{:<22}(W)".format(label))
    report("FIG6-{} insulation".format(component.upper()), text)

    psbox_limit, baseline_floor = ROW_LIMITS[component]
    assert row.max_psbox_delta < psbox_limit
    assert row.max_baseline_delta > baseline_floor
    assert row.max_psbox_delta < row.max_baseline_delta
