"""Section 6.3 robustness: extreme GPU contention."""

from repro.analysis.report import format_table
from repro.experiments.sec63 import run_sec63_robustness

from benchmarks.conftest import report


def test_sec63_extreme_contention(benchmark):
    result = benchmark.pedantic(run_sec63_robustness, rounds=1, iterations=1)
    text = format_table(
        ["app", "before cmds/s", "after cmds/s", "change"],
        [
            ["browser (psbox)", "{:.1f}".format(result.browser_before),
             "{:.1f}".format(result.browser_after),
             "{:.1f}x slower".format(result.browser_slowdown)],
            ["triangle", "{:.1f}".format(result.triangle_before),
             "{:.1f}".format(result.triangle_after),
             "{:+.1f}%".format(-result.triangle_loss_pct)],
        ],
        title="browser-in-psbox + saturating triangle (paper §6.3: "
              "browser -4x, triangle -1%)",
    )
    report("SEC63-ROBUSTNESS", text)
    assert result.browser_slowdown > 2.5
    assert abs(result.triangle_loss_pct) < 5
