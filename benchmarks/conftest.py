"""Benchmark harness support.

Every benchmark regenerates one of the paper's tables/figures, prints the
rows/series, and archives them under ``benchmarks/results/`` so the output
survives pytest's capture regardless of flags.
"""

import os

import pytest

from repro.sim.rng import RngRegistry

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


# Same seeded-RNG policy as tests/conftest.py (benchmarks are collected
# from a separate rootdir, so the fixtures are re-declared here).

@pytest.fixture(scope="session")
def test_seed():
    """The session's base seed (override with ``PSBOX_TEST_SEED=n``)."""
    return int(os.environ.get("PSBOX_TEST_SEED", "0"))


@pytest.fixture
def rng(test_seed, request):
    """A ``numpy.random.Generator`` unique and stable per benchmark."""
    return RngRegistry(test_seed).fresh(request.node.nodeid)

_SESSION_BLOCKS = []


def report(name, text):
    """Print a figure/table reproduction and archive it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = "=" * 72
    block = "{}\n{}\n{}\n{}\n".format(banner, name, banner, text)
    print("\n" + block)
    path = os.path.join(RESULTS_DIR, name.split(" ")[0].lower() + ".txt")
    with open(path, "w") as handle:
        handle.write(block)
    _SESSION_BLOCKS.append((name, block))
    return block


def pytest_terminal_summary(terminalreporter):
    """Re-emit every reproduced figure/table after the timing table, so the
    rows survive pytest's output capture of passing tests.

    Reads the archives rather than in-process state: the benches import
    this module by package path, which pytest loads separately as the
    conftest plugin.
    """
    if not os.path.isdir(RESULTS_DIR):
        return
    names = sorted(
        name for name in os.listdir(RESULTS_DIR) if name.endswith(".txt")
    )
    if not names:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "reproduced figures/tables ({} of them; archived under "
        "benchmarks/results/):".format(len(names))
    )
    for name in names:
        terminalreporter.write_line("")
        with open(os.path.join(RESULTS_DIR, name)) as handle:
            for line in handle.read().splitlines():
                terminalreporter.write_line(line)
