"""Figure 3: the three causes of power entanglement."""

from repro.analysis.report import format_series, format_table
from repro.experiments.fig3 import (
    run_fig3a_spatial,
    run_fig3b_requests,
    run_fig3c_lingering,
)

from benchmarks.conftest import report


def test_fig3a_spatial_concurrency(benchmark):
    result = benchmark.pedantic(run_fig3a_spatial, rounds=1, iterations=1)
    text = "\n".join([
        format_table(
            ["series", "mean W"],
            [
                ["2 instances (one per core)", "{:.2f}".format(result.mean_two)],
                ["1 instance doubled", "{:.2f}".format(result.mean_one_doubled)],
            ],
            title="CPU power: co-run vs extrapolated (paper Fig 3a)",
        ),
        "doubling overestimates by {:+.0f}% — power does not compose "
        "across cores".format(result.overestimate_pct),
        format_series(result.watts_two_instances, label="2 instances W"),
        format_series(result.watts_one_doubled, label="1x2 doubled  W"),
    ])
    report("FIG3A spatial concurrency entanglement", text)
    assert result.overestimate_pct > 10


def test_fig3b_blurry_request_boundary(benchmark):
    result = benchmark.pedantic(run_fig3b_requests, rounds=1, iterations=1)
    rows = [
        [str(seq), kind, "{:.1f}".format(d / 1e6),
         "{:.1f}".format(n / 1e6)]
        for seq, kind, d, n in result.commands
    ]
    text = "\n".join([
        format_table(["cmd", "kind", "dispatch ms", "notify ms"], rows,
                     title="Three GPU commands (paper Fig 3b)"),
        "commands 1 and 2 overlap for {:.1f} ms; their power impacts are "
        "inseparable".format(result.overlap_ns / 1e6),
        format_series(result.watts, label="GPU W"),
    ])
    report("FIG3B blurry request boundaries", text)
    assert result.overlap_ns > 1e6


def test_fig3c_lingering_power_state(benchmark):
    result = benchmark.pedantic(run_fig3c_lingering, rounds=1, iterations=1)
    text = "\n".join([
        format_table(
            ["scenario", "mean W"],
            [
                ["exec after idle", "{:.2f}".format(result.mean_after_idle)],
                ["exec after busy", "{:.2f}".format(result.mean_after_busy)],
            ],
            title="Same app, different DVFS history (paper Fig 3c)",
        ),
        "lingering state changes power by {:+.0f}%".format(
            result.lingering_pct),
        format_series(result.watts_after_idle, label="after idle W"),
        format_series(result.watts_after_busy, label="after busy W"),
    ])
    report("FIG3C lingering power state", text)
    assert result.lingering_pct > 10
