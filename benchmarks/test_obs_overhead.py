"""Observability overhead: event-loop throughput and hook cost.

Emits ``BENCH_obs.json`` at the repo root — the perf-trajectory data the
ROADMAP asks for: raw event-loop throughput (events/sec, with the dormant
``sim.obs``/``sim.profile`` guards on the dispatch hot path), the cost of an
installed session with tracing *off* (metrics hooks live, no per-event
bookkeeping), and the cost of tracing *on*.  The ``trajectory`` list keeps
one labelled entry per hot-path generation so the speed story stays visible
across PRs.

Methodology notes, learned the hard way on this host:

* the CPU's frequency governor idles low and takes ~2 s of sustained load
  to reach steady state, so every session starts with a busy-loop warmup —
  without it the first measurement reads ~3x slow;
* rounds are *interleaved* across the no-session / tracer-off / tracer-on
  variants (rather than N rounds of each in sequence) so slow frequency
  drift hits all three equally instead of biasing the overhead ratios.

Assertion bounds are deliberately loose — CI machines are noisy — the JSON
carries the real numbers.
"""

import json
import os
import time

from repro.analysis.report import format_table
from repro.experiments.faults_exp import build_workload
from repro.obs import Obs
from repro.sim.clock import MSEC
from repro.sim.engine import Simulator

from benchmarks.conftest import report

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs.json")

LOOP_HORIZON = 50 * MSEC      # 50k chained 1us events per round
ROUNDS = 25

#: Label for this hot-path generation's trajectory entry.  Bump when the
#: engine changes enough that the next measurement starts a new story.
GENERATION = "pr7-slot-heap-queue"

#: Historical trajectory entries (same microbenchmark, earlier engines).
#: pr3 numbers are the recorded BENCH_obs.json from the original session;
#: pr7-prehost is the *pre-rewrite* engine measured warm on the PR 7 host,
#: the honest same-host baseline for the rewrite's multiple.
HISTORY = [
    {
        "label": "pr3-heap-queue",
        "events_per_sec": 1131133.2,
        "tracer_on_overhead_pct": 31.5,
        "kernel_tracer_on_overhead_pct": 24.2,
    },
    {
        "label": "pr7-prehost-heap-queue",
        "events_per_sec": 920402.2,
        "tracer_on_overhead_pct": 27.0,
        "kernel_tracer_on_overhead_pct": -7.2,
    },
]


def _warm(seconds=2.0):
    """Hold the CPU busy until the frequency governor reaches steady state."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(1000))


def _time_interleaved(fns, rounds=ROUNDS):
    """Best-of-N wall seconds for each fn, with rounds interleaved."""
    best = [None] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - t0
            best[i] = elapsed if best[i] is None else min(best[i], elapsed)
    return best


def _event_loop(obs_mode):
    """The chained-ping microbenchmark; obs_mode None/False/True."""
    sim = Simulator()
    if obs_mode is not None:
        Obs(sim, tracing=obs_mode).install()

    def ping():
        sim.call_later(1000, ping)

    ping()
    sim.run(until=LOOP_HORIZON)
    return sim.now


def _kernel_run(obs_mode):
    """The mixed full-board workload, exercising the instrumented sites."""
    work = build_workload("mixed", 0)
    if obs_mode is not None:
        Obs(work.platform.sim, tracing=obs_mode).install() \
            .bind_kernel(work.kernel)
    work.platform.sim.run(until=work.horizon_ns)
    return work.platform.sim.now


def _overhead_pct(base_s, with_s):
    return 100.0 * (with_s - base_s) / base_s


def _load_trajectory():
    """Prior trajectory (recorded file if present, else the history seed)."""
    try:
        with open(BENCH_PATH) as handle:
            recorded = json.load(handle)
    except (OSError, ValueError):
        recorded = {}
    trajectory = recorded.get("trajectory") or list(HISTORY)
    return [entry for entry in trajectory if entry.get("label") != GENERATION]


def test_bench_obs_overhead_and_emit_json():
    _warm()
    loop_events = LOOP_HORIZON // 1000
    loop_base, loop_off, loop_on = _time_interleaved([
        lambda: _event_loop(None),
        lambda: _event_loop(False),
        lambda: _event_loop(True),
    ])
    kern_base, kern_off, kern_on = _time_interleaved([
        lambda: _kernel_run(None),
        lambda: _kernel_run(False),
        lambda: _kernel_run(True),
    ], rounds=5)

    trajectory = _load_trajectory()
    trajectory.append({
        "label": GENERATION,
        "events_per_sec": round(loop_events / loop_base, 1),
        "tracer_on_overhead_pct": round(_overhead_pct(loop_base, loop_on), 1),
        "kernel_tracer_on_overhead_pct": round(
            _overhead_pct(kern_base, kern_on), 1),
    })

    payload = {
        "event_loop": {
            "events": int(loop_events),
            "events_per_sec": loop_events / loop_base,
            "no_session_s": loop_base,
            "tracer_off_s": loop_off,
            "tracer_on_s": loop_on,
            "tracer_off_overhead_pct": _overhead_pct(loop_base, loop_off),
            "tracer_on_overhead_pct": _overhead_pct(loop_base, loop_on),
        },
        "kernel_workload": {
            "workload": "faults_exp mixed (1.2 sim-s full board)",
            "no_session_s": kern_base,
            "tracer_off_s": kern_off,
            "tracer_on_s": kern_on,
            "tracer_off_overhead_pct": _overhead_pct(kern_base, kern_off),
            "tracer_on_overhead_pct": _overhead_pct(kern_base, kern_on),
        },
        "trajectory": trajectory,
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    rows = []
    for section, label in (("event_loop", "event loop (50k events)"),
                           ("kernel_workload", "mixed board (1.2 sim-s)")):
        data = payload[section]
        rows.append([
            label, "{:.4f}".format(data["no_session_s"]),
            "{:+.1f}%".format(data["tracer_off_overhead_pct"]),
            "{:+.1f}%".format(data["tracer_on_overhead_pct"]),
        ])
    rows.append(["event-loop throughput",
                 "{:,.0f} events/s".format(
                     payload["event_loop"]["events_per_sec"]), "", ""])
    report("OBS-OVERHEAD", format_table(
        ["workload", "no session", "tracer off", "tracer on"], rows,
        title="Observability overhead (best of {} interleaved rounds)".format(
            ROUNDS),
    ))

    # Loose sanity bounds only — the JSON carries the honest numbers.  The
    # strict floor lives in tests/sim/test_perf_floor.py behind PSBOX_PERF.
    assert payload["event_loop"]["events_per_sec"] > 10_000
    assert payload["event_loop"]["tracer_off_overhead_pct"] < 15
    assert payload["event_loop"]["tracer_on_overhead_pct"] < 15
    assert payload["kernel_workload"]["tracer_off_overhead_pct"] < 15
