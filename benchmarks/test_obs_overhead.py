"""Observability overhead: event-loop throughput and hook cost.

Emits ``BENCH_obs.json`` at the repo root — the perf-trajectory data point
the ROADMAP asks for: raw event-loop throughput (events/sec, with the
dormant ``sim.obs``/``sim.profile`` guards on the dispatch hot path), the
cost of an installed session with tracing *off* (metrics hooks live, no
per-event bookkeeping), and the cost of tracing *on*.  Assertion bounds are
deliberately loose — CI machines are noisy — the JSON carries the real
numbers.
"""

import json
import os
import time

from repro.analysis.report import format_table
from repro.experiments.faults_exp import build_workload
from repro.obs import Obs
from repro.sim.clock import MSEC
from repro.sim.engine import Simulator

from benchmarks.conftest import report

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs.json")

LOOP_HORIZON = 50 * MSEC      # 50k chained 1us events per round
ROUNDS = 5


def _time(fn, rounds=ROUNDS):
    """Best-of-N wall seconds (min is the least noisy point estimate)."""
    best = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best


def _event_loop(obs_mode):
    """The chained-ping microbenchmark; obs_mode None/False/True."""
    sim = Simulator()
    if obs_mode is not None:
        Obs(sim, tracing=obs_mode).install()

    def ping():
        sim.call_later(1000, ping)

    ping()
    sim.run(until=LOOP_HORIZON)
    return sim.now


def _kernel_run(obs_mode):
    """The mixed full-board workload, exercising the instrumented sites."""
    work = build_workload("mixed", 0)
    if obs_mode is not None:
        Obs(work.platform.sim, tracing=obs_mode).install() \
            .bind_kernel(work.kernel)
    work.platform.sim.run(until=work.horizon_ns)
    return work.platform.sim.now


def _overhead_pct(base_s, with_s):
    return 100.0 * (with_s - base_s) / base_s


def test_bench_obs_overhead_and_emit_json():
    loop_events = LOOP_HORIZON // 1000
    loop_base = _time(lambda: _event_loop(None))
    loop_off = _time(lambda: _event_loop(False))
    loop_on = _time(lambda: _event_loop(True))

    kern_base = _time(lambda: _kernel_run(None), rounds=2)
    kern_off = _time(lambda: _kernel_run(False), rounds=2)
    kern_on = _time(lambda: _kernel_run(True), rounds=2)

    payload = {
        "event_loop": {
            "events": int(loop_events),
            "events_per_sec": loop_events / loop_base,
            "no_session_s": loop_base,
            "tracer_off_s": loop_off,
            "tracer_on_s": loop_on,
            "tracer_off_overhead_pct": _overhead_pct(loop_base, loop_off),
            "tracer_on_overhead_pct": _overhead_pct(loop_base, loop_on),
        },
        "kernel_workload": {
            "workload": "faults_exp mixed (1.2 sim-s full board)",
            "no_session_s": kern_base,
            "tracer_off_s": kern_off,
            "tracer_on_s": kern_on,
            "tracer_off_overhead_pct": _overhead_pct(kern_base, kern_off),
            "tracer_on_overhead_pct": _overhead_pct(kern_base, kern_on),
        },
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    rows = []
    for section, label in (("event_loop", "event loop (50k events)"),
                           ("kernel_workload", "mixed board (1.2 sim-s)")):
        data = payload[section]
        rows.append([
            label, "{:.4f}".format(data["no_session_s"]),
            "{:+.1f}%".format(data["tracer_off_overhead_pct"]),
            "{:+.1f}%".format(data["tracer_on_overhead_pct"]),
        ])
    rows.append(["event-loop throughput",
                 "{:,.0f} events/s".format(
                     payload["event_loop"]["events_per_sec"]), "", ""])
    report("OBS-OVERHEAD", format_table(
        ["workload", "no session", "tracer off", "tracer on"], rows,
        title="Observability overhead (best of {} rounds; target: session "
              "with tracing off < 5%)".format(ROUNDS),
    ))

    # Loose sanity bounds only — the JSON carries the honest numbers.
    assert payload["event_loop"]["events_per_sec"] > 10_000
    assert payload["event_loop"]["tracer_off_overhead_pct"] < 15
    assert payload["kernel_workload"]["tracer_off_overhead_pct"] < 15
