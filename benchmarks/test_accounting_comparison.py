"""All accounting mechanisms head-to-head on one entangled scenario.

The paper's Section 2 argument, quantified: *no* division heuristic — not
even exact Shapley values computed with the true hardware model — recovers
an app's standalone power from entangled measurements; insulation (psbox)
does.
"""

from repro.accounting import (
    EvenSplitAccounting,
    LastTriggerAccounting,
    PerSampleUsageAccounting,
    ShapleyAccounting,
    UtilizationAccounting,
)
from repro.analysis.report import format_table
from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.actions import Sleep, SubmitAccel
from repro.kernel.kernel import Kernel
from repro.sim.clock import SEC, from_msec

from benchmarks.conftest import report


def _main_app(kernel, n=15):
    app = App(kernel, "main")

    def behavior():
        for _ in range(n):
            yield SubmitAccel("gpu", "draw", 2.5e6, 0.7, wait=True)
            yield Sleep(from_msec(3))

    app.spawn(behavior())
    return app


def _noise_app(kernel):
    app = App(kernel, "noise")

    def behavior():
        while True:
            yield SubmitAccel("gpu", "noise", 3e6, 0.9, wait=True)

    app.spawn(behavior())
    return app


def _run(with_noise, use_psbox, seed=41):
    platform = Platform.full(seed=seed)
    kernel = Kernel(platform)
    app = _main_app(kernel)
    box = None
    if use_psbox:
        box = app.create_psbox(("gpu",))
        box.enter()
    ids = [app.id]
    if with_noise:
        ids.append(_noise_app(kernel).id)
    platform.sim.run(until=8 * SEC)
    assert app.finished
    return platform, app, ids, box


def test_accounting_mechanisms_vs_psbox(benchmark):
    def sweep():
        drifts = {}

        # psbox (insulation)
        _p1, a1, _i1, box1 = _run(False, True)
        alone = box1.vmeter.energy(0, a1.finished_at)
        _p2, a2, _i2, box2 = _run(True, True)
        corun = box2.vmeter.energy(0, a2.finished_at)
        drifts["psbox (insulation)"] = 100 * abs(corun - alone) / alone

        # division mechanisms, sharing the same pair of runs
        p_alone, a_alone, ids_alone, _b = _run(False, False)
        p_corun, a_corun, ids_corun, _b = _run(True, False)
        mechanisms = {
            "per-sample usage split [96]": PerSampleUsageAccounting,
            "even split [94]": EvenSplitAccounting,
            "last trigger [70]": LastTriggerAccounting,
            "utilization-scaled [100]": UtilizationAccounting,
        }
        for label, cls in mechanisms.items():
            e_alone = cls(p_alone, "gpu").energies(
                ids_alone, 0, a_alone.finished_at)[a_alone.id]
            e_corun = cls(p_corun, "gpu").energies(
                ids_corun, 0, a_corun.finished_at)[a_corun.id]
            drifts[label] = 100 * abs(e_corun - e_alone) / e_alone

        e_alone = ShapleyAccounting(p_alone, "gpu").energies(
            ids_alone, 0, a_alone.finished_at)[a_alone.id]
        e_corun = ShapleyAccounting(p_corun, "gpu").energies(
            ids_corun, 0, a_corun.finished_at)[a_corun.id]
        drifts["Shapley w/ true model [25]"] = \
            100 * abs(e_corun - e_alone) / e_alone
        return drifts

    drifts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = sorted(drifts.items(), key=lambda item: item[1])
    text = format_table(
        ["mechanism", "GPU energy drift when a co-runner appears"],
        [[name, "{:.1f}%".format(value)] for name, value in rows],
        title="Division heuristics vs insulation (the Section 2 argument)",
    )
    report("ACCOUNTING-COMPARISON", text)
    psbox_drift = drifts["psbox (insulation)"]
    for name, value in drifts.items():
        if name != "psbox (insulation)":
            assert psbox_drift < value, (
                "{} unexpectedly beat psbox".format(name)
            )
