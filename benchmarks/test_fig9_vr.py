"""Figure 9 / §6.4: the power-aware VR app."""

from repro.analysis.report import format_series, format_table
from repro.experiments.fig9 import fidelity_power_span, run_fig9

from benchmarks.conftest import report


def test_fig9_vr_adaptation(benchmark):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    low, high = fidelity_power_span()
    rows = [
        ["{:.2f}".format(budget), "{:.3f}".format(observed), str(level)]
        for budget, observed, level in zip(
            result.budgets_w, result.observed_w, result.fidelity
        )
    ]
    text = "\n".join([
        format_table(
            ["budget W", "observed W (psbox)", "steady fidelity"],
            rows,
            title="Rendering adapts fidelity to its insulated power "
                  "(paper Fig 9 / §6.4)",
        ),
        "open-loop fidelity power span: {:.0f} mW .. {:.0f} mW = {:.1f}x "
        "(paper: 90..800 mW = 8.9x)".format(low * 1000, high * 1000,
                                            high / low),
        format_series(result.rendering_watts,
                      label="rendering (in psbox) W"),
        format_series(result.total_watts, label="total CPU rail    W"),
    ])
    report("FIG9-VR power-aware adaptation", text)
    assert high / low > 4
    assert result.fidelity == sorted(result.fidelity)
    for budget, observed in zip(result.budgets_w, result.observed_w):
        assert observed < 1.6 * budget
