"""Section 6.2: performance impact — latency increases and throughput loss."""

from repro.analysis.report import format_table
from repro.experiments.sec62 import run_sec62_latency, run_sec62_throughput

from benchmarks.conftest import report


def test_sec62_latency_increase(benchmark):
    rows_data = benchmark.pedantic(run_sec62_latency, rounds=1, iterations=1)
    rows = [
        [row.component,
         "{:.2f}".format(row.mean_without_ns / 1e6),
         "{:.2f}".format(row.mean_with_ns / 1e6),
         "{:+.2f}".format(row.increase_ns / 1e6)]
        for row in rows_data
    ]
    text = format_table(
        ["component", "mean dispatch ms (no psbox)",
         "mean dispatch ms (psbox)", "increase ms"],
        rows,
        title="Dispatch/scheduling latency increase (paper §6.2: "
              "CPU tens of us, GPU +1.8 ms, DSP +100 ms, WiFi up to 100s ms)",
    )
    report("SEC62-LATENCY", text)
    by_comp = {row.component: row for row in rows_data}
    assert by_comp["gpu"].increase_ns > 0
    assert by_comp["dsp"].increase_ns > by_comp["gpu"].increase_ns
    assert by_comp["cpu (shootdown)"].mean_with_ns < 100_000  # tens of us


def test_sec62_total_throughput_loss(benchmark):
    rows_data = benchmark.pedantic(run_sec62_throughput, rounds=1,
                                   iterations=1)
    rows = [
        [row.component, "{:.1f}%".format(row.total_loss_pct),
         "{:.1f}%".format(row.sandboxed_loss_pct),
         "{:.1f}%".format(row.max_other_loss_pct)]
        for row in rows_data
    ]
    text = format_table(
        ["component", "total loss", "sandboxed loss", "max other loss"],
        rows,
        title="Total throughput loss from one psbox user (paper §6.2: "
              "0.9% WiFi .. 9.8% CPU; our CPU workload is fully CPU-bound "
              "and single-threaded, so its balloon waste is larger)",
    )
    report("SEC62-THROUGHPUT", text)
    for row in rows_data:
        assert row.max_other_loss_pct < 16
        assert row.total_loss_pct < 35
