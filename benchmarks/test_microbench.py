"""Microbenchmarks of the library's own machinery (multi-round timings)."""

from repro.apps.cpu_apps import calib3d, dedup
from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel
from repro.sidechannel.dtw import dtw_distance
from repro.sim.clock import MSEC, SEC, USEC
from repro.sim.engine import Simulator
from repro.sim.trace import StepTrace


def test_bench_event_loop_throughput(benchmark):
    def run():
        sim = Simulator()

        def ping():
            sim.call_later(1000, ping)

        ping()
        sim.run(until=10 * MSEC)   # 10k chained events
        return sim.now

    benchmark(run)


def test_bench_step_trace_resample(benchmark, rng):
    trace = StepTrace(0.0)
    t = 0
    for _ in range(2000):
        t += int(rng.integers(1000, 100_000))
        trace.set(t, float(rng.random()))

    benchmark(lambda: trace.resample(0, t, 10 * USEC))


def test_bench_step_trace_integrate(benchmark, rng):
    trace = StepTrace(0.0)
    t = 0
    for _ in range(2000):
        t += int(rng.integers(1000, 100_000))
        trace.set(t, float(rng.random()))

    benchmark(lambda: trace.integrate(0, t))


def test_bench_kernel_corun_simulation(benchmark):
    def run():
        platform = Platform.am57(seed=1)
        kernel = Kernel(platform)
        calib3d(kernel, iterations=20)
        dedup(kernel, iterations=40)
        platform.sim.run(until=SEC)
        return platform.sim.now

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_bench_dtw(benchmark, rng):
    a = rng.normal(size=300)
    b = rng.normal(size=300)
    benchmark(lambda: dtw_distance(a, b, window=30))
