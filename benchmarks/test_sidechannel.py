"""Section 2.5: the GPU power side channel and its mitigation."""

from repro.analysis.report import format_table
from repro.experiments.sidechannel_exp import run_sidechannel

from benchmarks.conftest import report


def test_website_fingerprinting(benchmark):
    result = benchmark.pedantic(run_sidechannel, rounds=1, iterations=1)
    without = result.without_psbox
    with_box = result.with_psbox
    text = format_table(
        ["world", "correct", "success rate", "vs random"],
        [
            ["state of the art (accounting shares)",
             "{}/{}".format(without.correct, without.trials),
             "{:.0%}".format(without.success_rate),
             "{:.1f}x".format(without.advantage)],
            ["psbox (virtual power meter)",
             "{}/{}".format(with_box.correct, with_box.trials),
             "{:.0%}".format(with_box.success_rate),
             "{:.1f}x".format(with_box.advantage)],
        ],
        title="Website fingerprinting via GPU power, 10 sites "
              "(paper §2.5: 60% = 6x random without psbox)",
    )
    text += (
        "\nresidual success under psbox stems from a timing channel "
        "(balloon delays), which psbox minimizes but cannot null."
    )
    report("SEC25-SIDECHANNEL", text)
    assert without.success_rate >= 0.4
    assert without.advantage >= 4.0
    assert with_box.success_rate <= 0.5 * without.success_rate
