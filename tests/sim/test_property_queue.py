"""Model-based property test for the slot-plus-heap event queue.

The reference model is the naive structure the queue must be
indistinguishable from: a plain list of (time, push_index, handle) kept in
push order, where a pop scans for the live entry with the smallest
(time, push_index).  Hypothesis drives both through random interleavings of
push / cancel / pop / pop_due / peek — with a tiny time domain so
same-timestamp ties are common, and cancel targets chosen so the current
head is regularly killed in place — asserting the identical pop order and
the identical ``len()`` after every single operation.

This is the harness that guards the queue's two delicate tricks: lazy
sequence numbers (assigned only on heap entry, sentinel ``-1`` when the
head slot spills) and lazy corpse pruning.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventQueue

#: one op: ("push", t) | ("cancel", k) | ("pop",) | ("pop_due", t) | ("peek",)
#: the tiny time range forces frequent ties; cancel picks modulo handles.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(min_value=0, max_value=8)),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=300)),
        st.tuples(st.just("pop")),
        st.tuples(st.just("pop_due"), st.integers(min_value=0, max_value=8)),
        st.tuples(st.just("peek")),
    ),
    max_size=200,
)


class _ReferenceQueue:
    """The obviously-correct model: a scan over a push-ordered list."""

    def __init__(self):
        self._entries = []        # (time, push_index, event-handle)
        self._pushes = 0

    def record(self, time, event):
        self._entries.append((time, self._pushes, event))
        self._pushes += 1

    def _live(self):
        return [e for e in self._entries if not e[2].cancelled]

    def __len__(self):
        return len(self._live())

    def pop(self, limit=None):
        live = self._live()
        if not live:
            return None
        best = min(live, key=lambda e: (e[0], e[1]))
        if limit is not None and best[0] > limit:
            return None
        self._entries.remove(best)
        return best[2]

    def peek_time(self):
        live = self._live()
        if not live:
            return None
        return min(live, key=lambda e: (e[0], e[1]))[0]


@given(_OPS)
@settings(max_examples=300, deadline=None)
def test_queue_matches_sorted_list_reference(ops):
    queue = EventQueue()
    model = _ReferenceQueue()
    handles = []
    for op in ops:
        kind = op[0]
        if kind == "push":
            event = queue.push(op[1], lambda: None, ())
            model.record(op[1], event)
            handles.append(event)
        elif kind == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        elif kind == "pop":
            assert queue.pop() is model.pop()
        elif kind == "pop_due":
            assert queue.pop_due(op[1]) is model.pop(limit=op[1])
        else:
            assert queue.peek_time() == model.peek_time()
        assert len(queue) == len(model)
    # Drain: the tail order must agree too.
    while True:
        event = queue.pop()
        assert event is model.pop()
        assert len(queue) == len(model)
        if event is None:
            break
