"""Unit tests for the Simulator event loop."""

import pytest

from repro.sim.clock import MSEC, SEC
from repro.sim.engine import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_call_later_advances_clock():
    sim = Simulator()
    seen = []
    sim.call_later(5 * MSEC, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5 * MSEC]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.call_later(1 * MSEC, seen.append, "a")
    sim.call_later(10 * MSEC, seen.append, "b")
    sim.run(until=5 * MSEC)
    assert seen == ["a"]
    assert sim.now == 5 * MSEC


def test_run_until_advances_clock_even_when_queue_drains():
    sim = Simulator()
    sim.run(until=SEC)
    assert sim.now == SEC


def test_at_rejects_past_times():
    sim = Simulator()
    sim.call_later(MSEC, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(0, lambda: None)


def test_call_soon_runs_at_current_instant():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.call_soon(order.append, "inner")

    sim.call_later(MSEC, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == MSEC


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    seen = []
    ev = sim.call_later(MSEC, seen.append, 1)
    ev.cancel()
    sim.run()
    assert seen == []


def test_step_runs_one_event():
    sim = Simulator()
    seen = []
    sim.call_later(1, seen.append, "a")
    sim.call_later(2, seen.append, "b")
    assert sim.step()
    assert seen == ["a"]
    assert sim.step()
    assert not sim.step()


def test_events_fire_in_causal_order():
    sim = Simulator()
    seen = []
    for delay in (3, 1, 2, 5, 4):
        sim.call_later(delay * MSEC, seen.append, delay)
    sim.run()
    assert seen == sorted(seen)


def test_run_until_in_the_past_is_a_noop():
    sim = Simulator()
    sim.call_later(10 * MSEC, lambda: None)
    sim.run(until=10 * MSEC)
    assert sim.now == 10 * MSEC
    sim.run(until=5 * MSEC)     # already past: clock must not go back
    assert sim.now == 10 * MSEC


def test_event_scheduled_by_event_at_same_instant_runs():
    sim = Simulator()
    seen = []

    def first():
        sim.at(sim.now, seen.append, "second")
        seen.append("first")

    sim.call_later(MSEC, first)
    sim.run()
    assert seen == ["first", "second"]


def test_pending_counts_live_events():
    sim = Simulator()
    sim.call_later(1, lambda: None)
    sim.call_later(2, lambda: None)
    assert sim.pending() == 2


def test_pending_excludes_cancelled_events():
    """Regression: pending() overreported by counting cancelled events."""
    sim = Simulator()
    ev = sim.call_later(1, lambda: None)
    sim.call_later(2, lambda: None)
    ev.cancel()
    assert sim.pending() == 1


def test_dispatch_restores_tracer_scope_when_handler_raises():
    """Regression: a raising handler skipped tracer._exit_event, leaking
    its event context into every later cascade for callers that catch and
    keep stepping."""
    from repro.obs import Obs

    sim = Simulator()
    obs = Obs(sim, tracing=True).install()
    fired = []

    def boom():
        with obs.tracer.span("doomed"):
            raise RuntimeError("handler failure")

    sim.call_later(1, boom)
    sim.call_later(2, fired.append, "after")
    with pytest.raises(RuntimeError):
        sim.run()
    # The event scope must be closed despite the exception ...
    assert obs.tracer.current is None
    # ... so stepping on works and the next cascade starts clean.
    sim.run()
    assert fired == ["after"]
    assert obs.tracer.current is None


def test_dispatch_records_profile_sample_when_handler_raises():
    """Regression: the perf_counter sample was lost on a raising handler."""
    from repro.obs import EventLoopProfiler

    sim = Simulator()
    profiler = EventLoopProfiler()
    profiler.install(sim)

    def boom():
        raise RuntimeError("handler failure")

    sim.call_later(1, boom)
    with pytest.raises(RuntimeError):
        sim.run()
    assert sum(calls for _key, (calls, _s) in profiler.stats.items()) == 1


def test_rng_registry_is_deterministic():
    a = Simulator(seed=42).rng.stream("x").random()
    b = Simulator(seed=42).rng.stream("x").random()
    c = Simulator(seed=43).rng.stream("x").random()
    assert a == b
    assert a != c


def test_rng_streams_are_independent_by_name():
    sim = Simulator(seed=1)
    assert sim.rng.stream("a").random() != sim.rng.stream("b").random()
