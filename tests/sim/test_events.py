"""Unit tests for the event queue."""

import pytest

from repro.sim.events import Event, EventQueue


def make_queue():
    return EventQueue()


def test_pop_in_time_order():
    q = make_queue()
    fired = []
    q.push(30, fired.append, (3,))
    q.push(10, fired.append, (1,))
    q.push(20, fired.append, (2,))
    times = []
    while True:
        ev = q.pop()
        if ev is None:
            break
        times.append(ev.time)
    assert times == [10, 20, 30]


def test_fifo_among_ties():
    q = make_queue()
    first = q.push(5, lambda: None, ())
    second = q.push(5, lambda: None, ())
    assert q.pop() is first
    assert q.pop() is second


def test_cancelled_events_are_skipped():
    q = make_queue()
    ev = q.push(1, lambda: None, ())
    keep = q.push(2, lambda: None, ())
    ev.cancel()
    assert q.pop() is keep
    assert q.pop() is None


def test_peek_time_prunes_cancelled():
    q = make_queue()
    ev = q.push(1, lambda: None, ())
    q.push(7, lambda: None, ())
    ev.cancel()
    assert q.peek_time() == 7


def test_len_counts_pushed_events():
    q = make_queue()
    q.push(1, lambda: None, ())
    q.push(2, lambda: None, ())
    assert len(q) == 2


def test_cancel_is_idempotent():
    q = make_queue()
    ev = q.push(1, lambda: None, ())
    ev.cancel()
    ev.cancel()
    assert q.pop() is None


def test_event_ordering_operator():
    a = Event(1, 0, None, ())
    b = Event(1, 1, None, ())
    c = Event(2, 0, None, ())
    assert a < b < c


def test_empty_queue_pop_and_peek():
    q = make_queue()
    assert q.pop() is None
    assert q.peek_time() is None
