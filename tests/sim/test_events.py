"""Unit tests for the event queue."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.events import Event, EventQueue


def make_queue():
    return EventQueue()


def test_pop_in_time_order():
    q = make_queue()
    fired = []
    q.push(30, fired.append, (3,))
    q.push(10, fired.append, (1,))
    q.push(20, fired.append, (2,))
    times = []
    while True:
        ev = q.pop()
        if ev is None:
            break
        times.append(ev.time)
    assert times == [10, 20, 30]


def test_fifo_among_ties():
    q = make_queue()
    first = q.push(5, lambda: None, ())
    second = q.push(5, lambda: None, ())
    assert q.pop() is first
    assert q.pop() is second


def test_cancelled_events_are_skipped():
    q = make_queue()
    ev = q.push(1, lambda: None, ())
    keep = q.push(2, lambda: None, ())
    ev.cancel()
    assert q.pop() is keep
    assert q.pop() is None


def test_peek_time_prunes_cancelled():
    q = make_queue()
    ev = q.push(1, lambda: None, ())
    q.push(7, lambda: None, ())
    ev.cancel()
    assert q.peek_time() == 7


def test_len_counts_pushed_events():
    q = make_queue()
    q.push(1, lambda: None, ())
    q.push(2, lambda: None, ())
    assert len(q) == 2


def test_len_excludes_cancelled_events():
    """Regression: cancelled-but-unpruned events must not count as live."""
    q = make_queue()
    ev = q.push(1, lambda: None, ())
    q.push(2, lambda: None, ())
    ev.cancel()
    assert len(q) == 1
    ev.cancel()                      # idempotent: no double decrement
    assert len(q) == 1


def test_len_survives_lazy_prune():
    """The prune in pop/peek_time drops corpses already discounted."""
    q = make_queue()
    dead = [q.push(t, lambda: None, ()) for t in (1, 2, 3)]
    keep = q.push(4, lambda: None, ())
    for ev in dead:
        ev.cancel()
    assert len(q) == 1
    assert q.peek_time() == 4        # prunes the three corpses
    assert len(q) == 1
    assert q.pop() is keep
    assert len(q) == 0


def test_pop_decrements_len():
    q = make_queue()
    q.push(1, lambda: None, ())
    q.push(2, lambda: None, ())
    q.pop()
    assert len(q) == 1
    q.pop()
    assert len(q) == 0


def test_cancel_after_pop_does_not_underflow():
    q = make_queue()
    ev = q.push(1, lambda: None, ())
    q.push(2, lambda: None, ())
    assert q.pop() is ev
    ev.cancel()                      # already fired: count must not move
    assert len(q) == 1


def test_cancel_is_idempotent():
    q = make_queue()
    ev = q.push(1, lambda: None, ())
    ev.cancel()
    ev.cancel()
    assert q.pop() is None


def test_pop_due_respects_limit():
    q = make_queue()
    early = q.push(5, lambda: None, ())
    q.push(10, lambda: None, ())
    assert q.pop_due(4) is None       # nothing due yet
    assert q.pop_due(5) is early      # inclusive limit
    assert q.pop_due(9) is None       # next event still queued
    assert len(q) == 1


def test_pop_due_skips_cancelled_up_to_limit():
    q = make_queue()
    dead = q.push(1, lambda: None, ())
    keep = q.push(2, lambda: None, ())
    dead.cancel()
    assert q.pop_due(2) is keep
    assert q.pop_due(2) is None


def test_pop_due_with_cancelled_head_past_limit():
    """A cancelled head beyond the limit must not hide a due event —
    impossible by construction (the head is the queue minimum), so the
    contract is simply: nothing due, nothing popped, corpse still lazy."""
    q = make_queue()
    dead = q.push(9, lambda: None, ())
    dead.cancel()
    assert q.pop_due(5) is None
    assert q.pop_due(9) is None
    assert q.pop() is None


def test_pop_due_fifo_among_ties():
    q = make_queue()
    first = q.push(3, lambda: None, ())
    second = q.push(3, lambda: None, ())
    assert q.pop_due(3) is first
    assert q.pop_due(3) is second


def test_event_ordering_operator():
    a = Event(1, 0, None, ())
    b = Event(1, 1, None, ())
    c = Event(2, 0, None, ())
    assert a < b < c


def test_empty_queue_pop_and_peek():
    q = make_queue()
    assert q.pop() is None
    assert q.peek_time() is None


@given(st.lists(st.integers(min_value=0, max_value=20), max_size=50))
def test_pop_order_is_stable_sort_by_time(times):
    """Property: popping everything yields the pushed events stable-sorted
    by timestamp — i.e. equal-timestamp events come out FIFO."""
    q = make_queue()
    pushed = [q.push(t, lambda: None, ()) for t in times]
    popped = []
    while True:
        ev = q.pop()
        if ev is None:
            break
        popped.append(ev)
    # Python's sort is stable and ``pushed`` is in insertion order, so this
    # is exactly "time-ordered, FIFO among ties".
    expected = sorted(pushed, key=lambda ev: ev.time)
    assert [id(ev) for ev in popped] == [id(ev) for ev in expected]
