"""Unit tests for time units and conversions."""

from repro.sim.clock import (
    MSEC,
    NSEC,
    SEC,
    USEC,
    from_msec,
    from_seconds,
    from_usec,
    seconds,
)


def test_unit_ratios():
    assert USEC == 1000 * NSEC
    assert MSEC == 1000 * USEC
    assert SEC == 1000 * MSEC


def test_seconds_round_trip():
    assert seconds(SEC) == 1.0
    assert from_seconds(1.0) == SEC
    assert from_seconds(seconds(123_456_789)) == 123_456_789


def test_from_seconds_rounds():
    assert from_seconds(1e-9) == 1
    assert from_seconds(1.5e-9) == 2


def test_from_usec_and_msec():
    assert from_usec(10) == 10 * USEC
    assert from_msec(3) == 3 * MSEC
    assert from_usec(2.5) == 2500


def test_subsecond_precision_is_exact():
    # Integer nanoseconds: no floating point drift across sums.
    total = sum([from_usec(1)] * 1_000_000)
    assert total == SEC
