"""Unit tests for generator processes and signals."""

import pytest

from repro.sim.clock import MSEC
from repro.sim.engine import Simulator


def test_process_sleeps_for_yielded_delay():
    sim = Simulator()
    marks = []

    def proc():
        marks.append(sim.now)
        yield 2 * MSEC
        marks.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert marks == [0, 2 * MSEC]


def test_process_result_and_done_signal():
    sim = Simulator()
    results = []

    def proc():
        yield MSEC
        return 42

    p = sim.spawn(proc())
    p.done.subscribe(results.append)
    sim.run()
    assert p.finished
    assert p.result == 42
    assert results == [42]


def test_signal_wakes_waiting_process_with_payload():
    sim = Simulator()
    sig = sim.signal("data")
    got = []

    def consumer():
        payload = yield sig
        got.append(payload)

    sim.spawn(consumer())
    sim.call_later(3 * MSEC, sig.fire, "hello")
    sim.run()
    assert got == ["hello"]


def test_signal_has_no_memory():
    sim = Simulator()
    sig = sim.signal()
    got = []

    def late_consumer():
        yield 2 * MSEC      # the fire happens at 1 ms, before we wait
        payload = yield sig
        got.append(payload)

    sim.spawn(late_consumer())
    sim.call_later(1 * MSEC, sig.fire, "early")
    sim.call_later(5 * MSEC, sig.fire, "late")
    sim.run()
    assert got == ["late"]


def test_signal_broadcasts_to_all_waiters():
    sim = Simulator()
    sig = sim.signal()
    got = []

    def consumer(tag):
        payload = yield sig
        got.append((tag, payload))

    sim.spawn(consumer("a"))
    sim.spawn(consumer("b"))
    sim.call_later(MSEC, sig.fire, 7)
    sim.run()
    assert sorted(got) == [("a", 7), ("b", 7)]


def test_negative_delay_rejected():
    sim = Simulator()

    def proc():
        yield -1

    sim.spawn(proc())
    with pytest.raises(ValueError):
        sim.run()


def test_bad_yield_type_rejected():
    sim = Simulator()

    def proc():
        yield "nope"

    sim.spawn(proc())
    with pytest.raises(TypeError):
        sim.run()


def test_kill_stops_process_without_done_signal():
    sim = Simulator()
    fired = []

    def proc():
        yield MSEC
        fired.append("ran")

    p = sim.spawn(proc())
    p.done.subscribe(lambda _p: fired.append("done"))
    sim.run(until=MSEC // 2)
    p.kill()
    sim.run()
    assert fired == []
    assert p.finished


def test_unsubscribe_stops_callbacks():
    sim = Simulator()
    sig = sim.signal()
    seen = []
    sig.subscribe(seen.append)
    sig.fire(1)
    sig.unsubscribe(seen.append)
    sig.fire(2)
    assert seen == [1]
