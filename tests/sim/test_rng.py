"""Unit tests for the named RNG registry."""

from repro.sim.rng import RngRegistry


def test_same_name_returns_same_stream_object():
    reg = RngRegistry(seed=1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_reproducible_across_registries():
    a = RngRegistry(seed=7).stream("app.x").random(5)
    b = RngRegistry(seed=7).stream("app.x").random(5)
    assert (a == b).all()


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("s").random()
    b = RngRegistry(seed=2).stream("s").random()
    assert a != b


def test_different_names_differ():
    reg = RngRegistry(seed=1)
    assert reg.stream("a").random() != reg.stream("b").random()


def test_unrelated_stream_does_not_perturb_existing_one():
    """Creating new streams must not change the draws of existing ones."""
    reg1 = RngRegistry(seed=3)
    s = reg1.stream("main")
    first = s.random()

    reg2 = RngRegistry(seed=3)
    reg2.stream("noise")           # extra stream created first
    second = reg2.stream("main").random()
    assert first == second


def test_fresh_resets_stream_state():
    reg = RngRegistry(seed=5)
    a = reg.stream("x").random()
    reg.stream("x").random()
    b = reg.fresh("x").random()
    assert a == b
