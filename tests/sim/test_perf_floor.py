"""Opt-in perf-regression guard for the event-loop hot path.

Skipped unless ``PSBOX_PERF=1``: wall-clock assertions are meaningless on
a loaded or throttled machine, so the floor only arms when the runner
says the host is quiet (the CI ``perf-bench`` job does).  When armed, it
re-runs the BENCH_obs chained-ping microbenchmark and fails if throughput
drops below 80% of the ``events_per_sec`` recorded in ``BENCH_obs.json``
— the committed trajectory is the baseline, so a hot-path regression
shows up as a failing test instead of a silently worse benchmark.

Methodology matches the benchmark: busy-loop warmup first (the host's
frequency governor idles low), then best-of-N, since the *minimum* wall
time is the least noisy point estimate a shared box can produce.
"""

import json
import os
import time

import pytest

from repro.sim.clock import MSEC
from repro.sim.engine import Simulator

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "..",
                          "BENCH_obs.json")

LOOP_HORIZON = 50 * MSEC
ROUNDS = 20
FLOOR_FRACTION = 0.80

pytestmark = pytest.mark.skipif(
    os.environ.get("PSBOX_PERF") != "1",
    reason="perf floor only runs when PSBOX_PERF=1 (quiet host required)",
)


def _recorded_events_per_sec():
    try:
        with open(BENCH_PATH) as handle:
            payload = json.load(handle)
        return float(payload["event_loop"]["events_per_sec"])
    except (OSError, ValueError, KeyError):
        pytest.skip("no recorded BENCH_obs.json baseline to guard against")


def _measure():
    deadline = time.perf_counter() + 2.0
    while time.perf_counter() < deadline:
        sum(range(1000))
    best = None
    for _ in range(ROUNDS):
        sim = Simulator()

        def ping():
            sim.call_later(1000, ping)

        ping()
        t0 = time.perf_counter()
        sim.run(until=LOOP_HORIZON)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return (LOOP_HORIZON // 1000) / best


def test_event_loop_throughput_floor():
    recorded = _recorded_events_per_sec()
    measured = _measure()
    floor = FLOOR_FRACTION * recorded
    assert measured >= floor, (
        "event loop regressed: {:,.0f} events/s measured vs {:,.0f} "
        "recorded ({}% floor = {:,.0f})".format(
            measured, recorded, int(FLOOR_FRACTION * 100), floor)
    )
