"""Unit + property tests for StepTrace and EventTrace.

StepTrace carries the power rails, so its integration/resampling must be
exact; hypothesis drives random change-point sequences through it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import EventTrace, StepTrace


def test_initial_value_holds_until_first_change():
    tr = StepTrace(2.5)
    assert tr.value_at(0) == 2.5
    assert tr.value_at(10**9) == 2.5


def test_value_at_is_right_continuous():
    tr = StepTrace(0.0)
    tr.set(100, 5.0)
    assert tr.value_at(99) == 0.0
    assert tr.value_at(100) == 5.0
    assert tr.value_at(101) == 5.0


def test_set_same_time_overwrites():
    tr = StepTrace(0.0)
    tr.set(100, 1.0)
    tr.set(100, 2.0)
    assert tr.value_at(100) == 2.0
    assert len(tr) == 2


def test_set_in_past_raises():
    tr = StepTrace(0.0)
    tr.set(100, 1.0)
    with pytest.raises(ValueError):
        tr.set(50, 2.0)


def test_add_adjusts_relative_to_current():
    tr = StepTrace(1.0)
    tr.add(10, 2.0)
    tr.add(20, -0.5)
    assert tr.value_at(15) == 3.0
    assert tr.value_at(25) == 2.5


def test_integrate_simple_rectangle():
    tr = StepTrace(0.0)
    tr.set(100, 2.0)
    tr.set(200, 0.0)
    assert tr.integrate(0, 300) == pytest.approx(2.0 * 100)


def test_integrate_subinterval():
    tr = StepTrace(1.0)
    tr.set(100, 3.0)
    assert tr.integrate(50, 150) == pytest.approx(1.0 * 50 + 3.0 * 50)


def test_segments_cover_interval_exactly():
    tr = StepTrace(1.0)
    tr.set(10, 2.0)
    tr.set(30, 3.0)
    segs = list(tr.segments(5, 40))
    assert segs[0][0] == 5
    assert segs[-1][1] == 40
    for (a, b, _v), (c, _d, _w) in zip(segs, segs[1:]):
        assert b == c


def test_resample_matches_value_at():
    tr = StepTrace(0.5)
    tr.set(1000, 1.5)
    tr.set(2500, 0.25)
    times, values = tr.resample(0, 4000, 500)
    for t, v in zip(times, values):
        assert v == tr.value_at(int(t))


def test_resample_rejects_bad_dt():
    tr = StepTrace(0.0)
    with pytest.raises(ValueError):
        tr.resample(0, 100, 0)


def test_mean_weighted_by_time():
    tr = StepTrace(0.0)
    tr.set(100, 4.0)
    assert tr.mean(0, 200) == pytest.approx(2.0)


def test_mean_empty_interval_raises():
    tr = StepTrace(0.0)
    with pytest.raises(ValueError):
        tr.mean(5, 5)


@st.composite
def step_traces(draw):
    """A StepTrace with random change points, plus its raw (t, v) list."""
    initial = draw(st.floats(0, 10, allow_nan=False))
    n = draw(st.integers(0, 20))
    deltas = draw(st.lists(st.integers(1, 1000), min_size=n, max_size=n))
    values = draw(st.lists(st.floats(0, 10, allow_nan=False, allow_infinity=False),
                           min_size=n, max_size=n))
    tr = StepTrace(initial)
    t = 0
    for dt, v in zip(deltas, values):
        t += dt
        tr.set(t, v)
    return tr, t


@given(step_traces(), st.integers(0, 500), st.integers(1, 5000))
@settings(max_examples=80, deadline=None)
def test_integral_additivity(trace_and_end, t0, span):
    """integrate(a,c) == integrate(a,b) + integrate(b,c) for any split."""
    tr, _end = trace_and_end
    a, c = t0, t0 + span
    b = a + span // 2
    whole = tr.integrate(a, c)
    parts = tr.integrate(a, b) + tr.integrate(b, c)
    assert whole == pytest.approx(parts, rel=1e-9, abs=1e-9)


@given(step_traces(), st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_resample_consistency_with_integral_bounds(trace_and_end, dt):
    """The sampled mean is bounded by the signal's min/max over the window."""
    tr, end = trace_and_end
    end = max(end, dt)
    _times, values = tr.resample(0, end + dt, dt)
    lo = min(tr._values)
    hi = max(tr._values)
    assert values.min() >= lo - 1e-12
    assert values.max() <= hi + 1e-12


@given(step_traces())
@settings(max_examples=60, deadline=None)
def test_integral_of_nonnegative_signal_is_monotone(trace_and_end):
    tr, end = trace_and_end
    end = end + 100
    assert tr.integrate(0, end // 2) <= tr.integrate(0, end) + 1e-9


def test_event_trace_filters_by_kind_window_and_payload():
    log = EventTrace("t")
    log.log(10, "dispatch", app=1)
    log.log(20, "dispatch", app=2)
    log.log(30, "complete", app=1)
    assert len(log.filter(kind="dispatch")) == 2
    assert len(log.filter(kind="dispatch", app=1)) == 1
    assert len(log.filter(t0=15)) == 2
    assert len(log.filter(t0=15, t1=25)) == 1
    assert log.times(kind="complete") == [30]


def test_event_trace_iteration_and_len():
    log = EventTrace()
    log.log(1, "a")
    log.log(2, "b")
    assert len(log) == 2
    assert [k for _t, k, _p in log] == ["a", "b"]


def test_add_fast_path_matches_value_at_semantics():
    """add() at/after the last change point must equal the general path."""
    fast = StepTrace(1.0)
    t = 0
    for dt, delta in [(10, 2.0), (0, 0.5), (5, -1.0), (0, 3.0)]:
        t += dt
        fast.add(t, delta)
    # Same-time adds stack (2.0 then +0.5 at t=10), later adds see them.
    assert fast.value_at(10) == pytest.approx(3.5)
    assert fast.value_at(15) == pytest.approx(5.5)
    assert fast.last_value == pytest.approx(5.5)
    assert len(fast) == 3     # t=0, t=10, t=15


def test_add_in_past_still_raises():
    tr = StepTrace(0.0)
    tr.add(100, 1.0)
    with pytest.raises(ValueError):
        tr.add(50, 1.0)


@given(st.lists(st.tuples(st.integers(0, 50), st.floats(-5, 5)), max_size=30))
@settings(max_examples=60, deadline=None)
def test_add_accumulates_deltas_exactly(steps):
    """Final value == initial + sum of deltas, however times collide."""
    tr = StepTrace(2.0)
    t = 0
    total = 2.0
    for dt, delta in steps:
        t += dt
        tr.add(t, delta)
        total += delta
    assert tr.last_value == pytest.approx(total)
    assert tr.value_at(t + 1) == pytest.approx(total)


def test_event_trace_ring_keeps_newest_and_counts_drops():
    log = EventTrace("ring", capacity=3)
    for i in range(5):
        log.log(i, "k", n=i)
    assert len(log) == 3
    assert log.dropped == 2
    assert [p["n"] for _t, _k, p in log] == [2, 3, 4]
    assert log.times() == [2, 3, 4]
    # filter() works on the ring contents only.
    assert log.filter(t0=0, t1=3) == [(2, "k", {"n": 2})]


def test_event_trace_ring_subscribers_see_every_record():
    log = EventTrace("ring", capacity=2)
    seen = []
    log.subscribe(lambda t, k, p: seen.append(t))
    for i in range(6):
        log.log(i, "k")
    assert seen == list(range(6))
    assert len(log) == 2 and log.dropped == 4


def test_event_trace_unbounded_never_drops():
    log = EventTrace()
    for i in range(100):
        log.log(i, "k")
    assert len(log) == 100
    assert log.dropped == 0
    assert log.capacity is None


def test_event_trace_rejects_bad_capacity():
    with pytest.raises(ValueError):
        EventTrace(capacity=0)
    assert EventTrace(capacity=1).capacity == 1
