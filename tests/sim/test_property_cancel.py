"""Property test: ``pending()`` under cancel-heavy schedules.

The contract the live-event counter must keep: after *any* interleaving of
``at``/``call_soon``/``cancel`` (including double cancels and cancels of
already-cancelled events), ``pending()`` equals exactly the number of
events that subsequently fire.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator

#: one schedule operation: ("at", dt) | ("soon",) | ("cancel", index)
#: cancel targets are taken modulo the handles scheduled so far.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("at"), st.integers(min_value=0, max_value=50)),
        st.tuples(st.just("soon")),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200)),
    ),
    max_size=120,
)


@given(_OPS)
@settings(max_examples=200, deadline=None)
def test_pending_equals_events_that_fire(ops):
    sim = Simulator()
    fired = []
    handles = []
    for op in ops:
        if op[0] == "at":
            handles.append(sim.at(op[1], fired.append, len(handles)))
        elif op[0] == "soon":
            handles.append(sim.call_soon(fired.append, len(handles)))
        else:
            if handles:
                handles[op[1] % len(handles)].cancel()
    expected = sim.pending()
    sim.run()
    assert len(fired) == expected
    assert sim.pending() == 0


@given(_OPS)
@settings(max_examples=100, deadline=None)
def test_pending_matches_live_handles(ops):
    """Cross-check: pending() equals the handles not yet cancelled."""
    sim = Simulator()
    handles = []
    for op in ops:
        if op[0] == "at":
            handles.append(sim.at(op[1], lambda: None))
        elif op[0] == "soon":
            handles.append(sim.call_soon(lambda: None))
        else:
            if handles:
                handles[op[1] % len(handles)].cancel()
    assert sim.pending() == sum(1 for ev in handles if not ev.cancelled)
