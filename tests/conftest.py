"""Repo-wide fixtures: the seeded-RNG policy.

Test randomness must be reproducible and centrally controlled, so every
test that wants random data takes the ``rng`` fixture instead of calling
``np.random.default_rng`` with an ad-hoc seed.  All streams derive from
one session seed (``PSBOX_TEST_SEED``, default 0) through the simulator's
own :class:`~repro.sim.rng.RngRegistry`, keyed by the test's node id — so
each test's stream is independent, stable across unrelated changes, and
the whole suite replays at another seed with::

    PSBOX_TEST_SEED=7 pytest
"""

import os

import pytest

from repro.sim.rng import RngRegistry


@pytest.fixture(scope="session")
def test_seed():
    """The session's base seed (override with ``PSBOX_TEST_SEED=n``)."""
    return int(os.environ.get("PSBOX_TEST_SEED", "0"))


@pytest.fixture(scope="session")
def rng_registry(test_seed):
    """Named independent streams rooted at the session seed."""
    return RngRegistry(test_seed)


@pytest.fixture
def rng(rng_registry, request):
    """A ``numpy.random.Generator`` unique and stable per test."""
    return rng_registry.fresh(request.node.nodeid)
