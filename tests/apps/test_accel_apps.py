"""Tests for GPU and DSP benchmark apps."""

import pytest

from repro.apps.dsp_apps import dgemm, monte, sgemm
from repro.apps.gpu_apps import cube, gpu_browser, magic, triangle
from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel
from repro.sim.clock import SEC


def boot(seed=1):
    platform = Platform.full(seed=seed)
    return platform, Kernel(platform)


def test_browser_page_load_completes():
    platform, kernel = boot()
    app = gpu_browser(kernel)
    platform.sim.run(until=4 * SEC)
    assert app.finished
    assert app.counters["bursts"] == 6
    assert app.counters["gpu_commands"] > 10


def test_magic_heavier_than_cube_per_frame():
    platform, kernel = boot()
    m = magic(kernel, frames=20)
    platform.sim.run(until=8 * SEC)
    t_magic = m.finished_at

    platform2, kernel2 = boot()
    c = cube(kernel2, frames=20)
    platform2.sim.run(until=8 * SEC)
    assert c.finished_at < t_magic


def test_triangle_saturates_gpu():
    platform, kernel = boot()
    triangle(kernel, draws=1000)
    platform.sim.run(until=SEC)
    assert platform.gpu.utilization(100_000_000, SEC) > 0.95


def test_dgemm_kernels_longer_than_monte():
    platform, kernel = boot()
    d = dgemm(kernel, iterations=3)
    platform.sim.run(until=8 * SEC)
    d_time = d.finished_at

    platform2, kernel2 = boot()
    m = monte(kernel2, iterations=3)
    platform2.sim.run(until=8 * SEC)
    assert m.finished_at < d_time


def test_sgemm_counts_gflop():
    platform, kernel = boot()
    app = sgemm(kernel, iterations=5)
    platform.sim.run(until=8 * SEC)
    assert app.finished
    assert app.counters["gflop"] == pytest.approx(5 * 0.40)


def test_gpu_apps_share_via_fair_scheduler():
    platform, kernel = boot()
    a = cube(kernel, frames=100000)
    b = cube(kernel, name="cube2", frames=100000)
    platform.sim.run(until=2 * SEC)
    ra = a.rate("gpu_commands", SEC, 2 * SEC)
    rb = b.rate("gpu_commands", SEC, 2 * SEC)
    assert ra > 0 and rb > 0
    assert max(ra, rb) / min(ra, rb) < 1.3
