"""Tests for the VR use-case app (§6.4)."""


from repro.apps.vr import FIDELITY_LEVELS, VrApp
from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel
from repro.sim.clock import SEC


def boot(seed=17):
    platform = Platform.am57(seed=seed)
    return platform, Kernel(platform)


def test_fidelity_levels_monotone_in_demand():
    rates = [cycles / period for period, cycles in FIDELITY_LEVELS]
    assert rates == sorted(rates)


def test_both_tasks_run_continuously():
    platform, kernel = boot()
    vr = VrApp(kernel, budget_w=None, fidelity=3, duration=int(0.8 * SEC))
    platform.sim.run(until=SEC)
    assert vr.gesture_app.counters["gesture_frames"] > 10
    assert vr.render_app.counters["render_frames"] > 10


def test_rendering_observes_power_in_psbox():
    platform, kernel = boot()
    vr = VrApp(kernel, budget_w=0.3, fidelity=3, duration=int(1.5 * SEC))
    platform.sim.run(until=2 * SEC)
    assert vr.power_history, "no psbox power observations recorded"
    assert all(w >= 0 for _t, w in vr.power_history)


def test_controller_tracks_budget():
    platform, kernel = boot()
    budget = 0.25
    vr = VrApp(kernel, budget_w=budget, fidelity=5, duration=int(3 * SEC))
    platform.sim.run(until=int(3 * SEC))
    # Steady-state observed power lands near the budget.
    tail = [w for _t, w in vr.power_history[-5:]]
    mean = sum(tail) / len(tail)
    assert mean < budget * 1.5
    assert mean > budget * 0.4


def test_low_budget_drives_fidelity_down():
    platform, kernel = boot()
    vr = VrApp(kernel, budget_w=0.08, fidelity=5, duration=int(2 * SEC))
    platform.sim.run(until=int(2 * SEC))
    assert vr.fidelity <= 1
    assert vr.fidelity_history, "fidelity should have changed"


def test_generous_budget_drives_fidelity_up():
    platform, kernel = boot()
    vr = VrApp(kernel, budget_w=1.5, fidelity=0, duration=int(2 * SEC))
    platform.sim.run(until=int(2 * SEC))
    assert vr.fidelity >= 4


def test_without_psbox_no_observation():
    platform, kernel = boot()
    vr = VrApp(kernel, budget_w=0.3, fidelity=3, use_psbox=False,
               duration=int(0.5 * SEC))
    platform.sim.run(until=SEC)
    assert vr.psbox is None
    assert vr.power_history == []


def test_stop_leaves_psbox():
    platform, kernel = boot()
    vr = VrApp(kernel, budget_w=0.3, fidelity=3)
    platform.sim.run(until=int(0.3 * SEC))
    vr.stop()
    assert not vr.psbox.entered
