"""Tests for the synthetic website signatures."""

import numpy as np

from repro.apps.websites import WEBSITES, browse_website
from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel
from repro.sim.clock import MSEC, SEC


def test_ten_distinct_sites():
    assert len(WEBSITES) == 10
    signatures = {tuple(
        (round(g, 3), tuple((k, round(c), round(p, 3)) for k, c, p in cmds))
        for g, cmds in bursts
    ) for bursts in (tuple(b) for b in WEBSITES.values())}
    assert len(signatures) == 10, "site signatures must differ"


def test_signatures_are_deterministic():
    from repro.apps.websites import _signature
    assert _signature(3) == _signature(3)
    assert _signature(3) != _signature(4)


def test_browse_produces_site_specific_power_trace():
    def trace(site, seed):
        platform = Platform.full(seed=seed)
        kernel = Kernel(platform)
        browse_website(kernel, site)
        platform.sim.run(until=600 * MSEC)
        _t, watts = platform.meter.sample("gpu", 0, 600 * MSEC, 2 * MSEC)
        return watts

    google_a = trace("google", 1)
    google_b = trace("google", 2)
    youtube = trace("youtube", 1)
    # Same site, different jitter: similar traces.  Different sites: less so.
    same = np.linalg.norm(google_a - google_b)
    different = np.linalg.norm(google_a - youtube)
    assert same < different


def test_unknown_site_rejected():
    platform = Platform.full(seed=1)
    kernel = Kernel(platform)
    import pytest
    with pytest.raises(KeyError):
        browse_website(kernel, "myspace")


def test_page_completes():
    platform = Platform.full(seed=1)
    kernel = Kernel(platform)
    app = browse_website(kernel, "reddit")
    platform.sim.run(until=2 * SEC)
    assert app.finished
    assert app.counters["pages"] == 1
