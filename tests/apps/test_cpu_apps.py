"""Tests for the CPU benchmark apps (Table 5)."""

import pytest

from repro.apps.cpu_apps import bodytrack, calib3d, dedup
from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel
from repro.sim.clock import SEC


def boot(seed=1):
    platform = Platform.am57(seed=seed)
    return platform, Kernel(platform)


def test_calib3d_finishes_and_counts_kb():
    platform, kernel = boot()
    app = calib3d(kernel, iterations=10)
    platform.sim.run(until=4 * SEC)
    assert app.finished
    assert app.counters["kb"] == pytest.approx(10 * 3.0)


def test_bodytrack_spawns_two_workers():
    platform, kernel = boot()
    app = bodytrack(kernel, iterations=5)
    assert len(app.tasks) == 2
    platform.sim.run(until=4 * SEC)
    assert app.finished
    assert app.counters["kb"] == pytest.approx(5 * 2 * 2.0)


def test_dedup_is_lighter_than_calib3d():
    platform, kernel = boot()
    a = calib3d(kernel, iterations=30)
    platform.sim.run(until=8 * SEC)
    t_calib = a.finished_at

    platform2, kernel2 = boot()
    b = dedup(kernel2, iterations=30)
    platform2.sim.run(until=8 * SEC)
    # dedup bursts are ~3x smaller; its CPU busy time is smaller even
    # though its I/O waits stretch the wall clock.
    busy_calib = platform.cpu.busy_traces[0].integrate(0, t_calib) + \
        platform.cpu.busy_traces[1].integrate(0, t_calib)
    busy_dedup = platform2.cpu.busy_traces[0].integrate(0, b.finished_at) + \
        platform2.cpu.busy_traces[1].integrate(0, b.finished_at)
    assert busy_dedup < busy_calib


def test_runs_are_reproducible_per_seed():
    platform1, kernel1 = boot(seed=3)
    a1 = calib3d(kernel1, iterations=15)
    platform1.sim.run(until=8 * SEC)

    platform2, kernel2 = boot(seed=3)
    a2 = calib3d(kernel2, iterations=15)
    platform2.sim.run(until=8 * SEC)
    assert a1.finished_at == a2.finished_at

    platform3, kernel3 = boot(seed=4)
    a3 = calib3d(kernel3, iterations=15)
    platform3.sim.run(until=8 * SEC)
    assert a3.finished_at != a1.finished_at


def test_apps_drive_cpu_rail_power():
    platform, kernel = boot()
    calib3d(kernel, iterations=40)
    platform.sim.run(until=SEC)
    # Active power must be well above idle at some point.
    peak = max(v for _t, v in zip(*platform.meter.sample("cpu", 0, SEC)))
    assert peak > 5 * platform.cpu.power_model.idle_w
