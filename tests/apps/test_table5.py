"""The Table 5 registry: every benchmark app boots and makes progress."""

import pytest

from repro.apps import TABLE5
from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel
from repro.sim.clock import SEC

SMALL = {
    "bodytrack": {"iterations": 5},
    "calib3d": {"iterations": 5},
    "dedup": {"iterations": 5},
    "browser": {},
    "magic": {"frames": 5},
    "cube": {"frames": 5},
    "triangle": {"draws": 5},
    "sgemm": {"iterations": 2},
    "dgemm": {"iterations": 2},
    "monte": {"iterations": 3},
    "scp": {"total_bytes": 100_000},
    "wget": {"total_bytes": 100_000},
}


def test_registry_matches_the_paper():
    assert set(TABLE5) == {"cpu", "gpu", "dsp", "wifi"}
    assert set(TABLE5["cpu"]) == {"bodytrack", "calib3d", "dedup"}
    assert set(TABLE5["gpu"]) == {"browser", "magic", "cube", "triangle"}
    assert set(TABLE5["dsp"]) == {"sgemm", "dgemm", "monte"}
    assert set(TABLE5["wifi"]) == {"browser", "scp", "wget"}


@pytest.mark.parametrize("component,name", [
    (component, name)
    for component, apps in sorted(TABLE5.items())
    for name in sorted(apps)
])
def test_every_benchmark_runs_to_completion(component, name):
    platform = Platform.full(seed=2)
    kernel = Kernel(platform)
    factory = TABLE5[component][name]
    app = factory(kernel, **SMALL[name])
    platform.sim.run(until=8 * SEC)
    assert app.finished, "{}:{} did not finish".format(component, name)
    # Each app drives its component's rail above idle at some point.
    rail = platform.rails[component]
    idle = platform.idle_power(component)
    _t, watts = platform.meter.sample(component, 0, app.finished_at,
                                      dt=1_000_000)
    assert watts.max() > idle * 1.5
