"""Tests for WiFi benchmark apps."""


from repro.apps.wifi_apps import scp, wget, wifi_browser
from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel
from repro.sim.clock import SEC


def boot(seed=1):
    platform = Platform.full(seed=seed)
    return platform, Kernel(platform)


def test_browser_page_completes():
    platform, kernel = boot()
    app = wifi_browser(kernel)
    platform.sim.run(until=4 * SEC)
    assert app.finished
    assert app.counters["pages"] == 1
    assert app.counters["tx_bytes"] > 100_000


def test_scp_transfers_exact_bytes():
    platform, kernel = boot()
    app = scp(kernel, total_bytes=200_000, chunk=32_000)
    platform.sim.run(until=8 * SEC)
    assert app.finished
    assert app.counters["tx_bytes"] == 200_000


def test_wget_window_outpaces_scp_serial():
    platform, kernel = boot()
    w = wget(kernel, total_bytes=600_000)
    platform.sim.run(until=12 * SEC)
    t_wget = w.finished_at

    platform2, kernel2 = boot()
    s = scp(kernel2, total_bytes=600_000)
    platform2.sim.run(until=12 * SEC)
    # Serialized scp pays notification latency per chunk; windowed wget
    # keeps the NIC fed.
    assert t_wget < s.finished_at


def test_transfers_drive_nic_states():
    platform, kernel = boot()
    scp(kernel, total_bytes=150_000)
    platform.sim.run(until=4 * SEC)
    codes = {v for _t0, _t1, v in platform.nic.state_trace.segments(0, 4 * SEC)}
    assert codes == {0.0, 1.0, 2.0}   # psm, cam, tx all visited
