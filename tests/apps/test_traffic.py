"""Tests for inbound traffic sources."""

import pytest

from repro.apps.traffic import inbound_stream
from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel
from repro.sim.clock import SEC


def test_counted_stream_delivers_exactly_n():
    platform = Platform.full(seed=3)
    Kernel(platform)
    inbound_stream(platform, app_id=7, count=5, period_ms=20)
    platform.sim.run(until=SEC)
    assert len(platform.nic.log.filter(kind="rx_end", app=7)) == 5


def test_endless_stream_keeps_delivering():
    platform = Platform.full(seed=3)
    Kernel(platform)
    process = inbound_stream(platform, app_id=7, period_ms=25)
    platform.sim.run(until=SEC)
    received = len(platform.nic.log.filter(kind="rx_end", app=7))
    assert received > 20
    process.kill()
    platform.sim.run(until=2 * SEC)
    assert len(platform.nic.log.filter(kind="rx_end", app=7)) == received


def test_lte_inbound_via_explicit_nic():
    platform = Platform.extended(seed=3)
    Kernel(platform)
    inbound_stream(platform, app_id=9, count=3, nic=platform.lte,
                   period_ms=40)
    platform.sim.run(until=2 * SEC)
    assert len(platform.lte.log.filter(kind="rx_end", app=9)) == 3


def test_requires_a_nic():
    platform = Platform.am57(seed=3)
    Kernel(platform)
    with pytest.raises(ValueError):
        inbound_stream(platform, app_id=1)


def test_jitter_is_reproducible_per_seed():
    def times(seed):
        platform = Platform.full(seed=seed)
        Kernel(platform)
        inbound_stream(platform, app_id=7, count=6, period_ms=20)
        platform.sim.run(until=SEC)
        return platform.nic.log.times(kind="rx_end", app=7)

    assert times(1) == times(1)
    assert times(1) != times(2)
