"""Tests + properties for the usage binning machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accounting.base import bin_owner_trace, bin_step_trace
from repro.sim.trace import StepTrace


def test_bin_step_trace_constant_signal():
    tr = StepTrace(2.0)
    out = bin_step_trace(tr, 0, 1000, 100)
    assert len(out) == 10
    assert np.allclose(out, 2.0)


def test_bin_step_trace_partial_bins():
    tr = StepTrace(0.0)
    tr.set(150, 1.0)
    tr.set(250, 0.0)
    out = bin_step_trace(tr, 0, 400, 100)
    assert out[0] == 0.0
    assert out[1] == pytest.approx(0.5)    # active 150..200 of bin 100..200
    assert out[2] == pytest.approx(0.5)
    assert out[3] == 0.0


def test_bin_step_trace_empty_range():
    tr = StepTrace(1.0)
    assert len(bin_step_trace(tr, 0, 50, 100)) == 0


def test_bin_owner_trace_splits_by_owner():
    tr = StepTrace(-1.0)
    tr.set(0, 1.0)
    tr.set(100, 2.0)
    tr.set(300, -1.0)
    usages = bin_owner_trace(tr, [1, 2], 0, 400, 100)
    assert np.allclose(usages[1], [1.0, 0, 0, 0])
    assert np.allclose(usages[2], [0, 1.0, 1.0, 0])


def test_bin_owner_trace_ignores_unknown_owner():
    tr = StepTrace(9.0)
    usages = bin_owner_trace(tr, [1], 0, 100, 10)
    assert np.allclose(usages[1], 0.0)


@st.composite
def random_traces(draw):
    tr = StepTrace(0.0)
    t = 0
    for _ in range(draw(st.integers(0, 15))):
        t += draw(st.integers(1, 500))
        tr.set(t, draw(st.sampled_from([0.0, 1.0, 2.0])))
    return tr


@given(random_traces(), st.integers(1, 97))
@settings(max_examples=60, deadline=None)
def test_binning_conserves_integral(tr, dt):
    """Sum of (bin mean x dt) equals the exact integral over the bins."""
    t1 = 3000 - (3000 % dt)
    out = bin_step_trace(tr, 0, t1, dt)
    assert float(out.sum()) * dt == pytest.approx(
        tr.integrate(0, t1), rel=1e-9, abs=1e-6
    )


@given(random_traces(), st.integers(1, 97))
@settings(max_examples=40, deadline=None)
def test_bin_means_bounded_by_signal_range(tr, dt):
    out = bin_step_trace(tr, 0, 2993 - (2993 % dt), dt)
    if len(out):
        assert out.min() >= -1e-12
        assert out.max() <= 2.0 + 1e-12


@st.composite
def random_float_traces(draw):
    """Arbitrary-valued step traces with steps landing anywhere."""
    tr = StepTrace(draw(st.floats(0.0, 10.0)))
    t = 0
    for _ in range(draw(st.integers(0, 20))):
        t += draw(st.integers(1, 700))
        tr.set(t, draw(st.floats(-5.0, 10.0)))
    return tr


@given(random_float_traces(),
       st.integers(1, 211),
       st.integers(0, 2000),
       st.integers(1, 40))
@settings(max_examples=80, deadline=None)
def test_binning_conserves_integral_anywhere(tr, dt, t0, n_bins):
    """Binned energy == exact StepTrace.integrate over any aligned span.

    This is the invariant the explain engine's incident-window
    attribution rests on: whatever bin width and offset the window picks,
    the per-bin means must redistribute the signal's integral exactly —
    float values, negative excursions, steps mid-bin, nonzero t0 and all.
    """
    t1 = t0 + n_bins * dt
    out = bin_step_trace(tr, t0, t1, dt)
    assert len(out) == n_bins
    assert float(out.sum()) * dt == pytest.approx(
        tr.integrate(t0, t1), rel=1e-9, abs=1e-6
    )
