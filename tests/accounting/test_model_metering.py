"""Tests for the linear model-based metering baseline."""

import pytest

from repro.accounting import LinearPowerModel
from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.actions import Compute, Sleep
from repro.kernel.kernel import Kernel
from repro.sim.clock import MSEC, SEC, from_usec


def corun_platform(seed=5, horizon=2 * SEC):
    platform = Platform.am57(seed=seed)
    kernel = Kernel(platform)
    for burst in (5e6, 2.5e6):
        app = App(kernel, "b{}".format(int(burst)))

        def behavior(burst=burst):
            while True:
                yield Compute(burst)
                yield Sleep(from_usec(250))

        app.spawn(behavior())
    platform.sim.run(until=horizon)
    return platform, [app.id for app in kernel.apps.values()]


def test_fit_and_predict_shapes():
    platform, ids = corun_platform()
    model = LinearPowerModel(platform, "cpu").fit(ids, 0, SEC)
    predicted = model.predict(ids, SEC, 2 * SEC)
    assert len(predicted) == SEC // model.dt


def test_predict_requires_fit():
    platform, ids = corun_platform()
    with pytest.raises(RuntimeError):
        LinearPowerModel(platform, "cpu").predict(ids, 0, SEC)


def test_model_tracks_mean_power_roughly():
    platform, ids = corun_platform()
    model = LinearPowerModel(platform, "cpu").fit(ids, 0, SEC)
    assert model.mean_power_error_pct(ids, SEC, 2 * SEC) < 15


def test_model_misses_instantaneous_power():
    """The modeling limitation: DVFS and shared power are not linear in
    utilization, so per-sample error is substantial even in-distribution."""
    platform, ids = corun_platform()
    model = LinearPowerModel(platform, "cpu").fit(ids, 0, SEC)
    rmse = model.rmse(ids, SEC, 2 * SEC)
    mean = platform.meter.mean_power("cpu", SEC, 2 * SEC)
    assert rmse > 0.02 * mean


def test_model_breaks_out_of_distribution():
    """Train on a DVFS-ramping phase, test on a saturated phase: the
    frequency-dependent power is invisible to utilization features."""
    platform = Platform.am57(seed=9)
    kernel = Kernel(platform)
    app = App(kernel, "rampy")

    def behavior():
        # Light phase (low freq), then heavy phase (max freq).
        for _ in range(300):
            yield Compute(0.4e6)
            yield Sleep(from_usec(2500))
        while True:
            yield Compute(5e6)
            yield Sleep(from_usec(100))

    app.spawn(behavior())
    platform.sim.run(until=3 * SEC)
    ids = [app.id]
    model = LinearPowerModel(platform, "cpu").fit(ids, 0, SEC)
    in_dist = model.mean_power_error_pct(ids, 200 * MSEC, 800 * MSEC)
    out_dist = model.mean_power_error_pct(ids, 2 * SEC, 3 * SEC)
    assert out_dist > 2 * in_dist
    assert out_dist > 25
