"""Tests for Shapley-value accounting (game theory baseline [25])."""

import pytest

from repro.accounting import ShapleyAccounting
from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.actions import Sleep, SubmitAccel
from repro.kernel.kernel import Kernel
from repro.sim.clock import SEC, from_msec


def boot(seed=15):
    platform = Platform.full(seed=seed)
    kernel = Kernel(platform)
    return platform, kernel


def gpu_loop(kernel, name, cycles, power, n, gap_ms=2):
    app = App(kernel, name)

    def behavior():
        for _ in range(n):
            yield SubmitAccel("gpu", "k", cycles, power, wait=True)
            yield Sleep(from_msec(gap_ms))

    app.spawn(behavior())
    return app


def test_only_accelerators_supported():
    platform, kernel = boot()
    with pytest.raises(ValueError):
        ShapleyAccounting(platform, "cpu")


def test_dummy_player_gets_zero():
    platform, kernel = boot()
    a = gpu_loop(kernel, "a", 2e6, 0.6, 5)
    idle = App(kernel, "idle")     # never uses the GPU
    platform.sim.run(until=SEC)
    shares = ShapleyAccounting(platform, "gpu").energies(
        [a.id, idle.id], 0, SEC)
    assert shares[idle.id] == 0.0
    assert shares[a.id] > 0


def test_efficiency_sums_to_active_rail_energy():
    """Core Shapley axiom: shares sum to the grand-coalition power."""
    platform, kernel = boot()
    a = gpu_loop(kernel, "a", 3e6, 0.7, 8, gap_ms=1)
    b = gpu_loop(kernel, "b", 2e6, 0.5, 10, gap_ms=1)
    platform.sim.run(until=SEC)
    acct = ShapleyAccounting(platform, "gpu")
    shares = acct.energies([a.id, b.id], 0, SEC)
    residual = acct.unattributed([a.id, b.id], 0, SEC)
    rail = platform.rails["gpu"].energy(0, SEC)
    assert sum(shares.values()) + residual == pytest.approx(rail, rel=1e-6)
    # The residual is idle/static only: strictly positive, small.
    assert 0 < residual < rail


def test_symmetry_for_identical_apps():
    platform, kernel = boot()
    a = gpu_loop(kernel, "a", 2e6, 0.6, 20, gap_ms=1)
    b = gpu_loop(kernel, "b", 2e6, 0.6, 20, gap_ms=1)
    platform.sim.run(until=2 * SEC)
    shares = ShapleyAccounting(platform, "gpu").energies(
        [a.id, b.id], 0, 2 * SEC)
    assert shares[a.id] == pytest.approx(shares[b.id], rel=0.1)


def test_shapley_cannot_undo_entanglement():
    """Even the game-theoretic division with the *true* hardware model
    drifts once a co-runner appears — §2.3's conclusion."""

    def share(with_noise):
        platform, kernel = boot(seed=16)
        a = gpu_loop(kernel, "main", 2.5e6, 0.7, 12, gap_ms=3)
        ids = [a.id]
        if with_noise:
            noise = gpu_loop(kernel, "noise", 3e6, 0.9, 200, gap_ms=0)
            ids.append(noise.id)
        platform.sim.run(until=3 * SEC)
        assert a.finished
        return ShapleyAccounting(platform, "gpu").energies(
            ids, 0, a.finished_at)[a.id]

    alone = share(False)
    corun = share(True)
    drift = abs(corun - alone) / alone
    assert drift > 0.05
