"""Offline incident-window attribution over exported point series."""

import numpy as np
import pytest

from repro.accounting.incident import (
    POLICIES,
    attribute_window,
    hold_resample,
    top_entity,
)


class TestHoldResample:
    def test_empty_series_is_zero(self):
        assert np.allclose(hold_resample([], [0, 10, 20]), 0.0)

    def test_previous_hold_semantics(self):
        points = [(10, 1.0), (20, 2.0)]
        out = hold_resample(points, [5, 10, 15, 20, 99])
        assert np.allclose(out, [0.0, 1.0, 1.0, 2.0, 2.0])

    def test_before_first_sample_reads_zero(self):
        assert hold_resample([(100, 5.0)], [99])[0] == 0.0


class TestAttributeWindow:
    def test_proportional_split_and_ranking(self):
        total = [(0, 3.0)]
        entities = {
            "small": [(0, 1.0)],
            "big": [(0, 2.0)],
        }
        out = attribute_window(total, entities, 0, 1_000_000_000, n_bins=10)
        ranked = out["policies"]["per_sample"]
        assert [row["entity"] for row in ranked] == ["big", "small"]
        assert ranked[0]["share"] == pytest.approx(2 / 3, abs=1e-6)
        # 3 W for 1 s = 3 J split 2:1
        assert ranked[0]["energy_j"] == pytest.approx(2.0, abs=1e-6)
        assert ranked[1]["energy_j"] == pytest.approx(1.0, abs=1e-6)

    def test_every_policy_present(self):
        out = attribute_window([(0, 1.0)], {"a": [(0, 1.0)]}, 0, 100)
        assert set(out["policies"]) == set(POLICIES)

    def test_empty_window_or_entities(self):
        out = attribute_window([(0, 1.0)], {}, 0, 100)
        assert out["bins"] == 0
        assert all(v == [] for v in out["policies"].values())
        out = attribute_window([(0, 1.0)], {"a": [(0, 1.0)]}, 100, 100)
        assert out["bins"] == 0

    def test_deterministic_tie_break_by_name(self):
        total = [(0, 2.0)]
        entities = {"b": [(0, 1.0)], "a": [(0, 1.0)]}
        ranked = attribute_window(total, entities, 0, 1000)["policies"][
            "per_sample"]
        assert [row["entity"] for row in ranked] == ["a", "b"]

    def test_top_entity(self):
        out = attribute_window([(0, 3.0)],
                               {"x": [(0, 2.0)], "y": [(0, 1.0)]}, 0, 1000)
        assert top_entity(out) == "x"
        assert top_entity({"policies": {}}) is None

    def test_even_split_ignores_magnitude(self):
        total = [(0, 4.0)]
        entities = {"x": [(0, 3.0)], "y": [(0, 1.0)]}
        ranked = attribute_window(total, entities, 0, 1000)["policies"][
            "even_split"]
        assert ranked[0]["share"] == pytest.approx(0.5, abs=1e-6)
        assert ranked[1]["share"] == pytest.approx(0.5, abs=1e-6)

    def test_last_trigger_charges_most_recent_user(self):
        # x idles halfway through and y takes over; last-trigger hands
        # the second half of the window (and the tail) entirely to y
        total = [(0, 1.0)]
        entities = {"x": [(0, 1.0), (500, 0.0)], "y": [(500, 1.0)]}
        out = attribute_window(total, entities, 0, 1000, n_bins=10)
        ranked = {row["entity"]: row
                  for row in out["policies"]["last_trigger"]}
        assert ranked["y"]["energy_j"] == pytest.approx(0.5e-6, rel=1e-6)
        # the whole window (1 W over 1000 ns = 1e-6 J) is attributed
        assert (ranked["x"]["energy_j"] + ranked["y"]["energy_j"]
                == pytest.approx(1e-6, rel=1e-6))
