"""Tests for the alternative accounting heuristics."""

import numpy as np
import pytest

from repro.accounting import (
    EvenSplitAccounting,
    LastTriggerAccounting,
    PerSampleUsageAccounting,
    UtilizationAccounting,
)
from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.actions import Compute, SendPacket, Sleep
from repro.kernel.kernel import Kernel
from repro.sim.clock import MSEC, SEC, from_usec


@pytest.fixture
def cpu_corun():
    platform = Platform.full(seed=7)
    kernel = Kernel(platform)
    apps = []
    for burst in (5e6, 2e6):
        app = App(kernel, "b{}".format(burst))

        def behavior(burst=burst):
            while True:
                yield Compute(burst)
                yield Sleep(from_usec(300))

        app.spawn(behavior())
        apps.append(app)
    platform.sim.run(until=SEC)
    return platform, [a.id for a in apps]


def test_even_split_divides_equally_in_shared_bins(cpu_corun):
    platform, ids = cpu_corun
    acct = EvenSplitAccounting(platform, "cpu")
    _t, shares = acct.shares(ids, 0, 500 * MSEC)
    both = (shares[ids[0]] > 0) & (shares[ids[1]] > 0)
    if both.any():
        np.testing.assert_allclose(
            shares[ids[0]][both], shares[ids[1]][both], rtol=1e-9
        )


def test_even_split_sums_to_sample(cpu_corun):
    platform, ids = cpu_corun
    acct = EvenSplitAccounting(platform, "cpu")
    times, shares = acct.shares(ids, 0, 500 * MSEC)
    total = sum(shares.values())
    _t, watts = platform.meter.sample("cpu", 0, len(times) * acct.dt, acct.dt)
    active = total > 0
    np.testing.assert_allclose(total[active], watts[active], rtol=1e-9)


def test_last_trigger_assigns_whole_samples(cpu_corun):
    platform, ids = cpu_corun
    acct = LastTriggerAccounting(platform, "cpu")
    times, shares = acct.shares(ids, 0, 500 * MSEC)
    _t, watts = platform.meter.sample("cpu", 0, len(times) * acct.dt, acct.dt)
    overlap = (shares[ids[0]] > 0) & (shares[ids[1]] > 0)
    assert not overlap.any(), "last-trigger must pick a single owner"


def test_last_trigger_charges_tail_to_last_user():
    platform = Platform.full(seed=8)
    kernel = Kernel(platform)
    app = App(kernel, "sender")

    def behavior():
        yield SendPacket(20_000, wait=True)

    app.spawn(behavior())
    platform.sim.run(until=SEC)
    acct = LastTriggerAccounting(platform, "wifi", dt=MSEC)
    energies = acct.energies([app.id], 0, SEC)
    # The app is charged its transmission plus the whole tail (and, being
    # the only app ever active, everything after it under last-trigger).
    tx_only = platform.meter.energy("wifi", 0, 20 * MSEC)
    assert energies[app.id] > tx_only


def test_utilization_accounting_leaves_residual(cpu_corun):
    platform, ids = cpu_corun
    full = PerSampleUsageAccounting(platform, "cpu")
    util = UtilizationAccounting(platform, "cpu")
    e_full = full.energies(ids, 0, 500 * MSEC)
    e_util = util.energies(ids, 0, 500 * MSEC)
    # Utilization scaling never attributes more than proportional split
    # when the device is partially idle.
    assert sum(e_util.values()) <= sum(e_full.values()) + 1e-9


def test_heuristics_disagree_with_each_other(cpu_corun):
    """The paper's point: heuristics encode designer beliefs and diverge."""
    platform, ids = cpu_corun
    window = (0, 500 * MSEC)
    results = {
        "per_sample": PerSampleUsageAccounting(platform, "cpu"),
        "even": EvenSplitAccounting(platform, "cpu"),
        "last": LastTriggerAccounting(platform, "cpu"),
    }
    energies = {
        name: acct.energies(ids, *window)[ids[0]]
        for name, acct in results.items()
    }
    values = sorted(energies.values())
    assert values[-1] > values[0] * 1.02
