"""Tests for the per-sample usage-proportional accounting (the comparator)."""

import numpy as np
import pytest

from repro.accounting import PerSampleUsageAccounting
from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.actions import Compute, Sleep, SubmitAccel
from repro.kernel.kernel import Kernel
from repro.sim.clock import MSEC, SEC, USEC, from_usec


@pytest.fixture
def corun():
    platform = Platform.full(seed=4)
    kernel = Kernel(platform)
    apps = []
    for name in ("a", "b"):
        app = App(kernel, name)

        def behavior(app=app):
            while True:
                yield Compute(3e6)
                yield Sleep(from_usec(200))

        app.spawn(behavior())
        apps.append(app)
    platform.sim.run(until=SEC)
    return platform, kernel, apps


def test_shares_are_nonnegative(corun):
    platform, kernel, apps = corun
    acct = PerSampleUsageAccounting(platform, "cpu")
    _times, shares = acct.shares([a.id for a in apps], 0, 500 * MSEC)
    for share in shares.values():
        assert (share >= 0).all()


def test_shares_never_exceed_sample(corun):
    platform, kernel, apps = corun
    acct = PerSampleUsageAccounting(platform, "cpu")
    times, shares = acct.shares([a.id for a in apps], 0, 500 * MSEC)
    total = sum(shares.values())
    _t, watts = platform.meter.sample("cpu", 0, int(times[-1]) +
                                      acct.dt, acct.dt)
    assert (total <= watts[:len(total)] + 1e-9).all()


def test_active_samples_fully_attributed(corun):
    """Where any app has usage, the whole sample is divided up."""
    platform, kernel, apps = corun
    acct = PerSampleUsageAccounting(platform, "cpu")
    ids = [a.id for a in apps]
    t1 = 500 * MSEC
    times, shares = acct.shares(ids, 0, t1)
    usage = acct.extractor.usage(ids, 0, len(times) * acct.dt, acct.dt)
    any_usage = sum(usage[i] for i in ids) > 0
    _t, watts = platform.meter.sample("cpu", 0, len(times) * acct.dt, acct.dt)
    total = sum(shares.values())
    np.testing.assert_allclose(total[any_usage], watts[any_usage], rtol=1e-9)


def test_single_app_gets_everything_when_alone():
    platform = Platform.full(seed=5)
    kernel = Kernel(platform)
    app = App(kernel, "solo")

    def behavior():
        for _ in range(20):
            yield Compute(4e6)
            yield Sleep(from_usec(100))

    app.spawn(behavior())
    platform.sim.run(until=SEC)
    acct = PerSampleUsageAccounting(platform, "cpu")
    energies = acct.energies([app.id], 0, app.finished_at)
    # Everything except pure-idle samples belongs to the solo app.
    rail = platform.meter.energy("cpu", 0, app.finished_at)
    assert 0 < energies[app.id] <= rail


def test_energies_scale_with_dt_consistently(corun):
    """Finer sampling does not change attributed energy much (and cannot
    fix entanglement — §2.3)."""
    platform, kernel, apps = corun
    ids = [a.id for a in apps]
    acct = PerSampleUsageAccounting(platform, "cpu")
    coarse = acct.energies(ids, 0, 400 * MSEC, dt=1 * MSEC)
    fine = acct.energies(ids, 0, 400 * MSEC, dt=10 * USEC)
    for app_id in ids:
        assert fine[app_id] == pytest.approx(coarse[app_id], rel=0.1)


def test_gpu_usage_based_split():
    platform = Platform.full(seed=6)
    kernel = Kernel(platform)
    heavy = App(kernel, "heavy")
    light = App(kernel, "light")

    def flow(app, cycles, power):
        def behavior():
            for _ in range(10):
                yield SubmitAccel("gpu", "x", cycles, power, wait=True)
        return behavior

    heavy.spawn(flow(heavy, 5e6, 0.9)())
    light.spawn(flow(light, 1e6, 0.3)())
    platform.sim.run(until=2 * SEC)
    acct = PerSampleUsageAccounting(platform, "gpu")
    energies = acct.energies([heavy.id, light.id], 0, SEC)
    assert energies[heavy.id] > energies[light.id]
