"""Unit tests of the invariant checker's plumbing and reports."""

import pytest

from repro.apps.base import App
from repro.check import CheckReport, CheckViolation, InvariantChecker, Violation
from repro.experiments.faults_exp import build_workload
from repro.faults import scenario
from repro.hw.platform import Platform
from repro.kernel.actions import Compute, Sleep
from repro.kernel.kernel import Kernel
from repro.sim.clock import MSEC, from_usec


def _small_run(seed=4, horizon=300 * MSEC, **checker_kwargs):
    platform = Platform.full(seed=seed)
    kernel = Kernel(platform)
    for i, (burst, pause_us) in enumerate([(4e6, 150), (3e6, 250)]):
        app = App(kernel, "app{}".format(i))

        def behavior(app=app, burst=burst, pause_us=pause_us):
            while True:
                yield Compute(burst)
                app.count("work", 1)
                yield Sleep(from_usec(pause_us))

        app.spawn(behavior())
        if i == 0:
            app.create_psbox(("cpu",)).enter()
    checker = InvariantChecker(kernel, **checker_kwargs).attach()
    platform.sim.run(until=horizon)
    return checker


def test_violation_string_names_event_time_and_component():
    violation = Violation(t=42, invariant="balloon_exclusivity",
                          component="smp", event="cosched_tick",
                          message="foreign entity inside balloon")
    text = str(violation)
    for needle in ("t=42 ns", "balloon_exclusivity", "smp", "cosched_tick",
                   "foreign entity"):
        assert needle in text


def test_report_aggregation():
    report = CheckReport()
    assert report.ok
    assert report.summary().startswith("OK")
    report.violations.append(Violation(1, "a", "x", "e", "m"))
    report.violations.append(Violation(2, "a", "x", "e", "m"))
    report.violations.append(Violation(3, "b", "y", "e", "m"))
    report.checks = 7
    assert not report.ok
    assert report.count() == 3
    assert report.count("a") == 2
    assert report.by_invariant() == {"a": 2, "b": 1}
    assert "2x a" in report.summary()


def test_clean_run_reports_ok_with_many_checks():
    checker = _small_run()
    assert checker.report.ok, checker.report.summary()
    assert checker.report.checks > 100


def test_attach_is_idempotent_and_detach_unsubscribes():
    platform = Platform.full(seed=4)
    kernel = Kernel(platform)
    checker = InvariantChecker(kernel)
    checker.attach()
    n_subs = len(checker._subscriptions)
    checker.attach()
    assert len(checker._subscriptions) == n_subs
    checker.detach()
    assert not checker._subscriptions
    assert not kernel.smp.log._subscribers


def test_strict_mode_raises_on_first_violation():
    work = build_workload("mixed", 0)
    scenario("ipi-drop").build_plan(work.platform.sim)
    checker = InvariantChecker(work.kernel, strict=True).attach()
    with pytest.raises(CheckViolation) as exc:
        work.platform.sim.run(until=work.horizon_ns)
    assert exc.value.violation is checker.report.violations[0]
    assert exc.value.violation.invariant == "shootdown_liveness"


def test_violation_cap_bounds_the_report():
    report = CheckReport(max_violations=2)
    assert report.max_violations == 2


def test_shootdown_dedup_key_is_stable_identity():
    """Regression: flagged shootdown episodes were deduped by ``id()``,
    which CPython reuses — a later episode could collide with a flagged
    one's address and go unreported, nondeterministically across processes
    (the parallel runner's workers exposed it as a per-hash-seed violation
    count)."""
    work = build_workload("mixed", 1)
    scenario("ipi-delay-extreme").build_plan(work.platform.sim)
    checker = InvariantChecker(work.kernel).attach()
    work.platform.sim.run(until=work.horizon_ns)
    assert checker._flagged_cosched
    # every dedup key is (app id, episode start), never a memory address
    for key in checker._flagged_cosched:
        app_id, started_at = key
        assert isinstance(app_id, int)
        assert isinstance(started_at, int)
