"""Property tests: the checked invariants hold under randomized workloads.

No faults are injected here — these runs assert that the checker's
machine-readable statements of the paper's guarantees (vruntime
monotonicity, balloon exclusivity, loan and energy conservation, vstate
restore) hold across random task mixes, random sandbox interleavings and
random multi-device schedules, and that the checker itself raises no
false positives on healthy runs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import App
from repro.check import InvariantChecker
from repro.hw.platform import Platform
from repro.kernel.actions import Compute, SendPacket, Sleep, SubmitAccel
from repro.kernel.kernel import Kernel
from repro.sim.clock import MSEC, from_usec

cpu_specs = st.lists(
    st.tuples(
        st.floats(0.3e6, 6e6),       # burst cycles
        st.integers(50, 2000),       # pause us
        st.booleans(),               # sandboxed?
    ),
    min_size=2,
    max_size=4,
)


def _boot(seed):
    platform = Platform.full(seed=seed)
    return platform, Kernel(platform)


def _cpu_app(kernel, name, burst, pause_us):
    app = App(kernel, name)

    def behavior():
        while True:
            yield Compute(burst)
            app.count("work", 1)
            yield Sleep(from_usec(pause_us))

    app.spawn(behavior())
    return app


def _checked_run(platform, kernel, horizon):
    checker = InvariantChecker(kernel).attach()
    platform.sim.run(until=horizon)
    return checker


@given(st.integers(0, 10_000), cpu_specs)
@settings(max_examples=10, deadline=None)
def test_vruntime_monotone_and_loans_conserved_under_random_mixes(seed, specs):
    platform, kernel = _boot(seed)
    for i, (burst, pause_us, sandboxed) in enumerate(specs):
        app = _cpu_app(kernel, "app{}".format(i), burst, pause_us)
        if sandboxed:
            app.create_psbox(("cpu",)).enter()
    checker = _checked_run(platform, kernel, 300 * MSEC)
    assert checker.report.ok, checker.report.summary()
    assert checker.report.checks > 0


@given(
    st.integers(0, 10_000),
    st.lists(st.integers(10, 60), min_size=2, max_size=6),
)
@settings(max_examples=10, deadline=None)
def test_balloon_exclusivity_under_random_enter_leave(seed, dwell_ms):
    platform, kernel = _boot(seed)
    boxed = _cpu_app(kernel, "boxed", 4e6, 150)
    _cpu_app(kernel, "rival.a", 3e6, 200)
    _cpu_app(kernel, "rival.b", 2.5e6, 400)
    box = boxed.create_psbox(("cpu",))
    t = 10 * MSEC
    entering = True
    for dwell in dwell_ms:
        platform.sim.at(t, box.enter if entering else box.leave)
        entering = not entering
        t += dwell * MSEC
    checker = _checked_run(platform, kernel, t + 50 * MSEC)
    assert checker.report.ok, checker.report.summary()
    assert checker.report.checks > 0


@given(st.integers(0, 10_000), st.booleans(), st.booleans())
@settings(max_examples=8, deadline=None)
def test_energy_conservation_under_random_device_schedules(
    seed, use_gpu, use_net
):
    platform, kernel = _boot(seed)
    boxed = _cpu_app(kernel, "boxed", 4e6, 150)
    boxed.create_psbox(("cpu",)).enter()
    _cpu_app(kernel, "rival", 3e6, 250)
    if use_gpu:
        gfx = App(kernel, "gfx")

        def gpu_behavior():
            while True:
                yield SubmitAccel("gpu", "draw", 2e6, 0.6, wait=True)
                yield Sleep(from_usec(500))

        gfx.spawn(gpu_behavior())
        gfx.create_psbox(("gpu",)).enter()
    if use_net:
        net = App(kernel, "net")

        def net_behavior():
            while True:
                yield SendPacket(24_000, wait=True)
                yield Sleep(from_usec(2000))

        net.spawn(net_behavior())
        net.create_psbox(("wifi",)).enter()
    checker = _checked_run(platform, kernel, 300 * MSEC)
    assert checker.report.ok, checker.report.summary()
    assert checker.report.checks > 0
