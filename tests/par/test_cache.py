"""Unit tests for the content-addressed result cache."""

import json
import math
import os

import pytest

from repro.par import MISS, ResultCache, WorkItem, code_fingerprint, config_hash


def _item(seed=0, config=None, experiment="t"):
    return WorkItem(experiment, "m:f", seed=seed,
                    config=config if config is not None else {"a": 1},
                    index=0)


def test_config_hash_is_key_order_insensitive():
    assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
    assert config_hash({"a": 1}) != config_hash({"a": 2})


def test_code_fingerprint_stable_and_memoized():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(str(tmp_path))
    payload = {"value": 42, "nested": [1, 2, {"x": "y"}]}
    cache.put(_item(), payload)
    assert cache.get(_item()) == payload
    assert cache.stats() == {"hits": 1, "remote_hits": 0, "misses": 0,
                             "writes": 1}


def test_get_miss_counts(tmp_path):
    cache = ResultCache(str(tmp_path))
    assert cache.get(_item()) is MISS
    assert cache.stats()["misses"] == 1


def test_cached_none_payload_is_a_hit(tmp_path):
    """None is a legitimate payload, distinguishable from a miss."""
    cache = ResultCache(str(tmp_path))
    cache.put(_item(), None)
    assert cache.get(_item()) is None
    assert cache.stats() == {"hits": 1, "remote_hits": 0, "misses": 0,
                             "writes": 1}


def test_entry_without_payload_key_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_item(), {"v": 1})
    path = cache.path_for(_item())
    with open(path, "w") as handle:
        json.dump({"experiment": "t"}, handle)     # valid JSON, no payload
    assert cache.get(_item()) is MISS
    with open(path, "w") as handle:
        json.dump([1, 2, 3], handle)               # not even an object
    assert cache.get(_item()) is MISS
    assert cache.stats()["misses"] == 2


def test_key_varies_with_every_component(tmp_path):
    cache = ResultCache(str(tmp_path))
    base = cache.key_for(_item())
    assert cache.key_for(_item(seed=1)) != base
    assert cache.key_for(_item(config={"a": 2})) != base
    assert cache.key_for(_item(experiment="u")) != base
    other = ResultCache(str(tmp_path), fingerprint="f" * 64)
    assert other.key_for(_item()) != base


def test_code_change_invalidates(tmp_path):
    """A different code fingerprint misses entries written under the old."""
    old = ResultCache(str(tmp_path), fingerprint="old" * 16)
    old.put(_item(), {"value": 1})
    fresh = ResultCache(str(tmp_path), fingerprint="new" * 16)
    assert fresh.get(_item()) is MISS


def test_entries_fan_out_under_experiment_dirs(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_item(experiment="faults"), {"v": 1})
    path = cache.path_for(_item(experiment="faults"))
    assert os.path.exists(path)
    assert os.path.relpath(path, str(tmp_path)).startswith("faults" + os.sep)
    # entry is honest JSON with the cell identity alongside the payload
    with open(path) as handle:
        entry = json.load(handle)
    assert entry["experiment"] == "faults"
    assert entry["payload"] == {"v": 1}


def test_torn_entry_reads_as_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_item(), {"v": 1})
    with open(cache.path_for(_item()), "w") as handle:
        handle.write("{not json")
    assert cache.get(_item()) is MISS


def test_config_hash_rejects_nan_and_infinity():
    """allow_nan=False: a NaN config must be an error, not a
    repr-dependent token that silently forks the cache key."""
    for bad in (math.nan, math.inf, -math.inf):
        with pytest.raises(ValueError):
            config_hash({"x": bad})


def test_entries_respect_the_umask(tmp_path):
    """Regression: mkstemp creates 0600 files; a shared cache directory
    must hand back entries other users can read, or every cross-user
    lookup is a permanent miss."""
    old_umask = os.umask(0o022)
    try:
        cache = ResultCache(str(tmp_path))
        cache.put(_item(), {"v": 1})
        mode = os.stat(cache.path_for(_item())).st_mode & 0o777
        assert mode == 0o644, oct(mode)
    finally:
        os.umask(old_umask)


def test_remote_tier_read_through_and_write_back(tmp_path):
    """A local miss consults the remote directory; the hit is written
    back locally (atomically) so the next get is a plain local hit."""
    remote_root = tmp_path / "shared"
    warm = ResultCache(str(remote_root))
    warm.put(_item(), {"v": "remote"})

    cache = ResultCache(str(tmp_path / "local"), remote=str(remote_root))
    assert cache.get(_item()) == {"v": "remote"}
    assert cache.stats()["remote_hits"] == 1
    assert cache.stats()["hits"] == 0
    # written back: the entry now exists locally, identity preserved
    with open(cache.path_for(_item())) as handle:
        entry = json.load(handle)
    assert entry["payload"] == {"v": "remote"}

    again = ResultCache(str(tmp_path / "local"), remote=str(remote_root))
    assert again.get(_item()) == {"v": "remote"}
    assert again.stats() == {"hits": 1, "remote_hits": 0, "misses": 0,
                             "writes": 0}


def test_remote_tier_file_url(tmp_path):
    remote_root = tmp_path / "shared"
    warm = ResultCache(str(remote_root))
    warm.put(_item(), {"v": 7})
    cache = ResultCache(str(tmp_path / "local"),
                        remote="file://" + str(remote_root))
    assert cache.get(_item()) == {"v": 7}
    assert cache.stats()["remote_hits"] == 1


def test_remote_misses_and_failures_read_as_miss(tmp_path):
    absent = ResultCache(str(tmp_path / "local"),
                         remote=str(tmp_path / "nowhere"))
    assert absent.get(_item()) is MISS
    assert absent.stats()["misses"] == 1

    torn_root = tmp_path / "torn"
    warm = ResultCache(str(torn_root))
    warm.put(_item(), {"v": 1})
    with open(warm.path_for(_item()), "w") as handle:
        handle.write("{not json")
    torn = ResultCache(str(tmp_path / "local2"), remote=str(torn_root))
    assert torn.get(_item()) is MISS
