"""Unit tests for the content-addressed result cache."""

import json
import os

from repro.par import MISS, ResultCache, WorkItem, code_fingerprint, config_hash


def _item(seed=0, config=None, experiment="t"):
    return WorkItem(experiment, "m:f", seed=seed,
                    config=config if config is not None else {"a": 1},
                    index=0)


def test_config_hash_is_key_order_insensitive():
    assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
    assert config_hash({"a": 1}) != config_hash({"a": 2})


def test_code_fingerprint_stable_and_memoized():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(str(tmp_path))
    payload = {"value": 42, "nested": [1, 2, {"x": "y"}]}
    cache.put(_item(), payload)
    assert cache.get(_item()) == payload
    assert cache.stats() == {"hits": 1, "misses": 0, "writes": 1}


def test_get_miss_counts(tmp_path):
    cache = ResultCache(str(tmp_path))
    assert cache.get(_item()) is MISS
    assert cache.stats()["misses"] == 1


def test_cached_none_payload_is_a_hit(tmp_path):
    """None is a legitimate payload, distinguishable from a miss."""
    cache = ResultCache(str(tmp_path))
    cache.put(_item(), None)
    assert cache.get(_item()) is None
    assert cache.stats() == {"hits": 1, "misses": 0, "writes": 1}


def test_entry_without_payload_key_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_item(), {"v": 1})
    path = cache.path_for(_item())
    with open(path, "w") as handle:
        json.dump({"experiment": "t"}, handle)     # valid JSON, no payload
    assert cache.get(_item()) is MISS
    with open(path, "w") as handle:
        json.dump([1, 2, 3], handle)               # not even an object
    assert cache.get(_item()) is MISS
    assert cache.stats()["misses"] == 2


def test_key_varies_with_every_component(tmp_path):
    cache = ResultCache(str(tmp_path))
    base = cache.key_for(_item())
    assert cache.key_for(_item(seed=1)) != base
    assert cache.key_for(_item(config={"a": 2})) != base
    assert cache.key_for(_item(experiment="u")) != base
    other = ResultCache(str(tmp_path), fingerprint="f" * 64)
    assert other.key_for(_item()) != base


def test_code_change_invalidates(tmp_path):
    """A different code fingerprint misses entries written under the old."""
    old = ResultCache(str(tmp_path), fingerprint="old" * 16)
    old.put(_item(), {"value": 1})
    fresh = ResultCache(str(tmp_path), fingerprint="new" * 16)
    assert fresh.get(_item()) is MISS


def test_entries_fan_out_under_experiment_dirs(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_item(experiment="faults"), {"v": 1})
    path = cache.path_for(_item(experiment="faults"))
    assert os.path.exists(path)
    assert os.path.relpath(path, str(tmp_path)).startswith("faults" + os.sep)
    # entry is honest JSON with the cell identity alongside the payload
    with open(path) as handle:
        entry = json.load(handle)
    assert entry["experiment"] == "faults"
    assert entry["payload"] == {"v": 1}


def test_torn_entry_reads_as_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_item(), {"v": 1})
    with open(cache.path_for(_item()), "w") as handle:
        handle.write("{not json")
    assert cache.get(_item()) is MISS
