"""ParallelRunner behaviour: determinism, cache flow, errors, metrics.

Pool tests here use the tiny spawn-safe runners from
:mod:`repro.par.testing`; the full-simulation differential proof lives in
``test_par_differential.py``.
"""

import io

import pytest

from repro.par import (
    CellError,
    ParallelRunner,
    ResultCache,
    effective_jobs,
    work_list,
)


def test_effective_jobs_caps_at_the_core_count():
    stream = io.StringIO()
    assert effective_jobs(8, cpu_count=4, stream=stream) == 4
    warning = stream.getvalue()
    assert "--jobs 8" in warning
    assert "4 available CPU cores" in warning
    assert warning.count("\n") == 1


def test_effective_jobs_passes_reasonable_requests_through():
    stream = io.StringIO()
    assert effective_jobs(4, cpu_count=4, stream=stream) == 4
    assert effective_jobs(1, cpu_count=4, stream=stream) == 1
    # Unknown core count (cpu_count() may return None): trust the caller.
    assert effective_jobs(16, cpu_count=0, stream=stream) == 16
    assert stream.getvalue() == ""


def test_effective_jobs_single_core_grammar():
    stream = io.StringIO()
    assert effective_jobs(2, cpu_count=1, stream=stream) == 1
    assert "1 available CPU core;" in stream.getvalue()


def test_effective_jobs_rejects_nonpositive_requests():
    with pytest.raises(ValueError, match="jobs must be >= 1"):
        effective_jobs(0, cpu_count=4)


def _square_items(n, offset=7):
    return work_list("demo", "repro.par.testing:square_cell",
                     [(seed, {"offset": offset}) for seed in range(n)])


def test_serial_runs_in_work_list_order():
    runner = ParallelRunner(jobs=1)
    payloads = runner.run(_square_items(6))
    assert [p["seed"] for p in payloads] == list(range(6))
    assert [p["value"] for p in payloads] == [s * s + 7 for s in range(6)]
    assert runner.stats.cells == 6
    assert runner.stats.executed == 6
    assert runner.stats.cached == 0


def test_parallel_equals_serial():
    serial = ParallelRunner(jobs=1).run(_square_items(9))
    parallel = ParallelRunner(jobs=3).run(_square_items(9))
    assert parallel == serial


def test_merge_ignores_completion_order():
    """Cells sleep in *reverse* index order, so completion order inverts the
    work-list; the merge must still return index order.  The thread
    backend genuinely completes out of order (sleep releases the GIL)."""
    items = work_list(
        "demo", "repro.par.testing:sleep_cell",
        [(seed, {"s": 0.15 - 0.04 * seed}) for seed in range(4)],
    )
    runner = ParallelRunner(jobs=4, backend="thread")
    payloads = runner.run(items)
    assert [p["seed"] for p in payloads] == [0, 1, 2, 3]
    assert runner.stats.backend == "thread"


def test_cache_skips_completed_cells(tmp_path):
    items = _square_items(5)
    first = ParallelRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    payloads_first = first.run(items)
    assert first.stats.executed == 5

    second = ParallelRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    payloads_second = second.run(items)
    assert payloads_second == payloads_first
    assert second.stats.cached == 5
    assert second.stats.executed == 0
    assert "all cells cached" in second.stats.summary()


def test_cache_partial_hit_runs_only_the_rest(tmp_path):
    cache = ResultCache(str(tmp_path))
    ParallelRunner(jobs=1, cache=cache).run(_square_items(3))
    runner = ParallelRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    payloads = runner.run(_square_items(6))
    assert runner.stats.cached == 3
    assert runner.stats.executed == 3
    assert [p["value"] for p in payloads] == [s * s + 7 for s in range(6)]


def test_config_change_misses_cache(tmp_path):
    ParallelRunner(jobs=1, cache=ResultCache(str(tmp_path))).run(
        _square_items(3, offset=7))
    runner = ParallelRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    payloads = runner.run(_square_items(3, offset=8))
    assert runner.stats.cached == 0
    assert [p["value"] for p in payloads] == [8, 9, 12]


def test_cell_error_carries_identity_serial():
    items = work_list("demo", "repro.par.testing:boom_cell", [(3, {})])
    with pytest.raises(CellError, match=r"seed=3"):
        ParallelRunner(jobs=1).run(items)


def test_cell_error_propagates_from_pool():
    items = work_list("demo", "repro.par.testing:boom_cell",
                      [(seed, {}) for seed in range(2)])
    with pytest.raises(CellError, match="boom"):
        ParallelRunner(jobs=2, backend="spawn").run(items)


def test_failed_cells_no_longer_discard_completed_ones(tmp_path):
    """The PR 10 bugfix: completed cells are persisted as they finish and
    every failed cell is reported, with its identity, in one error."""
    items = work_list("demo", "repro.par.testing:mixed_cell",
                      [(seed, {"boom_seeds": [1, 3]})
                       for seed in range(5)])
    cache = ResultCache(str(tmp_path))
    runner = ParallelRunner(jobs=1, cache=cache)
    with pytest.raises(CellError) as excinfo:
        runner.run(items)
    message = str(excinfo.value)
    assert "2 of 5 executed cell(s) failed" in message
    assert "3 completed cell(s) persisted to the result cache" in message
    assert "seed=1" in message and "seed=3" in message
    assert runner.stats.failed == 2
    assert cache.writes == 3

    # the replay only pays for the failed cells
    retry = ParallelRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    with pytest.raises(CellError):
        retry.run(items)
    assert retry.stats.cached == 3
    assert retry.stats.executed == 2


def test_invalid_runner_spec():
    with pytest.raises(ValueError):
        ParallelRunner(jobs=0)
    items = work_list("demo", "no-colon-here", [(0, {})])
    with pytest.raises(ValueError, match="package.module:function"):
        ParallelRunner(jobs=1).run(items)


def test_worker_obs_metrics_aggregate():
    items = work_list("demo", "repro.par.testing:sim_cell",
                      [(seed, {"horizon_ns": 50_000}) for seed in range(4)])
    runner = ParallelRunner(jobs=2, obs_metrics=True, backend="spawn")
    payloads = runner.run(items)
    assert [p["fired"] for p in payloads] == [51] * 4
    snap = runner.obs_snapshot
    assert snap is not None
    assert snap["counters"]["par.testing.pings"] == 4 * 51
    assert snap["histograms"]["par.testing.horizon_ns"]["count"] == 4


def test_serial_path_leaves_parent_obs_runtime_alone():
    """jobs=1 must not arm or drain the parent's observability runtime."""
    from repro.obs import runtime as obs_runtime

    runner = ParallelRunner(jobs=1, obs_metrics=True)
    runner.run(work_list("demo", "repro.par.testing:sim_cell",
                         [(0, {"horizon_ns": 10_000})]))
    assert runner.obs_snapshot is None
    assert not obs_runtime.is_active()


def test_serial_path_preserves_observing_parent_sessions():
    """Regression: with the parent's runtime armed (--trace/--metrics), an
    in-process run_shard must NOT drain the accumulated sessions — the
    CLI's export step still needs them, including ones from experiments
    that ran earlier in the same invocation."""
    from repro.obs import runtime as obs_runtime

    obs_runtime.configure(tracing=False, metrics=True, profiling=False)
    try:
        # a session from an "earlier experiment" in the same invocation
        import repro.par.testing as testing

        testing.sim_cell(7, {"horizon_ns": 5_000})
        assert len(obs_runtime.sessions()) == 1

        runner = ParallelRunner(jobs=1)
        runner.run(work_list("demo", "repro.par.testing:sim_cell",
                             [(0, {"horizon_ns": 10_000}),
                              (1, {"horizon_ns": 10_000})]))
        # worker metrics come back only from pool children; in-process
        # cells stay in the parent's sessions for _export_observability
        assert runner.obs_snapshot is None
        assert len(obs_runtime.sessions()) == 3
    finally:
        obs_runtime.reset()
