"""Differential proof: parallel == serial, byte for byte.

Two layers, both reusing the PR 2 sha256 fingerprint machinery:

* **worker protocol** — a full mixed-board workload booted inside a
  spawn-started worker must produce the exact trace fingerprint the same
  workload produces when booted in this (parent) process;
* **campaign report** — the faults soak CLI must print byte-identical
  stdout with and without ``--jobs`` (and with a warm cache).
"""

import pytest

from repro.experiments import faults_exp
from repro.faults import SCENARIOS, fingerprint
from repro.par import ParallelRunner, work_list

#: mixed-workload scenarios only: quick, and they exercise every injector
MIXED = [scn for scn in SCENARIOS if scn.workload == "mixed"]


@pytest.fixture(scope="module")
def parent_fingerprints():
    """Mixed-board fingerprints computed in-process, seeds 0 and 1."""
    prints = {}
    for seed in (0, 1):
        work = faults_exp.build_workload("mixed", seed)
        work.platform.sim.run(until=work.horizon_ns)
        prints[seed] = fingerprint(work.platform, work.kernel)
    return prints


def test_worker_boot_is_bit_identical_to_parent_boot(parent_fingerprints):
    items = work_list(
        "diff", "repro.experiments.faults_exp:fingerprint_cell",
        [(seed, {"workload": "mixed"}) for seed in (0, 1)],
    )
    payloads = ParallelRunner(jobs=2, backend="spawn").run(items)
    assert payloads[0]["fingerprint"] == parent_fingerprints[0]
    assert payloads[1]["fingerprint"] == parent_fingerprints[1]


def test_parallel_campaign_equals_serial_run():
    """run_faults_parallel across processes == the serial run_faults loop."""
    serial = [faults_exp.run_faults(seed=seed, scenarios=MIXED)
              for seed in (0, 1)]
    campaigns, runner = faults_exp.run_faults_parallel(
        [0, 1], jobs=2, scenarios=MIXED)
    assert runner.stats.executed == 2 * len(MIXED)
    for ours, theirs in zip(campaigns, serial):
        assert ours.seed == theirs.seed
        assert ours.outcomes == theirs.outcomes


def test_soak_cli_stdout_is_byte_identical(capsys, tmp_path):
    """--jobs N and a warm cache never change a byte of the report."""
    assert faults_exp.main(["--seeds", "1"]) == 0
    serial_out = capsys.readouterr().out

    cache_dir = str(tmp_path / "parcache")
    assert faults_exp.main(["--seeds", "1", "--jobs", "2",
                            "--cache", cache_dir]) == 0
    captured = capsys.readouterr()
    assert captured.out == serial_out

    # replay from cache: same bytes again, all cells skipped
    assert faults_exp.main(["--seeds", "1", "--jobs", "2",
                            "--cache", cache_dir]) == 0
    captured = capsys.readouterr()
    assert captured.out == serial_out
    assert "all cells cached" in captured.err


def test_sweep_parallel_equals_serial():
    """A cheap sweep subset: captured text identical across job counts."""
    from repro.experiments.sweep import run_sweep

    names = ["sec63", "powercap@0.60"]
    serial, _ = run_sweep(names, jobs=1)
    parallel, runner = run_sweep(names, jobs=2)
    assert parallel == serial
    assert runner.stats.cells == 2
    assert [p["cell"] for p in parallel] == names
