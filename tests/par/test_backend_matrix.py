"""The backend differential matrix: every backend, byte for byte.

{inline, thread, spawn, socket} × {faults, sweep, cluster-calibration}:
each backend's merged payloads must hash (sha256 over canonical JSON)
identically to the serial baseline's — the correctness gate the executor
refactor must clear before any wall-clock claim counts.  Serial baselines
are computed once per workload (module-scoped fixtures); workloads are
small on purpose, the scale lives in benchmarks and CI smokes.
"""

import hashlib
import json

import pytest

from repro.cluster import USERS_PER_INSTANCE, ClusterTopology, WorkloadSpec
from repro.cluster.calibrate import calibration_items
from repro.experiments.sweep import sweep_items
from repro.par import ParallelRunner, work_list
from repro.par.executors import BACKENDS

MATRIX_BACKENDS = sorted(BACKENDS)


def payload_sha(payloads):
    """Canonical sha256 of a payload list — the bit-identity witness."""
    canon = json.dumps(payloads, sort_keys=True, separators=(",", ":"),
                       allow_nan=False)
    return hashlib.sha256(canon.encode()).hexdigest()


def faults_items():
    """Two full mixed-board workloads whose payloads are themselves
    sha256 trace fingerprints."""
    return work_list(
        "diff", "repro.experiments.faults_exp:fingerprint_cell",
        [(seed, {"workload": "mixed"}) for seed in (0, 1)],
    )


def sweep_cells():
    return sweep_items(["sec63", "powercap@0.60"])


def cluster_items():
    topology = ClusterTopology.uniform(2)
    by_node = {
        "node00": [WorkloadSpec(name="a.web", tenant="t0", kind="web",
                                start_s=0.0, end_s=0.6,
                                users=USERS_PER_INSTANCE)],
        "node01": [WorkloadSpec(name="b.bulk", tenant="t1", kind="bulk",
                                start_s=0.1, end_s=0.6,
                                users=USERS_PER_INSTANCE)],
    }
    return calibration_items(topology, by_node, seed=5, horizon_s=0.6,
                             epoch_ms=250)

WORKLOADS = {
    "faults": faults_items,
    "sweep": sweep_cells,
    "cluster-calibration": cluster_items,
}


@pytest.fixture(scope="module")
def serial_sha():
    """Serial-baseline hash per workload, computed once."""
    return {
        name: payload_sha(
            ParallelRunner(jobs=1, backend="inline").run(build()))
        for name, build in WORKLOADS.items()
    }


@pytest.mark.parametrize("backend", MATRIX_BACKENDS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_backend_matrix_bit_identity(backend, workload, serial_sha):
    runner = ParallelRunner(jobs=2, backend=backend)
    payloads = runner.run(WORKLOADS[workload]())
    assert payload_sha(payloads) == serial_sha[workload], (
        "{} backend diverged from serial on {}".format(backend, workload))
    assert runner.stats.backend == backend


def test_auto_backend_bit_identity(serial_sha):
    """Whatever auto resolves to on this host, the bytes must match."""
    runner = ParallelRunner(jobs=2, backend="auto")
    payloads = runner.run(WORKLOADS["faults"]())
    assert payload_sha(payloads) == serial_sha["faults"]
    assert runner.stats.backend in MATRIX_BACKENDS
