"""Unit tests for the executor backends, the cost model, and auto selection.

The full-simulation byte-identity proof across every backend lives in
``tests/par/test_backend_matrix.py``; these tests pin the mechanics with
the tiny spawn-safe cells from :mod:`repro.par.testing`.
"""

import json
import os

import pytest

from repro.par import (
    CostModel,
    ParallelRunner,
    ResultCache,
    choose_backend,
    make_executor,
    work_list,
)
from repro.par.cost import COST_FILE
from repro.par.executors import BACKENDS, SPAWN_BOOT_S
from repro.par.executors.socket import parse_addr

ALL_BACKENDS = sorted(BACKENDS)


def _square_items(n, offset=7):
    return work_list("demo", "repro.par.testing:square_cell",
                     [(seed, {"offset": offset}) for seed in range(n)])


# ---------------------------------------------------------------- backends

def test_backend_registry_is_complete():
    assert ALL_BACKENDS == ["inline", "socket", "spawn", "thread"]
    with pytest.raises(ValueError, match="unknown backend"):
        make_executor("fork")
    with pytest.raises(ValueError, match="unknown backend"):
        ParallelRunner(jobs=1, backend="fork")


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_every_backend_equals_serial(backend):
    items = _square_items(6)
    serial = ParallelRunner(jobs=1, backend="inline").run(items)
    runner = ParallelRunner(jobs=2, backend=backend)
    assert runner.run(items) == serial
    assert runner.stats.backend == backend
    assert runner.stats.executed == 6


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_every_backend_streams_events(backend):
    executor = make_executor(backend, jobs=2)
    specs = [item.spec() for item in _square_items(4)]
    events = list(executor.run(specs))
    assert len(events) == 4
    assert all(event["ok"] for event in events)
    assert sorted(e["cell"]["index"] for e in events) == [0, 1, 2, 3]
    values = {e["cell"]["index"]: e["cell"]["payload"]["value"]
              for e in events}
    assert values == {i: i * i + 7 for i in range(4)}


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_every_backend_reports_failures_as_events(backend):
    items = work_list("demo", "repro.par.testing:mixed_cell",
                      [(seed, {"boom_seeds": [1]}) for seed in range(3)])
    executor = make_executor(backend, jobs=2)
    events = list(executor.run([item.spec() for item in items]))
    failed = [e for e in events if not e["ok"]]
    assert len(failed) == 1
    assert failed[0]["index"] == 1
    assert "boom (seed=1)" in failed[0]["error"]
    assert len([e for e in events if e["ok"]]) == 2


def test_executors_run_nothing_on_empty_lists():
    for backend in ALL_BACKENDS:
        assert list(make_executor(backend, jobs=2).run([])) == []


def test_socket_parse_addr():
    assert parse_addr("127.0.0.1:80") == ("127.0.0.1", 80)
    assert parse_addr("[::1]:80") == ("[::1]", 80)
    with pytest.raises(ValueError):
        parse_addr("no-port")


def test_socket_backend_runs_cells_across_worker_processes():
    """Local subprocess workers over the line-JSON protocol; payloads
    identical to serial, metrics snapshots cross the wire."""
    items = work_list("demo", "repro.par.testing:sim_cell",
                      [(seed, {"horizon_ns": 50_000}) for seed in range(3)])
    serial = ParallelRunner(jobs=1, backend="inline").run(items)
    runner = ParallelRunner(jobs=2, backend="socket", obs_metrics=True)
    assert runner.run(items) == serial
    snap = runner.obs_snapshot
    assert snap is not None
    assert snap["counters"]["par.testing.pings"] == 3 * 51


# -------------------------------------------------------------- cost model

def test_cost_model_ewma_and_estimate():
    model = CostModel()
    assert model.estimate("faults") is None
    model.observe("faults", 2.0)
    assert model.estimate("faults") == 2.0
    model.observe("faults", 4.0)
    assert 2.0 < model.estimate("faults") < 4.0
    assert model.snapshot()["faults"]["count"] == 2


def test_cost_model_round_trips_through_its_file(tmp_path):
    path = str(tmp_path / COST_FILE)
    model = CostModel(path)
    model.observe("sweep", 1.5)
    model.save()
    assert json.load(open(path))["experiments"]["sweep"]["count"] == 1
    reloaded = CostModel(path)
    assert reloaded.estimate("sweep") == 1.5
    # torn file: start cold instead of crashing
    with open(path, "w") as handle:
        handle.write("{torn")
    assert CostModel(path).estimate("sweep") is None


def test_runner_persists_costs_beside_the_cache(tmp_path):
    cache = ResultCache(str(tmp_path))
    ParallelRunner(jobs=1, cache=cache).run(_square_items(3))
    doc = json.load(open(os.path.join(str(tmp_path), COST_FILE)))
    assert doc["experiments"]["demo"]["count"] == 3
    assert doc["experiments"]["demo"]["mean_s"] >= 0.0


# ----------------------------------------------------------- auto selection

def test_auto_is_inline_when_a_pool_cannot_help():
    assert choose_backend(10, jobs=1, cpu_count=8, est_cell_s=60) == "inline"
    assert choose_backend(10, jobs=8, cpu_count=1, est_cell_s=60) == "inline"
    assert choose_backend(1, jobs=8, cpu_count=8, est_cell_s=60) == "inline"
    assert choose_backend(0, jobs=8, cpu_count=8) == "inline"


def test_auto_is_spawn_only_when_the_saving_clears_the_boot_bill():
    # 28 cells x 0.25 s on 2 workers saves ~3.5 s against a ~2 s boot
    # bill: spawn.  The same cells at 10 ms save 0.14 s: inline.
    assert choose_backend(28, jobs=2, cpu_count=2,
                          est_cell_s=0.25) == "spawn"
    assert choose_backend(28, jobs=2, cpu_count=2,
                          est_cell_s=0.01) == "inline"
    # unknown cost on a multicore host: optimistic spawn (the run itself
    # records the estimate that informs the next decision)
    assert choose_backend(28, jobs=2, cpu_count=2,
                          est_cell_s=None) == "spawn"
    # the boundary scales with the worker count
    workers = 4
    cheap = SPAWN_BOOT_S * workers / (28 * (1 - 1 / workers)) * 0.9
    assert choose_backend(28, jobs=4, cpu_count=4,
                          est_cell_s=cheap) == "inline"


def test_auto_never_picks_thread():
    for n, jobs, cores, est in ((100, 8, 8, 0.001), (2, 2, 2, 100.0)):
        assert choose_backend(n, jobs, cores, est) in ("inline", "spawn")


def test_runner_auto_resolves_per_run(tmp_path):
    """auto picks inline on this host when the cost model says cells are
    cheap; the stats record the *resolved* backend."""
    cache = ResultCache(str(tmp_path))
    runner = ParallelRunner(jobs=2, cache=cache, backend="auto")
    runner.run(_square_items(4))
    assert runner.stats.backend in ("inline", "spawn")
    # second run has a measured (tiny) cost estimate: inline wherever the
    # first run landed
    second = ParallelRunner(jobs=2, cache=ResultCache(str(tmp_path)),
                            backend="auto")
    second.run(_square_items(8, offset=9))
    assert second.stats.backend == "inline"
