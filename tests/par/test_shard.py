"""Unit tests for work items, the steal queue, and the merge."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.par import WorkItem, merge_results, work_list
from repro.par.executors import CellQueue


def _items(n):
    return work_list("t", "repro.par.testing:square_cell",
                     [(seed, {}) for seed in range(n)])


def test_work_list_indexes_in_order():
    items = work_list("t", "m:f", [(5, {"a": 1}), (9, {"b": 2})])
    assert [item.index for item in items] == [0, 1]
    assert [item.seed for item in items] == [5, 9]
    assert items[0].experiment == "t"


def test_spec_is_primitive():
    item = WorkItem("t", "m:f", seed=3, config={"x": 1}, index=7)
    spec = item.spec()
    assert spec == {"experiment": "t", "runner": "m:f", "seed": 3,
                    "config": {"x": 1}, "index": 7}
    # a copy, not a view
    spec["config"]["x"] = 99
    assert item.config["x"] == 1


def test_work_item_rejects_nan_and_infinity_configs():
    """NaN/Infinity serialise as non-RFC repr tokens that would silently
    fork cache keys; the error must carry the cell identity."""
    for bad in (math.nan, math.inf, -math.inf):
        with pytest.raises(ValueError, match=r"\('t', seed=3\)"):
            WorkItem("t", "m:f", seed=3, config={"x": bad})
    with pytest.raises(ValueError, match="strict JSON"):
        WorkItem("t", "m:f", seed=0, config={"nested": {"y": [math.nan]}})


def test_work_item_rejects_non_json_configs():
    with pytest.raises(ValueError, match="strict JSON"):
        WorkItem("t", "m:f", seed=0, config={"obj": object()})


def test_cell_queue_steals_fifo_and_drains():
    queue = CellQueue([{"index": i} for i in range(4)])
    assert len(queue) == 4
    assert [queue.steal()["index"] for _ in range(4)] == [0, 1, 2, 3]
    assert queue.steal() is None
    assert len(queue) == 0


def test_cell_queue_push_back_goes_to_the_front():
    """A dead worker's in-flight cell is retried before new work."""
    queue = CellQueue([{"index": 0}, {"index": 1}])
    first = queue.steal()
    queue.push_back(first)
    assert queue.steal()["index"] == 0


def test_merge_orders_by_index_not_arrival():
    merged = merge_results([(2, "c"), (0, "a"), (1, "b")], 3)
    assert merged == ["a", "b", "c"]


def test_merge_rejects_missing_duplicate_and_stray():
    with pytest.raises(ValueError, match="missing"):
        merge_results([(0, "a")], 2)
    with pytest.raises(ValueError, match="duplicate"):
        merge_results([(0, "a"), (0, "b")], 1)
    with pytest.raises(ValueError, match="outside"):
        merge_results([(5, "a")], 2)


@given(st.lists(st.integers(), min_size=0, max_size=64), st.randoms())
def test_property_steal_order_never_leaks_through_merge(payloads, rng):
    """The work-stealing scheduler completes cells in an arbitrary order
    (worker speed, host count, queue contention); whatever permutation
    arrives, the merge must return exactly the work-list order."""
    indexed = list(enumerate(payloads))
    rng.shuffle(indexed)
    assert merge_results(indexed, len(payloads)) == payloads


@given(st.integers(min_value=0, max_value=128), st.randoms())
def test_property_interleaved_steals_partition_exactly(n, rng):
    """However many workers steal, every cell is handed out exactly once
    — push-backs included."""
    queue = CellQueue([{"index": i} for i in range(n)])
    taken = []
    while True:
        spec = queue.steal()
        if spec is None:
            break
        if rng.random() < 0.2:      # a worker "dies" and requeues
            queue.push_back(spec)
            continue
        taken.append(spec["index"])
    assert sorted(taken) == list(range(n))
