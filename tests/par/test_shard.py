"""Unit tests for work items, the shard planner, and the merge."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.par import WorkItem, merge_results, plan_shards, work_list


def _items(n):
    return work_list("t", "repro.par.testing:square_cell",
                     [(seed, {}) for seed in range(n)])


def test_work_list_indexes_in_order():
    items = work_list("t", "m:f", [(5, {"a": 1}), (9, {"b": 2})])
    assert [item.index for item in items] == [0, 1]
    assert [item.seed for item in items] == [5, 9]
    assert items[0].experiment == "t"


def test_spec_is_primitive():
    item = WorkItem("t", "m:f", seed=3, config={"x": 1}, index=7)
    spec = item.spec()
    assert spec == {"experiment": "t", "runner": "m:f", "seed": 3,
                    "config": {"x": 1}, "index": 7}
    # a copy, not a view
    spec["config"]["x"] = 99
    assert item.config["x"] == 1


def test_plan_shards_partitions_exactly():
    items = _items(23)
    shards = plan_shards(items, jobs=4)
    flattened = sorted((item.index for shard in shards for item in shard))
    assert flattened == list(range(23))
    assert len(shards) <= 4 * 4


def test_plan_shards_round_robin_interleaves():
    items = _items(8)
    shards = plan_shards(items, jobs=2, oversubscribe=2)
    assert len(shards) == 4
    assert [item.index for item in shards[0]] == [0, 4]
    assert [item.index for item in shards[1]] == [1, 5]


def test_plan_shards_single_job_single_shard():
    items = _items(5)
    shards = plan_shards(items, jobs=1, oversubscribe=1)
    assert len(shards) == 1
    assert [item.index for item in shards[0]] == [0, 1, 2, 3, 4]


def test_plan_shards_empty_and_invalid():
    assert plan_shards([], jobs=4) == []
    with pytest.raises(ValueError):
        plan_shards(_items(3), jobs=0)


def test_merge_orders_by_index_not_arrival():
    merged = merge_results([(2, "c"), (0, "a"), (1, "b")], 3)
    assert merged == ["a", "b", "c"]


def test_merge_rejects_missing_duplicate_and_stray():
    with pytest.raises(ValueError, match="missing"):
        merge_results([(0, "a")], 2)
    with pytest.raises(ValueError, match="duplicate"):
        merge_results([(0, "a"), (0, "b")], 1)
    with pytest.raises(ValueError, match="outside"):
        merge_results([(5, "a")], 2)


@given(st.integers(min_value=0, max_value=200),
       st.integers(min_value=1, max_value=16),
       st.integers(min_value=1, max_value=8))
def test_plan_shards_property_exact_partition(n, jobs, oversubscribe):
    items = _items(n)
    shards = plan_shards(items, jobs, oversubscribe=oversubscribe)
    flattened = sorted(item.index for shard in shards for item in shard)
    assert flattened == list(range(n))
    assert all(shard for shard in shards)
