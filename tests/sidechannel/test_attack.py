"""Scaled-down side-channel attack tests (the full campaign runs in the
benchmark suite)."""

import pytest

from repro.sidechannel.attack import AttackResult, WebsiteFingerprinter, _znorm


def test_attack_result_arithmetic():
    result = AttackResult(trials=20, correct=12, n_sites=10)
    assert result.success_rate == pytest.approx(0.6)
    assert result.random_rate == pytest.approx(0.1)
    assert result.advantage == pytest.approx(6.0)


def test_attack_result_empty():
    result = AttackResult(trials=0, correct=0, n_sites=0)
    assert result.success_rate == 0.0
    assert result.advantage == 0.0


def test_znorm_properties():
    arr = _znorm([1.0, 2.0, 3.0])
    assert arr.mean() == pytest.approx(0.0, abs=1e-12)
    assert arr.std() == pytest.approx(1.0)
    flat = _znorm([2.0, 2.0])
    assert (flat == 0).all()


@pytest.fixture(scope="module")
def small_fingerprinter():
    sites = ("google", "youtube", "facebook", "baidu")
    return WebsiteFingerprinter(sites=sites).train(seed=100)


def test_training_builds_one_template_per_site(small_fingerprinter):
    assert set(small_fingerprinter.templates) == {
        "google", "youtube", "facebook", "baidu"
    }


def test_attack_beats_random_without_psbox(small_fingerprinter):
    result = small_fingerprinter.run(trials_per_site=2, use_psbox=False,
                                     seed=500)
    assert result.success_rate >= 2 * result.random_rate


def test_psbox_degrades_the_attack(small_fingerprinter):
    open_world = small_fingerprinter.run(trials_per_site=2, use_psbox=False,
                                         seed=500)
    sandboxed = small_fingerprinter.run(trials_per_site=2, use_psbox=True,
                                        seed=500)
    assert sandboxed.success_rate < open_world.success_rate


def test_infer_requires_training():
    fp = WebsiteFingerprinter(sites=("google",))
    with pytest.raises(RuntimeError):
        fp.infer([0.0, 1.0])
