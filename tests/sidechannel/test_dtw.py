"""Tests + properties for dynamic time warping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sidechannel.dtw import dtw_distance

seqs = st.lists(st.floats(-5, 5, allow_nan=False), min_size=1, max_size=30)


def test_identical_sequences_have_zero_distance():
    a = [1.0, 2.0, 3.0, 2.0]
    assert dtw_distance(a, a) == 0.0


def test_known_small_example():
    # Classic: [0,1,2] vs [0,2] — align 1 with either neighbour.
    assert dtw_distance([0, 1, 2], [0, 2]) == pytest.approx(1.0)


def test_time_shift_is_cheap_amplitude_is_not():
    base = np.sin(np.linspace(0, 6, 60))
    shifted = np.sin(np.linspace(0.4, 6.4, 60))
    scaled = 2.0 * base
    assert dtw_distance(base, shifted) < dtw_distance(base, scaled)


def test_window_constrains_alignment():
    a = np.zeros(50)
    b = np.zeros(50)
    b[40] = 5.0
    a[5] = 5.0
    unconstrained = dtw_distance(a, b)
    constrained = dtw_distance(a, b, window=3)
    assert constrained > unconstrained


def test_empty_sequence_rejected():
    with pytest.raises(ValueError):
        dtw_distance([], [1.0])


def test_2d_input_rejected():
    with pytest.raises(ValueError):
        dtw_distance(np.zeros((2, 2)), [1.0])


@given(seqs, seqs)
@settings(max_examples=60, deadline=None)
def test_symmetry(a, b):
    assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a), rel=1e-9,
                                               abs=1e-9)


@given(seqs)
@settings(max_examples=60, deadline=None)
def test_self_distance_zero(a):
    assert dtw_distance(a, a) == pytest.approx(0.0, abs=1e-9)


@given(seqs, seqs)
@settings(max_examples=60, deadline=None)
def test_nonnegative(a, b):
    assert dtw_distance(a, b) >= 0


@given(seqs, seqs)
@settings(max_examples=40, deadline=None)
def test_bounded_below_by_endpoint_costs(a, b):
    """Any alignment path includes (a0,b0) and (an,bm)."""
    lower = abs(a[0] - b[0])
    if len(a) > 1 or len(b) > 1:
        lower += abs(a[-1] - b[-1])
    assert dtw_distance(a, b) >= lower - 1e-9


@given(seqs, seqs, st.integers(1, 10))
@settings(max_examples=40, deadline=None)
def test_wider_window_never_increases_distance(a, b, w):
    """Relaxing the Sakoe-Chiba band can only improve the alignment."""
    narrow = dtw_distance(a, b, window=w)
    wide = dtw_distance(a, b, window=w + 5)
    assert wide <= narrow + 1e-9


def test_matches_bruteforce_dp_reference(rng):
    for _ in range(10):
        a = rng.normal(size=rng.integers(2, 12))
        b = rng.normal(size=rng.integers(2, 12))
        n, m = len(a), len(b)
        ref = np.full((n + 1, m + 1), np.inf)
        ref[0, 0] = 0.0
        for i in range(1, n + 1):
            for j in range(1, m + 1):
                cost = abs(a[i - 1] - b[j - 1])
                ref[i, j] = cost + min(ref[i - 1, j], ref[i, j - 1],
                                       ref[i - 1, j - 1])
        assert dtw_distance(a, b) == pytest.approx(ref[n, m], rel=1e-12)
