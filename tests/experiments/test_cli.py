"""Tests for the `python -m repro.experiments` CLI."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


def test_list_prints_registry(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_no_args_lists(capsys):
    assert main([]) == 0
    assert "available experiments" in capsys.readouterr().out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_registry_covers_every_eval_section():
    assert set(EXPERIMENTS) == {
        "fig3", "fig6", "fig7", "fig8", "fig9",
        "sec62", "sec63", "sidechannel", "powercap",
    }


def test_run_one_experiment(capsys):
    assert main(["sec63"]) == 0
    out = capsys.readouterr().out
    assert "browser" in out
    assert "triangle" in out
