"""Tests for the `python -m repro.experiments` CLI."""

import importlib
import os

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main

#: every subcommand and the driver module backing it
DRIVER_MODULES = {
    "fig3": "repro.experiments.fig3",
    "fig6": "repro.experiments.fig6",
    "fig7": "repro.experiments.fig7",
    "fig8": "repro.experiments.fig8",
    "fig9": "repro.experiments.fig9",
    "sec62": "repro.experiments.sec62",
    "sec63": "repro.experiments.sec63",
    "sidechannel": "repro.experiments.sidechannel_exp",
    "powercap": "repro.experiments.powercap_exp",
    "faults": "repro.experiments.faults_exp",
    "sweep": "repro.experiments.sweep",
    "cluster": "repro.experiments.cluster_exp",
}


def test_list_prints_registry(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_no_args_lists(capsys):
    assert main([]) == 0
    assert "available experiments" in capsys.readouterr().out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_registry_covers_every_eval_section():
    assert set(EXPERIMENTS) == set(DRIVER_MODULES)


def test_sweep_items_validates_names():
    """Typos fail fast in the library entry point, not as a CellError deep
    inside a worker; 'sweep' itself is rejected (it would recurse)."""
    from repro.experiments.sweep import sweep_items

    with pytest.raises(ValueError, match="unknown sweep cells: bogus"):
        sweep_items(["fig3", "bogus"])
    with pytest.raises(ValueError, match="unknown sweep cells: sweep"):
        sweep_items(["sweep"])


def test_sweep_unknown_only_cell_is_clean_cli_error(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--only", "bogus"])


@pytest.mark.parametrize("name", sorted(DRIVER_MODULES))
def test_driver_module_imports(name):
    """Every registered subcommand's driver imports cleanly."""
    module = importlib.import_module(DRIVER_MODULES[name])
    assert module is not None


def test_run_one_experiment(capsys):
    assert main(["sec63"]) == 0
    out = capsys.readouterr().out
    assert "browser" in out
    assert "triangle" in out


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_run_every_experiment(name, capsys):
    """Full smoke over every subcommand (slow; nightly CI sets the gate)."""
    if not os.environ.get("PSBOX_SMOKE_ALL"):
        pytest.skip("set PSBOX_SMOKE_ALL=1 to smoke-run every experiment")
    assert main([name]) == 0
    assert name in capsys.readouterr().out


def test_cluster_telemetry_report_writes_the_bundle(tmp_path, capsys,
                                                    monkeypatch):
    """The tentpole surface end to end: ``cluster --telemetry --report``."""
    import json

    monkeypatch.chdir(tmp_path)
    out_dir = tmp_path / "tele"
    assert main(["cluster", "--nodes", "2", "--telemetry", str(out_dir),
                 "--report", "--bench", str(tmp_path / "bench.json")]) == 0
    out = capsys.readouterr().out
    assert "telemetry:" in out
    assert "SLO report" in out

    # OpenMetrics: valid terminator, per-session cluster series
    om = (out_dir / "metrics.om").read_text()
    assert om.endswith("# EOF\n")
    assert 'cluster_aggregate_w{session="cluster/waterfill"}' in om
    assert 'session="cluster/pi"' in om

    # JSONL series: every line parses; per-epoch cluster series present
    lines = (out_dir / "series.jsonl").read_text().splitlines()
    docs = [json.loads(line) for line in lines]
    by_series = {(d["session"], d["series"]) for d in docs}
    assert ("cluster/waterfill", "cluster.compliance_err") in by_series
    assert ("cluster/pi", "cluster.node_power_w") in by_series
    assert ("cluster", "placement.drop_rate") in by_series

    # merged trace: every session is its own pid track
    trace = json.loads((out_dir / "trace.json").read_text())
    names = {e["args"]["name"] for e in trace["traceEvents"]
             if e.get("name") == "process_name"}
    assert {"cluster", "cluster/waterfill", "cluster/pi",
            "cal/node00", "cal/node01"} <= names
    assert any(name.startswith("waterfill/node") for name in names)

    # structured alert summary
    report = json.loads((out_dir / "report.json").read_text())
    assert set(report) == {"ok", "rules", "alerts", "counts"}
    assert {rule["name"] for rule in report["rules"]} >= {"cap.compliance"}


def test_report_implies_telemetry(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["sec63", "--report"]) == 0
    out = capsys.readouterr().out
    assert "telemetry:" in out
    assert (tmp_path / "telemetry" / "metrics.om").exists()
    assert (tmp_path / "telemetry" / "report.json").exists()
