"""Integration tests for Fig 8 / §6.2 / §6.3 drivers (scaled down)."""

import pytest

from repro.experiments.fig8 import run_fig8
from repro.experiments.sec63 import run_sec63_robustness


@pytest.fixture(scope="module")
def fig8_cpu():
    return run_fig8("cpu", phase_s=1.5)


def test_cpu_loss_confined_to_sandboxed(fig8_cpu):
    assert fig8_cpu.sandboxed.loss_pct > 30
    for other in fig8_cpu.others:
        assert other.loss_pct < 15


def test_cpu_before_phase_is_fair(fig8_cpu):
    befores = [i.before for i in fig8_cpu.instances]
    assert max(befores) / min(befores) < 1.25


def test_gpu_others_unaffected():
    result = run_fig8("gpu", phase_s=1.5)
    for other in result.others:
        assert abs(other.loss_pct) < 12


def test_wifi_confinement():
    result = run_fig8("wifi", phase_s=1.5)
    assert result.sandboxed.loss_pct > 2 * max(
        o.loss_pct for o in result.others
    )


def test_total_loss_is_bounded():
    for component in ("gpu", "wifi"):
        result = run_fig8(component, phase_s=1.5)
        assert result.total_loss_pct < 40


def test_sec63_robustness_shape():
    result = run_sec63_robustness(phase_s=1.5)
    assert result.browser_slowdown > 2.0
    assert abs(result.triangle_loss_pct) < 8
