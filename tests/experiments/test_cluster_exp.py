"""The cluster experiment driver: campaign wiring and the bench artifact."""

import json

import pytest

from repro.experiments.cluster_exp import run_cluster, write_bench


@pytest.fixture(scope="module")
def small_campaign():
    # Two nodes, short horizon, light traffic: the full pipeline (generate,
    # place, calibrate, both allocators) in a few seconds.
    return run_cluster(seed=4, nodes=2, horizon_s=1.5, peak_users=250_000)


def test_campaign_runs_both_allocators(small_campaign):
    result, runner = small_campaign
    assert set(result.runs) == {"waterfill", "pi"}
    assert result.nodes == 2
    assert result.budget_w == pytest.approx(0.7 * result.uncapped_peak_w)
    assert result.placement["instances"] == result.instances > 0
    assert runner.stats.cells == 2          # one calibration cell per node
    for metrics in result.runs.values():
        assert metrics["budget_w"] == pytest.approx(result.budget_w)
        assert metrics["epochs"] == 6


def test_bench_payload_is_json_and_stable(small_campaign, tmp_path):
    result, _runner = small_campaign
    path = write_bench(result, str(tmp_path / "BENCH_cluster.json"))
    payload = json.loads(open(path).read())
    assert payload["experiment"] == "cluster"
    assert payload["allocators"]["waterfill"]["compliance_pct"] is not None
    assert payload["peak_concurrent_users"] > 0
    # Identical campaign -> identical artifact (the determinism contract).
    again, _ = run_cluster(seed=4, nodes=2, horizon_s=1.5,
                           peak_users=250_000)
    assert again.bench() == payload
