"""Integration tests for the Figure 9 / §6.4 VR driver."""

import pytest

from repro.experiments.fig9 import fidelity_power_span, run_fig9


def test_fidelity_span_is_wide():
    low, high = fidelity_power_span(duration_s=2.0)
    assert high / low > 4.0
    assert 0.03 < low < 0.25
    assert 0.4 < high < 1.2


@pytest.fixture(scope="module")
def fig9():
    return run_fig9(budgets_w=(0.12, 0.4, 0.8), duration_s=3.0,
                    trace_budget_index=1)


def test_observed_power_tracks_budgets(fig9):
    for budget, observed in zip(fig9.budgets_w, fig9.observed_w):
        assert observed < budget * 1.6
    assert fig9.observed_w == sorted(fig9.observed_w)


def test_fidelity_increases_with_budget(fig9):
    assert fig9.fidelity == sorted(fig9.fidelity)
    assert fig9.fidelity[-1] > fig9.fidelity[0]


def test_trace_separates_rendering_from_total(fig9):
    assert fig9.times is not None
    # The total rail includes gesture; rendering's insulated view is lower
    # on average.
    assert fig9.rendering_watts.mean() < fig9.total_watts.mean()
