"""Integration tests for the Figure 7 balloon-boundary drivers."""

import pytest

from repro.experiments.fig7 import run_fig7_cpu, run_fig7_dsp
from repro.sim.clock import SEC


@pytest.fixture(scope="module")
def cpu_with():
    return run_fig7_cpu(use_psbox=True, duration=SEC)


@pytest.fixture(scope="module")
def cpu_without():
    return run_fig7_cpu(use_psbox=False, duration=SEC)


def test_cpu_psbox_creates_windows_and_forced_idle(cpu_with):
    assert cpu_with.windows
    assert cpu_with.forced_idle_ns > 0


def test_cpu_without_psbox_has_no_windows(cpu_without):
    assert cpu_without.windows == []


def test_cpu_balloon_excludes_other_apps(cpu_with):
    foreign = 0
    for lo, hi in cpu_with.windows:
        for segments in cpu_with.core_owner_segments:
            for t0, t1, owner in segments:
                if owner not in (-1, cpu_with.psbox_app_id):
                    s, e = max(t0, lo), min(t1, hi)
                    foreign += max(0, e - s)
    covered = sum(hi - lo for lo, hi in cpu_with.windows)
    assert foreign < 0.02 * covered


def test_cpu_multiplexing_is_free_outside_windows(cpu_with):
    outside_owners = set()
    windows = cpu_with.windows
    for segments in cpu_with.core_owner_segments:
        for t0, t1, owner in segments:
            inside = any(lo <= t0 < hi for lo, hi in windows)
            if not inside and owner != -1:
                outside_owners.add(owner)
    assert any(owner != cpu_with.psbox_app_id for owner in outside_owners)


@pytest.fixture(scope="module")
def dsp_with():
    return run_fig7_dsp(use_psbox=True, duration=3 * SEC)


def test_dsp_temporal_balloons_exclude_foreign_commands(dsp_with):
    assert dsp_with.windows
    assert dsp_with.foreign_overlap_ns == 0


def test_dsp_without_psbox_commands_overlap_freely():
    result = run_fig7_dsp(use_psbox=False, duration=3 * SEC)
    # Find any pair of commands from different apps overlapping in time.
    overlap = 0
    cmds = result.commands
    for i, (app_a, _k, a0, a1) in enumerate(cmds):
        for app_b, _k2, b0, b1 in cmds[i + 1:]:
            if app_a != app_b:
                overlap += max(0, min(a1, b1) - max(a0, b0))
    assert overlap > 0, "work-conserving DSP should overlap apps freely"
