"""Integration tests for the Figure 3 entanglement drivers."""

import pytest

from repro.experiments.fig3 import (
    run_fig3a_spatial,
    run_fig3b_requests,
    run_fig3c_lingering,
)
from repro.sim.clock import MSEC


@pytest.fixture(scope="module")
def fig3a():
    return run_fig3a_spatial(duration=400 * MSEC)


def test_fig3a_doubling_overestimates(fig3a):
    """2x one instance overestimates two co-running instances."""
    assert fig3a.mean_one_doubled > 1.1 * fig3a.mean_two
    assert fig3a.overestimate_pct > 10


def test_fig3a_traces_well_formed(fig3a):
    assert len(fig3a.times) == len(fig3a.watts_two_instances)
    assert (fig3a.watts_two_instances > 0).all()


def test_fig3b_commands_overlap():
    result = run_fig3b_requests()
    assert result.overlap_ns > MSEC
    seqs = [seq for seq, _k, _d, _n in result.commands]
    assert len(seqs) == 3
    # Every command got a completion notification.
    assert all(notify is not None for _s, _k, _d, notify in result.commands)


def test_fig3b_power_rises_during_overlap():
    result = run_fig3b_requests()
    c1 = result.commands[0]
    c2 = result.commands[1]
    import numpy as np
    t = np.asarray(result.times)
    solo = result.watts[(t >= c1[2]) & (t < c2[2])]
    both = result.watts[(t >= c2[2]) & (t < min(c1[3], c2[3]))]
    assert both.mean() > solo.mean()


def test_fig3c_lingering_state_changes_power():
    result = run_fig3c_lingering()
    assert result.mean_after_busy > 1.1 * result.mean_after_idle
    # The effect concentrates early: first 30 ms differ the most.
    early_idle = result.watts_after_idle[:30].mean()
    early_busy = result.watts_after_busy[:30].mean()
    assert early_busy > 1.5 * early_idle
