"""Tests for the LTE modem model (§7 negative result)."""

import pytest

from repro.hw.lte import LteNic, default_lte_power_model
from repro.hw.nic import CAM, PSM, TX, Packet
from repro.hw.rail import PowerRail
from repro.sim.clock import MSEC, SEC, from_msec
from repro.sim.engine import Simulator


def make_lte(**kwargs):
    sim = Simulator()
    rail = PowerRail(sim, "lte")
    return sim, rail, LteNic(sim, rail, **kwargs)


def test_promotion_delays_first_transmission():
    sim, rail, lte = make_lte(promotion_delay=from_msec(110))
    pkt = Packet(1, 20_000)
    lte.enqueue(pkt)
    # RRC promotion: connected-idle power, no transmission yet.
    assert lte.state == CAM
    sim.run(until=50 * MSEC)
    assert pkt.tx_start_t is None
    sim.run(until=SEC)
    assert pkt.tx_start_t >= from_msec(110)


def test_no_promotion_when_already_connected():
    sim, rail, lte = make_lte()
    lte.enqueue(Packet(1, 20_000))
    sim.run(until=500 * MSEC)
    assert lte.state == CAM      # riding the connected tail
    pkt = Packet(1, 20_000)
    lte.enqueue(pkt)
    assert lte.state == TX       # immediate: no promotion needed
    assert pkt.tx_start_t == sim.now


def test_long_connected_tail_then_idle():
    sim, rail, lte = make_lte()
    lte.enqueue(Packet(1, 20_000))
    sim.run(until=800 * MSEC)
    assert lte.state == CAM
    sim.run(until=3 * SEC)
    assert lte.state == PSM


def test_connected_idle_power_is_high():
    model = default_lte_power_model()
    assert model.cam_w > 10 * model.psm_w


def test_power_state_cannot_be_virtualized():
    sim, rail, lte = make_lte()
    with pytest.raises(RuntimeError):
        lte.snapshot()
    with pytest.raises(RuntimeError):
        lte.restore({})
    with pytest.raises(RuntimeError):
        lte.default_state()


def test_promotion_with_empty_queue_rides_tail():
    """Promotion completes after the sender gave up: tail, then idle."""
    sim, rail, lte = make_lte(promotion_delay=from_msec(110))
    lte.enqueue(Packet(1, 20_000))
    sim.run(until=SEC)
    assert lte.is_drained
