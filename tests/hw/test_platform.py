"""Unit tests for platform assembly."""

import pytest

from repro.hw.platform import COMPONENTS, Platform


def test_full_platform_has_all_components():
    p = Platform.full(seed=0)
    assert p.cpu is not None
    assert p.gpu is not None
    assert p.dsp is not None
    assert p.nic is not None
    assert set(p.rails) == set(COMPONENTS)


def test_am57_has_no_wifi():
    p = Platform.am57(seed=0)
    assert p.nic is None
    assert "wifi" not in p.rails
    assert p.cpu.n_cores == 2


def test_bbb_is_single_core_with_wifi():
    p = Platform.bbb(seed=0)
    assert p.cpu.n_cores == 1
    assert p.nic is not None
    assert p.gpu is None


def test_component_lookup():
    p = Platform.full(seed=0)
    assert p.component("cpu") is p.cpu
    assert p.component("gpu") is p.gpu
    with pytest.raises(KeyError):
        Platform.am57(seed=0).component("wifi")


def test_idle_power_known_for_every_component():
    p = Platform.full(seed=0)
    for name in COMPONENTS:
        assert p.idle_power(name) > 0


def test_rails_start_at_idle_levels():
    p = Platform.full(seed=0)
    assert p.rails["cpu"].power_now() == pytest.approx(
        p.cpu.power_model.idle_w
    )
    assert p.rails["wifi"].power_now() == pytest.approx(
        p.nic.power_model.psm_w
    )


def test_seed_controls_meter_rng():
    a = Platform.full(seed=1).sim.rng.stream("meter.noise").random()
    b = Platform.full(seed=1).sim.rng.stream("meter.noise").random()
    assert a == b
