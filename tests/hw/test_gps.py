"""Tests for the GPS model (§7 extension)."""

import pytest

from repro.hw.gps import ACQUIRING, OFF, TRACKING, Gps
from repro.hw.rail import PowerRail
from repro.sim.clock import MSEC, SEC, from_msec
from repro.sim.engine import Simulator


def make_gps(acquire_time=from_msec(400)):
    sim = Simulator()
    rail = PowerRail(sim, "gps")
    return sim, rail, Gps(sim, rail, acquire_time=acquire_time)


def test_starts_off():
    sim, rail, gps = make_gps()
    assert gps.state == OFF
    assert rail.power_now() == 0.0


def test_cold_start_sequence():
    sim, rail, gps = make_gps()
    gps.acquire(1)
    assert gps.state == ACQUIRING
    assert rail.power_now() == pytest.approx(gps.acquiring_w)
    sim.run(until=SEC)
    assert gps.state == TRACKING
    assert rail.power_now() == pytest.approx(gps.tracking_w)


def test_concurrent_use_does_not_change_power():
    """The paper's observation: GPS power is unaffected by concurrent use."""
    sim, rail, gps = make_gps()
    gps.acquire(1)
    sim.run(until=SEC)
    power_one = rail.power_now()
    gps.acquire(2)
    assert rail.power_now() == power_one


def test_powers_down_when_last_user_leaves():
    sim, rail, gps = make_gps()
    gps.acquire(1)
    gps.acquire(2)
    sim.run(until=SEC)
    gps.release(1)
    assert gps.state == TRACKING
    gps.release(2)
    assert gps.state == OFF


def test_release_during_acquisition_cancels_it():
    sim, rail, gps = make_gps()
    gps.acquire(1)
    sim.run(until=100 * MSEC)
    gps.release(1)
    assert gps.state == OFF
    sim.run(until=2 * SEC)
    assert gps.state == OFF


def test_operating_windows_exclude_cold_start():
    sim, rail, gps = make_gps(acquire_time=from_msec(400))
    gps.acquire(1)
    sim.run(until=SEC)
    gps.release(1)
    sim.run(until=2 * SEC)
    windows = gps.operating_windows(0, 2 * SEC)
    assert windows == [(400 * MSEC, SEC)]
