"""Unit tests for the in-situ power meter."""

import pytest

from repro.hw.meter import PowerMeter
from repro.hw.rail import PowerRail
from repro.sim.clock import MSEC, SEC, USEC
from repro.sim.engine import Simulator


def make_meter(noise_w=0.0):
    sim = Simulator(seed=1)
    rail = PowerRail(sim, "r")
    meter = PowerMeter(sim, {"r": rail}, noise_w=noise_w,
                       rng=sim.rng.stream("noise"))
    return sim, rail, meter


def test_sampling_interval_default_100khz():
    sim, rail, meter = make_meter()
    assert meter.sample_interval == 10 * USEC
    times, watts = meter.sample("r", 0, MSEC)
    assert len(times) == 100


def test_samples_are_timestamped_on_shared_clock():
    sim, rail, meter = make_meter()
    times, _w = meter.sample("r", 0, MSEC, dt=100 * USEC)
    assert list(times) == list(range(0, MSEC, 100 * USEC))


def test_samples_track_rail_changes():
    sim, rail, meter = make_meter()
    rail.set_part("a", 1.0)
    sim.call_later(500 * USEC, rail.set_part, "a", 3.0)
    sim.run(until=MSEC)
    _t, watts = meter.sample("r", 0, MSEC, dt=100 * USEC)
    assert watts[0] == 1.0
    assert watts[-1] == 3.0


def test_energy_is_exact_integral():
    sim, rail, meter = make_meter()
    rail.set_part("a", 2.0)
    sim.call_later(SEC // 4, rail.set_part, "a", 0.0)
    sim.run(until=SEC)
    assert meter.energy("r", 0, SEC) == pytest.approx(0.5)


def test_unknown_rail_raises():
    sim, rail, meter = make_meter()
    with pytest.raises(KeyError):
        meter.sample("nope", 0, MSEC)


def test_noise_perturbs_but_never_negative():
    sim, rail, meter = make_meter(noise_w=0.05)
    rail.set_part("a", 0.01)
    _t, watts = meter.sample("r", 0, MSEC)
    assert (watts >= 0).all()
    assert watts.std() > 0


def test_mean_power_passthrough():
    sim, rail, meter = make_meter()
    rail.set_part("a", 1.5)
    sim.run(until=SEC)
    assert meter.mean_power("r", 0, SEC) == pytest.approx(1.5)


def test_sample_dt_zero_raises_instead_of_silent_default():
    """Regression: ``dt=0`` used to fall through ``dt or sample_interval``
    to the default interval instead of being rejected."""
    sim, rail, meter = make_meter()
    rail.set_part("a", 1.0)
    with pytest.raises(ValueError, match="positive"):
        meter.sample("r", 0, MSEC, dt=0)


def test_sample_negative_dt_raises():
    sim, rail, meter = make_meter()
    with pytest.raises(ValueError, match="positive"):
        meter.sample("r", 0, MSEC, dt=-10)


def test_sample_dt_none_uses_configured_interval():
    sim, rail, meter = make_meter()
    rail.set_part("a", 1.0)
    times, _watts = meter.sample("r", 0, MSEC, dt=None)
    assert len(times) == MSEC // meter.sample_interval
