"""Unit tests for frequency domains."""

import pytest

from repro.hw.dvfs import FreqDomain
from repro.hw.power import OperatingPoint
from repro.sim.clock import MSEC, SEC
from repro.sim.engine import Simulator


def make_domain(initial=0):
    sim = Simulator()
    opps = (
        OperatingPoint(100e6, 0.1, 0.1, 0.1),
        OperatingPoint(200e6, 0.2, 0.2, 0.2),
        OperatingPoint(400e6, 0.4, 0.4, 0.4),
    )
    return sim, FreqDomain(sim, "d", opps, initial_index=initial)


def test_requires_at_least_one_opp():
    sim = Simulator()
    with pytest.raises(ValueError):
        FreqDomain(sim, "d", ())


def test_opps_sorted_by_frequency():
    sim = Simulator()
    opps = (
        OperatingPoint(400e6, 0, 0, 0.1),
        OperatingPoint(100e6, 0, 0, 0.1),
    )
    domain = FreqDomain(sim, "d", opps)
    assert domain.opps[0].freq_hz == 100e6


def test_set_opp_clamps_to_range():
    sim, domain = make_domain()
    domain.set_opp(99)
    assert domain.index == domain.max_index
    domain.set_opp(-5)
    assert domain.index == 0


def test_step_moves_relative():
    sim, domain = make_domain(initial=1)
    domain.step(1)
    assert domain.freq_hz == 400e6
    domain.step(-2)
    assert domain.freq_hz == 100e6


def test_changed_signal_fires_only_on_change():
    sim, domain = make_domain()
    fired = []
    domain.changed.subscribe(fired.append)
    domain.set_opp(0)      # no change
    domain.set_opp(2)
    assert len(fired) == 1
    assert fired[0].freq_hz == 400e6


def test_cycles_between_tracks_frequency_changes():
    sim, domain = make_domain(initial=0)   # 100 MHz
    sim.call_later(500 * MSEC, domain.set_opp, 2)  # then 400 MHz
    sim.run(until=SEC)
    cycles = domain.cycles_between(0, SEC)
    assert cycles == pytest.approx(0.5 * 100e6 + 0.5 * 400e6)


def test_snapshot_restore_round_trip():
    sim, domain = make_domain()
    domain.set_opp(2)
    state = domain.snapshot()
    domain.set_opp(0)
    domain.restore(state)
    assert domain.index == 2


def test_default_state_is_lowest_opp():
    sim, domain = make_domain(initial=2)
    domain.restore(domain.default_state())
    assert domain.index == 0
