"""Unit tests for power rails."""

import pytest

from repro.sim.clock import MSEC, SEC
from repro.sim.engine import Simulator
from repro.hw.rail import PowerRail


def make_rail():
    sim = Simulator()
    return sim, PowerRail(sim, "test")


def test_contributions_sum():
    sim, rail = make_rail()
    rail.set_part("a", 1.0)
    rail.set_part("b", 0.5)
    assert rail.power_now() == pytest.approx(1.5)


def test_zero_removes_contribution():
    sim, rail = make_rail()
    rail.set_part("a", 1.0)
    rail.set_part("a", 0.0)
    assert rail.power_now() == 0.0
    assert rail.part("a") == 0.0


def test_negative_power_rejected():
    sim, rail = make_rail()
    with pytest.raises(ValueError):
        rail.set_part("a", -0.1)


def test_energy_integrates_watts_to_joules():
    sim, rail = make_rail()
    rail.set_part("a", 2.0)
    sim.call_later(500 * MSEC, rail.set_part, "a", 0.0)
    sim.run(until=SEC)
    assert rail.energy(0, SEC) == pytest.approx(1.0)   # 2 W x 0.5 s


def test_mean_power():
    sim, rail = make_rail()
    rail.set_part("a", 4.0)
    sim.call_later(SEC // 2, rail.set_part, "a", 0.0)
    sim.run(until=SEC)
    assert rail.mean_power(0, SEC) == pytest.approx(2.0)


def test_updating_one_part_keeps_others():
    sim, rail = make_rail()
    rail.set_part("a", 1.0)
    rail.set_part("b", 2.0)
    rail.set_part("a", 0.25)
    assert rail.power_now() == pytest.approx(2.25)
    assert rail.part("b") == 2.0
