"""Unit tests for the WiFi NIC model."""

import pytest

from repro.hw.nic import CAM, PSM, TX, Packet, WifiNic
from repro.hw.power import NicPowerModel
from repro.hw.rail import PowerRail
from repro.sim.clock import MSEC, SEC, from_msec, from_usec
from repro.sim.engine import Simulator


def make_nic(**kwargs):
    sim = Simulator()
    rail = PowerRail(sim, "wifi")
    nic = WifiNic(sim, rail, NicPowerModel(), **kwargs)
    return sim, rail, nic


def test_packet_validation():
    with pytest.raises(ValueError):
        Packet(1, 0)


def test_starts_in_psm_at_psm_power():
    sim, rail, nic = make_nic()
    assert nic.state == PSM
    assert rail.power_now() == pytest.approx(nic.power_model.psm_w)


def test_transmission_timing_and_states():
    sim, rail, nic = make_nic(rate_bps=40e6, per_packet_overhead=from_usec(400))
    done = []
    pkt = Packet(1, 50_000, on_complete=lambda p: done.append(sim.now))
    nic.enqueue(pkt)
    assert nic.state == TX
    assert rail.power_now() == pytest.approx(nic.power_model.tx_w(0))
    sim.run(until=SEC)
    airtime = from_usec(400) + int(50_000 * 8 / 40e6 * 1e9)
    assert pkt.tx_end_t == pytest.approx(airtime, rel=1e-6)


def test_tail_state_then_psm():
    sim, rail, nic = make_nic(tail_timeout=from_msec(60))
    nic.enqueue(Packet(1, 10_000))
    sim.run(until=5 * MSEC)
    assert nic.state == CAM          # tail after transmission
    sim.run(until=SEC)
    assert nic.state == PSM          # tail expired


def test_new_packet_cancels_tail():
    sim, rail, nic = make_nic(tail_timeout=from_msec(60))
    nic.enqueue(Packet(1, 10_000))
    sim.run(until=10 * MSEC)
    assert nic.state == CAM
    nic.enqueue(Packet(1, 10_000))
    assert nic.state == TX


def test_fifo_depth_limit():
    sim, rail, nic = make_nic(fifo_depth=2)
    assert nic.enqueue(Packet(1, 1000))
    assert nic.enqueue(Packet(1, 1000))
    assert not nic.enqueue(Packet(1, 1000))


def test_serial_transmission_order():
    sim, rail, nic = make_nic()
    order = []
    for i in range(3):
        nic.enqueue(Packet(1, 10_000,
                           on_complete=lambda p: order.append(p.seq)))
    sim.run(until=SEC)
    assert order == sorted(order)


def test_completion_batching_waits_for_flush_timer():
    sim, rail, nic = make_nic(completion_batch=3,
                              completion_flush=from_msec(15))
    done = []
    pkt = Packet(1, 10_000, on_complete=lambda p: done.append(sim.now))
    nic.enqueue(pkt)
    sim.run(until=SEC)
    # One packet < batch size: notification waits for the flush timer.
    assert done[0] == pytest.approx(pkt.tx_end_t + from_msec(15), rel=1e-6)


def test_completion_batch_fills_and_flushes_immediately():
    sim, rail, nic = make_nic(completion_batch=2,
                              completion_flush=from_msec(15))
    done = []
    for _ in range(2):
        nic.enqueue(Packet(1, 10_000, on_complete=lambda p: done.append(sim.now)))
    sim.run(until=SEC)
    # Second completion fills the batch: both delivered at tx end, not 15ms.
    assert len(done) == 2
    assert done[1] < from_msec(15)


def test_is_drained_accounts_for_pending_notifications():
    sim, rail, nic = make_nic(completion_batch=4)
    nic.enqueue(Packet(1, 10_000))
    sim.run(until=10 * MSEC)       # transmitted, notification pending
    assert nic.queued_count == 0
    assert not nic.is_drained
    sim.run(until=SEC)
    assert nic.is_drained


def test_snapshot_restore_tail_state():
    sim, rail, nic = make_nic(tail_timeout=from_msec(60))
    nic.set_tx_level(2)
    nic.enqueue(Packet(1, 10_000))
    sim.run(until=10 * MSEC)
    assert nic.state == CAM
    state = nic.snapshot()
    assert state["tx_level"] == 2
    assert 0 < state["tail_left"] <= from_msec(60)

    nic.restore(nic.default_state())
    assert nic.state == PSM
    assert nic.tx_level == 0

    nic.restore(state)
    assert nic.state == CAM
    assert nic.tx_level == 2
    sim.run(until=SEC)
    assert nic.state == PSM


def test_restore_mid_transmission_rejected():
    sim, rail, nic = make_nic()
    nic.enqueue(Packet(1, 50_000))
    with pytest.raises(RuntimeError):
        nic.restore(nic.default_state())


def test_bad_tx_level_rejected():
    sim, rail, nic = make_nic()
    with pytest.raises(ValueError):
        nic.set_tx_level(99)


def test_usage_traces_follow_queue_membership():
    sim, rail, nic = make_nic()
    nic.enqueue(Packet(5, 10_000))
    assert nic.usage_traces[5].last_value == 1.0
    sim.run(until=SEC)
    assert nic.usage_traces[5].last_value == 0.0


def test_space_signal_fires_after_each_transmission():
    sim, rail, nic = make_nic()
    fires = []
    nic.space.subscribe(lambda n: fires.append(sim.now))
    nic.enqueue(Packet(1, 10_000))
    nic.enqueue(Packet(1, 10_000))
    sim.run(until=SEC)
    assert len(fires) == 2
