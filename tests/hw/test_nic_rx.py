"""Reception tests: the half-duplex radio and the §4.2 RX limitation."""

import pytest

from repro.apps.base import App
from repro.hw.nic import CAM, PSM, RX, TX, Packet
from repro.hw.power import NicPowerModel
from repro.hw.rail import PowerRail
from repro.kernel.actions import SendPacket, Sleep
from repro.kernel.kernel import Kernel
from repro.hw.platform import Platform
from repro.sim.clock import MSEC, SEC, from_msec
from repro.sim.engine import Simulator


def make_nic():
    sim = Simulator()
    rail = PowerRail(sim, "wifi")
    from repro.hw.nic import WifiNic
    return sim, rail, WifiNic(sim, rail, NicPowerModel())


def test_rx_draws_rx_power():
    sim, rail, nic = make_nic()
    done = []
    nic.receive(1, 40_000, on_complete=lambda p: done.append(sim.now))
    assert nic.state == RX
    assert rail.power_now() == pytest.approx(nic.power_model.rx_w)
    sim.run(until=SEC)
    assert done
    assert nic.state in (CAM, PSM)


def test_half_duplex_rx_waits_for_tx():
    sim, rail, nic = make_nic()
    tx = Packet(1, 40_000)
    nic.enqueue(tx)
    rx = nic.receive(2, 20_000)
    assert nic.state == TX
    sim.run(until=SEC)
    assert rx.tx_start_t >= tx.tx_end_t


def test_half_duplex_tx_waits_for_rx():
    sim, rail, nic = make_nic()
    nic.receive(2, 40_000)
    tx = Packet(1, 20_000)
    nic.enqueue(tx)
    sim.run(until=SEC)
    rx_end = nic.log.times(kind="rx_end")[0]
    assert tx.tx_start_t >= rx_end


def test_rx_resets_tail():
    sim, rail, nic = make_nic()
    nic.receive(1, 10_000)
    sim.run(until=20 * MSEC)
    assert nic.state == CAM
    sim.run(until=SEC)
    assert nic.state == PSM


def test_reception_pollutes_foreign_psbox_window():
    """The paper's documented WiFi limitation: reception cannot be deferred
    per balloon, so another app's inbound traffic leaks into a psbox's
    observed power."""
    platform = Platform.full(seed=4)
    kernel = Kernel(platform)
    boxed = App(kernel, "boxed")

    def sender():
        for _ in range(6):
            yield SendPacket(20_000, wait=True)
            yield Sleep(from_msec(30))

    boxed.spawn(sender())
    box = boxed.create_psbox(("wifi",))
    box.enter()

    # Background inbound traffic for a different app, beyond OS control.
    other_id = 999

    def inbound():
        while True:
            platform.nic.receive(other_id, 24_000)
            yield from_msec(25)

    platform.sim.spawn(inbound())
    platform.sim.run(until=2 * SEC)
    assert boxed.finished

    # Some RX time of the foreign app overlaps the psbox windows.
    windows = box.vmeter.windows("wifi", 0, boxed.finished_at)
    rx_intervals = []
    starts = {}
    for t, kind, payload in platform.nic.log:
        if kind == "rx_start":
            starts[payload["seq"]] = t
        elif kind == "rx_end" and payload["seq"] in starts:
            rx_intervals.append((starts.pop(payload["seq"]), t))
    pollution = 0
    for lo, hi in windows:
        for r0, r1 in rx_intervals:
            pollution += max(0, min(hi, r1) - max(lo, r0))
    assert pollution > 0, (
        "expected the documented RX leak; balloons cannot defer reception"
    )


def test_rx_usage_not_counted_in_tx_drain():
    """Draining (is_drained) concerns the transmit path the OS controls."""
    sim, rail, nic = make_nic()
    nic.receive(1, 400_000)   # long reception
    assert nic.is_drained     # nothing queued on the TX side
