"""Unit tests for the accelerator command engine (GPU/DSP)."""

import pytest

from repro.hw.accel import Command
from repro.hw.gpu import Gpu
from repro.hw.rail import PowerRail
from repro.sim.clock import MSEC, SEC
from repro.sim.engine import Simulator


def make_gpu():
    sim = Simulator()
    rail = PowerRail(sim, "gpu")
    gpu = Gpu(sim, rail)
    gpu.freq_domain.set_opp(gpu.freq_domain.max_index)   # fixed 532 MHz
    return sim, rail, gpu


def test_command_validation():
    with pytest.raises(ValueError):
        Command(1, "x", 0, 0.5)
    with pytest.raises(ValueError):
        Command(1, "x", 1e6, -0.1)


def test_single_command_duration():
    sim, rail, gpu = make_gpu()
    done = []
    cmd = Command(1, "draw", 5.32e6, 0.5, on_complete=lambda c: done.append(sim.now))
    gpu.dispatch(cmd)
    sim.run(until=SEC)
    # 5.32e6 cycles at 532 MHz = 10 ms, plus the notification delay.
    assert done[0] == pytest.approx(10 * MSEC + gpu.completion_delay, rel=1e-6)
    assert cmd.complete_t == pytest.approx(10 * MSEC, rel=1e-6)


def test_concurrent_commands_share_and_slow_down():
    sim, rail, gpu = make_gpu()
    c1 = Command(1, "a", 5.32e6, 0.5)
    c2 = Command(2, "b", 5.32e6, 0.5)
    gpu.dispatch(c1)
    gpu.dispatch(c2)
    sim.run(until=SEC)
    # Two equal commands at efficiency 1.55: each runs at 0.775x speed.
    expected = 10 * MSEC / 0.775
    assert c1.complete_t == pytest.approx(expected, rel=1e-3)
    assert c2.complete_t == pytest.approx(expected, rel=1e-3)


def test_parallelism_limit_enforced():
    sim, rail, gpu = make_gpu()
    gpu.dispatch(Command(1, "a", 1e9, 0.5))
    gpu.dispatch(Command(1, "b", 1e9, 0.5))
    assert not gpu.has_room
    with pytest.raises(RuntimeError):
        gpu.dispatch(Command(1, "c", 1e6, 0.5))


def test_power_is_subadditive_for_overlap():
    sim, rail, gpu = make_gpu()
    gpu.dispatch(Command(1, "a", 1e9, 0.5))
    p_one = rail.power_now()
    gpu.dispatch(Command(2, "b", 1e9, 0.5))
    p_two = rail.power_now()
    p_idle = gpu.power_model.idle_w + gpu.freq_domain.opp.static_w
    assert p_two - p_idle < 2 * (p_one - p_idle)


def test_occupancy_accounts_full_device_time():
    sim, rail, gpu = make_gpu()
    c1 = Command(1, "a", 5.32e6, 0.5)
    c2 = Command(2, "b", 5.32e6, 0.5)
    gpu.dispatch(c1)
    gpu.dispatch(c2)
    sim.run(until=SEC)
    total_wall = c1.complete_t   # both complete together
    assert c1.occupancy_ns + c2.occupancy_ns == pytest.approx(
        total_wall, rel=1e-6
    )


def test_usage_traces_track_inflight_counts():
    sim, rail, gpu = make_gpu()
    gpu.dispatch(Command(7, "a", 5.32e6, 0.5))
    assert gpu.usage_traces[7].last_value == 1.0
    gpu.dispatch(Command(7, "b", 5.32e6, 0.5))
    assert gpu.usage_traces[7].last_value == 2.0
    sim.run(until=SEC)
    assert gpu.usage_traces[7].last_value == 0.0


def test_utilization_fraction():
    sim, rail, gpu = make_gpu()
    gpu.dispatch(Command(1, "a", 5.32e6, 0.5))   # 10 ms
    sim.run(until=20 * MSEC)
    assert gpu.utilization(0, 20 * MSEC) == pytest.approx(0.5, rel=1e-3)


def test_freq_change_slows_and_respeeds_commands():
    sim, rail, gpu = make_gpu()
    gpu.freq_domain.set_opp(0)    # 200 MHz
    cmd = Command(1, "a", 2.0e6, 0.5)
    gpu.dispatch(cmd)             # 10 ms at 200 MHz
    sim.call_later(5 * MSEC, gpu.freq_domain.set_opp, 2)   # 532 MHz
    sim.run(until=SEC)
    # Half done at 5 ms; remaining 1e6 cycles at 532 MHz = 1.88 ms.
    assert cmd.complete_t == pytest.approx(
        5 * MSEC + 1e6 / 532e6 * SEC, rel=1e-3
    )


def test_inflight_apps_lists_duplicates():
    sim, rail, gpu = make_gpu()
    gpu.dispatch(Command(3, "a", 1e9, 0.5))
    gpu.dispatch(Command(3, "b", 1e9, 0.5))
    assert gpu.inflight_apps() == [3, 3]
