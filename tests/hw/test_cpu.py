"""Unit tests for the CPU cluster and cores."""

import pytest

from repro.hw.cpu import CpuCluster, WorkItem
from repro.hw.dvfs import FreqDomain
from repro.hw.power import CpuPowerModel
from repro.hw.rail import PowerRail
from repro.sim.clock import MSEC, SEC
from repro.sim.engine import Simulator


def make_cluster(n_cores=2, initial_opp=0):
    sim = Simulator()
    rail = PowerRail(sim, "cpu")
    model = CpuPowerModel()
    domain = FreqDomain(sim, "cpu", model.opps, initial_index=initial_opp)
    cluster = CpuCluster(sim, rail, domain, model, n_cores=n_cores)
    return sim, rail, cluster


def test_work_item_validation():
    with pytest.raises(ValueError):
        WorkItem(0)


def test_burst_completes_after_cycles_over_freq():
    sim, rail, cluster = make_cluster(initial_opp=0)   # 300 MHz
    done = []
    work = WorkItem(3_000_000, on_complete=lambda core: done.append(sim.now))
    cluster.cores[0].start(1, work)
    sim.run(until=SEC)
    assert done == [pytest.approx(10 * MSEC, rel=1e-6)]


def test_freq_change_mid_burst_recomputes_completion():
    sim, rail, cluster = make_cluster(initial_opp=0)   # 300 MHz
    done = []
    work = WorkItem(3_000_000, on_complete=lambda core: done.append(sim.now))
    cluster.cores[0].start(1, work)
    # After 5 ms (1.5e6 cycles done), jump to 1.5 GHz: the remaining 1.5e6
    # cycles take 1 ms.
    sim.call_later(5 * MSEC, cluster.freq_domain.set_opp, 3)
    sim.run(until=SEC)
    assert done == [pytest.approx(6 * MSEC, rel=1e-6)]


def test_preempt_preserves_progress():
    sim, rail, cluster = make_cluster(initial_opp=0)
    core = cluster.cores[0]
    done = []
    work = WorkItem(3_000_000, on_complete=lambda c: done.append(sim.now))
    core.start(1, work)
    sim.run(until=4 * MSEC)
    resumed = core.preempt()
    assert resumed is work
    assert work.done == pytest.approx(1_200_000, rel=1e-6)
    # Resume: remaining 1.8e6 cycles at 300 MHz = 6 ms.
    core.start(1, work)
    sim.run(until=SEC)
    assert done == [pytest.approx(10 * MSEC, rel=1e-6)]


def test_core_busy_flag_and_traces():
    sim, rail, cluster = make_cluster()
    core = cluster.cores[0]
    assert not core.busy
    core.start(7, WorkItem(3_000_000))
    assert core.busy
    assert cluster.busy_traces[0].last_value == 1.0
    assert cluster.owner_traces[0].last_value == 7.0
    core.preempt()
    assert cluster.owner_traces[0].last_value == -1.0


def test_starting_busy_core_raises():
    sim, rail, cluster = make_cluster()
    core = cluster.cores[0]
    core.start(1, WorkItem(1e6))
    with pytest.raises(RuntimeError):
        core.start(2, WorkItem(1e6))


def test_rail_power_reflects_active_cores():
    sim, rail, cluster = make_cluster(initial_opp=0)
    model = cluster.power_model
    opp = cluster.freq_domain.opp
    assert rail.power_now() == pytest.approx(model.idle_w)
    cluster.cores[0].start(1, WorkItem(1e9))
    assert rail.power_now() == pytest.approx(model.rail_power(opp, 1))
    cluster.cores[1].start(2, WorkItem(1e9))
    assert rail.power_now() == pytest.approx(model.rail_power(opp, 2))


def test_utilization_and_max_core_utilization():
    sim, rail, cluster = make_cluster(initial_opp=0)
    cluster.cores[0].start(1, WorkItem(1.5e6))   # 5 ms at 300 MHz
    sim.run(until=10 * MSEC)
    assert cluster.utilization(0, 10 * MSEC) == pytest.approx(0.25, rel=1e-6)
    assert cluster.max_core_utilization(0, 10 * MSEC) == pytest.approx(
        0.5, rel=1e-6
    )


def test_preempt_idle_core_returns_none():
    sim, rail, cluster = make_cluster()
    assert cluster.cores[0].preempt() is None
