"""Unit tests for the analytic power models — the entanglement sources."""

import pytest

from repro.hw.power import AccelPowerModel, CpuPowerModel, NicPowerModel, OperatingPoint


def test_operating_point_validation():
    with pytest.raises(ValueError):
        OperatingPoint(0, 1, 1, 1)


class TestCpuPowerModel:
    def test_idle_rail_power(self):
        model = CpuPowerModel()
        assert model.rail_power(model.opps[-1], 0) == model.idle_w

    def test_active_power_grows_with_cores(self):
        model = CpuPowerModel()
        opp = model.opps[-1]
        assert model.rail_power(opp, 2) > model.rail_power(opp, 1)

    def test_spatial_entanglement_subadditive(self):
        """P(2 cores) < 2 * P(1 core): shared static + uncore power.

        This is the Figure 3(a) effect at the model level."""
        model = CpuPowerModel()
        for opp in model.opps:
            assert model.rail_power(opp, 2) < 2 * model.rail_power(opp, 1)

    def test_power_grows_with_frequency(self):
        model = CpuPowerModel()
        powers = [model.rail_power(opp, 1) for opp in model.opps]
        assert powers == sorted(powers)


class TestAccelPowerModel:
    def test_no_commands_is_idle_plus_static(self):
        model = AccelPowerModel()
        opp = model.opps[0]
        assert model.rail_power(opp, opp.freq_hz, []) == pytest.approx(
            model.idle_w + opp.static_w
        )

    def test_overlap_factor_below_one_for_concurrency(self):
        model = AccelPowerModel()
        assert model.overlap_factor(1) == 1.0
        assert model.overlap_factor(2) < 1.0
        assert model.overlap_factor(99) <= model.overlap_factor(2)

    def test_request_entanglement_subadditive(self):
        """P(two commands) < P(cmd1 alone) + P(cmd2 alone) - idle."""
        model = AccelPowerModel()
        opp = model.opps[-1]
        nominal = opp.freq_hz
        both = model.rail_power(opp, nominal, [0.5, 0.7])
        one = model.rail_power(opp, nominal, [0.5])
        other = model.rail_power(opp, nominal, [0.7])
        base = model.rail_power(opp, nominal, [])
        assert both < one + other - base

    def test_frequency_scales_active_power_superlinearly(self):
        model = AccelPowerModel()
        low, high = model.opps[0], model.opps[-1]
        p_low = model.rail_power(low, high.freq_hz, [1.0]) - low.static_w
        p_high = model.rail_power(high, high.freq_hz, [1.0]) - high.static_w
        ratio = (p_high - model.idle_w) / (p_low - model.idle_w)
        assert ratio > high.freq_hz / low.freq_hz

    def test_zero_inflight_overlap_factor(self):
        assert AccelPowerModel().overlap_factor(0) == 0.0


class TestNicPowerModel:
    def test_state_power_ordering(self):
        model = NicPowerModel()
        assert model.psm_w < model.cam_w < model.tx_w(0)

    def test_tx_levels_increase(self):
        model = NicPowerModel()
        levels = [model.tx_w(i) for i in range(len(model.tx_levels_w))]
        assert levels == sorted(levels)
