"""Tests for the OLED display model (§7 extension)."""

import pytest

from repro.hw.display import OledDisplay
from repro.hw.rail import PowerRail
from repro.sim.clock import MSEC, SEC
from repro.sim.engine import Simulator


def make_display():
    sim = Simulator()
    rail = PowerRail(sim, "display")
    return sim, rail, OledDisplay(sim, rail)


def test_base_power_always_present():
    sim, rail, display = make_display()
    assert rail.power_now() == pytest.approx(display.base_w)


def test_surface_power_linear_in_pixels_and_intensity():
    sim, rail, display = make_display()
    assert display.surface_power(0.5, 0.5) == pytest.approx(
        display.full_panel_w * 0.25
    )
    assert display.surface_power(1.0, 1.0) == display.full_panel_w
    assert display.surface_power(0.0, 1.0) == 0.0


def test_per_app_power_composes_exactly():
    """The OLED property: total = base + sum of per-app surface power."""
    sim, rail, display = make_display()
    display.set_surface(1, 0.5, 0.8)
    display.set_surface(2, 0.3, 0.4)
    expected = (display.base_w + display.surface_power(0.5, 0.8)
                + display.surface_power(0.3, 0.4))
    assert rail.power_now() == pytest.approx(expected)


def test_surfaces_cannot_exceed_panel():
    sim, rail, display = make_display()
    display.set_surface(1, 0.7, 1.0)
    with pytest.raises(ValueError):
        display.set_surface(2, 0.5, 1.0)
    # Resizing your own surface within bounds is fine.
    display.set_surface(1, 0.9, 1.0)


def test_parameter_validation():
    sim, rail, display = make_display()
    with pytest.raises(ValueError):
        display.set_surface(1, -0.1, 0.5)
    with pytest.raises(ValueError):
        display.set_surface(1, 0.5, 1.5)


def test_app_energy_is_exact():
    sim, rail, display = make_display()
    display.set_surface(1, 0.5, 1.0)
    sim.call_later(500 * MSEC, display.clear_surface, 1)
    sim.run(until=SEC)
    expected = display.surface_power(0.5, 1.0) * 0.5
    assert display.app_energy(1, 0, SEC) == pytest.approx(expected)
    assert display.app_energy(99, 0, SEC) == 0.0


def test_clear_surface_removes_power():
    sim, rail, display = make_display()
    display.set_surface(1, 0.4, 1.0)
    display.clear_surface(1)
    assert rail.power_now() == pytest.approx(display.base_w)
