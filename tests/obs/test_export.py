"""Exporter tests: Chrome-trace JSON validity, nesting, bit-identity.

The differential test at the bottom is the layer's core promise: installing
an Obs session — tracing off *or on* — leaves the run bit-identical to one
without the layer (the tracer is read-only and draws no RNG).
"""

import json

import pytest

from repro.experiments.faults_exp import build_workload
from repro.faults import fingerprint
from repro.obs import (
    Obs,
    chrome_trace_events,
    export_chrome_trace,
    export_metrics,
    format_metrics_table,
    metrics_snapshot,
)
from repro.obs.exporters import export_timeline_jsonl, timeline_jsonl_lines
from repro.obs.timeline import Timeline
from repro.sim.engine import Simulator


def _session_with_activity():
    """A hand-built session: nested spans, cross-event close, leak, extras."""
    sim = Simulator(0)
    obs = Obs(sim, label="unit").install()
    tracer = obs.tracer
    state = {}

    def begin():
        state["balloon"] = tracer.begin("balloon.cpu", cat="balloon",
                                        track="smp", app=1)
        state["ipi"] = tracer.begin("ipi.shootdown", parent=state["balloon"],
                                    detached=True, core=1)
        tracer.instant("loan.grant", cat="loan", track="smp", app=1)
        sim.call_later(300, arrive)

    def arrive():
        tracer.end(state["ipi"])
        tracer.sample("opp.cpu", track="governor.cpu", opp=2)
        sim.call_later(200, finish)

    def finish():
        tracer.end(state["balloon"], reason="done")
        tracer.begin("leak", cat="balloon", track="smp", detached=True)

    sim.at(100, begin)
    sim.run()
    obs.metrics.inc("smp.balloons")
    obs.metrics.observe("smp.balloon_ns", 500.0)
    obs.metrics.set("level", 0.25)
    return obs


@pytest.fixture()
def events():
    return chrome_trace_events([_session_with_activity()])


def test_trace_events_are_json_serializable(events):
    parsed = json.loads(json.dumps(events))
    assert len(parsed) == len(events)
    assert all(e["ph"] in ("M", "b", "e", "i", "C") for e in parsed)


def test_trace_has_process_and_thread_metadata(events):
    meta = [e for e in events if e["ph"] == "M"]
    names = {e["name"] for e in meta}
    assert names == {"process_name", "thread_name"}
    process = next(e for e in meta if e["name"] == "process_name")
    assert process["args"]["name"] == "unit"
    threads = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert "smp" in threads and "governor.cpu" in threads


def test_timestamps_are_monotonic_and_microseconds(events):
    body = [e for e in events if e["ph"] != "M"]
    ts = [e["ts"] for e in body]
    assert ts == sorted(ts)
    begin = next(e for e in body if e["name"] == "balloon.cpu")
    assert begin["ts"] == pytest.approx(0.1)   # 100 ns = 0.1 us


def test_async_begin_end_balance_and_nesting(events):
    """Per async group: b/e balanced, never more ends than begins."""
    depths = {}
    for e in events:
        if e["ph"] not in ("b", "e"):
            continue
        key = (e["pid"], e["cat"], e["id"])
        depth = depths.get(key, 0)
        if e["ph"] == "b":
            depths[key] = depth + 1
        else:
            assert depth > 0, "end before begin in group {}".format(key)
            depths[key] = depth - 1
    assert depths and all(depth == 0 for depth in depths.values())


def test_child_spans_share_the_roots_async_id(events):
    balloon = next(e for e in events
                   if e["ph"] == "b" and e["name"] == "balloon.cpu")
    ipi = next(e for e in events
               if e["ph"] == "b" and e["name"] == "ipi.shootdown")
    assert ipi["id"] == balloon["id"]
    assert ipi["cat"] == balloon["cat"] == "balloon"


def test_unfinished_spans_are_closed_and_flagged(events):
    leak_end = next(e for e in events
                    if e["ph"] == "e" and e["name"] == "leak")
    assert leak_end["args"].get("unfinished") is True
    # Closed at trace end (sim.now == 600 ns == 0.6 us).
    assert leak_end["ts"] == pytest.approx(0.6)


def test_instants_and_counter_samples_exported(events):
    instant = next(e for e in events if e["ph"] == "i")
    assert instant["name"] == "loan.grant"
    assert instant["s"] == "t"
    counter = next(e for e in events if e["ph"] == "C")
    assert counter["name"] == "opp.cpu"
    assert counter["args"] == {"opp": 2}


def test_export_chrome_trace_writes_document(tmp_path):
    path = tmp_path / "trace.json"
    count = export_chrome_trace([_session_with_activity()], str(path))
    document = json.loads(path.read_text())
    assert len(document["traceEvents"]) == count > 0
    assert document["displayTimeUnit"] == "ns"
    assert document["otherData"]["sessions"] == ["unit"]


def test_metrics_snapshot_merges_sessions(tmp_path):
    a, b = _session_with_activity(), _session_with_activity()
    snap = metrics_snapshot([a, b])
    assert len(snap["sessions"]) == 2
    assert snap["merged"]["counters"]["smp.balloons"] == 2
    assert snap["merged"]["histograms"]["smp.balloon_ns"]["count"] == 2
    path = tmp_path / "metrics.json"
    export_metrics([a, b], str(path))
    assert json.loads(path.read_text())["merged"] == snap["merged"]
    table = format_metrics_table(snap)
    assert "smp.balloons" in table and "histogram" in table


def test_format_metrics_table_empty():
    assert "no metrics" in format_metrics_table(
        {"merged": {"counters": {}, "gauges": {}, "histograms": {}}})


def test_metrics_snapshot_counts_unfinished_spans():
    a, b = _session_with_activity(), _session_with_activity()
    snap = metrics_snapshot([a, b])
    # each hand-built session leaks exactly one detached span ("leak")
    assert [s["unfinished_spans"] for s in snap["sessions"]] == [1, 1]
    assert snap["unfinished_spans"] == 2


def test_timeline_jsonl_dump(tmp_path):
    sim = Simulator(0)
    obs = Obs(sim, label="tl", timeline=Timeline(capacity=2)).install()
    bare = Obs(Simulator(0), label="bare").install()   # no timeline: skipped
    for i in range(3):
        obs.timeline.record("power.w", i * 100, float(i), node="n0")
    obs.timeline.record("users", 50, 7.0)
    lines = timeline_jsonl_lines([obs, bare])
    docs = [json.loads(line) for line in lines]
    assert [d["series"] for d in docs] == ["power.w", "users"]
    power = docs[0]
    assert power["session"] == "tl"
    assert power["labels"] == {"node": "n0"}
    assert power["points"] == [[100, 1.0], [200, 2.0]]   # ring kept last 2
    assert power["dropped"] == 1
    assert power["disordered"] == 0
    assert docs[1]["disordered"] == 0
    path = tmp_path / "series.jsonl"
    assert export_timeline_jsonl([obs, bare], str(path)) == 2
    assert path.read_text().count("\n") == 2


def test_timeline_jsonl_reports_disordered_appends():
    obs = Obs(Simulator(0), label="tl", timeline=Timeline()).install()
    obs.timeline.record("s", 100, 1.0)
    obs.timeline.record("s", 40, 2.0)    # out of order: kept, but counted
    doc = json.loads(timeline_jsonl_lines([obs])[0])
    assert doc["disordered"] == 1
    assert doc["points"] == [[100, 1.0], [40, 2.0]]


# -- the differential promise -------------------------------------------------------


def _mixed_fingerprint(obs_mode):
    """Run the mixed fault-campaign workload; obs_mode None = no session."""
    work = build_workload("mixed", 0)
    obs = None
    if obs_mode is not None:
        obs = Obs(work.platform.sim, tracing=obs_mode).install()
        obs.bind_kernel(work.kernel)
    work.platform.sim.run(until=work.horizon_ns)
    return fingerprint(work.platform, work.kernel), obs


@pytest.fixture(scope="module")
def differential():
    baseline, _ = _mixed_fingerprint(None)
    silent, _ = _mixed_fingerprint(False)
    traced, obs = _mixed_fingerprint(True)
    return baseline, silent, traced, obs


def test_installed_but_disabled_tracer_is_bit_identical(differential):
    baseline, silent, _traced, _obs = differential
    assert silent == baseline


def test_enabled_tracer_is_bit_identical_too(differential):
    """Tracing is read-only: even *enabled* it must not perturb the run."""
    baseline, _silent, traced, _obs = differential
    assert traced == baseline


def test_enabled_tracer_actually_recorded_the_run(differential):
    _baseline, _silent, _traced, obs = differential
    assert len(obs.tracer.spans) > 0
    assert obs.metrics.counter("smp.balloons").value > 0
    events = chrome_trace_events([obs])
    json.dumps(events)
    assert any(e["ph"] == "b" and e["name"] == "ipi.shootdown"
               for e in events)
