"""The virtual-time series store: rings, labels, subscribers."""

import pytest

from repro.obs.timeline import Series, Timeline, canonical_labels


class TestCanonicalLabels:
    def test_empty_is_empty_tuple(self):
        assert canonical_labels({}) == ()

    def test_sorted_and_stringified(self):
        assert canonical_labels({"b": 2, "a": "x"}) == (("a", "x"),
                                                        ("b", "2"))

    def test_order_independent_identity(self):
        assert (canonical_labels({"a": 1, "b": 2})
                == canonical_labels({"b": 2, "a": 1}))


class TestSeries:
    def test_append_and_read_back(self):
        series = Series("power.w")
        series.append(10, 1.5)
        series.append(20, 2.5)
        assert series.points() == [(10, 1.5), (20, 2.5)]
        assert series.times() == [10, 20]
        assert series.values() == [1.5, 2.5]
        assert series.last() == (20, 2.5)
        assert len(series) == 2

    def test_samples_coerced_to_int_ns_float_value(self):
        series = Series("s")
        series.append(10.0, 3)
        t, v = series.last()
        assert isinstance(t, int) and isinstance(v, float)

    def test_ring_evicts_oldest_and_counts_drops(self):
        series = Series("s", capacity=3)
        for i in range(5):
            series.append(i, float(i))
        assert series.points() == [(2, 2.0), (3, 3.0), (4, 4.0)]
        assert series.dropped == 2
        assert len(series) == 3

    def test_empty_series(self):
        series = Series("s")
        assert series.last() is None
        assert series.points() == []
        assert series.dropped == 0
        assert series.disordered == 0

    def test_out_of_order_append_counted_not_discarded(self):
        series = Series("s")
        series.append(100, 1.0)
        series.append(50, 2.0)     # out of order
        series.append(50, 2.5)     # equal timestamps are in order
        series.append(40, 3.0)     # out of order again
        assert series.disordered == 2
        assert len(series) == 4    # the samples themselves are kept

    def test_monotone_appends_never_count_as_disordered(self):
        series = Series("s", capacity=3)
        for i in range(10):
            series.append(i, float(i))
        assert series.disordered == 0
        assert series.dropped == 7

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Series("s", capacity=0)

    def test_key_includes_canonical_labels(self):
        assert Series("s").key == "s"
        series = Series("s", labels={"node": "n1", "app": "web"})
        assert series.key == "s{app=web,node=n1}"


class TestTimeline:
    def test_create_on_first_use(self):
        timeline = Timeline()
        a = timeline.series("power.w", node="n0")
        b = timeline.series("power.w", node="n0")
        c = timeline.series("power.w", node="n1")
        assert a is b
        assert a is not c
        assert len(timeline) == 2

    def test_record_appends_and_returns_series(self):
        timeline = Timeline()
        series = timeline.record("power.w", 100, 2.0, node="n0")
        assert series.last() == (100, 2.0)
        assert "power.w" in timeline
        assert "other" not in timeline

    def test_all_sorted_by_name_then_labels(self):
        timeline = Timeline()
        timeline.record("b", 0, 1.0)
        timeline.record("a", 0, 1.0, x="2")
        timeline.record("a", 0, 1.0, x="1")
        assert [s.key for s in timeline.all()] == ["a{x=1}", "a{x=2}", "b"]
        assert timeline.names() == ["a", "b"]

    def test_capacity_flows_to_series(self):
        timeline = Timeline(capacity=2)
        for i in range(4):
            timeline.record("s", i, float(i))
        series = timeline.series("s")
        assert series.dropped == 2
        assert timeline.total_dropped() == 2

    def test_total_disordered_sums_series(self):
        timeline = Timeline()
        timeline.record("a", 10, 1.0)
        timeline.record("a", 5, 1.0)
        timeline.record("b", 10, 1.0, node="n0")
        timeline.record("b", 4, 1.0, node="n0")
        timeline.record("b", 3, 1.0, node="n0")
        assert timeline.total_disordered() == 3

    def test_subscribers_see_every_sample(self):
        timeline = Timeline()
        seen = []
        timeline.subscribe(lambda series, t, v: seen.append(
            (series.key, t, v)))
        timeline.record("s", 10, 1.0, node="n0")
        timeline.record("s", 20, 2.0, node="n0")
        assert seen == [("s{node=n0}", 10, 1.0), ("s{node=n0}", 20, 2.0)]

    def test_unsubscribe_stops_delivery(self):
        timeline = Timeline()
        seen = []
        fn = timeline.subscribe(lambda series, t, v: seen.append(t))
        timeline.record("s", 1, 0.0)
        timeline.unsubscribe(fn)
        timeline.record("s", 2, 0.0)
        assert seen == [1]
        timeline.unsubscribe(fn)   # idempotent
