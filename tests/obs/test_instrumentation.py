"""End-to-end instrumentation tests over real kernel workloads.

Runs the fault-campaign workloads with an Obs session installed and asserts
the kernel's spans, instants, and metrics describe what actually happened:
shootdown spans nested under CPU balloons, drain/serve phase spans on the
accelerators and NIC, governor transitions, fault injections, and checker
violations as tagged trace events.
"""

import pytest

from repro.check import CheckViolation, InvariantChecker
from repro.experiments.common import boot
from repro.experiments.faults_exp import build_workload
from repro.faults import scenario
from repro.obs import Obs
from repro.sim.clock import from_msec


@pytest.fixture(scope="module")
def traced_run():
    work = build_workload("mixed", 0)
    obs = Obs(work.platform.sim, tracing=True).install()
    obs.bind_kernel(work.kernel)
    work.platform.sim.run(until=work.horizon_ns)
    return work, obs


def test_shootdown_spans_nest_under_cpu_balloons(traced_run):
    _work, obs = traced_run
    balloons = obs.tracer.find("balloon.cpu", "balloon")
    shootdowns = obs.tracer.find("ipi.shootdown")
    assert balloons and shootdowns
    balloon_ids = {span.id for span in balloons}
    assert all(span.parent_id in balloon_ids for span in shootdowns)
    assert all(span.closed for span in shootdowns)
    assert all(span.track == "smp" for span in shootdowns)


def test_balloon_spans_cover_positive_virtual_time(traced_run):
    _work, obs = traced_run
    closed = [s for s in obs.tracer.find("balloon.cpu") if s.closed]
    assert closed
    assert all(span.duration >= 0 for span in closed)
    assert any(span.duration > 0 for span in closed)
    assert all("reason" in span.args for span in closed)


def test_temporal_balloon_phase_spans(traced_run):
    """GPU and NIC serve windows appear as phase spans on their tracks."""
    _work, obs = traced_run
    for device in ("gpu", "wifi"):
        serves = obs.tracer.find(device + ".serve", "balloon")
        assert serves, "no serve spans for " + device
        assert all(span.track == device for span in serves)
        drains = obs.tracer.find(device + ".drain_others", "balloon")
        assert drains
        # Phases are sequential per device: drain ends before serve starts.
        first_serve = min(span.start for span in serves)
        first_drain = min(span.start for span in drains)
        assert first_drain <= first_serve


def test_governor_activity_traced(traced_run):
    _work, obs = traced_run
    names = {name for _t, _tr, name, _c, _a in obs.tracer.instants}
    assert "ctx.switch" in names
    assert any(name == "opp.cpu" for _t, _tr, name, _v in obs.tracer.samples)
    assert obs.metrics.counter("governor.cpu.switches").value > 0


def test_loan_lifecycle_instants(traced_run):
    _work, obs = traced_run
    loans = [args for _t, _tr, name, cat, args in obs.tracer.instants
             if cat == "loan"]
    grants = [args for _t, _tr, name, _c, args in obs.tracer.instants
              if name == "loan.grant"]
    settles = [args for _t, _tr, name, _c, args in obs.tracer.instants
               if name == "loan.settle"]
    assert loans and grants and settles
    assert all("total" in args for args in settles)


def test_metrics_describe_the_run(traced_run):
    _work, obs = traced_run
    counters = obs.metrics.counters
    assert counters["smp.balloons"].value > 0
    assert counters["cfs.dispatches"].value > 0
    assert counters["gpu.submitted"].value > 0
    assert counters["wifi.dispatched"].value > 0
    assert counters["smp.ipi.sent"].value >= counters["smp.ipi.arrived"].value
    latency = obs.metrics.histograms["smp.shootdown_latency_ns"]
    assert latency.count == counters["smp.ipi.arrived"].value
    assert latency.min >= 0


def test_log_stats_report_kernel_logs(traced_run):
    _work, obs = traced_run
    stats = obs.log_stats()
    assert stats
    assert all(set(entry) == {"retained", "dropped"}
               for entry in stats.values())
    assert any(entry["retained"] > 0 for entry in stats.values())
    assert all(entry["dropped"] == 0 for entry in stats.values())


def test_fault_injections_become_tagged_instants():
    work = build_workload("mixed", 0)
    obs = Obs(work.platform.sim, tracing=True).install()
    plan = scenario("ipi-delay").build_plan(work.platform.sim, enabled=True)
    work.platform.sim.run(until=work.horizon_ns)
    assert plan.injections() > 0
    injects = [(name, cat, args)
               for _t, _tr, name, cat, args in obs.tracer.instants
               if cat == "fault"]
    assert len(injects) == plan.injections()
    assert all(name.startswith("inject.") for name, _cat, _args in injects)
    assert all("kind" in args for _name, _cat, args in injects)
    assert obs.metrics.counter("faults.injections").value == plan.injections()


def test_checker_violations_become_tagged_instants():
    platform, kernel = boot(seed=0)
    obs = Obs(platform.sim, tracing=True).install()
    checker = InvariantChecker(kernel)
    checker._flag("balloon_exclusivity", "smp", "cosched", "boom")
    instants = [(name, cat, args)
                for _t, _tr, name, cat, args in obs.tracer.instants]
    assert instants == [("violation.balloon_exclusivity", "check",
                         {"component": "smp", "event": "cosched",
                          "message": "boom"})]
    assert obs.metrics.counter("check.violations").value == 1
    # Strict mode still records the event before raising.
    strict = InvariantChecker(kernel, strict=True)
    with pytest.raises(CheckViolation):
        strict._flag("vstate_restore", "governor.cpu", "switch", "bad opp")
    assert obs.metrics.counter("check.violations").value == 2
    assert obs.metrics.counter(
        "check.violations.vstate_restore").value == 1


def test_powercap_control_loop_traced():
    work = build_workload("powercap", 0)
    obs = Obs(work.platform.sim, tracing=True).install()
    work.platform.sim.run(until=from_msec(600))
    ticks = obs.tracer.find("powercap.tick", "powercap")
    assert ticks
    assert all(span.closed and span.track == "powercap" for span in ticks)
    assert obs.metrics.counter("powercap.ticks").value == len(ticks)
    assert work.controller.ticks == len(ticks)
    gauges = obs.metrics.gauges
    assert "powercap.aggregate_w" in gauges
    assert any(name.endswith(".level") for name in gauges)
    assert any(name == "powercap.aggregate_w"
               for _t, _tr, name, _v in obs.tracer.samples)
