"""The flight recorder: arming, triggers, snapshot content, bounds."""

import json

from repro.check.checker import InvariantChecker
from repro.obs import flight
from repro.obs.alerts import AlertEngine, AlertRule
from repro.obs.flight import FlightRecorder, _jsonable
from repro.obs.session import Obs
from repro.obs.timeline import Timeline
from repro.powercap.telemetry import TelemetryRing


class FakeSim:
    def __init__(self):
        self.now = 0
        self.obs = None
        self.faults = None
        self._ctx_tracer = None


class FakeKernel:
    """Just enough kernel for InvariantChecker._flag."""

    def __init__(self, sim):
        self.sim = sim


def make_session(label="test", rules=None, recorder=None):
    obs = Obs(FakeSim(), label=label, tracing=True,
              timeline=Timeline()).install()
    engine = AlertEngine(rules if rules is not None else [])
    engine.watch(obs)
    if recorder is not None:
        recorder.watch(obs)
    return obs, engine


def teardown_function(_fn):
    flight.disarm()


class TestArming:
    def test_disarmed_by_default(self):
        assert flight.active() is None

    def test_arm_disarm_roundtrip(self):
        recorder = flight.arm(FlightRecorder())
        assert flight.active() is recorder
        flight.disarm()
        assert flight.active() is None


class TestAlertTrigger:
    def test_fired_alert_snapshots(self):
        recorder = flight.arm(FlightRecorder())
        rule = AlertRule("hot", series="w", op=">", threshold=1.0)
        obs, _engine = make_session(rules=[rule], recorder=recorder)
        obs.sim.now = 50
        obs.timeline.record("w", 50, 2.0)
        assert len(recorder.dumps) == 1
        dump = recorder.dumps[0]
        assert dump["trigger"]["type"] == "alert"
        assert dump["trigger"]["rule"] == "hot"
        assert dump["alerts"][0]["rule"] == "hot"
        (session,) = dump["sessions"]
        assert session["label"] == "test"
        keys = {(s["name"], tuple(sorted(s["labels"].items())))
                for s in session["series"]}
        assert ("w", ()) in keys

    def test_no_recorder_no_effect(self):
        rule = AlertRule("hot", series="w", op=">", threshold=1.0)
        obs, engine = make_session(rules=[rule])
        obs.timeline.record("w", 0, 2.0)     # must not raise
        assert len(engine.alerts) == 1


class TestViolationTrigger:
    def test_checker_flag_snapshots(self):
        recorder = flight.arm(FlightRecorder())
        checker = InvariantChecker(FakeKernel(FakeSim()))
        checker.sim.now = 77
        checker._flag("balloon.exclusive", "smp", "cosched", "intruder")
        assert len(recorder.dumps) == 1
        trigger = recorder.dumps[0]["trigger"]
        assert trigger["type"] == "violation"
        assert trigger["invariant"] == "balloon.exclusive"
        assert trigger["t_ns"] == 77


class TestSnapshotBounds:
    def test_max_dumps_then_suppressed(self):
        recorder = FlightRecorder(max_dumps=2)
        for i in range(5):
            recorder.snapshot({"type": "test", "i": i})
        assert len(recorder.dumps) == 2
        assert recorder.suppressed == 3

    def test_series_tail_window(self):
        recorder = FlightRecorder(series_tail=3)
        obs, _ = make_session(recorder=recorder)
        for i in range(10):
            obs.timeline.record("w", i, float(i))
        dump = recorder.snapshot({"type": "test"})
        (series,) = dump["sessions"][0]["series"]
        assert series["points"] == [[7, 7.0], [8, 8.0], [9, 9.0]]

    def test_instants_tail_window(self):
        recorder = FlightRecorder(events_tail=2)
        obs, _ = make_session(recorder=recorder)
        for i in range(5):
            obs.tracer.instant("e{}".format(i), track="t")
        dump = recorder.snapshot({"type": "test"})
        names = [row[2] for row in dump["sessions"][0]["instants"]]
        assert names == ["e3", "e4"]


class TestActionRings:
    def test_note_ring_dedups_and_labels(self):
        recorder = FlightRecorder()
        ring = TelemetryRing()
        ring.record(10, "t0.web", 1.0, 2.0, "throttle", 0.25)
        recorder.note_ring(ring, "node00")
        recorder.note_ring(ring, "other-label")   # same object: ignored
        dump = recorder.snapshot({"type": "test"})
        (action,) = dump["actions"]
        assert action["session"] == "node00"
        assert action["node"] == "t0.web"
        assert action["action"] == "throttle"


class TestPersistence:
    def test_dump_files_and_manifest(self, tmp_path):
        out = tmp_path / "flight"
        recorder = FlightRecorder(out_dir=str(out), max_dumps=2)
        recorder.snapshot({"type": "test", "i": 0})
        recorder.snapshot({"type": "test", "i": 1})
        recorder.snapshot({"type": "test", "i": 2})   # suppressed
        assert recorder.flush() == 2
        names = sorted(p.name for p in out.iterdir())
        assert names == ["flight-000.json", "flight-001.json",
                         "manifest.json"]
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["dumps"] == ["flight-000.json", "flight-001.json"]
        assert manifest["suppressed"] == 1
        dump = json.loads((out / "flight-000.json").read_text())
        assert dump["format"] == flight.FORMAT

    def test_flush_without_dumps_writes_nothing(self, tmp_path):
        out = tmp_path / "flight"
        recorder = FlightRecorder(out_dir=str(out))
        assert recorder.flush() == 0
        assert not out.exists()


class TestJsonable:
    def test_primitives_pass_through(self):
        assert _jsonable({"a": [1, 2.5, "x", None, True]}) == {
            "a": [1, 2.5, "x", None, True]}

    def test_tuples_become_lists(self):
        assert _jsonable((1, (2, 3))) == [1, [2, 3]]

    def test_objects_become_type_names_not_reprs(self):
        class Widget:
            pass

        text = _jsonable(Widget())
        assert text == "<Widget>"        # no id()/address leakage
        assert json.dumps(_jsonable({"k": Widget()}))
