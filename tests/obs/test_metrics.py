"""Metrics unit tests: counters, gauges, weighted histograms, merging."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_accumulates():
    c = Counter("c")
    c.inc()
    c.inc(41)
    assert c.value == 42


def test_gauge_tracks_envelope():
    g = Gauge("g")
    assert g.value is None
    g.set(5.0)
    g.set(1.0)
    g.set(3.0)
    assert g.value == 3.0
    assert g.min == 1.0
    assert g.max == 5.0
    assert g.updates == 3


def test_histogram_unweighted_quantiles():
    h = Histogram("h")
    for v in range(1, 101):
        h.observe(v)
    assert h.count == 100
    assert h.min == 1 and h.max == 100
    assert h.mean == pytest.approx(50.5)
    assert h.quantile(0.5) == 50
    assert h.quantile(0.0) == 1
    assert h.quantile(1.0) == 100


def test_histogram_weighted_quantiles_are_time_weighted():
    # An OPP residency: value 1.0 held for 9 units, value 10.0 for 1 unit.
    h = Histogram("h")
    h.observe(1.0, weight=9.0)
    h.observe(10.0, weight=1.0)
    assert h.quantile(0.5) == 1.0
    assert h.quantile(0.89) == 1.0
    assert h.quantile(0.95) == 10.0
    assert h.mean == pytest.approx((1.0 * 9 + 10.0 * 1) / 10)


def test_histogram_rejects_bad_quantile_and_ignores_zero_weight():
    h = Histogram("h")
    assert h.quantile(0.5) is None
    h.observe(1.0, weight=0.0)
    assert h.count == 0
    h.observe(1.0)
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_merge_is_exact():
    a, b, both = Histogram("a"), Histogram("b"), Histogram("both")
    for v in (1, 2, 3):
        a.observe(v)
        both.observe(v)
    for v in (10, 20):
        b.observe(v, weight=2.0)
        both.observe(v, weight=2.0)
    a.merge_from(b)
    for q in (0.1, 0.5, 0.9):
        assert a.quantile(q) == both.quantile(q)
    assert a.mean == pytest.approx(both.mean)


def test_registry_create_on_demand_and_conveniences():
    reg = MetricsRegistry()
    reg.inc("events")
    reg.inc("events", 2)
    reg.set("level", 0.5)
    reg.observe("latency", 10.0)
    assert reg.counter("events").value == 3
    assert reg.gauge("level").value == 0.5
    assert reg.histogram("latency").count == 1
    assert len(reg) == 3
    # Same name returns the same handle.
    assert reg.counter("events") is reg.counter("events")


def test_registry_merge_semantics():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.inc("n", 1)
    b.inc("n", 2)
    b.inc("only_b", 5)
    a.set("g", 1.0)
    b.set("g", 0.5)
    b.set("g", 4.0)
    a.observe("h", 1.0)
    b.observe("h", 3.0)
    a.merge_from(b)
    assert a.counter("n").value == 3
    assert a.counter("only_b").value == 5
    assert a.gauge("g").value == 4.0      # the merged-in latest wins
    assert a.gauge("g").min == 0.5
    assert a.gauge("g").max == 4.0
    assert a.histogram("h").count == 2


def test_snapshot_shape():
    reg = MetricsRegistry()
    reg.inc("c")
    reg.set("g", 2.0)
    reg.observe("h", 5.0)
    snap = reg.snapshot()
    assert snap["counters"] == {"c": 1}
    assert snap["gauges"]["g"] == {"value": 2.0, "min": 2.0, "max": 2.0}
    hist = snap["histograms"]["h"]
    assert hist["count"] == 1
    assert hist["p50"] == 5.0
    assert hist["p99"] == 5.0
    # The snapshot must be JSON-serializable as-is.
    import json
    json.dumps(snap)


def test_quantile_validates_q_even_when_empty():
    h = Histogram("h")
    with pytest.raises(ValueError):
        h.quantile(-0.1)
    with pytest.raises(ValueError):
        h.quantile(1.5)
    assert h.quantile(0.5) is None      # empty is None, AFTER validation


def test_quantile_cache_invalidated_by_observe():
    h = Histogram("h")
    h.observe(10.0)
    assert h.quantile(0.5) == 10.0
    h.observe(1.0)
    h.observe(2.0)
    assert h.quantile(0.0) == 1.0       # stale cache would still say 10
    assert h.quantile(1.0) == 10.0


def test_quantile_cache_invalidated_by_merge():
    a, b = Histogram("a"), Histogram("b")
    a.observe(5.0)
    assert a.quantile(0.5) == 5.0       # populate the cache
    b.observe(50.0)
    a.merge_from(b)
    assert a.quantile(1.0) == 50.0


def test_quantile_repeated_calls_reuse_one_sort():
    h = Histogram("h")
    for v in (3.0, 1.0, 2.0):
        h.observe(v)
    first = h.quantile(0.5)
    assert h._sorted is not None
    cached = h._sorted
    assert h.quantile(0.5) == first
    assert h._sorted is cached          # no re-sort between observes
