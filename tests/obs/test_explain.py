"""The explain engine: loaders, incident walk, renderers, determinism."""

import json
import os

from repro.obs.explain import (
    Evidence,
    evidence_from_dump,
    explain,
    format_incidents,
    load,
    load_bundle,
    overlay_trace_events,
    render_json,
    series_key,
    write_reports,
)

# a 1 kHz-ish cadence so windows stay in easy integers: gap = 100 ns
GAP = 100


def _alert(rule="cap.compliance", session="node00", series="powercap.err",
           labels=None, t_ns=1000, streak=3, value=0.5,
           message="err 0.50 > 0.01"):
    return {"rule": rule, "severity": "critical", "session": session,
            "series": series, "labels": dict(labels or {}), "t_ns": t_ns,
            "value": value, "streak": streak, "message": message}


def _evidence():
    """A hand-built incident: breach at t=1000, cadence 100 ns.

    Window: t0 = 1000 - 4*100 = 600, t1 = 1000 + 2*100 = 1200.
    """
    ev = Evidence("<test>", "bundle")
    # breached series: flat then ramps into the breach
    ev.add_series("node00", "powercap.err", {},
                  [(t, 0.0 if t < 700 else (t - 600) / 1000.0)
                   for t in range(0, 1300, GAP)])
    # tracks the breach exactly (r == +1 on the window grid)
    ev.add_series("node00", "follower.w", {},
                  [(t, 0.0 if t < 700 else (t - 600) / 500.0)
                   for t in range(0, 1300, GAP)])
    # constant: no variance, must be excluded from the shortlist
    ev.add_series("node00", "flat.w", {},
                  [(t, 5.0) for t in range(0, 1300, GAP)])
    # outside the window entirely: excluded (too few in-window points)
    ev.add_series("node00", "early.w", {}, [(0, 1.0), (100, 2.0)])
    # attribution inputs: 3 W aggregate split 2:1 across two leaves
    ev.add_series("node00", "powercap.aggregate_w", {}, [(0, 3.0)])
    ev.add_series("node00", "powercap.leaf_measured_w", {"leaf": "big"},
                  [(0, 2.0)])
    ev.add_series("node00", "powercap.leaf_measured_w", {"leaf": "small"},
                  [(0, 1.0)])
    ev.alerts = [_alert()]
    ev.actions = [
        {"kind": "action", "session": "node00", "node": "t0.web",
         "t_ns": 800, "action": "throttle", "level": 0.5},
        {"kind": "action", "session": "node00", "node": "t0.web",
         "t_ns": 900, "action": "hold", "level": 0.5},      # filtered
        {"kind": "action", "session": "node00", "node": "t0.web",
         "t_ns": 5000, "action": "throttle", "level": 0.25},  # outside
    ]
    ev.injections = [
        {"kind": "inject", "session": "node00", "t_ns": 700,
         "site": "powercap.telemetry", "fault": "corrupt"},
        {"kind": "inject", "session": "node00", "t_ns": 750,
         "site": "powercap.telemetry", "fault": "corrupt"},
        {"kind": "inject", "session": "node00", "t_ns": 5000,
         "site": "powercap.telemetry", "fault": "corrupt"},  # outside
    ]
    return ev


class TestSeriesKey:
    def test_bare_name(self):
        assert series_key("power.w", {}) == "power.w"

    def test_labels_sorted_into_braces(self):
        key = series_key("power.w", {"node": "n0", "app": "web"})
        assert key == "power.w{app=web,node=n0}"


class TestIncidentWalk:
    def test_window_from_streak_and_cadence(self):
        report = explain(_evidence())
        (incident,) = report["incidents"]
        window = incident["window"]
        assert window["gap_ns"] == GAP
        assert window["t0_ns"] == 1000 - 4 * GAP   # (streak+1) * gap
        assert window["t1_ns"] == 1000 + 2 * GAP   # POST_SAMPLES * gap

    def test_breached_series_summary(self):
        (incident,) = explain(_evidence())["incidents"]
        breached = incident["breached"]
        assert breached["series"] == "powercap.err"
        assert breached["session"] == "node00"
        assert breached["points_in_window"] == 6    # 600..1100
        assert breached["max"] == 0.5

    def test_correlation_ranks_the_follower_excludes_flat(self):
        (incident,) = explain(_evidence())["incidents"]
        names = [row["series"] for row in incident["correlated"]]
        assert names[0] == "follower.w"
        assert incident["correlated"][0]["r"] == 1.0
        assert "flat.w" not in names        # constant: no correlation
        assert "early.w" not in names       # not enough window points

    def test_attribution_names_the_big_leaf(self):
        (incident,) = explain(_evidence())["incidents"]
        assert incident["top"]["sandboxes"] == "node00/big"
        ranked = incident["attribution"]["sandboxes"]["policies"][
            "per_sample"]
        assert [row["entity"] for row in ranked] == [
            "node00/big", "node00/small"]

    def test_discrete_events_filtered_to_window(self):
        (incident,) = explain(_evidence())["incidents"]
        assert incident["actions_total"] == 1      # hold + outside dropped
        assert incident["actions"][0]["t_ns"] == 800
        assert incident["injections_total"] == 2
        (site,) = incident["injection_sites"]
        assert site["site"] == "powercap.telemetry"
        assert site["count"] == 2
        assert site["sessions"] == ["node00"]

    def test_missing_series_still_yields_incident(self):
        ev = Evidence("<test>", "bundle")
        ev.alerts = [_alert(series="nowhere")]
        (incident,) = explain(ev)["incidents"]
        assert incident["breached"] is None
        assert incident["correlated"] == []
        assert incident["window"]["gap_ns"] == 250_000_000   # default

    def test_episodes_sorted_and_numbered(self):
        ev = _evidence()
        ev.alerts = [_alert(t_ns=1000), _alert(t_ns=900, rule="other")]
        report = explain(ev)
        assert [i["trigger"]["t_ns"] for i in report["incidents"]] == [
            900, 1000]
        assert [i["id"] for i in report["incidents"]] == [0, 1]


class TestDumpEvidence:
    def _dump(self, trigger=None):
        return {
            "format": "psbox-flight", "version": 1,
            "trigger": trigger or {"type": "alert", "rule": "hot"},
            "sessions": [{
                "label": "node00",
                "series": [{"name": "w", "labels": {},
                            "points": [[0, 1.0], [100, 2.0]]}],
                "injections": [{"site": "s", "fault": "corrupt",
                                "t_ns": 50}],
            }],
            "actions": [{"t": 60, "node": "n", "action": "throttle"}],
            "alerts": [_alert(series="w", t_ns=100, streak=1)],
        }

    def test_sessions_actions_injections_normalized(self):
        ev = evidence_from_dump(self._dump())
        assert ev.kind == "flight"
        assert ev.find_series("w", session="node00")
        assert ev.actions[0]["t_ns"] == 60        # "t" renamed
        assert ev.injections[0]["session"] == "node00"
        assert len(ev.alerts) == 1

    def test_violation_trigger_synthesizes_episode(self):
        dump = self._dump(trigger={
            "type": "violation", "invariant": "balloon.exclusive",
            "component": "smp", "t_ns": 77, "message": "intruder"})
        dump["alerts"] = []
        ev = evidence_from_dump(dump)
        (incident,) = explain(ev)["incidents"]
        assert incident["trigger"]["rule"] == "check.balloon.exclusive"
        assert incident["trigger"]["t_ns"] == 77

    def test_list_evidence_merges_and_dedups(self):
        # two dumps captured the same episode: one incident, not two
        ev_a = evidence_from_dump(self._dump(), source="a")
        ev_b = evidence_from_dump(self._dump(), source="b")
        report = explain([ev_a, ev_b])
        assert report["source"] == ["a", "b"]
        assert len(report["incidents"]) == 1
        assert report["incidents"][0]["id"] == 0


class TestLoaders:
    def _write_bundle(self, path):
        os.makedirs(path)
        ev = _evidence()
        with open(os.path.join(path, "series.jsonl"), "w") as handle:
            for entry in ev.series:
                handle.write(json.dumps({
                    "session": entry["session"], "series": entry["name"],
                    "labels": entry["labels"],
                    "points": [list(p) for p in entry["points"]],
                }) + "\n")
        with open(os.path.join(path, "report.json"), "w") as handle:
            json.dump({"alerts": ev.alerts}, handle)
        with open(os.path.join(path, "events.jsonl"), "w") as handle:
            for doc in ev.actions + ev.injections:
                handle.write(json.dumps(doc) + "\n")

    def test_load_bundle_round_trips_the_report(self, tmp_path):
        bundle = str(tmp_path / "telemetry")
        self._write_bundle(bundle)
        ev = load(bundle)
        assert ev.kind == "bundle"
        in_memory = explain(_evidence())
        from_disk = explain(ev)
        in_memory["source"] = from_disk["source"] = "X"
        assert render_json(from_disk) == render_json(in_memory)

    def test_load_flight_dir_and_file(self, tmp_path):
        dump = TestDumpEvidence()._dump()
        path = tmp_path / "flight" / "flight-000.json"
        path.parent.mkdir()
        path.write_text(json.dumps(dump))
        assert load(str(path)).kind == "flight"        # single file
        loaded = load(str(path.parent))                # directory
        assert isinstance(loaded, list) and len(loaded) == 1

    def test_load_rejects_unrecognized_paths(self, tmp_path):
        try:
            load(str(tmp_path))       # empty dir: neither bundle nor dumps
        except FileNotFoundError:
            pass
        else:
            raise AssertionError("expected FileNotFoundError")
        try:
            load(str(tmp_path / "missing"))
        except FileNotFoundError:
            pass
        else:
            raise AssertionError("expected FileNotFoundError")

    def test_load_bundle_without_sidecars(self, tmp_path):
        bundle = tmp_path / "telemetry"
        bundle.mkdir()
        (bundle / "series.jsonl").write_text("")
        ev = load_bundle(str(bundle))
        assert ev.alerts == [] and ev.actions == []
        assert explain(ev)["incidents"] == []


class TestRenderers:
    def test_render_json_is_deterministic(self):
        a = render_json(explain(_evidence()))
        b = render_json(explain(_evidence()))
        assert a == b
        json.loads(a)                      # valid JSON, trailing newline
        assert a.endswith("\n")

    def test_format_incidents_mentions_the_story(self):
        text = format_incidents(explain(_evidence()))
        assert "cap.compliance" in text
        assert "top sandbox" in text        # singularized, no "sandboxe"
        assert "sandboxe " not in text
        assert "powercap.telemetry x2" in text
        assert "follower.w" in text
        assert "1 actuator change(s)" in text

    def test_format_incidents_empty(self):
        ev = Evidence("<none>", "bundle")
        assert "no alert episodes" in format_incidents(explain(ev))

    def test_overlay_trace_is_chrome_shaped(self):
        events = overlay_trace_events(explain(_evidence()))
        json.dumps(events)
        phs = {e["ph"] for e in events}
        assert phs == {"M", "i", "C"}
        pids = {e["pid"] for e in events}
        assert pids == {1000}               # 1000 + incident id
        counters = [e for e in events if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert "attributed.node00/big" in names

    def test_write_reports_creates_all_three(self, tmp_path):
        out = str(tmp_path / "reports")
        paths = write_reports(explain(_evidence()), out)
        assert [os.path.basename(p) for p in paths] == [
            "incidents.json", "incidents.txt", "incident_trace.json"]
        for path in paths:
            assert os.path.getsize(path) > 0
        doc = json.loads(open(paths[0]).read())
        assert doc["format"] == "psbox-incidents"
