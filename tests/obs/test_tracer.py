"""Tracer unit tests: span lifecycles, causal context, disabled no-ops."""

from repro.obs import Obs
from repro.sim.engine import Simulator


def _obs(tracing=True):
    sim = Simulator(0)
    return sim, Obs(sim, label="t", tracing=tracing).install()


def test_scoped_spans_nest_within_a_cascade():
    sim, obs = _obs()
    tracer = obs.tracer
    seen = {}

    def handler():
        outer = tracer.begin("outer", cat="c")
        inner = tracer.begin("inner")
        seen["outer"] = outer
        seen["inner"] = inner
        tracer.end(inner)
        tracer.end(outer)

    sim.call_soon(handler)
    sim.run()
    assert seen["inner"].parent_id == seen["outer"].id
    assert seen["outer"].parent_id is None
    assert seen["inner"].closed and seen["outer"].closed
    assert tracer.children_of(seen["outer"]) == [seen["inner"]]


def test_span_records_virtual_time():
    sim, obs = _obs()
    handle = {}

    def begin():
        handle["span"] = obs.tracer.begin("work")
        sim.call_later(500, finish)

    def finish():
        obs.tracer.end(handle["span"], outcome="done")

    sim.at(100, begin)
    sim.run()
    span = handle["span"]
    assert span.start == 100
    assert span.end == 600
    assert span.duration == 500
    assert span.args["outcome"] == "done"


def test_context_propagates_through_scheduled_events():
    """A span current at schedule time parents spans in the continuation."""
    sim, obs = _obs()
    tracer = obs.tracer
    seen = {}

    def begin():
        seen["parent"] = tracer.begin("parent")
        sim.call_later(1000, continuation)
        tracer.end(seen["parent"])

    def continuation():
        # The event loop unwound in between, but the event carried the span.
        assert tracer.current is seen["parent"]
        seen["child"] = tracer.begin("child")
        tracer.end(seen["child"])

    sim.call_soon(begin)
    sim.run()
    assert seen["child"].parent_id == seen["parent"].id


def test_events_scheduled_outside_any_span_carry_no_context():
    sim, obs = _obs()
    tracer = obs.tracer
    seen = {}

    def handler():
        seen["current"] = tracer.current
        seen["span"] = tracer.begin("orphan")
        tracer.end(seen["span"])

    sim.call_soon(handler)
    sim.run()
    assert seen["current"] is None
    assert seen["span"].parent_id is None


def test_detached_span_does_not_become_current():
    sim, obs = _obs()
    tracer = obs.tracer
    seen = {}

    def handler():
        seen["det"] = tracer.begin("det", detached=True)
        seen["current"] = tracer.current
        other = tracer.begin("other")
        seen["other"] = other
        tracer.end(other)
        tracer.end(seen["det"])

    sim.call_soon(handler)
    sim.run()
    assert seen["current"] is None
    assert seen["other"].parent_id is None
    # ...but a detached span still takes the current span as its parent.
    assert seen["det"].parent_id is None


def test_detached_span_with_explicit_parent():
    sim, obs = _obs()
    tracer = obs.tracer
    seen = {}

    def handler():
        root = tracer.begin("root", cat="balloon", track="smp")
        det = tracer.begin("ipi", parent=root, detached=True)
        seen["root"], seen["det"] = root, det
        tracer.end(det)
        tracer.end(root)

    sim.call_soon(handler)
    sim.run()
    assert seen["det"].parent_id == seen["root"].id
    # Track inheritance: a child with no track takes its parent's.
    assert seen["det"].track == "smp"


def test_unclosed_spans_reported_open():
    sim, obs = _obs()
    tracer = obs.tracer
    sim.call_soon(lambda: tracer.begin("leak", detached=True))
    sim.run()
    assert len(tracer.open_spans()) == 1
    assert tracer.open_spans()[0].name == "leak"


def test_end_is_idempotent_and_none_safe():
    sim, obs = _obs()
    tracer = obs.tracer

    def handler():
        span = tracer.begin("once")
        tracer.end(span)
        first_end = span.end
        sim.call_later(100, lambda: tracer.end(span))
        sim.call_later(100, lambda: tracer.end(None))
        handler.first_end = first_end

    sim.call_soon(handler)
    sim.run()
    span = tracer.spans[0]
    assert span.end == handler.first_end == 0


def test_span_context_manager():
    sim, obs = _obs()

    def handler():
        with obs.tracer.span("block", cat="c", track="tr", arg=1) as span:
            assert obs.tracer.current is span
        assert span.closed

    sim.call_soon(handler)
    sim.run()
    assert obs.tracer.find("block", "c")[0].args == {"arg": 1}


def test_instants_inherit_current_track():
    sim, obs = _obs()
    tracer = obs.tracer

    def handler():
        with tracer.span("holder", track="smp"):
            tracer.instant("ping", cat="c", n=3)
        tracer.instant("bare")

    sim.call_soon(handler)
    sim.run()
    (t0, track0, name0, cat0, args0), (_t1, track1, _n1, _c1, _a1) = \
        tracer.instants
    assert (track0, name0, cat0, args0) == ("smp", "ping", "c", {"n": 3})
    assert track1 == ""


def test_disabled_tracer_records_nothing():
    sim, obs = _obs(tracing=False)
    tracer = obs.tracer

    def handler():
        span = tracer.begin("x", detached=False)
        assert span is None
        tracer.end(span)
        tracer.instant("i")
        tracer.sample("s", v=1)
        with tracer.span("cm") as cm:
            assert cm is None

    sim.call_soon(handler)
    sim.run()
    assert len(tracer) == 0
    assert tracer.instants == []
    assert tracer.samples == []


def test_find_filters_by_name_and_cat():
    sim, obs = _obs()
    tracer = obs.tracer

    def handler():
        tracer.end(tracer.begin("a", cat="x"))
        tracer.end(tracer.begin("a", cat="y"))
        tracer.end(tracer.begin("b", cat="x"))

    sim.call_soon(handler)
    sim.run()
    assert len(tracer.find("a")) == 2
    assert len(tracer.find(cat="x")) == 2
    assert len(tracer.find("a", "y")) == 1
