"""The SLO/alert rule engine: streaming evaluation over timelines."""

import pytest

from repro.obs.alerts import AlertEngine, AlertRule, default_rules
from repro.obs.session import Obs
from repro.obs.timeline import Timeline


class FakeSim:
    """The minimal sim surface an Obs session needs."""

    def __init__(self):
        self.now = 0
        self.obs = None
        self.faults = None
        self._ctx_tracer = None


def make_session(label="test", rules=None):
    obs = Obs(FakeSim(), label=label, tracing=True,
              timeline=Timeline()).install()
    engine = AlertEngine(rules)
    engine.watch(obs)
    return obs, engine


class TestAlertRule:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            AlertRule("r", series="s", op="~=")

    def test_for_samples_must_be_positive(self):
        with pytest.raises(ValueError):
            AlertRule("r", series="s", for_samples=0)

    def test_breached_per_op(self):
        assert AlertRule("r", series="s", op=">",
                         threshold=1.0).breached(1.5)
        assert not AlertRule("r", series="s", op=">",
                             threshold=1.0).breached(1.0)
        assert AlertRule("r", series="s", op="<",
                         threshold=1.0).breached(0.5)
        assert AlertRule("r", series="s", op="abs>",
                         threshold=0.1).breached(-0.2)
        assert AlertRule("r", series="s", op=">=",
                         threshold=1.0).breached(1.0)
        assert AlertRule("r", series="s", op="<=",
                         threshold=1.0).breached(1.0)

    def test_matches_name_and_label_subset(self):
        timeline = Timeline()
        series = timeline.series("power.w", node="n0", app="web")
        assert AlertRule("r", series="power.w").matches(series)
        assert AlertRule("r", series="power.w",
                         labels=(("node", "n0"),)).matches(series)
        assert not AlertRule("r", series="power.w",
                             labels=(("node", "n1"),)).matches(series)
        assert not AlertRule("r", series="other").matches(series)


class TestStreamingEvaluation:
    def test_fires_after_consecutive_breaches(self):
        rule = AlertRule("hot", series="w", op=">", threshold=1.0,
                         for_samples=3)
        obs, engine = make_session(rules=[rule])
        for t, v in enumerate([2.0, 2.0]):
            obs.timeline.record("w", t, v)
        assert engine.alerts == []
        obs.timeline.record("w", 2, 2.0)
        assert len(engine.alerts) == 1
        alert = engine.alerts[0]
        assert alert.rule == "hot" and alert.t_ns == 2
        assert alert.streak == 3 and alert.session == "test"

    def test_streak_resets_on_recovery(self):
        rule = AlertRule("hot", series="w", op=">", threshold=1.0,
                         for_samples=2)
        obs, engine = make_session(rules=[rule])
        for t, v in enumerate([2.0, 0.5, 2.0, 0.5, 2.0]):
            obs.timeline.record("w", t, v)
        assert engine.alerts == []

    def test_one_alert_per_breach_episode(self):
        rule = AlertRule("hot", series="w", op=">", threshold=1.0,
                         for_samples=2)
        obs, engine = make_session(rules=[rule])
        # one long breach: exactly one alert, not one per extra sample
        for t in range(6):
            obs.timeline.record("w", t, 2.0)
        assert len(engine.alerts) == 1
        # recovery then a new breach: a second episode, a second alert
        obs.timeline.record("w", 6, 0.0)
        obs.timeline.record("w", 7, 2.0)
        obs.timeline.record("w", 8, 2.0)
        assert len(engine.alerts) == 2

    def test_series_tracked_independently(self):
        rule = AlertRule("hot", series="w", op=">", threshold=1.0,
                         for_samples=2)
        obs, engine = make_session(rules=[rule])
        obs.timeline.record("w", 0, 2.0, node="a")
        obs.timeline.record("w", 0, 2.0, node="b")
        obs.timeline.record("w", 1, 2.0, node="a")
        assert len(engine.alerts) == 1
        assert engine.alerts[0].labels == {"node": "a"}

    def test_alert_emits_tracer_instant(self):
        rule = AlertRule("hot", series="w", op=">", threshold=1.0)
        obs, engine = make_session(rules=[rule])
        obs.timeline.record("w", 5, 2.0)
        names = [name for _t, _track, name, _c, _a in obs.tracer.instants]
        assert "alert.hot" in names

    def test_fires_even_after_ring_evicted_evidence(self):
        # the ring holds 2 samples but the rule needs 3 consecutive —
        # streaming evaluation still sees all of them
        rule = AlertRule("hot", series="w", op=">", threshold=1.0,
                         for_samples=3)
        obs = Obs(FakeSim(), label="t", timeline=Timeline(capacity=2))
        obs.install()
        engine = AlertEngine([rule])
        engine.watch(obs)
        for t in range(3):
            obs.timeline.record("w", t, 2.0)
        assert len(engine.alerts) == 1


class TestFinalize:
    def test_at_end_rule_sees_last_sample_only(self):
        rule = AlertRule("leftover", series="open", op=">", threshold=0.0,
                         at_end=True)
        obs, engine = make_session(rules=[rule])
        obs.timeline.record("open", 0, 5.0)   # mid-run: must not fire
        assert engine.alerts == []
        obs.timeline.record("open", 9, 2.0)
        engine.finalize()
        assert len(engine.alerts) == 1
        assert engine.alerts[0].value == 2.0

    def test_at_end_rule_quiet_when_condition_holds(self):
        rule = AlertRule("leftover", series="open", op=">", threshold=0.0,
                         at_end=True)
        obs, engine = make_session(rules=[rule])
        obs.timeline.record("open", 9, 0.0)
        engine.finalize()
        assert engine.alerts == []

    def test_finalize_idempotent(self):
        rule = AlertRule("leftover", series="open", op=">", threshold=0.0,
                         at_end=True)
        obs, engine = make_session(rules=[rule])
        obs.timeline.record("open", 9, 1.0)
        engine.finalize()
        engine.finalize()
        assert len(engine.alerts) == 1


class TestReporting:
    def test_ok_tracks_critical_only(self):
        warn = AlertRule("w", series="s", op=">", threshold=0.0,
                         severity="warning")
        crit = AlertRule("c", series="s", op=">", threshold=1.0,
                         severity="critical")
        obs, engine = make_session(rules=[warn, crit])
        obs.timeline.record("s", 0, 0.5)
        assert engine.ok
        obs.timeline.record("s", 1, 0.0)   # re-arm
        obs.timeline.record("s", 2, 2.0)
        assert not engine.ok

    def test_summary_is_json_shaped(self):
        rule = AlertRule("hot", series="w", op=">", threshold=1.0)
        obs, engine = make_session(rules=[rule])
        obs.timeline.record("w", 5, 2.0, node="n0")
        summary = engine.summary()
        assert summary["ok"] is True
        assert summary["counts"] == {"hot": 1}
        (alert,) = summary["alerts"]
        assert alert["series"] == "w" and alert["labels"] == {"node": "n0"}
        assert summary["rules"][0]["name"] == "hot"

    def test_format_report_mentions_alerts(self):
        rule = AlertRule("hot", series="w", op=">", threshold=1.0,
                         severity="critical")
        obs, engine = make_session(rules=[rule])
        assert "no alerts" in engine.format_report()
        obs.timeline.record("w", 5, 2.0)
        report = engine.format_report()
        assert "hot" in report and "NOT OK" in report

    def test_unwatch_all_stops_evaluation(self):
        rule = AlertRule("hot", series="w", op=">", threshold=1.0)
        obs, engine = make_session(rules=[rule])
        engine.unwatch_all()
        obs.timeline.record("w", 0, 2.0)
        assert engine.alerts == []

    def test_watch_skips_sessions_without_timeline(self):
        obs = Obs(FakeSim(), label="bare").install()
        engine = AlertEngine()
        engine.watch(obs)
        assert engine._watched == []

    def test_repeated_watch_does_not_stack_subscribers(self):
        # Regression: a second watch() on the same session used to add a
        # second subscriber, so every sample streamed through the rules
        # twice — a for_samples=2 rule then fired on a SINGLE breaching
        # sample (streak counted 2), and alerts were double-evaluated.
        rule = AlertRule("hot", series="w", op=">", threshold=1.0,
                         for_samples=2)
        obs, engine = make_session(rules=[rule])
        engine.watch(obs)          # re-watch: must be a no-op
        engine.watch(obs)
        assert len(engine._watched) == 1
        obs.timeline.record("w", 0, 2.0)
        assert engine.alerts == []     # one sample is NOT a streak of 2
        obs.timeline.record("w", 1, 2.0)
        assert len(engine.alerts) == 1

    def test_unwatch_all_then_rewatch_single_subscription(self):
        rule = AlertRule("hot", series="w", op=">", threshold=1.0)
        obs, engine = make_session(rules=[rule])
        engine.unwatch_all()
        engine.watch(obs)
        engine.watch(obs)
        obs.timeline.record("w", 0, 2.0)
        assert len(engine.alerts) == 1     # fired once, not per-subscriber
        assert len(obs.timeline._subscribers) == 1


class TestDefaultRules:
    def test_cover_the_documented_slos(self):
        names = {rule.name for rule in default_rules()}
        assert names == {"cap.compliance", "node.cap.compliance",
                         "placement.drop_rate", "tenant.starvation",
                         "trace.unfinished_spans"}

    def test_unfinished_spans_is_at_end(self):
        rule = next(r for r in default_rules()
                    if r.name == "trace.unfinished_spans")
        assert rule.at_end
