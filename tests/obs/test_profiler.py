"""Event-loop profiler tests: aggregation, ranking, harmlessness."""

from repro.obs import EventLoopProfiler
from repro.obs.profiler import callsite
from repro.sim.engine import Simulator


def _busy(n):
    total = 0
    for i in range(n):
        total += i * i
    return total


def test_profiler_aggregates_by_callsite():
    sim = Simulator(0)
    profiler = EventLoopProfiler().install(sim)
    assert sim.profile is profiler

    def fast():
        _busy(10)

    def slow():
        _busy(20000)

    for i in range(5):
        sim.at(i * 10, fast)
    sim.at(100, slow)
    sim.run()

    assert profiler.events == 6
    assert profiler.total_s > 0
    stats = profiler.stats
    fast_key = callsite(fast)
    slow_key = callsite(slow)
    assert stats[fast_key][0] == 5
    assert stats[slow_key][0] == 1
    assert fast_key.startswith("tests.obs.test_profiler")


def test_top_ranks_by_cumulative_wall_time():
    profiler = EventLoopProfiler()
    profiler.record(_busy, 0.001)
    profiler.record(_busy, 0.001)
    profiler.record(test_top_ranks_by_cumulative_wall_time, 0.005)
    top = profiler.top(1)
    assert len(top) == 1
    key, calls, seconds = top[0]
    assert key == callsite(test_top_ranks_by_cumulative_wall_time)
    assert calls == 1 and seconds == 0.005
    assert len(profiler.top(10)) == 2


def test_format_table_renders():
    profiler = EventLoopProfiler()
    assert "no events profiled" in profiler.format_table()
    profiler.record(_busy, 0.002)
    table = profiler.format_table(5)
    assert callsite(_busy) in table
    assert "100.0%" in table


def test_profiled_run_reaches_the_same_virtual_time():
    def workload(sim, log):
        def tick(n):
            log.append((sim.now, n))
            if n:
                sim.call_later(7, tick, n - 1)
        sim.call_soon(tick, 20)
        sim.run()

    plain_sim, plain_log = Simulator(0), []
    workload(plain_sim, plain_log)
    prof_sim, prof_log = Simulator(0), []
    EventLoopProfiler().install(prof_sim)
    workload(prof_sim, prof_log)
    assert prof_log == plain_log
    assert prof_sim.now == plain_sim.now


def test_callsite_handles_plain_callables():
    class Handler:
        def __call__(self):
            pass

    label = callsite(Handler())
    assert isinstance(label, str) and label
