"""The OpenMetrics exposition: grammar, escaping, round-trip parse."""

import re

from repro.obs.openmetrics import (
    escape_label_value,
    openmetrics_lines,
    render_openmetrics,
    sanitize_label_name,
    sanitize_name,
)
from repro.obs.session import Obs
from repro.obs.timeline import Timeline

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (\S+)$')
_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


class FakeSim:
    def __init__(self):
        self.now = 0
        self.obs = None
        self.faults = None
        self._ctx_tracer = None


def make_session(label="run", timeline=False):
    return Obs(FakeSim(), label=label,
               timeline=Timeline() if timeline else None).install()


def parse(text):
    """Parse an exposition document back into families and samples."""
    families = {}
    samples = []
    assert text.endswith("# EOF\n")
    for line in text.splitlines():
        if line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            _h, _t, name, kind = line.split(" ")
            assert name not in families, "duplicate family " + name
            families[name] = kind
            continue
        match = _SAMPLE_RE.match(line)
        assert match, "unparseable sample line: " + line
        name, labelset, value = match.groups()
        labels = dict(_PAIR_RE.findall(labelset or ""))
        samples.append((name, labels, float(value)))
    return families, samples


class TestSanitization:
    def test_dots_become_underscores(self):
        assert sanitize_name("powercap.cap_w") == "powercap_cap_w"

    def test_leading_digit_prefixed(self):
        assert _NAME_RE.match(sanitize_name("9lives"))
        assert _NAME_RE.match(sanitize_name(""))

    def test_arbitrary_junk_sanitizes_clean(self):
        for raw in ("a-b c", "per/sec", "µops", "1.2.3", "a{b}"):
            assert _NAME_RE.match(sanitize_name(raw)), raw

    def test_label_names_disallow_colon(self):
        assert _LABEL_RE.match(sanitize_label_name("a:b"))
        assert _LABEL_RE.match(sanitize_label_name("0node"))


class TestEscaping:
    def test_backslash_quote_newline(self):
        assert escape_label_value('a"b') == r'a\"b'
        assert escape_label_value("a\\b") == r"a\\b"
        assert escape_label_value("a\nb") == r"a\nb"

    def test_escaped_values_round_trip(self):
        obs = make_session(label='node "zero"\n\\path')
        obs.metrics.inc("requests")
        _families, samples = parse(render_openmetrics([obs]))
        (name, labels, value) = samples[0]
        assert name == "requests_total" and value == 1.0
        unescaped = (labels["session"].replace(r"\n", "\n")
                     .replace(r"\"", '"').replace("\\\\", "\\"))
        assert unescaped == 'node "zero"\n\\path'


class TestDocument:
    def test_empty_registry_is_just_eof(self):
        assert openmetrics_lines([]) == ["# EOF"]
        obs = make_session()
        assert openmetrics_lines([obs]) == ["# EOF"]

    def test_untouched_gauges_are_omitted(self):
        obs = make_session()
        obs.metrics.gauge("idle")      # created, never set
        assert openmetrics_lines([obs]) == ["# EOF"]

    def test_counter_gets_total_suffix(self):
        obs = make_session()
        obs.metrics.inc("ipi.sent", 3)
        families, samples = parse(render_openmetrics([obs]))
        assert families == {"ipi_sent": "counter"}
        assert samples == [("ipi_sent_total", {"session": "run"}, 3.0)]

    def test_histogram_becomes_summary(self):
        obs = make_session()
        for v in (1.0, 2.0, 3.0, 4.0):
            obs.metrics.observe("latency.s", v)
        families, samples = parse(render_openmetrics([obs]))
        assert families == {"latency_s": "summary"}
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert by_name["latency_s_count"][0][1] == 4.0
        assert by_name["latency_s_sum"][0][1] == 10.0
        quantiles = {labels["quantile"]: value
                     for labels, value in by_name["latency_s"]}
        assert set(quantiles) == {"0.5", "0.9", "0.99"}

    def test_round_trip_every_value(self):
        a = make_session(label="a", timeline=True)
        b = make_session(label="b")
        a.metrics.inc("events", 7)
        a.metrics.set("watts", 2.25)
        a.timeline.record("cap.w", 100, 3.5, node="n0")
        a.timeline.record("cap.w", 200, 4.5, node="n1")
        b.metrics.inc("events", 2)
        families, samples = parse(render_openmetrics([a, b]))
        assert families == {"events": "counter", "watts": "gauge",
                            "cap_w": "gauge",
                            "repro_timeline_dropped_samples": "counter",
                            "repro_timeline_disordered_samples": "counter"}
        table = {(name, tuple(sorted(labels.items()))): value
                 for name, labels, value in samples}
        assert table[("events_total", (("session", "a"),))] == 7.0
        assert table[("events_total", (("session", "b"),))] == 2.0
        assert table[("watts", (("session", "a"),))] == 2.25
        # timeline series export the LAST sample with their labels
        assert table[("cap_w", (("node", "n0"), ("session", "a")))] == 3.5
        assert table[("cap_w", (("node", "n1"), ("session", "a")))] == 4.5

    def test_duplicate_session_labels_deduped(self):
        a = make_session(label="node00")
        b = make_session(label="node00")
        a.metrics.inc("x")
        b.metrics.inc("x")
        _families, samples = parse(render_openmetrics([a, b]))
        sessions = {labels["session"] for _n, labels, _v in samples}
        assert sessions == {"node00", "node00#2"}

    def test_registry_gauge_wins_over_timeline_twin(self):
        # the cap loop publishes cluster.aggregate_w both as a registry
        # gauge and a timeline series; the family must carry ONE sample
        obs = make_session(timeline=True)
        obs.metrics.set("cluster.aggregate_w", 5.0)
        obs.timeline.record("cluster.aggregate_w", 100, 5.000001)
        _families, samples = parse(render_openmetrics([obs]))
        values = [v for name, _l, v in samples
                  if name == "cluster_aggregate_w"]
        assert values == [5.0]

    def test_families_sorted_and_terminated(self):
        obs = make_session()
        obs.metrics.inc("zebra")
        obs.metrics.inc("aardvark")
        lines = openmetrics_lines([obs])
        type_lines = [line for line in lines if line.startswith("# TYPE")]
        assert type_lines == sorted(type_lines)
        assert lines[-1] == "# EOF"

    def test_dropped_samples_counter_reflects_ring(self):
        obs = make_session(timeline=True)
        obs.timeline = Timeline(capacity=2)
        for i in range(5):
            obs.timeline.record("s", i, float(i))
        _families, samples = parse(render_openmetrics([obs]))
        table = {name: value for name, _l, value in samples}
        assert table["repro_timeline_dropped_samples_total"] == 3.0
        assert table["repro_timeline_disordered_samples_total"] == 0.0

    def test_disordered_samples_counter_reflects_ring(self):
        obs = make_session(timeline=True)
        obs.timeline.record("s", 100, 1.0)
        obs.timeline.record("s", 50, 2.0)      # out of order
        obs.timeline.record("t", 10, 1.0)
        obs.timeline.record("t", 5, 1.0)       # out of order
        obs.timeline.record("t", 1, 1.0)       # and again
        _families, samples = parse(render_openmetrics([obs]))
        table = {name: value for name, _l, value in samples}
        assert table["repro_timeline_disordered_samples_total"] == 3.0
