"""Edge-path coverage: rarely-hit but supported state transitions."""

import pytest

from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel
from repro.sim.clock import MSEC, SEC
from repro.sim.engine import Simulator

from tests.kernel.conftest import make_app


def test_cpu_less_platform_rejects_tasks():
    platform = Platform(Simulator(0), components=("gpu",))
    kernel = Kernel(platform)
    app = App(kernel, "a")
    with pytest.raises(RuntimeError):
        app.spawn(iter(()))


def test_accel_psbox_leave_during_drain_others(booted):
    """Leaving before the window ever opened must unwind cleanly."""
    platform, kernel = booted
    victim = make_app(kernel, "victim")
    boxed = make_app(kernel, "boxed")
    sched = kernel.gpu_sched
    sched.submit(victim, "long", 20e6, 0.8)     # keeps the engine busy
    sched.set_psbox(boxed)
    sched.submit(boxed, "b", 1e6, 0.5)          # triggers drain-others
    assert sched.state == "drain_others"
    sched.set_psbox(None)                       # leave mid-drain
    assert sched.state == "normal"
    platform.sim.run(until=SEC)
    completes = [p["app"] for _t, _k, p in sched.log.filter(kind="complete")]
    assert boxed.id in completes and victim.id in completes


def test_net_psbox_leave_during_drain(booted):
    platform, kernel = booted
    victim = make_app(kernel, "victim")
    boxed = make_app(kernel, "boxed")
    net = kernel.net_sched
    for _ in range(3):
        net.send(victim, 40_000)
    net.set_psbox(boxed)
    net.send(boxed, 10_000)
    assert net.state == "drain_others"
    net.set_psbox(None)
    assert net.state == "normal"
    platform.sim.run(until=2 * SEC)
    completes = [p["app"] for _t, _k, p in net.log.filter(kind="complete")]
    assert boxed.id in completes


def test_governor_disable_flag(booted):
    platform, kernel = booted
    governor = kernel.cpu_governor
    governor.enabled = False
    app = make_app(kernel, "a")

    def behavior():
        from repro.kernel.actions import Compute
        while True:
            yield Compute(4e6)

    app.spawn(behavior())
    platform.sim.run(until=SEC)
    assert platform.cpu.freq_domain.index == 0   # never ramped


def test_sandboxed_app_exits_inside_balloon(booted):
    """The balloon must end and the machine recover when the enclosed
    app's last task finishes mid-coscheduling."""
    platform, kernel = booted
    from repro.kernel.actions import Compute, Sleep
    from repro.sim.clock import from_usec

    boxed = make_app(kernel, "boxed")

    def short_life():
        for _ in range(10):
            yield Compute(3e6)

    boxed.spawn(short_life())
    other = make_app(kernel, "other")

    def forever():
        while True:
            yield Compute(4e6)
            other.count("work", 1)
            yield Sleep(from_usec(150))

    other.spawn(forever())
    box = boxed.create_psbox(("cpu",))
    box.enter()
    platform.sim.run(until=2 * SEC)
    assert boxed.finished
    assert kernel.smp.active_cosched is None
    assert other.rate("work", SEC, 2 * SEC) > 100


def test_psbox_enter_before_any_task(booted):
    """Entering a psbox for an app with no runnable work is harmless."""
    platform, kernel = booted
    app = make_app(kernel, "lazy")
    box = app.create_psbox(("cpu",))
    box.enter()
    platform.sim.run(until=100 * MSEC)
    assert box.read() >= 0
    assert box.vmeter.windows("cpu", 0, 100 * MSEC) == []


def test_format_table_with_no_rows():
    from repro.analysis.report import format_table

    out = format_table(["a", "b"], [])
    assert "a" in out
