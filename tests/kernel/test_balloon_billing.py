"""Focused unit tests of balloon billing arithmetic (accel + net)."""


from repro.sim.clock import MSEC, SEC

from tests.kernel.conftest import make_app


def test_drain_idle_slots_billed_to_sandboxed_app(booted):
    """During drain-others, unutilized accelerator slots are billed to the
    sandboxed app (§4.2 phase 1)."""
    platform, kernel = booted
    victim = make_app(kernel, "victim")
    boxed = make_app(kernel, "boxed")
    sched = kernel.gpu_sched
    # One long victim command occupies one of two slots: the other slot is
    # idle during the whole drain.
    sched.submit(victim, "long", 10e6, 0.8)
    platform.sim.run(until=MSEC)
    sched.set_psbox(boxed)
    sched.submit(boxed, "b", 1e6, 0.5)
    vr_before = sched.queues[boxed.id].vruntime
    platform.sim.run(until=SEC)
    vr_after = sched.queues[boxed.id].vruntime
    # The drain lasted ~the victim command's remaining time with 1 of 2
    # slots idle: the boxed app must have been billed at least a quarter
    # of it on top of its window.
    charged = vr_after - vr_before
    drain_ns = 10e6 / platform.gpu.freq_domain.freq_hz * 1e9
    assert charged > 0.25 * drain_ns


def test_window_billing_is_wall_clock_of_ownership(booted):
    platform, kernel = booted
    boxed = make_app(kernel, "boxed")
    other = make_app(kernel, "other")
    sched = kernel.gpu_sched
    sched.set_psbox(boxed)
    sched.submit(other, "o", 1e6, 0.5)   # gives the yield check a target
    sched.submit(boxed, "b", 4e6, 0.5)
    platform.sim.run(until=SEC)
    opens = sched.log.times(kind="window_open")
    closes = sched.log.times(kind="window_close")
    window_wall = sum(c - o for o, c in zip(opens, closes))
    charged = sched.queues[boxed.id].vruntime
    assert charged >= window_wall * 0.99


def test_net_penalty_bounded_by_capacity_and_held_bytes(booted):
    platform, kernel = booted
    boxed = make_app(kernel, "boxed")
    other = make_app(kernel, "other")
    net = kernel.net_sched
    net.set_psbox(boxed)
    net.send(boxed, 20_000)
    for _ in range(3):
        net.send(other, 30_000)
    platform.sim.run(until=2 * SEC)
    closes = net.log.filter(kind="window_close")
    assert closes
    for t, _k, payload in closes:
        assert payload["penalty"] >= 0
        assert payload["penalty"] <= 3 * 30_000


def test_unsandboxed_commands_billed_by_occupancy(booted):
    """Two apps with different command sizes: billing tracks device share,
    so vruntimes stay proportional to actual use."""
    platform, kernel = booted
    small = make_app(kernel, "small")
    big = make_app(kernel, "big")
    sched = kernel.gpu_sched
    for _ in range(6):
        sched.submit(small, "s", 1e6, 0.4)
        sched.submit(big, "b", 3e6, 0.8)
    platform.sim.run(until=2 * SEC)
    vr_small = sched.queues[small.id].vruntime
    vr_big = sched.queues[big.id].vruntime
    assert vr_big > 1.5 * vr_small
    # Total billed occupancy is bounded by device wall time.
    busy = platform.gpu.busy_trace.integrate(0, 2 * SEC)
    assert vr_small + vr_big <= busy * 1.01
