"""Packet scheduler tests: byte-fair queueing + NIC temporal balloons."""

import pytest

from repro.sim.clock import MSEC, SEC

from tests.kernel.conftest import make_app


def send_n(kernel, app, n, size=20_000):
    packets = []
    for _ in range(n):
        packets.append(kernel.net_sched.send(app, size))
    return packets


def test_packets_transmit_in_order_for_one_app(booted):
    platform, kernel = booted
    app = make_app(kernel)
    packets = send_n(kernel, app, 5)
    platform.sim.run(until=SEC)
    ends = [p.tx_end_t for p in packets]
    assert all(e is not None for e in ends)
    assert ends == sorted(ends)


def test_byte_fairness_between_apps(booted):
    platform, kernel = booted
    small = make_app(kernel, "small")
    big = make_app(kernel, "big")
    # big sends 3x the bytes per packet; fair queueing should interleave
    # so cumulative bytes stay comparable.
    for _ in range(20):
        kernel.net_sched.send(big, 30_000)
        kernel.net_sched.send(small, 10_000)
    platform.sim.run(until=2 * SEC)
    b_small = kernel.net_sched.buffers[small.id]
    b_big = kernel.net_sched.buffers[big.id]
    assert not b_small.pending
    # big's credit grows ~3x faster; small never starves behind it.
    assert b_big.credit >= b_small.credit


def test_queue_limit_respected(booted):
    platform, kernel = booted
    app = make_app(kernel)
    send_n(kernel, app, 10)
    assert platform.nic.queued_count <= kernel.net_sched.queue_limit


def test_balloon_drains_nic_before_window(booted):
    platform, kernel = booted
    victim = make_app(kernel, "victim")
    boxed = make_app(kernel, "boxed")
    send_n(kernel, victim, 3, size=40_000)
    platform.sim.run(until=MSEC)
    kernel.net_sched.set_psbox(boxed)
    boxed_pkt = kernel.net_sched.send(boxed, 10_000)
    platform.sim.run(until=2 * SEC)
    assert boxed_pkt.tx_start_t is not None
    # The boxed packet starts only after every victim packet ended.
    victim_ends = [t for t, k, p in platform.nic.log.filter(kind="tx_end")
                   if p["app"] == victim.id]
    assert boxed_pkt.tx_start_t >= max(victim_ends)


def test_window_hooks_and_penalty_logged(booted):
    platform, kernel = booted
    boxed = make_app(kernel, "boxed")
    other = make_app(kernel, "other")
    kernel.net_sched.set_psbox(boxed)
    send_n(kernel, boxed, 2)
    send_n(kernel, other, 4)
    platform.sim.run(until=2 * SEC)
    closes = kernel.net_sched.log.filter(kind="window_close")
    assert closes
    assert all("penalty" in payload for _t, _k, payload in closes)


def test_held_packets_flush_in_order_after_window(booted):
    platform, kernel = booted
    boxed = make_app(kernel, "boxed")
    other = make_app(kernel, "other")
    kernel.net_sched.set_psbox(boxed)
    send_n(kernel, boxed, 1)
    held = send_n(kernel, other, 3)
    platform.sim.run(until=2 * SEC)
    starts = [p.tx_start_t for p in held]
    assert all(s is not None for s in starts)
    assert starts == sorted(starts)


def test_set_psbox_twice_rejected(booted):
    platform, kernel = booted
    a, b = make_app(kernel, "a"), make_app(kernel, "b")
    kernel.net_sched.set_psbox(a)
    with pytest.raises(RuntimeError):
        kernel.net_sched.set_psbox(b)


def test_vstate_holder_virtualizes_tx_level(booted):
    platform, kernel = booted
    holder = kernel.net_sched.state_holder
    assert holder is not None
    platform.nic.set_tx_level(2)
    holder.switch_context("psbox.9")
    assert platform.nic.tx_level == 0     # pristine context
    platform.nic.set_tx_level(1)
    holder.switch_context("world")
    assert platform.nic.tx_level == 2     # world state restored
    holder.switch_context("psbox.9")
    assert platform.nic.tx_level == 1     # psbox state kept


def test_dispatch_waits_metric(booted):
    platform, kernel = booted
    app = make_app(kernel)
    send_n(kernel, app, 6)
    platform.sim.run(until=2 * SEC)
    waits = kernel.net_sched.dispatch_waits(app_id=app.id)
    assert len(waits) == 6
    assert max(waits) > 0
