"""Unit tests for kernel actions (validation + immutability)."""

import dataclasses

import pytest

from repro.kernel.actions import (
    Compute,
    SendPacket,
    Sleep,
    SubmitAccel,
    WaitAll,
    WaitOutstanding,
)


def test_compute_requires_positive_cycles():
    with pytest.raises(ValueError):
        Compute(0)
    assert Compute(1e6).cycles == 1e6


def test_sleep_rejects_negative():
    with pytest.raises(ValueError):
        Sleep(-1)
    assert Sleep(0).duration == 0


def test_wait_outstanding_requires_positive_limit():
    with pytest.raises(ValueError):
        WaitOutstanding(0)
    assert WaitOutstanding(2).limit == 2


def test_actions_are_frozen():
    action = Compute(1e6)
    with pytest.raises(dataclasses.FrozenInstanceError):
        action.cycles = 2e6


def test_submit_defaults():
    action = SubmitAccel("gpu", "draw", 1e6, 0.5)
    assert action.wait is True


def test_send_defaults():
    action = SendPacket(1000)
    assert action.wait is False


def test_waitall_is_constructible():
    assert WaitAll() is not None
