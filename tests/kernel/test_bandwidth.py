"""CPU bandwidth throttling (powercap actuator hook) tests."""

import pytest

from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel
from repro.sim.clock import SEC, from_msec

from tests.kernel.test_smp import spinner


def booted(seed=1):
    platform = Platform.am57(seed=seed)
    return platform, Kernel(platform)


def work_rate(fraction=None, seed=1):
    platform, kernel = booted(seed)
    app = spinner(kernel, "hog", pause_us=50)
    if fraction is not None:
        kernel.smp.set_cpu_bandwidth(app, fraction)
    platform.sim.run(until=SEC)
    return app.rate("work", 0, SEC)


def test_bandwidth_limits_progress_proportionally():
    full = work_rate(None)
    third = work_rate(0.3)
    assert third < 0.5 * full
    assert third > 0.0


def test_tighter_fraction_means_less_progress():
    assert work_rate(0.2) < work_rate(0.6)


def test_clear_restores_full_bandwidth():
    platform, kernel = booted()
    app = spinner(kernel, "hog", pause_us=50)
    kernel.smp.set_cpu_bandwidth(app, 0.3)
    platform.sim.run(until=SEC)
    kernel.smp.clear_cpu_bandwidth(app)
    assert app.id not in kernel.smp.throttles
    assert not kernel.smp.group_for(app).throttled
    platform.sim.run(until=2 * SEC)
    throttled = app.rate("work", 0, SEC)
    restored = app.rate("work", SEC, 2 * SEC)
    assert restored > 2 * throttled


def test_fraction_of_one_clears_the_throttle():
    platform, kernel = booted()
    app = spinner(kernel, "hog")
    kernel.smp.set_cpu_bandwidth(app, 0.3)
    assert app.id in kernel.smp.throttles
    kernel.smp.set_cpu_bandwidth(app, 1.0)
    assert app.id not in kernel.smp.throttles


def test_invalid_bandwidth_arguments_raise():
    platform, kernel = booted()
    app = spinner(kernel, "hog")
    with pytest.raises(ValueError):
        kernel.smp.set_cpu_bandwidth(app, 0.0)
    with pytest.raises(ValueError):
        kernel.smp.set_cpu_bandwidth(app, -0.5)
    with pytest.raises(ValueError):
        kernel.smp.set_cpu_bandwidth(app, 0.5, period=0)


def test_throttle_updates_fraction_in_place():
    platform, kernel = booted()
    app = spinner(kernel, "hog")
    kernel.smp.set_cpu_bandwidth(app, 0.3)
    throttle = kernel.smp.throttles[app.id]
    kernel.smp.set_cpu_bandwidth(app, 0.6, period=from_msec(20))
    assert kernel.smp.throttles[app.id] is throttle
    assert throttle.fraction == 0.6


def test_throttled_sandboxed_app_still_progresses():
    """A throttled app inside a psbox keeps making (slower) progress —
    balloons are torn down at off-edges, not wedged."""
    platform, kernel = booted()
    app = spinner(kernel, "boxed", pause_us=50)
    other = spinner(kernel, "other")
    box = app.create_psbox(("cpu",))
    box.enter()
    kernel.smp.set_cpu_bandwidth(app, 0.4)
    platform.sim.run(until=SEC)
    assert app.rate("work", 0, SEC) > 0
    assert other.rate("work", 0, SEC) > 0
