"""Governor tests: ondemand dynamics and per-context virtualization."""

import pytest

from repro.hw.dvfs import FreqDomain
from repro.hw.power import CpuPowerModel
from repro.kernel.governor import WORLD, OndemandGovernor
from repro.sim.clock import MSEC, SEC, from_msec
from repro.sim.engine import Simulator


class FakeUtil:
    """A controllable utilization source."""

    def __init__(self):
        self.value = 0.0

    def __call__(self, t0, t1):
        return self.value


def make_governor(window=from_msec(25), tick=from_msec(5)):
    sim = Simulator()
    domain = FreqDomain(sim, "d", CpuPowerModel().opps, initial_index=0)
    util = FakeUtil()
    gov = OndemandGovernor(sim, domain, util, window=window, tick=tick)
    return sim, domain, util, gov


def test_high_utilization_jumps_to_max():
    sim, domain, util, gov = make_governor()
    util.value = 1.0
    sim.run(until=100 * MSEC)
    assert domain.index == domain.max_index


def test_low_utilization_steps_down_gradually():
    sim, domain, util, gov = make_governor()
    util.value = 1.0
    sim.run(until=100 * MSEC)
    util.value = 0.0
    sim.run(until=130 * MSEC)
    # One window of low utilization: exactly one step down, not a crash
    # to the bottom.
    assert domain.index == domain.max_index - 1
    sim.run(until=400 * MSEC)
    assert domain.index == 0


def test_medium_utilization_holds_frequency():
    sim, domain, util, gov = make_governor()
    util.value = 1.0
    sim.run(until=100 * MSEC)
    util.value = 0.5
    sim.run(until=SEC)
    assert domain.index == domain.max_index


def test_context_switch_saves_and_restores_opp():
    sim, domain, util, gov = make_governor()
    util.value = 1.0
    sim.run(until=100 * MSEC)
    assert domain.index == domain.max_index

    gov.switch_context("psbox.1")
    # Fresh context: pristine lowest OPP, no inherited lingering state.
    assert domain.index == 0
    gov.switch_context(WORLD)
    assert domain.index == domain.max_index


def test_contexts_evolve_independently():
    sim, domain, util, gov = make_governor()
    util.value = 1.0
    gov.switch_context("psbox.1")
    sim.run(until=100 * MSEC)
    assert domain.index == domain.max_index    # psbox ctx ramped
    gov.switch_context(WORLD)
    assert domain.index == 0                   # world never saw the load


def test_inactive_context_window_does_not_fill():
    sim, domain, util, gov = make_governor()
    util.value = 1.0
    gov.switch_context("psbox.1")
    sim.run(until=100 * MSEC)
    gov.switch_context(WORLD)
    util.value = 0.0
    sim.run(until=SEC)
    # The psbox context saw only high utilization while active; its saved
    # OPP must still be max.
    gov.switch_context("psbox.1")
    assert domain.index == domain.max_index


def test_drop_context():
    sim, domain, util, gov = make_governor()
    gov.switch_context("psbox.1")
    gov.drop_context("psbox.1")
    assert gov.active == WORLD
    with pytest.raises(ValueError):
        gov.drop_context(WORLD)


def test_stop_halts_ticks():
    sim, domain, util, gov = make_governor()
    util.value = 1.0
    gov.stop()
    sim.run(until=SEC)
    assert domain.index == 0


def test_set_clamp_takes_effect_immediately_on_active_context():
    sim, domain, util, gov = make_governor()
    util.value = 1.0
    sim.run(until=100 * MSEC)
    assert domain.index == domain.max_index
    gov.set_clamp(WORLD, 1)
    assert domain.index == 1
    # Up-jumps under high utilization stay below the clamp.
    sim.run(until=SEC)
    assert domain.index == 1


def test_clear_clamp_lets_frequency_recover():
    sim, domain, util, gov = make_governor()
    util.value = 1.0
    gov.set_clamp(WORLD, 1)
    sim.run(until=100 * MSEC)
    assert domain.index == 1
    gov.clear_clamp(WORLD)
    sim.run(until=200 * MSEC)
    assert domain.index == domain.max_index


def test_context_save_restore_under_clamp():
    sim, domain, util, gov = make_governor()
    util.value = 1.0
    gov.switch_context("psbox.1")
    sim.run(until=100 * MSEC)
    assert domain.index == domain.max_index
    gov.switch_context(WORLD)
    # Clamping an *inactive* context rewrites its saved OPP but leaves the
    # hardware (running the world context) alone.
    gov.set_clamp("psbox.1", 2)
    assert gov.context("psbox.1").index == 2
    assert domain.index == gov.context(WORLD).index
    gov.switch_context("psbox.1")
    assert domain.index == 2
    # Released, the context ramps back up from the clamped restore point.
    gov.clear_clamp("psbox.1")
    sim.run(until=200 * MSEC)
    assert domain.index == domain.max_index


def test_set_clamp_rejects_out_of_table_index():
    sim, domain, util, gov = make_governor()
    with pytest.raises(ValueError):
        gov.set_clamp(WORLD, domain.max_index + 1)
    with pytest.raises(ValueError):
        gov.set_clamp(WORLD, -1)


def test_restored_context_index_must_be_within_opp_table():
    sim, domain, util, gov = make_governor()
    gov.switch_context("psbox.1")
    gov.context(WORLD).index = domain.max_index + 3
    with pytest.raises(ValueError, match="outside the domain's OPP table"):
        gov.switch_context(WORLD)


def test_drop_context_forgets_its_clamp():
    sim, domain, util, gov = make_governor()
    gov.switch_context("psbox.1")
    gov.set_clamp("psbox.1", 1)
    gov.switch_context(WORLD)
    gov.drop_context("psbox.1")
    assert "psbox.1" not in gov.clamps
    # A reborn context with the same key starts unclamped.
    util.value = 1.0
    gov.switch_context("psbox.1")
    sim.run(until=100 * MSEC)
    assert domain.index == domain.max_index
