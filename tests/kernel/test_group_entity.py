"""Unit tests for GroupEntity/AppGroup internals."""


from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel
from repro.kernel.smp import AppGroup


class FakeTask:
    def __init__(self, vruntime, runnable=True):
        self.member_vruntime = vruntime
        self.runnable = runnable


def make_group():
    platform = Platform.am57(seed=0)
    kernel = Kernel(platform)
    app = App(kernel, "x")
    return AppGroup(app, n_cores=2)


def test_group_has_one_entity_per_core():
    group = make_group()
    assert len(group.entities) == 2
    assert group.entities[0].core_id == 0
    assert group.entities[1].core_id == 1


def test_pick_member_prefers_lowest_vruntime():
    group = make_group()
    entity = group.entities[0]
    low = FakeTask(1.0)
    high = FakeTask(5.0)
    entity.members.extend([high, low])
    assert entity.pick_member() is low


def test_pick_member_skips_non_runnable():
    group = make_group()
    entity = group.entities[0]
    blocked = FakeTask(0.0, runnable=False)
    ready = FakeTask(9.0)
    entity.members.extend([blocked, ready])
    assert entity.pick_member() is ready


def test_pick_member_empty_returns_none():
    group = make_group()
    assert group.entities[0].pick_member() is None


def test_min_member_vruntime():
    group = make_group()
    entity = group.entities[0]
    assert entity.min_member_vruntime() == 0.0
    entity.members.extend([FakeTask(3.0), FakeTask(1.5)])
    assert entity.min_member_vruntime() == 1.5


def test_active_member_count_spans_cores():
    group = make_group()
    group.entities[0].members.append(FakeTask(0.0))
    group.entities[1].members.extend([FakeTask(0.0), FakeTask(1.0)])
    assert group.active_member_count() == 3


def test_entity_weight_follows_app_weight():
    group = make_group()
    group.app.weight = 2.5
    assert group.entities[0].weight == 2.5


def test_runnable_reflects_membership():
    group = make_group()
    entity = group.entities[0]
    assert not entity.runnable
    entity.members.append(FakeTask(0.0))
    assert entity.runnable
