"""Admission gate (duty-cycled balloon admission) tests."""

import pytest

from repro.apps.wifi_apps import scp
from repro.hw.platform import Platform
from repro.kernel.admission import AdmissionGate
from repro.kernel.kernel import Kernel
from repro.sim.clock import SEC, from_msec
from repro.sim.engine import Simulator


def make_gate():
    sim = Simulator()
    pumps = []
    gate = AdmissionGate(sim, lambda: pumps.append(sim.now))
    return sim, gate, pumps


def test_ungated_app_is_never_gated():
    sim, gate, pumps = make_gate()
    assert not gate.gated("x")
    assert gate.fraction("x") == 1.0


def test_gate_phase_follows_the_clock():
    sim, gate, pumps = make_gate()
    gate.set("x", 0.3, 100)
    # on_ns = 30: admitted in [0, 30) of every 100 ns period.
    assert not gate.gated("x")
    seen = {}
    for t in (10, 29, 30, 70, 99, 100, 125):
        sim.at(t, lambda t=t: seen.setdefault(t, gate.gated("x")))
    sim.run(until=200)
    assert seen == {10: False, 29: False, 30: True, 70: True, 99: True,
                    100: False, 125: False}


def test_next_on_edge_is_the_next_period_start():
    sim, gate, pumps = make_gate()
    gate.set("x", 0.3, 100)
    sim.at(45, lambda: pumps.append(gate.next_on_edge("x")))
    sim.run(until=50)
    assert pumps[-1] == 100


def test_set_and_clear_pump_the_scheduler():
    sim, gate, pumps = make_gate()
    gate.set("x", 0.3, 100)
    gate.clear("x")
    assert len(pumps) == 2
    gate.clear("x")          # no-op clear does not pump again
    assert len(pumps) == 2


def test_full_fraction_clears_the_gate():
    sim, gate, pumps = make_gate()
    gate.set("x", 0.3, 100)
    assert len(gate) == 1
    gate.set("x", 1.0, 100)
    assert len(gate) == 0


def test_invalid_gate_arguments_raise():
    sim, gate, pumps = make_gate()
    with pytest.raises(ValueError):
        gate.set("x", 0.0, 100)
    with pytest.raises(ValueError):
        gate.set("x", 0.5, 0)


def test_arm_coalesces_to_the_earliest_edge():
    sim, gate, pumps = make_gate()
    gate.set("x", 0.3, 100)
    del pumps[:]
    gate.arm(80)
    gate.arm(120)            # later arm coalesces into the armed one
    sim.run(until=200)
    assert pumps == [80]
    gate.arm(250)
    gate.arm(220)            # earlier arm replaces the later one
    sim.run(until=300)
    assert pumps == [80, 220]


def test_gated_transfer_finishes_later():
    def finish(gated):
        platform = Platform.full(seed=4)
        kernel = Kernel(platform)
        app = scp(kernel, name="xfer", total_bytes=1_500_000)
        if gated:
            kernel.net_sched.admission.set(app.id, 0.3, from_msec(60))
        platform.sim.run(until=30 * SEC)
        assert app.finished_at is not None
        return app.finished_at

    assert finish(True) > 1.5 * finish(False)


def test_clearing_the_gate_restores_throughput():
    platform = Platform.full(seed=4)
    kernel = Kernel(platform)
    app = scp(kernel, name="xfer", total_bytes=30_000_000)
    kernel.net_sched.admission.set(app.id, 0.25, from_msec(60))
    platform.sim.run(until=SEC)
    gated_kb = app.rate("kb", 0, SEC)
    kernel.net_sched.admission.clear(app.id)
    platform.sim.run(until=2 * SEC)
    cleared_kb = app.rate("kb", SEC, 2 * SEC)
    assert cleared_kb > 2 * gated_kb
