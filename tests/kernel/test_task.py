"""Unit tests for task behaviours and their state machine."""

import pytest

from repro.kernel.actions import (
    Compute,
    SendPacket,
    Sleep,
    SubmitAccel,
    WaitAll,
    WaitOutstanding,
)
from repro.sim.clock import MSEC, SEC

from tests.kernel.conftest import make_app


def test_compute_then_finish(booted_cpu_only):
    platform, kernel = booted_cpu_only
    app = make_app(kernel)
    marks = []

    def behavior():
        yield Compute(3e6)
        marks.append(kernel.now)

    task = app.spawn(behavior())
    platform.sim.run(until=SEC)
    assert task.state == "done"
    assert marks and marks[0] > 0
    assert app.finished


def test_sleep_blocks_for_duration(booted_cpu_only):
    platform, kernel = booted_cpu_only
    app = make_app(kernel)
    marks = []

    def behavior():
        yield Sleep(5 * MSEC)
        marks.append(kernel.now)

    app.spawn(behavior())
    platform.sim.run(until=SEC)
    assert marks == [5 * MSEC]


def test_zero_sleep_is_a_noop(booted_cpu_only):
    platform, kernel = booted_cpu_only
    app = make_app(kernel)
    marks = []

    def behavior():
        yield Sleep(0)
        marks.append("ran")

    app.spawn(behavior())
    platform.sim.run(until=MSEC)
    assert marks == ["ran"]


def test_submit_wait_blocks_until_completion(booted):
    platform, kernel = booted
    app = make_app(kernel)
    marks = []

    def behavior():
        yield SubmitAccel("gpu", "draw", 2e6, 0.5, wait=True)
        marks.append(kernel.now)

    app.spawn(behavior())
    platform.sim.run(until=SEC)
    assert len(marks) == 1
    assert marks[0] >= 2e6 / 532e6 * 1e9   # at least the top-speed exec time


def test_waitall_gathers_async_submissions(booted):
    platform, kernel = booted
    app = make_app(kernel)
    marks = []

    def behavior():
        yield SubmitAccel("gpu", "a", 1e6, 0.5, wait=False)
        yield SubmitAccel("gpu", "b", 1e6, 0.5, wait=False)
        yield WaitAll()
        marks.append(app.counters.get("gpu_commands", 0))

    app.spawn(behavior())
    platform.sim.run(until=SEC)
    assert marks == [2]


def test_wait_outstanding_limits_pipeline_depth(booted):
    platform, kernel = booted
    app = make_app(kernel)
    depths = []

    def behavior():
        task = app.tasks[0]
        for _ in range(4):
            yield SubmitAccel("gpu", "x", 1e6, 0.5, wait=False)
            yield WaitOutstanding(2)
            depths.append(task.outstanding)
        yield WaitAll()

    app.spawn(behavior())
    platform.sim.run(until=SEC)
    assert all(d < 2 for d in depths)
    assert app.counters["gpu_commands"] == 4


def test_send_packet_counts_bytes(booted):
    platform, kernel = booted
    app = make_app(kernel)

    def behavior():
        yield SendPacket(10_000, wait=True)

    app.spawn(behavior())
    platform.sim.run(until=SEC)
    assert app.counters["tx_bytes"] == 10_000


def test_unknown_action_raises(booted_cpu_only):
    platform, kernel = booted_cpu_only
    app = make_app(kernel)

    def behavior():
        yield "bogus"

    app.spawn(behavior())
    with pytest.raises(TypeError):
        platform.sim.run(until=MSEC)


def test_task_cannot_start_twice(booted_cpu_only):
    platform, kernel = booted_cpu_only
    app = make_app(kernel)

    def behavior():
        yield Sleep(MSEC)

    task = app.spawn(behavior())
    platform.sim.run(until=MSEC // 2)
    with pytest.raises(RuntimeError):
        task.start()


def test_finished_at_recorded(booted_cpu_only):
    platform, kernel = booted_cpu_only
    app = make_app(kernel)

    def behavior():
        yield Sleep(3 * MSEC)

    app.spawn(behavior())
    platform.sim.run(until=SEC)
    assert app.finished_at == 3 * MSEC


def test_multiple_tasks_one_app(booted_cpu_only):
    platform, kernel = booted_cpu_only
    app = make_app(kernel)

    def behavior(tag):
        yield Compute(1e6)
        app.count(tag, 1)

    app.spawn(behavior("t1"))
    app.spawn(behavior("t2"))
    platform.sim.run(until=SEC)
    assert app.counters == {"t1": 1, "t2": 1}
    assert app.finished
