"""Shared fixtures for kernel tests."""

import pytest

from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel


@pytest.fixture
def booted():
    """A full platform with a booted kernel."""
    platform = Platform.full(seed=1)
    kernel = Kernel(platform)
    return platform, kernel


@pytest.fixture
def booted_cpu_only():
    platform = Platform.am57(seed=1)
    kernel = Kernel(platform)
    return platform, kernel


def make_app(kernel, name="app", weight=1.0):
    return App(kernel, name, weight=weight)
