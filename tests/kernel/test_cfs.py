"""Scheduler behaviour tests: fairness, preemption, migration."""


from repro.kernel.actions import Compute, Sleep
from repro.sim.clock import MSEC, SEC, from_usec

from tests.kernel.conftest import make_app


def spin_app(kernel, name, weight=1.0, tasks=1, burst=4e6, pause_us=150):
    app = make_app(kernel, name, weight=weight)

    def behavior():
        while True:
            yield Compute(burst)
            app.count("work", 1)
            if pause_us:
                yield Sleep(from_usec(pause_us))

    for i in range(tasks):
        app.spawn(behavior(), name="{}.t{}".format(name, i))
    return app


def test_single_task_saturates_one_core(booted_cpu_only):
    platform, kernel = booted_cpu_only
    spin_app(kernel, "solo")
    platform.sim.run(until=SEC)
    assert platform.cpu.max_core_utilization(0, SEC) > 0.9
    assert platform.cpu.utilization(0, SEC) < 0.6


def test_two_tasks_use_both_cores(booted_cpu_only):
    platform, kernel = booted_cpu_only
    spin_app(kernel, "a")
    spin_app(kernel, "b")
    platform.sim.run(until=SEC)
    assert platform.cpu.utilization(200 * MSEC, SEC) > 0.9


def test_equal_weights_get_equal_throughput(booted_cpu_only):
    platform, kernel = booted_cpu_only
    apps = [spin_app(kernel, "app{}".format(i)) for i in range(4)]
    platform.sim.run(until=2 * SEC)
    rates = [app.rate("work", SEC, 2 * SEC) for app in apps]
    assert min(rates) > 0
    assert max(rates) / min(rates) < 1.35


def test_weights_bias_cpu_share():
    # Two pure spinners contending for a single core: the weight-2 app
    # should get roughly twice the work rate.  (Pure spinners on one core:
    # wakeup re-normalization and placement would otherwise mask weights,
    # as they do for sleepers in CFS.)
    from repro.hw.platform import Platform
    from repro.kernel.kernel import Kernel

    platform = Platform(__import__("repro.sim.engine",
                                   fromlist=["Simulator"]).Simulator(1),
                        components=("cpu",), n_cpu_cores=1)
    kernel = Kernel(platform)
    heavy = spin_app(kernel, "heavy", weight=2.0, pause_us=0)
    light = spin_app(kernel, "light", weight=1.0, pause_us=0)
    platform.sim.run(until=3 * SEC)
    heavy_rate = heavy.rate("work", SEC, 3 * SEC)
    light_rate = light.rate("work", SEC, 3 * SEC)
    assert heavy_rate > 1.5 * light_rate
    assert heavy_rate < 2.6 * light_rate


def test_sleeping_app_gets_cpu_promptly_on_wake(booted_cpu_only):
    """Wakeup preemption: an interactive task is not starved by spinners."""
    platform, kernel = booted_cpu_only
    spin_app(kernel, "spin1")
    spin_app(kernel, "spin2")
    interactive = make_app(kernel, "interactive")
    latencies = []

    def behavior():
        while True:
            yield Sleep(20 * MSEC)
            wake = kernel.now
            yield Compute(0.3e6)
            latencies.append(kernel.now - wake)

    interactive.spawn(behavior())
    platform.sim.run(until=SEC)
    assert latencies, "interactive app never ran"
    mean_latency = sum(latencies) / len(latencies)
    assert mean_latency < 8 * MSEC


def test_work_conservation_no_idle_with_backlog(booted_cpu_only):
    platform, kernel = booted_cpu_only
    for i in range(3):
        spin_app(kernel, "w{}".format(i), pause_us=50)
    platform.sim.run(until=SEC)
    # Three runnable CPU hogs on two cores: both cores should be busy.
    assert platform.cpu.utilization(200 * MSEC, SEC) > 0.93


def test_min_vruntime_monotonic(booted_cpu_only):
    platform, kernel = booted_cpu_only
    spin_app(kernel, "a")
    spin_app(kernel, "b")
    samples = []

    def sample():
        samples.append(tuple(s.min_vruntime for s in kernel.smp.cores))
        platform.sim.call_later(50 * MSEC, sample)

    platform.sim.call_later(50 * MSEC, sample)
    platform.sim.run(until=SEC)
    for earlier, later in zip(samples, samples[1:]):
        for a, b in zip(earlier, later):
            assert b >= a


def test_task_runs_after_cpu_bound_storm_ends(booted_cpu_only):
    platform, kernel = booted_cpu_only
    storm = make_app(kernel, "storm")

    def storm_behavior():
        for _ in range(50):
            yield Compute(2e6)

    storm.spawn(storm_behavior())
    late = make_app(kernel, "late")
    marks = []

    def late_behavior():
        yield Sleep(100 * MSEC)
        yield Compute(1e6)
        marks.append(kernel.now)

    late.spawn(late_behavior())
    platform.sim.run(until=2 * SEC)
    assert marks
