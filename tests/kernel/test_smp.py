"""Coscheduling (spatial balloon) mechanism tests."""


from repro.kernel.actions import Compute, Sleep
from repro.sim.clock import MSEC, SEC, from_usec

from tests.kernel.conftest import make_app


def spinner(kernel, name, burst=4e6, pause_us=150, tasks=1):
    app = make_app(kernel, name)

    def behavior():
        while True:
            yield Compute(burst)
            app.count("work", 1)
            yield Sleep(from_usec(pause_us))

    for i in range(tasks):
        app.spawn(behavior(), name="{}.t{}".format(name, i))
    return app


def enter_psbox(app, components=("cpu",)):
    box = app.create_psbox(components)
    box.enter()
    return box


def test_balloon_forces_sibling_core_idle(booted_cpu_only):
    platform, kernel = booted_cpu_only
    target = spinner(kernel, "boxed")
    other = spinner(kernel, "other")
    box = enter_psbox(target)
    platform.sim.run(until=SEC)
    windows = box.vmeter.windows("cpu", 0, SEC)
    assert windows, "no balloon windows recorded"
    # Inside windows, at most the boxed app owns any core; the others are
    # forced idle or run the boxed app.
    foreign = 0
    for lo, hi in windows:
        for trace in platform.cpu.owner_traces:
            for t0, t1, owner in trace.segments(lo, hi):
                if owner not in (-1.0, float(target.id)):
                    foreign += t1 - t0
    covered = sum(hi - lo for lo, hi in windows)
    # IPI flight allows a tiny, bounded leak at window edges.
    assert foreign < 0.02 * covered


def test_balloon_windows_cover_boxed_execution(booted_cpu_only):
    platform, kernel = booted_cpu_only
    target = spinner(kernel, "boxed")
    spinner(kernel, "other")
    box = enter_psbox(target)
    platform.sim.run(until=SEC)
    # All the boxed app's core-ownership time falls inside windows.
    windows = box.vmeter.windows("cpu", 0, SEC)
    inside = 0
    total = 0
    for trace in platform.cpu.owner_traces:
        for t0, t1, owner in trace.segments(0, SEC):
            if owner == float(target.id):
                total += t1 - t0
                for lo, hi in windows:
                    s, e = max(t0, lo), min(t1, hi)
                    if e > s:
                        inside += e - s
    assert total > 0
    assert inside > 0.98 * total


def test_cosched_log_balanced(booted_cpu_only):
    platform, kernel = booted_cpu_only
    target = spinner(kernel, "boxed")
    spinner(kernel, "other")
    enter_psbox(target)
    platform.sim.run(until=SEC)
    begins = len(kernel.smp.log.filter(kind="cosched_begin"))
    ends = len(kernel.smp.log.filter(kind="cosched_end"))
    assert begins > 0
    assert abs(begins - ends) <= 1


def test_only_one_balloon_at_a_time(booted_cpu_only):
    platform, kernel = booted_cpu_only
    a = spinner(kernel, "a")
    b = spinner(kernel, "b")
    box_a = enter_psbox(a)
    box_b = enter_psbox(b)
    platform.sim.run(until=SEC)
    wins_a = box_a.vmeter.windows("cpu", 0, SEC)
    wins_b = box_b.vmeter.windows("cpu", 0, SEC)
    assert wins_a and wins_b, "both sandboxes should get balloons"
    overlap = 0
    for a0, a1 in wins_a:
        for b0, b1 in wins_b:
            overlap += max(0, min(a1, b1) - max(a0, b0))
    assert overlap == 0


def test_leave_psbox_ends_active_balloon(booted_cpu_only):
    platform, kernel = booted_cpu_only
    target = spinner(kernel, "boxed")
    spinner(kernel, "other")
    box = enter_psbox(target)
    platform.sim.run(until=200 * MSEC)
    box.leave()
    assert kernel.smp.active_cosched is None
    frac_before = box.vmeter.observed_fraction("cpu", 0, 200 * MSEC)
    platform.sim.run(until=SEC)
    frac_after = box.vmeter.observed_fraction("cpu", 250 * MSEC, SEC)
    assert frac_before > 0
    assert frac_after == 0.0


def test_balloon_ends_when_members_sleep(booted_cpu_only):
    platform, kernel = booted_cpu_only
    target = make_app(kernel, "napper")

    def behavior():
        for _ in range(5):
            yield Compute(2e6)
            yield Sleep(20 * MSEC)

    target.spawn(behavior())
    spinner(kernel, "other")
    box = enter_psbox(target)
    platform.sim.run(until=SEC)
    windows = box.vmeter.windows("cpu", 0, SEC)
    # One window per burst (balloons close during the 20 ms sleeps).
    assert len(windows) >= 4
    frac = box.vmeter.observed_fraction("cpu", 0, 400 * MSEC)
    assert frac < 0.6


def test_loans_disadvantage_sandboxed_app(booted_cpu_only):
    """With three CPU hogs, the sandboxed one pays for its balloon waste."""
    platform, kernel = booted_cpu_only
    apps = [spinner(kernel, "i{}".format(i)) for i in range(3)]
    box = apps[2].create_psbox(("cpu",))
    platform.sim.at(int(0.8 * SEC), box.enter)
    platform.sim.run(until=int(2.6 * SEC))
    t0, t1 = int(1.0 * SEC), int(2.6 * SEC)
    boxed_rate = apps[2].rate("work", t0, t1)
    other_rates = [apps[0].rate("work", t0, t1), apps[1].rate("work", t0, t1)]
    assert boxed_rate < 0.7 * min(other_rates)


def test_loans_disabled_spreads_the_loss(booted_cpu_only):
    """Ablation: naive admission lets the balloon's cost leak onto others."""
    from repro.hw.platform import Platform
    from repro.kernel.kernel import Kernel, KernelConfig

    def run(loans):
        platform = Platform.am57(seed=1)
        kernel = Kernel(platform, KernelConfig(loans_enabled=loans))
        apps = [spinner(kernel, "i{}".format(i)) for i in range(3)]
        box = apps[2].create_psbox(("cpu",))
        platform.sim.at(int(0.8 * SEC), box.enter)
        platform.sim.run(until=int(2.6 * SEC))
        t0, t1 = int(1.0 * SEC), int(2.6 * SEC)
        return [app.rate("work", t0, t1) for app in apps]

    with_loans = run(True)
    without = run(False)
    # With charging, the loss is confined to the boxed app (index 2);
    # without it, the boxed app free-rides and the others pay.
    assert with_loans[2] < 0.7 * min(with_loans[:2])
    assert without[2] > 0.8 * min(without[:2])
    assert min(without[:2]) < 0.95 * min(with_loans[:2])


def test_alone_app_keeps_balloon_without_competitors(booted_cpu_only):
    platform, kernel = booted_cpu_only
    target = spinner(kernel, "solo", pause_us=50)
    box = enter_psbox(target)
    platform.sim.run(until=SEC)
    assert box.vmeter.observed_fraction("cpu", 100 * MSEC, SEC) > 0.95
