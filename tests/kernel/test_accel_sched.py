"""Accelerator scheduler tests: fair queueing + temporal balloons."""

import pytest

from repro.sim.clock import MSEC, SEC

from tests.kernel.conftest import make_app


def submit_n(kernel, app, n, cycles=2e6, power=0.5, device="gpu"):
    sched = kernel.accel_scheduler(device)
    commands = []
    for i in range(n):
        commands.append(
            sched.submit(app, kind="k{}".format(i), cycles=cycles,
                         power_w=power)
        )
    return commands


def test_commands_dispatch_and_complete(booted):
    platform, kernel = booted
    app = make_app(kernel)
    done = []
    kernel.gpu_sched.submit(app, "a", 2e6, 0.5,
                            on_complete=lambda c: done.append(c.seq))
    platform.sim.run(until=SEC)
    assert len(done) == 1


def test_occupancy_billing_accumulates(booted):
    platform, kernel = booted
    app = make_app(kernel)
    submit_n(kernel, app, 2)
    platform.sim.run(until=SEC)
    q = kernel.gpu_sched.queues[app.id]
    assert q.vruntime > 0


def test_fair_pick_prefers_lower_vruntime(booted):
    platform, kernel = booted
    hog = make_app(kernel, "hog")
    newcomer = make_app(kernel, "newcomer")
    submit_n(kernel, hog, 30, cycles=4e6)
    platform.sim.run(until=100 * MSEC)
    first = kernel.gpu_sched.submit(newcomer, "n", 1e6, 0.4)
    platform.sim.run(until=SEC)
    # The newcomer (zero vruntime) jumps ahead of the hog's backlog.
    hog_dispatches_after = [
        payload["seq"]
        for t, kind, payload in kernel.gpu_sched.log.filter(kind="dispatch")
        if payload["app"] == hog.id and t > first.submit_t
    ]
    assert first.dispatch_t - first.submit_t < 30 * MSEC
    assert hog_dispatches_after, "hog should still make progress"


def test_balloon_drains_before_serving(booted):
    platform, kernel = booted
    victim = make_app(kernel, "victim")
    boxed = make_app(kernel, "boxed")
    submit_n(kernel, victim, 2, cycles=8e6)
    platform.sim.run(until=MSEC)
    kernel.gpu_sched.set_psbox(boxed)
    boxed_cmd = kernel.gpu_sched.submit(boxed, "b", 1e6, 0.5)
    platform.sim.run(until=SEC)
    # The boxed command must not overlap any victim command in flight.
    for t, kind, payload in kernel.gpu_sched.log.filter(kind="complete"):
        if payload["app"] == victim.id:
            assert boxed_cmd.dispatch_t >= t or boxed_cmd.dispatch_t is None \
                or t <= boxed_cmd.dispatch_t


def test_balloon_window_hooks_fire(booted):
    platform, kernel = booted
    boxed = make_app(kernel, "boxed")
    events = []
    kernel.gpu_sched.balloon_in_hooks.append(
        lambda app, t: events.append(("in", t)))
    kernel.gpu_sched.balloon_out_hooks.append(
        lambda app, t: events.append(("out", t)))
    kernel.gpu_sched.set_psbox(boxed)
    submit_n(kernel, boxed, 1)
    other = make_app(kernel, "other")
    submit_n(kernel, other, 1)
    platform.sim.run(until=SEC)
    kinds = [k for k, _t in events]
    assert "in" in kinds and "out" in kinds
    assert kinds.index("in") < kinds.index("out")


def test_no_foreign_inflight_during_window(booted):
    """The central balloon invariant, checked against the hardware log."""
    platform, kernel = booted
    boxed = make_app(kernel, "boxed")
    other = make_app(kernel, "other")
    windows = []
    kernel.gpu_sched.balloon_in_hooks.append(lambda a, t: windows.append([t, None]))
    kernel.gpu_sched.balloon_out_hooks.append(
        lambda a, t: windows[-1].__setitem__(1, t))
    kernel.gpu_sched.set_psbox(boxed)

    def boxed_flow():
        from repro.kernel.actions import Sleep, SubmitAccel
        for _ in range(10):
            yield SubmitAccel("gpu", "b", 2e6, 0.5, wait=True)
            yield Sleep(3 * MSEC)

    def other_flow():
        from repro.kernel.actions import SubmitAccel
        for _ in range(40):
            yield SubmitAccel("gpu", "o", 3e6, 0.6, wait=True)

    boxed.spawn(boxed_flow())
    other.spawn(other_flow())
    platform.sim.run(until=2 * SEC)
    assert windows
    # Reconstruct foreign in-flight intervals from the engine log.
    dispatches = {}
    foreign = []
    for t, kind, payload in platform.gpu.log:
        if payload.get("app") != other.id:
            continue
        if kind == "dispatch":
            dispatches[payload["seq"]] = t
        elif kind == "complete":
            foreign.append((dispatches.pop(payload["seq"]), t))
    for lo, hi in windows:
        hi = hi if hi is not None else platform.sim.now
        for f0, f1 in foreign:
            assert min(hi, f1) - max(lo, f0) <= 0, (
                "foreign command in flight inside a psbox window"
            )


def test_set_psbox_twice_rejected(booted):
    platform, kernel = booted
    a, b = make_app(kernel, "a"), make_app(kernel, "b")
    kernel.gpu_sched.set_psbox(a)
    with pytest.raises(RuntimeError):
        kernel.gpu_sched.set_psbox(b)


def test_leave_mid_window_restores_normal_service(booted):
    platform, kernel = booted
    boxed = make_app(kernel, "boxed")
    other = make_app(kernel, "other")
    kernel.gpu_sched.set_psbox(boxed)
    submit_n(kernel, boxed, 4, cycles=6e6)
    submit_n(kernel, other, 2)
    platform.sim.run(until=10 * MSEC)
    kernel.gpu_sched.set_psbox(None)
    platform.sim.run(until=SEC)
    assert kernel.gpu_sched.state == "normal"
    completes = [p["app"] for _t, _k, p in
                 kernel.gpu_sched.log.filter(kind="complete")]
    assert completes.count(other.id) == 2


def test_dispatch_waits_metric(booted):
    platform, kernel = booted
    app = make_app(kernel)
    submit_n(kernel, app, 3, cycles=4e6)
    platform.sim.run(until=SEC)
    waits = kernel.gpu_sched.dispatch_waits(app_id=app.id)
    assert len(waits) == 3
    assert waits[0] == 0            # empty device: immediate dispatch
    assert waits[2] > 0             # third waits for a slot
