"""Kernel facade tests."""

import pytest

from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel, KernelConfig
from repro.sim.clock import MSEC

from tests.kernel.conftest import make_app


def test_boot_full_platform_wires_everything(booted):
    platform, kernel = booted
    assert kernel.smp is not None
    assert kernel.cpu_governor is not None
    assert kernel.gpu_sched is not None
    assert kernel.dsp_sched is not None
    assert kernel.net_sched is not None


def test_boot_partial_platform(booted_cpu_only):
    platform, kernel = booted_cpu_only
    assert kernel.net_sched is None
    with pytest.raises(KeyError):
        kernel.accel_scheduler("nope")


def test_now_tracks_sim_clock(booted):
    platform, kernel = booted
    platform.sim.run(until=5 * MSEC)
    assert kernel.now == 5 * MSEC


def test_register_and_spawn(booted):
    platform, kernel = booted
    app = make_app(kernel, "a")
    assert kernel.apps[app.id] is app

    def behavior():
        yield from ()

    task = kernel.spawn(app, behavior())
    assert task in kernel.tasks
    assert task in app.tasks


def test_vstate_disabled_removes_holders():
    platform = Platform.full(seed=0)
    kernel = Kernel(platform, KernelConfig(vstate_enabled=False))
    assert kernel.gpu_sched.state_holder is None
    assert kernel.net_sched.state_holder is None


def test_config_propagates_to_schedulers():
    platform = Platform.full(seed=0)
    kernel = Kernel(platform, KernelConfig(draining_enabled=False,
                                           loans_enabled=False))
    assert not kernel.gpu_sched.draining_enabled
    assert not kernel.net_sched.draining_enabled
    assert not kernel.smp.loans_enabled


def test_run_passthrough(booted):
    platform, kernel = booted
    assert kernel.run(until=MSEC) == MSEC
