"""Topology data model (pure parts; the booted Node is in test_cluster)."""

import pytest

from repro.cluster import ClusterTopology, NodeSpec, node_seed


def test_nodespec_validation():
    with pytest.raises(ValueError, match="capacity"):
        NodeSpec("x", capacity_w=0.0)
    with pytest.raises(ValueError, match="weight"):
        NodeSpec("x", weight=0.0)


def test_nodespec_round_trips_through_dict():
    spec = NodeSpec("n", weight=2.0, n_cpu_cores=4, capacity_w=5.0,
                    components=("cpu", "gpu"))
    assert NodeSpec.from_dict(spec.to_dict()) == spec


def test_uniform_topology():
    topo = ClusterTopology.uniform(3, capacity_w=2.5)
    assert len(topo) == 3
    assert [n.name for n in topo] == ["node00", "node01", "node02"]
    assert topo.total_capacity_w() == pytest.approx(7.5)
    assert topo.node("node01").capacity_w == 2.5
    with pytest.raises(KeyError):
        topo.node("node99")
    with pytest.raises(ValueError, match="at least one"):
        ClusterTopology.uniform(0)


def test_topology_rejects_duplicate_names():
    with pytest.raises(ValueError, match="duplicate"):
        ClusterTopology([NodeSpec("a"), NodeSpec("a")])


def test_node_seed_is_distinct_per_node_and_campaign():
    seeds = {node_seed(base, i) for base in (0, 1, 2) for i in range(8)}
    assert len(seeds) == 24
