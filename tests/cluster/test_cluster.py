"""The booted cluster: nodes, calibration cells, the global cap loop.

Small topologies and short horizons keep this fast; the full 8-node
acceptance run lives in ``benchmarks/`` and the ``cluster`` subcommand.
"""

import pytest

from repro.cluster import (
    USERS_PER_INSTANCE,
    Cluster,
    ClusterConfig,
    ClusterTopology,
    Node,
    NodeSpec,
    PIBaselineAllocator,
    WaterFillingAllocator,
    WorkloadSpec,
    calibrate,
    cluster_peak_w,
    node_seed,
    run_node_calibration,
)

HORIZON_S = 1.2


def spec(name, kind="web", tenant="t0", start_s=0.0, end_s=HORIZON_S):
    return WorkloadSpec(name=name, tenant=tenant, kind=kind, start_s=start_s,
                        end_s=end_s, users=USERS_PER_INSTANCE)


def two_node_setup():
    topo = ClusterTopology.uniform(2)
    by_node = {
        "node00": [spec("a.web"), spec("a.render", kind="render",
                                       start_s=0.1, end_s=1.0)],
        "node01": [spec("b.web", tenant="t1"),
                   spec("b.bulk", tenant="t1", kind="bulk", start_s=0.1,
                        end_s=1.0)],
    }
    return topo, by_node


# -- the booted node ---------------------------------------------------------------


def test_node_rejects_workloads_its_components_cannot_serve():
    with pytest.raises(ValueError, match="needs 'gpu'"):
        Node(NodeSpec("n", components=("cpu",)),
             [spec("a", kind="render")], seed=1)


def test_calibration_node_runs_uncapped():
    node = Node(NodeSpec("n"), [spec("a", end_s=0.6)], seed=3,
                with_controller=False)
    assert node.cap_w is None
    with pytest.raises(RuntimeError, match="calibration"):
        node.set_cap(1.0)
    node.advance(int(0.6e9))
    aggregate = node.aggregate_power(0, int(0.6e9))
    assert aggregate > 0.3                       # busy web instance + idle
    # No controller: the demand estimate is just the measured draw.
    assert node.demand_w(0, int(0.6e9)) == pytest.approx(aggregate)


def test_calibration_cell_payload_is_deterministic():
    config = {
        "node": NodeSpec("n").to_dict(),
        "workloads": [spec("a", end_s=0.6).to_dict()],
        "horizon_s": 0.6,
        "epoch_ms": 200,
    }
    first = run_node_calibration(7, config)
    second = run_node_calibration(7, config)
    assert first == second
    assert first["node"] == "n"
    assert len(first["series_w"]) == 3
    assert first["peak_w"] == max(first["series_w"])


def test_cluster_peak_w_sums_aligned_epochs():
    payloads = [{"series_w": [1.0, 3.0, 1.0]}, {"series_w": [2.0, 1.0]}]
    # Aligned peak is 3+1=4 at epoch 1, not 3+2=5 (peaks never coincide).
    assert cluster_peak_w(payloads) == pytest.approx(4.0)
    assert cluster_peak_w([]) == 0.0


def test_config_validation():
    with pytest.raises(ValueError, match="budget"):
        ClusterConfig(budget_w=0.0)
    with pytest.raises(ValueError, match="epoch"):
        ClusterConfig(budget_w=1.0, epoch_ms=0)


# -- the global loop ---------------------------------------------------------------


def test_cluster_run_enforces_and_is_deterministic():
    topo, by_node = two_node_setup()
    payloads, _runner = calibrate(topo, by_node, seed=5,
                                  horizon_s=HORIZON_S, epoch_ms=200)
    budget = 0.7 * cluster_peak_w(payloads)
    config = ClusterConfig(budget_w=budget, horizon_s=HORIZON_S,
                           epoch_ms=200)

    runs = [
        Cluster(topo, by_node, WaterFillingAllocator(), config,
                seed=5).run()
        for _ in range(2)
    ]
    assert runs[0].metrics == runs[1].metrics     # bit-for-bit replay
    run = runs[0]
    assert run.allocator == "waterfill"
    assert len(run.epochs) == 6
    assert run.throttle_actions > 0               # the cap actually bites
    # Every epoch's caps sum close to the budget (P/I terms move a little
    # budget between epochs, never invent much).
    for epoch in run.epochs:
        assert sum(epoch.caps_w.values()) == pytest.approx(
            budget, rel=0.75)
    # Under-budget mean draw, not wildly below.
    assert run.metrics["mean_aggregate_w"] < budget * 1.1
    assert run.metrics["mean_aggregate_w"] > budget * 0.5

    pi = Cluster(topo, by_node, PIBaselineAllocator(), config, seed=5).run()
    assert pi.allocator == "pi"
    assert pi.metrics["redistributed_slack_w"] == pytest.approx(0.0)


def test_parallel_calibration_matches_serial(tmp_path):
    from repro.par import ResultCache

    topo, by_node = two_node_setup()
    serial, _ = calibrate(topo, by_node, seed=5, horizon_s=0.6,
                          epoch_ms=200)
    cached, runner = calibrate(topo, by_node, seed=5, horizon_s=0.6,
                               epoch_ms=200,
                               cache=ResultCache(str(tmp_path)))
    assert cached == serial
    assert runner.stats.executed == 2
    replay, runner = calibrate(topo, by_node, seed=5, horizon_s=0.6,
                               epoch_ms=200,
                               cache=ResultCache(str(tmp_path)))
    assert replay == serial
    assert runner.stats.cached == 2


def test_distinct_node_seeds_give_distinct_boards():
    topo, by_node = two_node_setup()
    nodes = [
        Node(spec_, by_node[spec_.name], seed=node_seed(5, i),
             with_controller=False)
        for i, spec_ in enumerate(topo)
    ]
    for node in nodes:
        node.advance(int(0.4e9))
    draws = [node.aggregate_power(0, int(0.4e9)) for node in nodes]
    assert draws[0] != draws[1]
