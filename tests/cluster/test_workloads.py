"""Workload generation: specs, the diurnal curve, churn, determinism."""

import math

import pytest

from repro.cluster import (
    USERS_PER_INSTANCE,
    Tenant,
    WorkloadSpec,
    diurnal_users,
    generate_flash_crowd,
    peak_concurrent_users,
    standard_mix,
)
from repro.cluster.workloads import generate_diurnal


def spec(**overrides):
    base = dict(name="w0", tenant="t0", kind="web", start_s=0.0, end_s=1.0,
                users=USERS_PER_INSTANCE)
    base.update(overrides)
    return WorkloadSpec(**base)


# -- specs -------------------------------------------------------------------------


def test_spec_validation():
    with pytest.raises(ValueError, match="unknown workload kind"):
        spec(kind="mining")
    with pytest.raises(ValueError, match="ends before it starts"):
        spec(end_s=0.0)
    with pytest.raises(ValueError, match="serves no users"):
        spec(users=0)


def test_spec_component_and_load():
    assert spec(kind="web").component == "cpu"
    assert spec(kind="render").component == "gpu"
    assert spec(kind="bulk").component == "wifi"
    assert spec(users=USERS_PER_INSTANCE // 2).load == pytest.approx(0.5)
    assert spec(users=10 * USERS_PER_INSTANCE).load == 1.0   # saturates


def test_spec_round_trips_through_dict():
    original = spec(kind="render", weight=2.0)
    assert WorkloadSpec.from_dict(original.to_dict()) == original


def test_spec_overlap():
    s = spec(start_s=1.0, end_s=2.0)
    assert s.overlaps(0.0, 1.5)
    assert s.overlaps(1.9, 3.0)
    assert not s.overlaps(2.0, 3.0)
    assert not s.overlaps(0.0, 1.0)


# -- the diurnal curve -------------------------------------------------------------


def test_diurnal_curve_shape():
    peak = 1_000_000
    assert diurnal_users(0.0, 10.0, peak) == pytest.approx(0.3 * peak, rel=1e-6)
    assert diurnal_users(5.0, 10.0, peak) == peak
    assert diurnal_users(10.0, 10.0, peak) == pytest.approx(
        0.3 * peak, rel=1e-6)


def test_diurnal_phase_shifts_the_peak():
    # phase 0.5 swaps noon and midnight: the curve peaks at t=0.
    peak = 1_000_000
    assert diurnal_users(0.0, 10.0, peak, phase=0.5) == peak
    assert diurnal_users(5.0, 10.0, peak, phase=0.5) == pytest.approx(
        0.3 * peak, rel=1e-6)


def test_generate_diurnal_tracks_tenant_windows():
    tenants = [Tenant("early", leave_s=2.0), Tenant("late", join_s=2.0)]
    specs = generate_diurnal(seed=3, horizon_s=4.0, peak_users=400_000,
                             tenants=tenants)
    assert specs
    for s in specs:
        if s.tenant == "early":
            assert s.end_s <= 2.0
        else:
            assert s.start_s >= 2.0


def test_generate_diurnal_is_deterministic():
    tenants = [Tenant("t0"), Tenant("t1", share=0.5)]
    a = generate_diurnal(seed=9, horizon_s=3.0, peak_users=500_000,
                         tenants=tenants)
    b = generate_diurnal(seed=9, horizon_s=3.0, peak_users=500_000,
                         tenants=tenants)
    assert a == b
    c = generate_diurnal(seed=10, horizon_s=3.0, peak_users=500_000,
                         tenants=tenants)
    assert a != c


def test_flash_crowd_lands_within_spread():
    specs = generate_flash_crowd(seed=1, at_s=2.0, duration_s=1.0,
                                 surge_users=300_000, tenant=Tenant("x"))
    assert len(specs) == 6
    for s in specs:
        assert 2.0 <= s.start_s <= 2.25
        assert s.end_s == pytest.approx(s.start_s + 1.0)


def test_standard_mix_has_churn_and_staggered_phases():
    specs, tenants = standard_mix(seed=7, horizon_s=4.0,
                                  peak_users=800_000, n_tenants=3)
    names = {t.name for t in tenants}
    assert "late" in names and len(names) == 4
    phases = sorted(t.phase for t in tenants if t.name != "late")
    assert phases[0] == 0.0 and phases[-1] == 0.5   # peaks land apart
    leaver = [t for t in tenants if t.leave_s is not math.inf
              and t.name != "late"]
    assert leaver                                   # tenant churn
    assert specs == sorted(specs, key=lambda s: (s.start_s, s.name))
    assert any(s.tenant == "late" and "flash" in s.name for s in specs)


def test_peak_concurrent_users_counts_overlap():
    specs = [spec(name="a", start_s=0.0, end_s=2.0),
             spec(name="b", start_s=1.0, end_s=3.0),
             spec(name="c", start_s=2.5, end_s=3.0)]
    assert peak_concurrent_users(specs, 3.0) == 2 * USERS_PER_INSTANCE
