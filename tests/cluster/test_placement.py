"""Placement engine: worst-fit, affinity, spill, exclusive queueing."""

import pytest

from repro.cluster import (
    USERS_PER_INSTANCE,
    ClusterTopology,
    PlacementEngine,
    WorkloadSpec,
    placement_quality,
    placements_by_node,
)
from repro.cluster.topology import NodeSpec

HORIZON = 4.0


class FixedPredictor:
    """Predict a constant — placement decisions become arithmetic."""

    def __init__(self, watts=1.0):
        self.watts = watts

    def predict(self, spec):
        return self.watts


def spec(name, kind="web", tenant="t0", start_s=0.0, end_s=2.0):
    return WorkloadSpec(name=name, tenant=tenant, kind=kind, start_s=start_s,
                        end_s=end_s, users=USERS_PER_INSTANCE)


def engine(n=2, capacity_w=4.0, watts=1.0, **kw):
    topo = ClusterTopology.uniform(n, capacity_w=capacity_w)
    return PlacementEngine(topo, FixedPredictor(watts), horizon_s=HORIZON,
                           **kw), topo


def test_worst_fit_spreads_different_tenants():
    eng, _topo = engine()
    first = eng.place(spec("a", tenant="t0"))
    second = eng.place(spec("b", tenant="t1"))
    assert first.node == "node00"          # tie breaks on topology order
    assert second.node == "node01"         # worst fit: most headroom left
    assert not first.spilled and not second.spilled


def test_tenant_affinity_beats_worst_fit():
    eng, _topo = engine()
    first = eng.place(spec("a", tenant="t0"))
    second = eng.place(spec("b", tenant="t0"))
    assert first.node == second.node == "node00"


def test_power_spill_picks_least_loaded_node():
    # Capacity fits one 1 W instance (idle 0.45 + 1.0), never two.
    eng, _topo = engine(capacity_w=2.0)
    eng.place(spec("a", tenant="t0"))
    eng.place(spec("b", tenant="t1"))
    third = eng.place(spec("c", tenant="t0"))
    assert third.spilled and not third.dropped
    assert third.delayed_s == 0.0          # spill, not queueing
    assert third.node in ("node00", "node01")


def test_exclusive_component_queues_behind_the_window():
    eng, _topo = engine(n=1)
    first = eng.place(spec("a", kind="render", end_s=1.0))
    second = eng.place(spec("b", kind="render", start_s=0.5, end_s=1.5))
    assert first.delayed_s == 0.0
    assert second.spilled and second.delayed_s > 0
    # Shifted past the first window plus the enter/leave gap.
    assert second.workload.start_s == pytest.approx(1.2)
    assert second.workload.end_s - second.workload.start_s == pytest.approx(
        1.0)


def test_exclusive_overflow_past_horizon_is_dropped():
    eng, _topo = engine(n=1, min_slice_s=0.5)
    eng.place(spec("a", kind="render", start_s=0.0, end_s=HORIZON))
    dropped = eng.place(spec("b", kind="render", start_s=0.0, end_s=1.0))
    assert dropped.dropped
    assert dropped.node is None


def test_unknown_component_is_an_error():
    topo = ClusterTopology([NodeSpec("cpu-only", components=("cpu",))])
    eng = PlacementEngine(topo, FixedPredictor(), horizon_s=HORIZON)
    with pytest.raises(ValueError, match="no node offers"):
        eng.place(spec("a", kind="render"))


def test_predicted_peak_counts_only_overlap():
    eng, _topo = engine()
    eng.place(spec("a", tenant="t0", start_s=0.0, end_s=1.0))
    eng.place(spec("b", tenant="t0", start_s=2.0, end_s=3.0))
    # Sequential instances never stack: peak is idle + one instance.
    assert eng.predicted_peak_w("node00", 0.0, HORIZON) == pytest.approx(
        eng.idle_w + 1.0)


def test_placements_by_node_groups_and_skips_drops():
    eng, _topo = engine(n=1, min_slice_s=0.5)
    placements = eng.place_all([
        spec("a", kind="render", start_s=0.0, end_s=HORIZON),
        spec("b", kind="render", start_s=0.0, end_s=1.0),
        spec("c", start_s=0.0, end_s=1.0),
    ])
    grouped = placements_by_node(placements)
    assert set(grouped) == {"node00"}
    assert [w.name for w in grouped["node00"]] == ["a", "c"]


def test_placement_quality_summary():
    eng, topo = engine(n=1, min_slice_s=0.5)
    placements = eng.place_all([
        spec("a", kind="render", start_s=0.0, end_s=HORIZON),
        spec("b", kind="render", start_s=0.0, end_s=1.0),
        spec("c", start_s=0.0, end_s=1.0),
    ])
    quality = placement_quality(placements, topo, HORIZON, eng)
    assert quality["instances"] == 3
    assert quality["placed"] == 2
    assert quality["dropped"] == 1
    assert quality["balance_cv"] == 0.0     # one node
    assert placement_quality([], topo, HORIZON, eng)["instances"] == 0
