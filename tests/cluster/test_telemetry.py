"""Cluster-level telemetry: epoch samplers, the cap-loop session, alerts.

The overshoot scenario at the bottom is the observability stack's
acceptance shape: a seeded fault plan blinds the node daemons
(``powercap.telemetry`` corrupt — stale readings) under a tight budget,
and the ``cap.compliance`` SLO rule must fire — identically on every run
of the same seed.
"""

import pytest

from repro.cluster import (
    USERS_PER_INSTANCE,
    Cluster,
    ClusterConfig,
    ClusterTelemetry,
    ClusterTopology,
    EpochClock,
    WaterFillingAllocator,
    WorkloadSpec,
)
from repro.cluster.placement import Placement
from repro.faults import FaultPlan
from repro.obs import AlertEngine, chrome_trace_events, default_rules
from repro.obs import runtime as obs_runtime

HORIZON_S = 1.2
EPOCH_MS = 200


def spec(name, kind="web", tenant="t0", start_s=0.0, end_s=HORIZON_S):
    return WorkloadSpec(name=name, tenant=tenant, kind=kind, start_s=start_s,
                        end_s=end_s, users=USERS_PER_INSTANCE)


def two_node_setup(budget_w=12.0):
    topo = ClusterTopology.uniform(2)
    by_node = {
        "node00": [spec("a.web"), spec("a.render", kind="render",
                                       start_s=0.1, end_s=1.0)],
        "node01": [spec("b.web", tenant="t1"),
                   spec("b.bulk", tenant="t1", kind="bulk", start_s=0.1,
                        end_s=1.0)],
    }
    config = ClusterConfig(budget_w=budget_w, horizon_s=HORIZON_S,
                           epoch_ms=EPOCH_MS)
    return topo, by_node, config


def run_with_telemetry(budget_w=12.0, engine=None, fault=False, seed=5):
    """One telemetry-on waterfill run; returns (telemetry, run)."""
    topo, by_node, config = two_node_setup(budget_w)
    telemetry = ClusterTelemetry.standalone(label="cap-loop", engine=engine)
    cluster = Cluster(topo, by_node, WaterFillingAllocator(), config,
                      seed=seed, telemetry=telemetry)
    if fault:
        for node in cluster.nodes:
            plan = FaultPlan(node.platform.sim, enabled=True)
            plan.add("powercap.telemetry", "corrupt", prob=1.0)
            plan.install()
    run = cluster.run()
    return telemetry, run


# -- the epoch clock ---------------------------------------------------------------


def test_epoch_clock_quacks_like_a_sim():
    clock = EpochClock()
    assert clock.now == 0
    assert clock.obs is None and clock.faults is None


def test_for_runtime_is_none_when_nothing_armed():
    assert not obs_runtime.is_active()
    assert ClusterTelemetry.for_runtime() is None


def test_for_runtime_registers_with_armed_runtime():
    obs_runtime.configure(tracing=True, metrics=True, telemetry=True)
    try:
        telemetry = ClusterTelemetry.for_runtime(label="cap-loop")
        assert telemetry is not None
        assert telemetry.obs in obs_runtime.sessions()
        assert telemetry.obs.timeline is not None
    finally:
        obs_runtime.reset()


# -- samplers ----------------------------------------------------------------------


def test_epoch_sampler_records_the_documented_series():
    telemetry, run = run_with_telemetry()
    timeline = telemetry.obs.timeline
    epochs = len(run.epochs)
    assert epochs == 6
    for name in ("cluster.aggregate_w", "cluster.budget_w",
                 "cluster.compliance_err", "cluster.redistributed_w"):
        assert len(timeline.series(name)) == epochs
    # per-node series carry the node label, one sample per epoch
    for node in ("node00", "node01"):
        for name in ("cluster.node_power_w", "cluster.node_cap_w",
                     "cluster.node_headroom_w", "cluster.node_demand_w"):
            assert len(timeline.series(name, node=node)) == epochs
    # sample times are the epoch boundaries, in ns
    assert timeline.series("cluster.aggregate_w").times() == [
        (i + 1) * EPOCH_MS * 10**6 for i in range(epochs)]
    # headroom is cap minus draw, bit-for-bit
    cap = timeline.series("cluster.node_cap_w", node="node00").values()
    power = timeline.series("cluster.node_power_w", node="node00").values()
    head = timeline.series("cluster.node_headroom_w", node="node00").values()
    assert head == [c - p for c, p in zip(cap, power)]


def test_epoch_sampler_uses_the_in_effect_cap():
    telemetry, run = run_with_telemetry()
    timeline = telemetry.obs.timeline
    # Epoch 0 ran under the proportional split (budget/2 for uniform
    # weights), not under caps_w — which is what the allocator installed
    # *for the next epoch*.
    caps = timeline.series("cluster.node_cap_w", node="node00").values()
    assert caps[0] == pytest.approx(12.0 / 2)
    assert caps[1] == pytest.approx(run.epochs[0].caps_w["node00"])


def test_tenant_series_cover_active_tenants():
    telemetry, _run = run_with_telemetry()
    timeline = telemetry.obs.timeline
    users_t0 = timeline.series("cluster.tenant_users", tenant="t0")
    # t0's web instance is live all horizon: every epoch has a sample and
    # at least USERS_PER_INSTANCE concurrent users
    assert len(users_t0) == 6
    assert all(v >= USERS_PER_INSTANCE for v in users_t0.values())
    grants = timeline.series("cluster.tenant_grant_w", tenant="t1")
    assert len(grants) == 6
    assert all(v > 0.0 for v in grants.values())
    assert len(timeline.series("cluster.tenant_measured_w", tenant="t0")) == 6


def test_run_complete_publishes_metrics_gauges():
    telemetry, run = run_with_telemetry()
    gauges = telemetry.obs.metrics.gauges
    assert gauges["cluster.compliance_pct"].value == pytest.approx(
        run.metrics["compliance_pct"])
    assert gauges["cluster.mean_aggregate_w"].value == pytest.approx(
        run.metrics["mean_aggregate_w"])
    assert telemetry.obs.metrics.counters["cluster.epochs"].value == 6


def test_placement_sampler_counts_and_drops():
    telemetry = ClusterTelemetry.standalone(label="place")
    ok = Placement(workload=spec("a"), node="node00", predicted_w=1.0)
    spilled = Placement(workload=spec("b"), node="node01", predicted_w=1.0,
                        spilled=True)
    delayed = Placement(workload=spec("c"), node="node00", predicted_w=1.0,
                        delayed_s=0.2)
    dropped = Placement(workload=spec("d"), node=None, predicted_w=1.0)
    telemetry.on_placement([ok, spilled, delayed, dropped])
    metrics = telemetry.obs.metrics
    assert metrics.counters["placement.instances"].value == 4
    assert metrics.counters["placement.placed"].value == 3
    assert metrics.counters["placement.spills"].value == 1
    assert metrics.counters["placement.delayed"].value == 1
    assert metrics.counters["placement.dropped"].value == 1
    timeline = telemetry.obs.timeline
    assert timeline.series("placement.drop_rate").last()[1] == 0.25
    names = [name for _t, _tr, name, _c, _a
             in telemetry.obs.tracer.instants]
    assert names.count("placement.drop") == 1


def test_cap_loop_session_lands_in_the_merged_trace():
    telemetry, _run = run_with_telemetry()
    events = chrome_trace_events([telemetry.obs])
    samples = [e for e in events if e["ph"] == "C"
               and e["name"] == "cluster.aggregate_w"]
    assert len(samples) == 6
    # counter samples carry honest virtual time (epoch ends, in us)
    assert samples[0]["ts"] == EPOCH_MS * 1000.0


def test_telemetry_is_read_only_against_the_nodes():
    _telemetry, watched = run_with_telemetry()
    topo, by_node, config = two_node_setup()
    bare = Cluster(topo, by_node, WaterFillingAllocator(), config,
                   seed=5).run()
    assert watched.metrics == bare.metrics
    assert [e.caps_w for e in watched.epochs] == [
        e.caps_w for e in bare.epochs]


# -- the seeded overshoot scenario -------------------------------------------------


def overshoot_alerts(seed=5):
    """Blinded daemons + tight budget: the compliance SLO must break.

    ``powercap.telemetry`` corrupt makes every node daemon reuse stale
    leaf readings the whole run, and the budget is far below what the mix
    draws — the global loop cannot land inside the ±1% band.
    """
    engine = AlertEngine(default_rules())
    telemetry, run = run_with_telemetry(budget_w=1.0, engine=engine,
                                        fault=True, seed=seed)
    engine.finalize()
    return engine, run


def test_overshoot_fires_the_compliance_alert():
    engine, run = overshoot_alerts()
    fired = [a for a in engine.alerts if a.rule == "cap.compliance"]
    assert len(fired) == 1                    # one episode, one alert
    alert = fired[0]
    assert alert.severity == "critical"
    assert alert.session == "cap-loop"
    assert alert.streak == 4                  # fired as soon as the band
    assert alert.t_ns == 4 * EPOCH_MS * 10**6  # held 4 consecutive epochs
    assert alert.value > 0.01                 # an overshoot, not a dip
    assert not engine.ok


def test_overshoot_alert_is_seed_deterministic():
    first, _run1 = overshoot_alerts()
    second, _run2 = overshoot_alerts()
    assert ([a.to_dict() for a in first.alerts]
            == [a.to_dict() for a in second.alerts])


def test_overshoot_alert_lands_in_the_trace():
    engine, _run = overshoot_alerts()
    # the engine dropped an instant at the breach on the cap loop's track
    # (visible next to its cause in the merged Perfetto timeline)
    obs = engine._watched[0][0]
    instants = [(t, name) for t, _track, name, _c, _a in obs.tracer.instants
                if name == "alert.cap.compliance"]
    assert instants == [(4 * EPOCH_MS * 10**6, "alert.cap.compliance")]
