"""Global allocators: conservation, demand following, the PI baseline.

The datacenter-level mirror of ``tests/powercap/test_budget.py``: the same
edge cases (zero budget, all saturated, single child) exercised through
the :class:`GlobalAllocator` implementations, plus a hypothesis property
that allocation conserves the budget at cluster scope exactly as the
budget tree conserves it at node scope.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import (
    NodeTelemetry,
    PIBaselineAllocator,
    WaterFillingAllocator,
    redistribution_w,
)


def tele(name, measured, demand, weight=1.0, cap=1.0):
    return NodeTelemetry(name=name, measured_w=measured, demand_w=demand,
                         cap_w=cap, weight=weight)


def balanced(demands, weights=None, budget=10.0):
    """Telemetry whose measured sum equals the budget: zero loop error, so
    the allocator's P/I terms vanish and conservation is exact."""
    weights = weights or [1.0] * len(demands)
    total = sum(weights)
    return [
        tele("n{}".format(i), budget * w / total, d, weight=w)
        for i, (d, w) in enumerate(zip(demands, weights))
    ]


# -- water-filling ------------------------------------------------------------------


def test_empty_telemetry_yields_no_caps():
    assert WaterFillingAllocator().allocate([], 10.0, 0.25) == {}
    assert PIBaselineAllocator().allocate([], 10.0, 0.25) == {}


def test_quiet_node_slack_flows_to_the_busy_one():
    caps = WaterFillingAllocator().allocate(
        balanced([0.2, 8.0], budget=6.0), 6.0, 0.25)
    assert caps["n1"] > caps["n0"]
    assert sum(caps.values()) == pytest.approx(6.0)
    # The busy node got more than its proportional half.
    assert caps["n1"] > 3.0


def test_all_nodes_saturated_splits_by_weight():
    wf = WaterFillingAllocator(floor_w=0.5)
    caps = wf.allocate(
        balanced([50.0, 50.0, 50.0], weights=[1.0, 1.0, 2.0], budget=8.0),
        8.0, 0.25)
    assert sum(caps.values()) == pytest.approx(8.0)
    # Above the uniform floor the division is weight-proportional.
    assert caps["n2"] - 0.5 == pytest.approx(2 * (caps["n0"] - 0.5))
    assert caps["n0"] == pytest.approx(caps["n1"])


def test_single_node_gets_the_whole_budget():
    caps = WaterFillingAllocator().allocate(
        balanced([3.0], budget=5.0), 5.0, 0.25)
    assert caps == {"n0": pytest.approx(5.0)}


def test_zero_demand_cluster_still_grants_the_budget():
    # Grants are permissions: idle telemetry must not zero the caps.
    caps = WaterFillingAllocator().allocate(
        balanced([0.0, 0.0], budget=4.0), 4.0, 0.25)
    assert sum(caps.values()) == pytest.approx(4.0)
    assert caps["n0"] == pytest.approx(caps["n1"])


def test_floor_keeps_an_idle_node_alive():
    wf = WaterFillingAllocator(floor_w=0.5)
    caps = wf.allocate(balanced([0.0, 20.0], budget=6.0), 6.0, 0.25)
    assert caps["n0"] >= 0.5 - 1e-9


def test_overdraw_trims_the_next_division():
    wf = WaterFillingAllocator()
    hot = [tele("n0", 6.0, 8.0), tele("n1", 6.0, 8.0)]   # 12 W on a 10 W cap
    caps = wf.allocate(hot, 10.0, 0.25)
    assert sum(caps.values()) < 10.0                     # P + I pull down
    assert wf._trim_w < 0.0
    wf.reset()
    assert wf._trim_w == 0.0


def test_floor_validation():
    with pytest.raises(ValueError, match="floor"):
        WaterFillingAllocator(floor_w=-1.0)


@given(
    st.lists(st.tuples(st.floats(min_value=0.0, max_value=20.0),
                       st.floats(min_value=0.1, max_value=4.0)),
             min_size=1, max_size=8),
    st.floats(min_value=0.5, max_value=40.0),
)
def test_waterfill_allocation_conserves_the_budget(nodes, budget):
    demands = [d for d, _w in nodes]
    weights = [w for _d, w in nodes]
    caps = WaterFillingAllocator().allocate(
        balanced(demands, weights=weights, budget=budget), budget, 0.25)
    # Conservation at cluster scope: node caps sum to the datacenter
    # budget (nothing lost, nothing invented) and never go negative.
    assert sum(caps.values()) == pytest.approx(budget)
    assert all(c >= -1e-9 for c in caps.values())


# -- the PI baseline ----------------------------------------------------------------


def test_pi_moves_every_node_in_lockstep():
    pi = PIBaselineAllocator()
    caps = pi.allocate(balanced([0.2, 8.0], budget=6.0), 6.0, 0.25)
    # Zero error: static shares, untouched — no demand following.
    assert caps["n0"] == pytest.approx(caps["n1"]) == pytest.approx(3.0)


def test_pi_scale_is_clipped():
    pi = PIBaselineAllocator(scale_span=0.5)
    cold = [tele("n0", 0.0, 0.0)]                 # huge positive error
    for _ in range(50):
        caps = pi.allocate(cold, 10.0, 0.25)
    assert caps["n0"] <= 15.0 + 1e-9              # 1 + span, no wind-up
    pi.reset()
    assert pi._integral == 0.0


# -- the redistribution metric ------------------------------------------------------


def test_redistribution_scores_demand_following_not_scaling():
    telemetry = balanced([0.2, 8.0], budget=6.0)
    wf_caps = WaterFillingAllocator().allocate(telemetry, 6.0, 0.25)
    pi_caps = PIBaselineAllocator().allocate(telemetry, 6.0, 0.25)
    assert redistribution_w(wf_caps, telemetry) > 0.1
    assert redistribution_w(pi_caps, telemetry) == pytest.approx(0.0)
