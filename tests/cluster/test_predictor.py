"""PowerPredictor: static priors, online correction, guard rails."""

import pytest

from repro.cluster import USERS_PER_INSTANCE, PowerPredictor, WorkloadSpec
from repro.cluster.predictor import KIND_WATTS


def spec(kind="web", users=USERS_PER_INSTANCE):
    return WorkloadSpec(name="w", tenant="t", kind=kind, start_s=0.0,
                        end_s=1.0, users=users)


def test_predict_scales_with_load():
    p = PowerPredictor()
    full = p.predict(spec())
    assert full == pytest.approx(KIND_WATTS["web"])
    assert p.predict(spec(users=USERS_PER_INSTANCE // 2)) == pytest.approx(
        full / 2)


def test_validation():
    with pytest.raises(ValueError, match="smoothing"):
        PowerPredictor(smoothing=0.0)
    with pytest.raises(ValueError, match="unknown workload kinds: mining"):
        PowerPredictor(kind_watts={"mining": 9.0})
    with pytest.raises(KeyError):
        PowerPredictor().observe("mining", 1.0, 1.0)


def test_observation_bends_future_predictions():
    p = PowerPredictor(smoothing=0.5)
    before = p.predict(spec())
    p.observe("web", predicted_w=1.0, measured_w=2.0)
    assert p.correction("web") == pytest.approx(1.5)   # EWMA toward 2.0
    assert p.predict(spec()) == pytest.approx(1.5 * before)


def test_wild_samples_are_clipped():
    p = PowerPredictor(smoothing=1.0)
    p.observe("web", predicted_w=1.0, measured_w=100.0)
    assert p.correction("web") == 4.0
    p.observe("web", predicted_w=1.0, measured_w=0.0001)
    assert p.correction("web") == 0.25
    # Zero prediction: no ratio to learn from, sample dropped.
    p.observe("web", predicted_w=0.0, measured_w=5.0)
    assert p.correction("web") == 0.25


def test_stats_snapshot():
    p = PowerPredictor()
    assert p.mean_abs_error_w() == 0.0
    p.observe("bulk", predicted_w=1.0, measured_w=1.5)
    stats = p.stats()
    assert stats["samples"]["bulk"] == 1
    assert stats["mean_abs_error_w"] == pytest.approx(0.5)
    assert set(stats["corrections"]) == set(KIND_WATTS)
