"""Budget tree tests: water-filling, oversubscription, borrowing, slack."""

import copy

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.powercap.budget import (
    BudgetNode,
    BudgetTree,
    allocate_snapshot,
    waterfill,
)

EPS = 1e-9


# -- waterfill ---------------------------------------------------------------------


def test_waterfill_grants_everything_when_it_fits():
    assert waterfill([1.0, 2.0], [1.0, 1.0], 4.0) == [1.0, 2.0]


def test_waterfill_splits_evenly_under_pressure():
    assert waterfill([5.0, 5.0], [1.0, 1.0], 4.0) == [2.0, 2.0]


def test_waterfill_short_requests_fully_met():
    grants = waterfill([0.5, 9.0], [1.0, 1.0], 4.0)
    assert grants[0] == 0.5
    assert grants[1] == pytest.approx(3.5)


def test_waterfill_respects_weights():
    grants = waterfill([9.0, 9.0], [1.0, 3.0], 4.0)
    assert grants[0] == pytest.approx(1.0)
    assert grants[1] == pytest.approx(3.0)


def test_waterfill_input_validation():
    with pytest.raises(ValueError):
        waterfill([1.0], [1.0, 1.0], 4.0)
    with pytest.raises(ValueError):
        waterfill([1.0], [1.0], -1.0)


@given(
    st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1,
             max_size=8),
    st.floats(min_value=0.0, max_value=20.0),
)
def test_waterfill_properties(requests, capacity):
    weights = [1.0] * len(requests)
    grants = waterfill(requests, weights, capacity)
    # Never over-grants a request, never exceeds capacity, and leaves no
    # capacity unused while some request is unmet.
    assert all(g <= r + EPS for g, r in zip(grants, requests))
    assert sum(grants) <= capacity + EPS
    if sum(requests) >= capacity:
        assert sum(grants) == pytest.approx(capacity)
    else:
        assert grants == requests


# -- tree construction -------------------------------------------------------------


def test_node_validation():
    with pytest.raises(ValueError):
        BudgetNode("x", cap_w=-1.0)
    with pytest.raises(ValueError):
        BudgetNode("x", weight=0.0)
    root = BudgetNode("root")
    child = root.child("a")
    with pytest.raises(ValueError):
        root.add_child(child)      # already attached


def test_tree_rejects_duplicate_names():
    root = BudgetNode("root")
    root.child("a")
    root.child("a")
    with pytest.raises(ValueError):
        BudgetTree(root)


def test_from_spec_builds_the_hierarchy():
    tree = BudgetTree.from_spec({
        "name": "platform", "cap_w": 3.0, "children": [
            {"name": "t-a", "cap_w": 2.0,
             "children": [{"name": "app1"}, {"name": "app2", "weight": 2.0}]},
            {"name": "t-b", "borrowable": False},
        ],
    })
    assert tree.node("platform").cap_w == 3.0
    assert tree.node("app2").weight == 2.0
    assert not tree.node("t-b").borrowable
    assert tree.node("app1").path() == "platform/t-a/app1"
    assert {leaf.name for leaf in tree.leaves()} == {"app1", "app2", "t-b"}
    assert "app1" in tree and "nope" not in tree
    with pytest.raises(KeyError):
        tree.node("nope")


# -- allocation --------------------------------------------------------------------


def two_tenant_tree(cap=3.0, tenant_cap=2.25):
    """Oversubscribed: the tenant caps sum to 1.5x the platform cap."""
    return BudgetTree.from_spec({
        "name": "platform", "cap_w": cap, "children": [
            {"name": "t-a", "cap_w": tenant_cap,
             "children": [{"name": "a1"}, {"name": "a2"}]},
            {"name": "t-b", "cap_w": tenant_cap,
             "children": [{"name": "b1"}, {"name": "b2"}]},
        ],
    })


def test_oversubscribed_tenants_split_the_platform_cap():
    tree = two_tenant_tree()
    grants = tree.allocate({"a1": 5.0, "a2": 5.0, "b1": 5.0, "b2": 5.0})
    assert grants["platform"] == pytest.approx(3.0)
    assert grants["t-a"] == pytest.approx(1.5)
    assert grants["t-b"] == pytest.approx(1.5)


def test_idle_tenant_slack_flows_to_the_busy_sibling():
    tree = two_tenant_tree()
    grants = tree.allocate({"a1": 5.0, "a2": 5.0, "b1": 0.1, "b2": 0.0})
    # t-b only needs 0.1; t-a soaks the rest up to its own cap and then —
    # borrowable — beyond it, up to the platform budget.
    assert grants["t-a"] >= 2.25 - EPS
    assert grants["t-a"] + grants["t-b"] == pytest.approx(3.0)
    assert grants["a1"] + grants["a2"] == pytest.approx(grants["t-a"])


def test_non_borrowable_tenant_never_exceeds_its_cap():
    tree = BudgetTree.from_spec({
        "name": "platform", "cap_w": 3.0, "children": [
            {"name": "t-a", "cap_w": 1.0, "borrowable": False,
             "children": [{"name": "a1"}]},
            {"name": "t-b", "cap_w": 2.0, "children": [{"name": "b1"}]},
        ],
    })
    grants = tree.allocate({"a1": 5.0, "b1": 0.0})
    assert grants["t-a"] <= 1.0 + EPS


def test_grants_sum_to_available_when_someone_can_borrow():
    tree = two_tenant_tree()
    # Demands far below the cap: the bonus pass still hands out the whole
    # budget so lagging demand estimates do not starve anyone.
    grants = tree.allocate({"a1": 0.2, "a2": 0.2, "b1": 0.2, "b2": 0.2})
    assert grants["t-a"] + grants["t-b"] == pytest.approx(3.0)


def test_available_override_charges_unmanaged_draw():
    tree = two_tenant_tree()
    grants = tree.allocate({"a1": 5.0, "a2": 5.0, "b1": 5.0, "b2": 5.0},
                           available=2.0)
    assert grants["platform"] == pytest.approx(2.0)
    assert grants["t-a"] == pytest.approx(1.0)


def test_uncapped_root_grants_total_demand():
    tree = BudgetTree.from_spec({
        "name": "root", "children": [{"name": "x"}, {"name": "y"}],
    })
    grants = tree.allocate({"x": 1.0, "y": 2.0})
    assert grants["x"] == pytest.approx(1.0)
    assert grants["y"] == pytest.approx(2.0)


@given(
    st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=4,
             max_size=4),
    st.floats(min_value=0.5, max_value=6.0),
)
def test_allocation_conserves_the_budget(demands, cap):
    tree = two_tenant_tree(cap=cap, tenant_cap=0.75 * cap)
    leaf_demand = dict(zip(["a1", "a2", "b1", "b2"], demands))
    grants = tree.allocate(leaf_demand)
    # The root grant equals the cap; every parent's grant equals the sum
    # of its children's grants (nothing lost, nothing invented).
    assert grants["platform"] == pytest.approx(cap)
    assert grants["t-a"] + grants["t-b"] == pytest.approx(cap)
    assert grants["a1"] + grants["a2"] == pytest.approx(grants["t-a"])
    assert grants["b1"] + grants["b2"] == pytest.approx(grants["t-b"])


# -- edge cases shared with the cluster allocators ---------------------------------


def test_zero_budget_children_get_nothing_everywhere():
    tree = two_tenant_tree(cap=0.0, tenant_cap=0.0)
    grants = tree.allocate({"a1": 5.0, "a2": 5.0, "b1": 5.0, "b2": 5.0})
    assert all(g == 0.0 for g in grants.values())


def test_all_children_saturated_split_by_weight():
    tree = BudgetTree.from_spec({
        "name": "root", "cap_w": 3.0, "children": [
            {"name": "x", "cap_w": 1.0, "weight": 1.0},
            {"name": "y", "cap_w": 1.0, "weight": 2.0},
        ],
    })
    # Both children demand far beyond their caps: entitled grants clip to
    # the caps, and the leftover budget flows back by weight (borrowing).
    grants = tree.allocate({"x": 10.0, "y": 10.0})
    assert grants["x"] + grants["y"] == pytest.approx(3.0)
    assert grants["y"] > grants["x"]


def test_single_child_tree_passes_the_budget_through():
    tree = BudgetTree.from_spec({
        "name": "root", "cap_w": 2.0,
        "children": [{"name": "only", "children": [{"name": "leaf"}]}],
    })
    grants = tree.allocate({"leaf": 9.0})
    assert grants["only"] == pytest.approx(2.0)
    assert grants["leaf"] == pytest.approx(2.0)


# -- snapshots ---------------------------------------------------------------------


def test_snapshot_round_trips_through_from_spec():
    tree = two_tenant_tree()
    snapshot = tree.snapshot()
    rebuilt = BudgetTree.from_spec(snapshot)
    assert rebuilt.snapshot() == snapshot
    assert {leaf.name for leaf in rebuilt.leaves()} == {
        leaf.name for leaf in tree.leaves()}


def test_snapshot_shares_no_state_with_the_tree():
    tree = two_tenant_tree(cap=3.0)
    snapshot = tree.snapshot()
    tree.root.cap_w = 99.0
    tree.node("t-a").weight = 7.0
    assert snapshot["cap_w"] == 3.0
    assert snapshot["children"][0]["weight"] == 1.0


@given(
    st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=4,
             max_size=4),
    st.floats(min_value=0.5, max_value=6.0),
)
def test_allocate_snapshot_matches_the_live_tree(demands, cap):
    tree = two_tenant_tree(cap=cap, tenant_cap=0.75 * cap)
    leaf_demand = dict(zip(["a1", "a2", "b1", "b2"], demands))
    live = tree.allocate(leaf_demand)
    pure = allocate_snapshot(tree.snapshot(), leaf_demand)
    assert set(pure) == set(live)
    for name in live:
        assert pure[name] == pytest.approx(live[name])


def test_allocate_snapshot_mutates_nothing():
    tree = two_tenant_tree()
    snapshot = tree.snapshot()
    frozen = copy.deepcopy(snapshot)
    demands = {"a1": 5.0, "a2": 0.0, "b1": 2.0, "b2": 1.0}
    demands_before = dict(demands)
    allocate_snapshot(snapshot, demands)
    allocate_snapshot(snapshot, demands, available=1.0)
    assert snapshot == frozen
    assert demands == demands_before


def test_allocate_snapshot_defaults_match_tree_semantics():
    # Uncapped root: the pass grants total demand, like the live tree.
    snapshot = {"name": "root",
                "children": [{"name": "x"}, {"name": "y"}]}
    grants = allocate_snapshot(snapshot, {"x": 1.0, "y": 2.0})
    assert grants["root"] == pytest.approx(3.0)
    # available override charges unmanaged draw against the cap.
    capped = allocate_snapshot(two_tenant_tree().snapshot(),
                               {"a1": 5.0, "a2": 5.0, "b1": 5.0, "b2": 5.0},
                               available=2.0)
    assert capped["platform"] == pytest.approx(2.0)


def test_waterfill_leaves_caller_lists_untouched():
    requests = [5.0, 5.0]
    weights = [1.0, 1.0]
    waterfill(requests, weights, 4.0)
    assert requests == [5.0, 5.0]
    assert weights == [1.0, 1.0]
    # Iterators are materialized, not consumed half-way into garbage.
    grants = waterfill(iter([1.0, 2.0]), iter([1.0, 1.0]), 4.0)
    assert grants == [1.0, 2.0]
