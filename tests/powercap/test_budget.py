"""Budget tree tests: water-filling, oversubscription, borrowing, slack."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.powercap.budget import BudgetNode, BudgetTree, waterfill

EPS = 1e-9


# -- waterfill ---------------------------------------------------------------------


def test_waterfill_grants_everything_when_it_fits():
    assert waterfill([1.0, 2.0], [1.0, 1.0], 4.0) == [1.0, 2.0]


def test_waterfill_splits_evenly_under_pressure():
    assert waterfill([5.0, 5.0], [1.0, 1.0], 4.0) == [2.0, 2.0]


def test_waterfill_short_requests_fully_met():
    grants = waterfill([0.5, 9.0], [1.0, 1.0], 4.0)
    assert grants[0] == 0.5
    assert grants[1] == pytest.approx(3.5)


def test_waterfill_respects_weights():
    grants = waterfill([9.0, 9.0], [1.0, 3.0], 4.0)
    assert grants[0] == pytest.approx(1.0)
    assert grants[1] == pytest.approx(3.0)


def test_waterfill_input_validation():
    with pytest.raises(ValueError):
        waterfill([1.0], [1.0, 1.0], 4.0)
    with pytest.raises(ValueError):
        waterfill([1.0], [1.0], -1.0)


@given(
    st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1,
             max_size=8),
    st.floats(min_value=0.0, max_value=20.0),
)
def test_waterfill_properties(requests, capacity):
    weights = [1.0] * len(requests)
    grants = waterfill(requests, weights, capacity)
    # Never over-grants a request, never exceeds capacity, and leaves no
    # capacity unused while some request is unmet.
    assert all(g <= r + EPS for g, r in zip(grants, requests))
    assert sum(grants) <= capacity + EPS
    if sum(requests) >= capacity:
        assert sum(grants) == pytest.approx(capacity)
    else:
        assert grants == requests


# -- tree construction -------------------------------------------------------------


def test_node_validation():
    with pytest.raises(ValueError):
        BudgetNode("x", cap_w=-1.0)
    with pytest.raises(ValueError):
        BudgetNode("x", weight=0.0)
    root = BudgetNode("root")
    child = root.child("a")
    with pytest.raises(ValueError):
        root.add_child(child)      # already attached


def test_tree_rejects_duplicate_names():
    root = BudgetNode("root")
    root.child("a")
    root.child("a")
    with pytest.raises(ValueError):
        BudgetTree(root)


def test_from_spec_builds_the_hierarchy():
    tree = BudgetTree.from_spec({
        "name": "platform", "cap_w": 3.0, "children": [
            {"name": "t-a", "cap_w": 2.0,
             "children": [{"name": "app1"}, {"name": "app2", "weight": 2.0}]},
            {"name": "t-b", "borrowable": False},
        ],
    })
    assert tree.node("platform").cap_w == 3.0
    assert tree.node("app2").weight == 2.0
    assert not tree.node("t-b").borrowable
    assert tree.node("app1").path() == "platform/t-a/app1"
    assert {leaf.name for leaf in tree.leaves()} == {"app1", "app2", "t-b"}
    assert "app1" in tree and "nope" not in tree
    with pytest.raises(KeyError):
        tree.node("nope")


# -- allocation --------------------------------------------------------------------


def two_tenant_tree(cap=3.0, tenant_cap=2.25):
    """Oversubscribed: the tenant caps sum to 1.5x the platform cap."""
    return BudgetTree.from_spec({
        "name": "platform", "cap_w": cap, "children": [
            {"name": "t-a", "cap_w": tenant_cap,
             "children": [{"name": "a1"}, {"name": "a2"}]},
            {"name": "t-b", "cap_w": tenant_cap,
             "children": [{"name": "b1"}, {"name": "b2"}]},
        ],
    })


def test_oversubscribed_tenants_split_the_platform_cap():
    tree = two_tenant_tree()
    grants = tree.allocate({"a1": 5.0, "a2": 5.0, "b1": 5.0, "b2": 5.0})
    assert grants["platform"] == pytest.approx(3.0)
    assert grants["t-a"] == pytest.approx(1.5)
    assert grants["t-b"] == pytest.approx(1.5)


def test_idle_tenant_slack_flows_to_the_busy_sibling():
    tree = two_tenant_tree()
    grants = tree.allocate({"a1": 5.0, "a2": 5.0, "b1": 0.1, "b2": 0.0})
    # t-b only needs 0.1; t-a soaks the rest up to its own cap and then —
    # borrowable — beyond it, up to the platform budget.
    assert grants["t-a"] >= 2.25 - EPS
    assert grants["t-a"] + grants["t-b"] == pytest.approx(3.0)
    assert grants["a1"] + grants["a2"] == pytest.approx(grants["t-a"])


def test_non_borrowable_tenant_never_exceeds_its_cap():
    tree = BudgetTree.from_spec({
        "name": "platform", "cap_w": 3.0, "children": [
            {"name": "t-a", "cap_w": 1.0, "borrowable": False,
             "children": [{"name": "a1"}]},
            {"name": "t-b", "cap_w": 2.0, "children": [{"name": "b1"}]},
        ],
    })
    grants = tree.allocate({"a1": 5.0, "b1": 0.0})
    assert grants["t-a"] <= 1.0 + EPS


def test_grants_sum_to_available_when_someone_can_borrow():
    tree = two_tenant_tree()
    # Demands far below the cap: the bonus pass still hands out the whole
    # budget so lagging demand estimates do not starve anyone.
    grants = tree.allocate({"a1": 0.2, "a2": 0.2, "b1": 0.2, "b2": 0.2})
    assert grants["t-a"] + grants["t-b"] == pytest.approx(3.0)


def test_available_override_charges_unmanaged_draw():
    tree = two_tenant_tree()
    grants = tree.allocate({"a1": 5.0, "a2": 5.0, "b1": 5.0, "b2": 5.0},
                           available=2.0)
    assert grants["platform"] == pytest.approx(2.0)
    assert grants["t-a"] == pytest.approx(1.0)


def test_uncapped_root_grants_total_demand():
    tree = BudgetTree.from_spec({
        "name": "root", "children": [{"name": "x"}, {"name": "y"}],
    })
    grants = tree.allocate({"x": 1.0, "y": 2.0})
    assert grants["x"] == pytest.approx(1.0)
    assert grants["y"] == pytest.approx(2.0)


@given(
    st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=4,
             max_size=4),
    st.floats(min_value=0.5, max_value=6.0),
)
def test_allocation_conserves_the_budget(demands, cap):
    tree = two_tenant_tree(cap=cap, tenant_cap=0.75 * cap)
    leaf_demand = dict(zip(["a1", "a2", "b1", "b2"], demands))
    grants = tree.allocate(leaf_demand)
    # The root grant equals the cap; every parent's grant equals the sum
    # of its children's grants (nothing lost, nothing invented).
    assert grants["platform"] == pytest.approx(cap)
    assert grants["t-a"] + grants["t-b"] == pytest.approx(cap)
    assert grants["a1"] + grants["a2"] == pytest.approx(grants["t-a"])
    assert grants["b1"] + grants["b2"] == pytest.approx(grants["t-b"])
