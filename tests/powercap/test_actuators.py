"""Actuator tests: level-to-mechanism mapping and clean release."""

import pytest

from repro.hw.dvfs import FreqDomain
from repro.hw.power import CpuPowerModel
from repro.kernel.governor import WORLD, OndemandGovernor
from repro.powercap.actuators import (
    BalloonAdmissionActuator,
    CfsBandwidthActuator,
    GovernorClampActuator,
)
from repro.sim.clock import from_msec
from repro.sim.engine import Simulator


def make_governor():
    sim = Simulator()
    domain = FreqDomain(sim, "d", CpuPowerModel().opps, initial_index=0)
    gov = OndemandGovernor(sim, domain, lambda t0, t1: 0.0)
    return gov


class FakeSmp:
    def __init__(self):
        self.calls = []

    def set_cpu_bandwidth(self, app, fraction, period):
        self.calls.append(("set", app, fraction, period))

    def clear_cpu_bandwidth(self, app):
        self.calls.append(("clear", app))


class FakeAdmission:
    def __init__(self):
        self.calls = []

    def set(self, app_id, fraction, period):
        self.calls.append(("set", app_id, fraction, period))

    def clear(self, app_id):
        self.calls.append(("clear", app_id))


class FakeSched:
    def __init__(self):
        self.admission = FakeAdmission()


class FakeApp:
    id = 7


def test_governor_clamp_level_mapping():
    gov = make_governor()
    top = gov.domain.max_index
    act = GovernorClampActuator(gov, (WORLD,))
    act.apply(1.0)
    assert gov.clamps[WORLD] == 0           # full throttle pins the bottom
    act.apply(0.5)
    assert gov.clamps[WORLD] == top - round(0.5 * top)
    act.apply(0.0)
    assert WORLD not in gov.clamps          # level 0 leaves no residue


def test_governor_clamp_respects_min_index():
    gov = make_governor()
    act = GovernorClampActuator(gov, (WORLD,), min_index=2)
    act.apply(1.0)
    assert gov.clamps[WORLD] == 2


def test_governor_clamp_validation():
    gov = make_governor()
    with pytest.raises(ValueError):
        GovernorClampActuator(gov, ())
    with pytest.raises(ValueError):
        GovernorClampActuator(gov, (WORLD,),
                              min_index=gov.domain.max_index + 1)
    act = GovernorClampActuator(gov, (WORLD,))
    with pytest.raises(ValueError):
        act.apply(1.5)


def test_cfs_bandwidth_level_mapping():
    smp = FakeSmp()
    app = FakeApp()
    act = CfsBandwidthActuator(smp, app, floor=0.2, period=from_msec(10))
    act.apply(0.5)
    assert smp.calls[-1] == ("set", app, pytest.approx(0.6), from_msec(10))
    act.apply(1.0)
    assert smp.calls[-1][2] == pytest.approx(0.2)   # never below the floor
    act.apply(0.0)
    assert smp.calls[-1] == ("clear", app)


def test_balloon_admission_level_mapping():
    sched = FakeSched()
    app = FakeApp()
    act = BalloonAdmissionActuator(sched, app, floor=0.15,
                                   period=from_msec(40))
    act.apply(0.5)
    assert sched.admission.calls[-1] == \
        ("set", 7, pytest.approx(0.575), from_msec(40))
    act.apply(0.0)
    assert sched.admission.calls[-1] == ("clear", 7)


def test_release_equals_level_zero():
    smp = FakeSmp()
    act = CfsBandwidthActuator(smp, FakeApp())
    act.apply(0.8)
    act.release()
    assert smp.calls[-1][0] == "clear"


def test_floor_validation():
    with pytest.raises(ValueError):
        CfsBandwidthActuator(FakeSmp(), FakeApp(), floor=0.0)
    with pytest.raises(ValueError):
        BalloonAdmissionActuator(FakeSched(), FakeApp(), floor=1.0)
