"""Closed-loop controller tests on a small single-app scenario."""

import pytest

from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel
from repro.powercap import (
    BudgetTree,
    CfsBandwidthActuator,
    GovernorClampActuator,
    LeafBinding,
    PowerCapController,
)
from repro.sim.clock import SEC

from tests.kernel.test_smp import spinner


def boot_hog(seed=5):
    platform = Platform.am57(seed=seed)
    kernel = Kernel(platform)
    app = spinner(kernel, "hog", pause_us=50)
    box = app.create_psbox(("cpu",))
    box.enter()
    return platform, kernel, app, box


def aggregate(platform, t0, t1):
    return sum(rail.mean_power(t0, t1) for rail in platform.rails.values())


def make_controller(kernel, app, box, cap_w):
    tree = BudgetTree.from_spec({
        "name": "root", "cap_w": cap_w,
        "children": [{"name": "hog"}],
    })
    bindings = [LeafBinding("hog", box, actuators=(
        GovernorClampActuator(kernel.cpu_governor, (box.ctx_key,)),
        CfsBandwidthActuator(kernel.smp, app),
    ))]
    return PowerCapController(kernel, tree, bindings)


def uncapped_peak(seed=5):
    platform, kernel, app, box = boot_hog(seed)
    platform.sim.run(until=2 * SEC)
    return aggregate(platform, SEC, 2 * SEC)


def test_loop_converges_to_the_cap():
    cap_w = 0.6 * uncapped_peak()
    platform, kernel, app, box = boot_hog()
    controller = make_controller(kernel, app, box, cap_w).start()
    assert controller.running
    platform.sim.run(until=3 * SEC)
    steady = aggregate(platform, 2 * SEC, 3 * SEC)
    assert steady == pytest.approx(cap_w, rel=0.10)
    assert controller.ticks > 0
    # The loop actually throttled: the leaf carries a nonzero level.
    assert controller.leaf_state("hog")["level"] > 0


def test_stop_releases_every_actuator():
    cap_w = 0.5 * uncapped_peak()
    platform, kernel, app, box = boot_hog()
    controller = make_controller(kernel, app, box, cap_w).start()
    platform.sim.run(until=2 * SEC)
    assert kernel.cpu_governor.clamps or kernel.smp.throttles
    controller.stop()
    assert not controller.running
    assert not kernel.cpu_governor.clamps
    assert not kernel.smp.throttles
    assert controller.leaf_state("hog")["level"] == 0.0
    # Released, the app climbs back to its uncapped draw.
    platform.sim.run(until=4 * SEC)
    released = aggregate(platform, 3 * SEC, 4 * SEC)
    assert released > 1.2 * cap_w


def test_unstarted_controller_schedules_nothing():
    platform, kernel, app, box = boot_hog()
    make_controller(kernel, app, box, cap_w=1.0)   # constructed only
    platform.sim.run(until=SEC)
    plain_platform, pk, pa, pb = boot_hog()
    plain_platform.sim.run(until=SEC)
    assert aggregate(platform, 0, SEC) == aggregate(plain_platform, 0, SEC)


def test_binding_must_target_a_leaf():
    platform, kernel, app, box = boot_hog()
    tree = BudgetTree.from_spec({
        "name": "root", "cap_w": 1.0,
        "children": [{"name": "hog"}],
    })
    with pytest.raises(ValueError):
        PowerCapController(kernel, tree,
                           [LeafBinding("root", box, actuators=())])


def test_telemetry_records_decisions():
    cap_w = 0.6 * uncapped_peak()
    platform, kernel, app, box = boot_hog()
    controller = make_controller(kernel, app, box, cap_w).start()
    platform.sim.run(until=SEC)
    entries = controller.telemetry.records(node="hog")
    assert entries
    assert {"throttle", "hold"} & {e["action"] for e in entries}
    root_rows = controller.telemetry.records(node="root")
    assert all(row["action"] == "aggregate" for row in root_rows)


def test_start_is_idempotent():
    platform, kernel, app, box = boot_hog()
    controller = make_controller(kernel, app, box, cap_w=1.0)
    controller.start()
    proc = controller._proc
    controller.start()
    assert controller._proc is proc
