"""Telemetry ring tests: bounded retention, filters, JSON export."""

import json

import pytest

from repro.powercap.telemetry import TelemetryRing


def fill(ring, n, node="x"):
    for i in range(n):
        ring.record(i, node, 0.5 + i, 1.0, "hold", 0.0)


def test_records_come_back_oldest_first():
    ring = TelemetryRing(capacity=8)
    fill(ring, 5)
    assert [e["t"] for e in ring.records()] == [0, 1, 2, 3, 4]
    assert len(ring) == 5


def test_full_ring_overwrites_the_oldest():
    ring = TelemetryRing(capacity=4)
    fill(ring, 6)
    assert [e["t"] for e in ring.records()] == [2, 3, 4, 5]
    assert len(ring) == 4
    assert ring.dropped == 2


def test_node_and_time_filters():
    ring = TelemetryRing(capacity=16)
    ring.record(10, "a", 1.0, 1.0, "hold", 0.0)
    ring.record(20, "b", 2.0, 1.0, "hold", 0.0)
    ring.record(30, "a", 3.0, 1.0, "hold", 0.0)
    assert [e["t"] for e in ring.records(node="a")] == [10, 30]
    # t1 is exclusive, t0 inclusive.
    assert [e["t"] for e in ring.records(t0=20, t1=30)] == [20]


def test_latest():
    ring = TelemetryRing(capacity=4)
    assert ring.latest() is None
    ring.record(1, "a", 1.0, 1.0, "hold", 0.0)
    ring.record(2, "b", 2.0, 1.0, "hold", 0.0)
    assert ring.latest()["t"] == 2
    assert ring.latest(node="a")["t"] == 1


def test_budget_may_be_none():
    ring = TelemetryRing(capacity=4)
    entry = ring.record(1, "root", 1.5, None, "aggregate", 0.0)
    assert entry["budget_w"] is None


def test_to_json_round_trips():
    ring = TelemetryRing(capacity=4)
    fill(ring, 3)
    decoded = json.loads(ring.to_json())
    assert decoded == ring.records()
    # Stable key order makes the export usable for bit-exact comparisons.
    assert ring.to_json() == ring.to_json()


def test_clear_resets_everything():
    ring = TelemetryRing(capacity=2)
    fill(ring, 5)
    ring.clear()
    assert len(ring) == 0
    assert ring.dropped == 0
    assert ring.records() == []


def test_capacity_validation():
    with pytest.raises(ValueError):
        TelemetryRing(capacity=0)
