"""psbox lifecycle tests: buffered collection (Listing 1) and destroy."""

import pytest

from repro.core.psbox import PsboxError
from repro.sim.clock import MSEC, SEC, from_msec

from tests.core.conftest import cpu_spinner, gpu_client


def test_collect_fills_buffer_and_fires_callback(booted):
    platform, kernel = booted
    app = cpu_spinner(kernel)
    box = app.create_psbox(("cpu",))
    box.enter()
    done = []
    buffer = box.collect(10, dt=from_msec(5),
                         callback=lambda t, w: done.append((t, w)))
    platform.sim.run(until=SEC)
    assert len(buffer) == 10
    assert done, "callback never fired"
    times, watts = done[0]
    assert times == sorted(times)
    assert all(w >= 0 for w in watts)
    # Timestamps land on the sampling cadence.
    assert times[1] - times[0] == from_msec(5)


def test_collect_validates_inputs(booted):
    platform, kernel = booted
    app = cpu_spinner(kernel)
    box = app.create_psbox(("cpu", "gpu"))
    box.enter()
    with pytest.raises(ValueError):
        box.collect(0)
    with pytest.raises(ValueError):
        box.collect(5)           # ambiguous component
    box.collect(5, component="cpu")


def test_collect_requires_entry(booted):
    platform, kernel = booted
    app = cpu_spinner(kernel)
    box = app.create_psbox(("cpu",))
    with pytest.raises(PsboxError):
        box.collect(5)


def test_collect_pauses_while_left(booted):
    platform, kernel = booted
    app = cpu_spinner(kernel)
    box = app.create_psbox(("cpu",))
    box.enter()
    buffer = box.collect(100, dt=from_msec(5))
    platform.sim.run(until=100 * MSEC)
    box.leave()
    n = len(buffer)
    platform.sim.run(until=300 * MSEC)
    assert len(buffer) == n


def test_close_destroys_sandbox(booted):
    platform, kernel = booted
    app = cpu_spinner(kernel)
    box = app.create_psbox(("cpu",))
    box.enter()
    platform.sim.run(until=100 * MSEC)
    box.close()
    assert not box.entered
    assert box.closed
    assert box not in app.psboxes
    with pytest.raises(PsboxError):
        box.enter()
    # The governor context was dropped.
    assert box.ctx_key not in kernel.cpu_governor.contexts


def test_close_frees_accel_slot_for_next_sandbox(booted):
    platform, kernel = booted
    a = gpu_client(kernel, "a")
    b = gpu_client(kernel, "b")
    box_a = a.create_psbox(("gpu",))
    box_a.enter()
    platform.sim.run(until=50 * MSEC)
    box_a.close()
    box_b = b.create_psbox(("gpu",))
    box_b.enter()
    assert box_b.entered


def test_fresh_sandbox_after_close_starts_pristine(booted):
    platform, kernel = booted
    app = gpu_client(kernel, "a", cycles=4e6, gap_us=200)
    box = app.create_psbox(("gpu",))
    box.enter()
    platform.sim.run(until=SEC)   # governor context ramps up
    ctx = kernel.gpu_governor.context(box.ctx_key)
    assert ctx.index > 0
    box.close()
    box2 = app.create_psbox(("gpu",))
    box2.enter()
    assert kernel.gpu_governor.context(box2.ctx_key).index == 0
