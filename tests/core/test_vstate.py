"""Power-state virtualization holder tests."""

import pytest

from repro.core.vstate import WORLD, SnapshotContextHolder


class FakeDevice:
    """A snapshot/restore device with one scalar of operating state."""

    def __init__(self):
        self.level = 5

    def snapshot(self):
        return {"level": self.level}

    def restore(self, state):
        self.level = state["level"]

    def default_state(self):
        return {"level": 0}


def test_fresh_context_gets_pristine_state():
    device = FakeDevice()
    holder = SnapshotContextHolder(device)
    holder.switch_context("psbox.1")
    assert device.level == 0


def test_world_state_saved_and_restored():
    device = FakeDevice()
    holder = SnapshotContextHolder(device)
    device.level = 7
    holder.switch_context("psbox.1")
    device.level = 3
    holder.switch_context(WORLD)
    assert device.level == 7
    holder.switch_context("psbox.1")
    assert device.level == 3


def test_switch_to_active_context_is_noop():
    device = FakeDevice()
    holder = SnapshotContextHolder(device)
    device.level = 9
    holder.switch_context(WORLD)
    assert device.level == 9


def test_contexts_do_not_leak_into_each_other():
    """The security property: no psbox observes another's lingering state."""
    device = FakeDevice()
    holder = SnapshotContextHolder(device)
    holder.switch_context("psbox.1")
    device.level = 42
    holder.switch_context(WORLD)
    holder.switch_context("psbox.2")
    assert device.level == 0       # pristine, not psbox.1's 42
    holder.switch_context("psbox.1")
    assert device.level == 42


def test_drop_context_forgets_state():
    device = FakeDevice()
    holder = SnapshotContextHolder(device)
    holder.switch_context("psbox.1")
    device.level = 42
    holder.drop_context("psbox.1")
    assert holder.active == WORLD
    holder.switch_context("psbox.1")
    assert device.level == 0


def test_cannot_drop_world():
    holder = SnapshotContextHolder(FakeDevice())
    with pytest.raises(ValueError):
        holder.drop_context(WORLD)
