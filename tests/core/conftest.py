"""Shared fixtures for psbox tests."""

import pytest

from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.actions import Compute, SendPacket, Sleep, SubmitAccel
from repro.kernel.kernel import Kernel
from repro.sim.clock import from_usec


@pytest.fixture
def booted():
    platform = Platform.full(seed=2)
    kernel = Kernel(platform)
    return platform, kernel


def cpu_spinner(kernel, name="spin", burst=4e6, pause_us=150):
    app = App(kernel, name)

    def behavior():
        while True:
            yield Compute(burst)
            app.count("work", 1)
            yield Sleep(from_usec(pause_us))

    app.spawn(behavior())
    return app


def gpu_client(kernel, name="gpuapp", cycles=2e6, power=0.6, gap_us=500):
    app = App(kernel, name)

    def behavior():
        while True:
            yield SubmitAccel("gpu", "draw", cycles, power, wait=True)
            yield Sleep(from_usec(gap_us))

    app.spawn(behavior())
    return app


def wifi_client(kernel, name="netapp", size=24_000, gap_us=2000):
    app = App(kernel, name)

    def behavior():
        while True:
            yield SendPacket(size, wait=True)
            yield Sleep(from_usec(gap_us))

    app.spawn(behavior())
    return app
