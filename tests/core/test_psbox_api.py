"""PowerSandbox API tests (Listing 1 semantics)."""

import pytest

from repro.core.psbox import PowerSandbox, PsboxError
from repro.sim.clock import MSEC

from tests.core.conftest import cpu_spinner


def test_create_validates_components(booted):
    platform, kernel = booted
    app = cpu_spinner(kernel)
    with pytest.raises(ValueError):
        PowerSandbox(kernel, app, components=())
    with pytest.raises(ValueError):
        PowerSandbox(kernel, app, components=("flux-capacitor",))


def test_observation_requires_entry(booted):
    platform, kernel = booted
    app = cpu_spinner(kernel)
    box = PowerSandbox(kernel, app, components=("cpu",))
    with pytest.raises(PsboxError):
        box.read()
    with pytest.raises(PsboxError):
        box.sample()
    with pytest.raises(PsboxError):
        box.energy(0, MSEC)


def test_enter_read_leave_cycle(booted):
    platform, kernel = booted
    app = cpu_spinner(kernel)
    box = PowerSandbox(kernel, app, components=("cpu",))
    box.enter()
    platform.sim.run(until=200 * MSEC)
    joules = box.read()
    assert joules > 0
    box.leave()
    with pytest.raises(PsboxError):
        box.read()


def test_context_manager(booted):
    platform, kernel = booted
    app = cpu_spinner(kernel)
    with PowerSandbox(kernel, app, components=("cpu",)) as box:
        platform.sim.run(until=100 * MSEC)
        assert box.read() > 0
        assert box.entered
    assert not box.entered


def test_enter_is_idempotent(booted):
    platform, kernel = booted
    app = cpu_spinner(kernel)
    box = PowerSandbox(kernel, app, components=("cpu",))
    box.enter()
    box.enter()
    box.leave()
    box.leave()
    assert not box.entered


def test_samples_are_timestamped_on_kernel_clock(booted):
    platform, kernel = booted
    app = cpu_spinner(kernel)
    box = PowerSandbox(kernel, app, components=("cpu",))
    box.enter()
    platform.sim.run(until=50 * MSEC)
    times, watts = box.sample()
    assert len(times) == len(watts)
    assert times[0] == box.entered_at
    assert times[-1] < kernel.now


def test_sample_needs_component_when_bound_to_several(booted):
    platform, kernel = booted
    app = cpu_spinner(kernel)
    box = PowerSandbox(kernel, app, components=("cpu", "gpu"))
    box.enter()
    platform.sim.run(until=20 * MSEC)
    with pytest.raises(ValueError):
        box.sample()
    times, watts = box.sample(component="cpu")
    assert len(times) > 0
    with pytest.raises(PsboxError):
        box.sample(component="wifi")


def test_read_since_window(booted):
    platform, kernel = booted
    app = cpu_spinner(kernel)
    box = PowerSandbox(kernel, app, components=("cpu",))
    box.enter()
    platform.sim.run(until=100 * MSEC)
    total = box.read()
    recent = box.read(since=50 * MSEC)
    assert 0 < recent < total


def test_app_create_psbox_helper(booted):
    platform, kernel = booted
    app = cpu_spinner(kernel)
    box = app.create_psbox(("cpu",))
    assert box in app.psboxes
    assert box.app is app


def test_manager_is_shared_per_kernel(booted):
    platform, kernel = booted
    a = cpu_spinner(kernel, "a")
    b = cpu_spinner(kernel, "b")
    box_a = a.create_psbox(("cpu",))
    box_b = b.create_psbox(("cpu",))
    assert box_a.manager is box_b.manager
    assert kernel.psbox_manager is box_a.manager


def test_accel_component_exclusive(booted):
    platform, kernel = booted
    a = cpu_spinner(kernel, "a")
    b = cpu_spinner(kernel, "b")
    box_a = a.create_psbox(("gpu",))
    box_b = b.create_psbox(("gpu",))
    box_a.enter()
    with pytest.raises(RuntimeError):
        box_b.enter()
    box_a.leave()
    box_b.enter()
    assert box_b.entered
