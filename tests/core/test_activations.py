"""Tests for activation-based (user-level) coscheduling (§7 alternative)."""


from repro.apps.base import App
from repro.core.activations import UserLevelCoscheduler
from repro.hw.platform import Platform
from repro.kernel.actions import Compute, Sleep
from repro.kernel.kernel import Kernel
from repro.sim.clock import MSEC, SEC, from_usec


def boot(seed=51):
    platform = Platform.am57(seed=seed)
    kernel = Kernel(platform)
    return platform, kernel


def worker_app(kernel, name, burst=4e6, pause_us=150):
    app = App(kernel, name)

    def behavior():
        while True:
            yield Compute(burst)
            app.count("work", 1)
            yield Sleep(from_usec(pause_us))

    app.spawn(behavior())
    return app


def test_dummies_fill_unused_cores():
    platform, kernel = boot()
    app = worker_app(kernel, "boxed")
    cosched = UserLevelCoscheduler(kernel, app)
    cosched.engage()
    platform.sim.run(until=SEC)
    # With one real thread on two cores, the dummy keeps the sibling busy:
    # total cluster utilization approaches 2 cores.
    assert platform.cpu.utilization(200 * MSEC, SEC) > 0.85
    windows = cosched.observation_windows(200 * MSEC, SEC)
    covered = sum(hi - lo for lo, hi in windows)
    assert covered > 0.5 * (SEC - 200 * MSEC)


def test_dummies_park_when_real_threads_sleep():
    platform, kernel = boot()
    app = App(kernel, "bursty")

    def behavior():
        while True:
            yield Compute(3e6)
            yield Sleep(20 * MSEC)

    app.spawn(behavior())
    cosched = UserLevelCoscheduler(kernel, app)
    cosched.engage()
    platform.sim.run(until=SEC)
    # Long sleeps: the machine must NOT stay pinned by dummies.
    assert platform.cpu.utilization(200 * MSEC, SEC) < 0.6


def test_disengage_stops_dummies():
    platform, kernel = boot()
    app = worker_app(kernel, "boxed")
    cosched = UserLevelCoscheduler(kernel, app)
    cosched.engage()
    platform.sim.run(until=300 * MSEC)
    cosched.disengage()
    platform.sim.run(until=SEC)
    assert platform.cpu.utilization(400 * MSEC, SEC) < 0.7


def test_boundary_is_statistical_not_enforced():
    """Unlike kernel balloons, a competitor still gets (some) CPU inside
    the 'windows' era: dummies only compete, they cannot exclude."""
    platform, kernel = boot()
    app = worker_app(kernel, "boxed")
    other = worker_app(kernel, "other")
    cosched = UserLevelCoscheduler(kernel, app)
    cosched.engage()
    platform.sim.run(until=2 * SEC)
    assert other.rate("work", SEC, 2 * SEC) > 0, (
        "CFS must still serve the competitor"
    )


def test_activation_insulation_weaker_than_kernel_psbox():
    """Head-to-head with the kernel mechanism on the same workload."""

    def kernel_psbox_drift(seed):
        def run(with_noise):
            platform, kern = boot(seed)
            app = App(kern, "main")

            def behavior():
                for _ in range(25):
                    yield Compute(5e6)
                    yield Sleep(from_usec(200))

            app.spawn(behavior())
            box = app.create_psbox(("cpu",))
            box.enter()
            if with_noise:
                worker_app(kern, "noise")
            platform.sim.run(until=6 * SEC)
            assert app.finished
            return box.vmeter.energy(0, app.finished_at)

        alone, corun = run(False), run(True)
        return abs(corun - alone) / alone

    def activation_drift(seed):
        def run(with_noise):
            platform, kern = boot(seed)
            app = App(kern, "main")

            def behavior():
                for _ in range(25):
                    yield Compute(5e6)
                    yield Sleep(from_usec(200))

            main_task = app.spawn(behavior())
            cosched = UserLevelCoscheduler(kern, app)
            cosched.engage()
            if with_noise:
                worker_app(kern, "noise")
            platform.sim.run(until=6 * SEC)
            assert not main_task.alive
            return cosched.energy(0, main_task.finished_at)

        alone, corun = run(False), run(True)
        return abs(corun - alone) / alone

    kernel_drift = kernel_psbox_drift(52)
    act_drift = activation_drift(52)
    assert kernel_drift < act_drift, (
        "kernel balloons ({:.1%}) should insulate better than activations "
        "({:.1%})".format(kernel_drift, act_drift)
    )


def test_dummy_power_overhead_vs_forced_idle():
    """Dummies spin: the activation approach burns more power than kernel
    balloons, whose excluded cores idle."""

    def mean_power(use_activations):
        platform, kern = boot(53)
        app = App(kern, "main")

        def behavior():
            while True:
                yield Compute(5e6)
                yield Sleep(from_usec(200))

        app.spawn(behavior())
        if use_activations:
            UserLevelCoscheduler(kern, app).engage()
        else:
            app.create_psbox(("cpu",)).enter()
        platform.sim.run(until=SEC)
        return platform.meter.mean_power("cpu", 300 * MSEC, SEC)

    assert mean_power(True) > 1.2 * mean_power(False)
