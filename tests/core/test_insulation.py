"""Integration tests of the psbox insulation property per component.

These are scaled-down versions of Figure 6: the sandboxed app's observed
energy must stay consistent when a co-runner appears, while its baseline
accounting share drifts.
"""

import pytest

from repro.accounting import PerSampleUsageAccounting
from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.actions import Compute, SendPacket, Sleep, SubmitAccel
from repro.kernel.kernel import Kernel
from repro.sim.clock import SEC, from_usec


def run_scenario(component, main_factory, co_factory, use_psbox, seed=9,
                 horizon=8):
    platform = Platform.full(seed=seed)
    kernel = Kernel(platform)
    app = main_factory(kernel)
    box = None
    if use_psbox:
        box = app.create_psbox((component,))
        box.enter()
    other = co_factory(kernel) if co_factory else None
    platform.sim.run(until=horizon * SEC)
    assert app.finished, "main app did not finish"
    end = app.finished_at
    if use_psbox:
        return box.vmeter.energy(0, end)
    ids = [app.id] + ([other.id] if other else [])
    acct = PerSampleUsageAccounting(platform, component)
    return acct.energies(ids, 0, end)[app.id]


def fixed_cpu_app(kernel):
    app = App(kernel, "main")

    def behavior():
        for _ in range(25):
            yield Compute(5e6)
            yield Sleep(from_usec(200))

    app.spawn(behavior())
    return app


def cpu_noise(kernel):
    app = App(kernel, "noise")

    def behavior():
        while True:
            yield Compute(4e6)
            yield Sleep(from_usec(150))

    app.spawn(behavior())
    return app


def fixed_gpu_app(kernel):
    app = App(kernel, "main")

    def behavior():
        for _ in range(20):
            yield SubmitAccel("gpu", "draw", 2.5e6, 0.7, wait=True)
            yield Sleep(from_usec(800))

    app.spawn(behavior())
    return app


def gpu_noise(kernel):
    app = App(kernel, "noise")

    def behavior():
        while True:
            yield SubmitAccel("gpu", "noise", 3e6, 0.9, wait=True)

    app.spawn(behavior())
    return app


def fixed_wifi_app(kernel):
    app = App(kernel, "main")

    def behavior():
        for _ in range(10):
            yield SendPacket(24_000, wait=True)
            yield Sleep(from_usec(3000))

    app.spawn(behavior())
    return app


def wifi_noise(kernel):
    app = App(kernel, "noise")

    def behavior():
        while True:
            yield SendPacket(32_000, wait=True)

    app.spawn(behavior())
    return app


SCENARIOS = {
    "cpu": (fixed_cpu_app, cpu_noise),
    "gpu": (fixed_gpu_app, gpu_noise),
    "wifi": (fixed_wifi_app, wifi_noise),
}


@pytest.mark.parametrize("component", sorted(SCENARIOS))
def test_psbox_energy_consistent_under_corun(component):
    main, noise = SCENARIOS[component]
    alone = run_scenario(component, main, None, use_psbox=True)
    corun = run_scenario(component, main, noise, use_psbox=True)
    delta = abs(corun - alone) / alone
    assert delta < 0.12, (
        "psbox {} energy drifted {:.1%} under co-run".format(component, delta)
    )


@pytest.mark.parametrize("component", sorted(SCENARIOS))
def test_psbox_beats_baseline_accounting(component):
    main, noise = SCENARIOS[component]
    psbox_alone = run_scenario(component, main, None, use_psbox=True)
    psbox_corun = run_scenario(component, main, noise, use_psbox=True)
    base_alone = run_scenario(component, main, None, use_psbox=False)
    base_corun = run_scenario(component, main, noise, use_psbox=False)
    psbox_delta = abs(psbox_corun - psbox_alone) / psbox_alone
    base_delta = abs(base_corun - base_alone) / base_alone
    assert psbox_delta < base_delta, (
        "psbox ({:.1%}) should beat the baseline ({:.1%}) on {}".format(
            psbox_delta, base_delta, component
        )
    )


def test_dsp_insulation():
    def main(kernel):
        app = App(kernel, "main")

        def behavior():
            for _ in range(6):
                yield SubmitAccel("dsp", "k", 40e6, 0.8, wait=True)
                yield Sleep(from_usec(500))

        app.spawn(behavior())
        return app

    def noise(kernel):
        app = App(kernel, "noise")

        def behavior():
            while True:
                yield SubmitAccel("dsp", "n", 30e6, 0.5, wait=True)

        app.spawn(behavior())
        return app

    alone = run_scenario("dsp", main, None, use_psbox=True, horizon=12)
    corun = run_scenario("dsp", main, noise, use_psbox=True, horizon=12)
    assert abs(corun - alone) / alone < 0.12
