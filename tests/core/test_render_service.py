"""Tests for the psbox-aware userspace daemon (§7)."""

import pytest

from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel
from repro.sim.clock import MSEC, SEC, from_msec
from repro.userspace.render_service import RenderService


def boot(psbox_aware=True, seed=14):
    platform = Platform.full(seed=seed)
    kernel = Kernel(platform)
    service = RenderService(kernel, psbox_aware=psbox_aware)
    return platform, kernel, service


def drive_client(platform, service, app, frames, cycles, power, gap_ms):
    """Feed render requests through the daemon from a sim process."""

    def producer():
        for _ in range(frames):
            service.submit(app, "frame", cycles, power)
            yield from_msec(gap_ms)

    platform.sim.spawn(producer(), name=app.name + ".producer")


def test_clients_must_connect_first():
    platform, kernel, service = boot()
    app = App(kernel, "client")
    with pytest.raises(KeyError):
        service.submit(app, "frame", 1e6, 0.5)
    with pytest.raises(KeyError):
        service.enter_psbox(app)


def test_requests_flow_and_are_attributed_to_clients():
    platform, kernel, service = boot()
    a = App(kernel, "a")
    service.connect(a)
    drive_client(platform, service, a, frames=5, cycles=1e6, power=0.5,
                 gap_ms=10)
    platform.sim.run(until=SEC)
    assert a.counters["gpu_commands"] == 5
    # The kernel, however, billed the daemon.
    assert service.daemon_app.id in kernel.gpu_sched.queues
    assert a.id not in kernel.gpu_sched.queues


def test_daemon_window_invariant():
    """No foreign client request in flight during the sandboxed client's
    daemon-level windows."""
    platform, kernel, service = boot(psbox_aware=True)
    boxed = App(kernel, "boxed")
    other = App(kernel, "other")
    meter = service.connect(boxed)
    service.connect(other)
    service.enter_psbox(boxed)
    drive_client(platform, service, boxed, frames=10, cycles=1.5e6,
                 power=0.6, gap_ms=25)
    drive_client(platform, service, other, frames=40, cycles=2e6,
                 power=0.8, gap_ms=8)
    platform.sim.run(until=2 * SEC)
    windows = meter.windows("gpu", 0, 2 * SEC)
    assert windows
    forwards = service.log.filter(kind="forward", client=other.id)
    # Reconstruct foreign service activity: a forward at t means a foreign
    # request was in flight from t until its completion; approximate with
    # the engine log of the daemon's commands is overkill — instead check
    # no foreign forward happens inside a window.
    for t, _k, _p in forwards:
        inside = any(lo <= t < hi for lo, hi in windows)
        assert not inside, "foreign request forwarded inside a window"


def test_aware_daemon_insulates_client_observation():
    def observed(psbox_aware, with_other, seed=14):
        platform, kernel, service = boot(psbox_aware=psbox_aware, seed=seed)
        boxed = App(kernel, "boxed")
        meter = service.connect(boxed)
        service.enter_psbox(boxed)
        drive_client(platform, service, boxed, frames=12, cycles=1.5e6,
                     power=0.6, gap_ms=30)
        if with_other:
            other = App(kernel, "other")
            service.connect(other)
            drive_client(platform, service, other, frames=60, cycles=2e6,
                         power=0.9, gap_ms=7)
        platform.sim.run(until=2 * SEC)
        return meter.energy(0, 600 * MSEC)

    aware_alone = observed(True, False)
    aware_corun = observed(True, True)
    drift_aware = abs(aware_corun - aware_alone) / aware_alone
    # Daemon-level balloons insulate multiplexing but cannot virtualize
    # the GPU's power state (only the kernel can switch DVFS contexts), so
    # the residual drift is larger than a kernel psbox's — bounded, not
    # eliminated.
    assert drift_aware < 0.45


def test_unaware_daemon_never_opens_windows():
    """Without daemon awareness, the client observes nothing but idle:
    the daemon owns the GPU and no window ever maps back to the client."""
    platform, kernel, service = boot(psbox_aware=False)
    boxed = App(kernel, "boxed")
    meter = service.connect(boxed)
    service.enter_psbox(boxed)
    drive_client(platform, service, boxed, frames=10, cycles=1.5e6,
                 power=0.6, gap_ms=20)
    platform.sim.run(until=SEC)
    assert meter.windows("gpu", 0, SEC) == []
    idle_only = meter.energy(0, SEC)
    assert idle_only == pytest.approx(
        platform.idle_power("gpu") * 1.0, rel=1e-6
    )


def test_leave_psbox_restores_free_multiplexing():
    platform, kernel, service = boot(psbox_aware=True)
    boxed = App(kernel, "boxed")
    other = App(kernel, "other")
    meter = service.connect(boxed)
    service.connect(other)
    service.enter_psbox(boxed)
    drive_client(platform, service, boxed, frames=5, cycles=1.5e6,
                 power=0.6, gap_ms=20)
    drive_client(platform, service, other, frames=20, cycles=2e6,
                 power=0.8, gap_ms=10)
    platform.sim.run(until=300 * MSEC)
    service.leave_psbox(boxed)
    platform.sim.run(until=2 * SEC)
    assert other.counters["gpu_commands"] == 20
    n_windows = len(meter.windows("gpu", 0, platform.sim.now))
    platform.sim.run(until=int(2.5 * SEC))
    assert len(meter.windows("gpu", 0, platform.sim.now)) == n_windows


def test_second_sandboxed_client_rejected():
    platform, kernel, service = boot()
    a, b = App(kernel, "a"), App(kernel, "b")
    service.connect(a)
    service.connect(b)
    service.enter_psbox(a)
    with pytest.raises(RuntimeError):
        service.enter_psbox(b)
