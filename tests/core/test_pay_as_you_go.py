"""The §3 "pay as you go" claim: psbox cost scales with time spent inside.

Apps are expected to enter briefly — to sample power periodically or to
monitor key phases — and run at full speed otherwise.  The throughput cost
must be proportional to the enclosed fraction, and zero when outside.
"""

import pytest

from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.actions import Compute, Sleep
from repro.kernel.kernel import Kernel
from repro.sim.clock import SEC, from_msec, from_usec


def spinner(kernel, name):
    app = App(kernel, name)

    def behavior():
        while True:
            yield Compute(4e6)
            app.count("work", 1)
            yield Sleep(from_usec(150))

    app.spawn(behavior())
    return app


def run_with_duty(duty_pct, period=from_msec(500), seed=61,
                  horizon=4 * SEC):
    """Three co-running instances; one dips into its psbox periodically."""
    platform = Platform.am57(seed=seed)
    kernel = Kernel(platform)
    apps = [spinner(kernel, "i{}".format(i)) for i in range(3)]
    box = apps[2].create_psbox(("cpu",))
    inside = int(period * duty_pct / 100)
    t = int(0.5 * SEC)
    while t < horizon:
        if inside > 0:
            platform.sim.at(t, box.enter)
            platform.sim.at(min(t + inside, horizon - 1), box.leave)
        t += period
    platform.sim.run(until=horizon)
    window = (SEC, horizon)
    return [app.rate("work", *window) for app in apps]


def test_zero_usage_costs_nothing():
    baseline = run_with_duty(0)
    spread = max(baseline) / min(baseline)
    assert spread < 1.3


def test_cost_scales_with_duty_cycle():
    baseline = run_with_duty(0)
    light = run_with_duty(10)
    heavy = run_with_duty(80)

    def sandboxed_loss(rates):
        return (baseline[2] - rates[2]) / baseline[2]

    light_loss = sandboxed_loss(light)
    heavy_loss = sandboxed_loss(heavy)
    assert light_loss < 0.25, "10% duty should cost little"
    assert heavy_loss > 2 * light_loss, "cost must grow with duty"


def test_neighbours_unaffected_at_any_duty():
    baseline = run_with_duty(0)
    for duty in (10, 50, 80):
        rates = run_with_duty(duty)
        for i in range(2):
            loss = (baseline[i] - rates[i]) / baseline[i]
            assert loss < 0.12, (
                "neighbour {} lost {:.0%} at duty {}%".format(i, loss, duty)
            )


def test_decisions_survive_leaving():
    """Power observed inside remains representative outside (vertical
    environment preserved): the mean power of the app's bursts inside the
    psbox matches the rail power its bursts cause when alone outside."""
    platform = Platform.am57(seed=62)
    kernel = Kernel(platform)
    app = spinner(kernel, "solo")
    box = app.create_psbox(("cpu",))
    platform.sim.at(1 * SEC, box.enter)
    platform.sim.at(2 * SEC, box.leave)
    platform.sim.run(until=3 * SEC)
    inside = box.vmeter.energy(SEC, 2 * SEC)
    outside = platform.meter.energy("cpu", 2 * SEC, 3 * SEC)
    assert inside == pytest.approx(outside, rel=0.05)
