"""Virtual power meter tests: windows, idle fill, energy arithmetic."""

import numpy as np
import pytest

from repro.core.vmeter import VirtualPowerMeter
from repro.hw.platform import Platform
from repro.sim.clock import MSEC, SEC


@pytest.fixture
def setup():
    platform = Platform.full(seed=0)
    vmeter = VirtualPowerMeter(platform, ("cpu",))
    return platform, vmeter


def test_no_windows_reads_pure_idle(setup):
    platform, vmeter = setup
    idle_w = platform.idle_power("cpu")
    energy = vmeter.energy(0, SEC)
    assert energy == pytest.approx(idle_w, rel=1e-9)   # 1 s x idle watts
    _t, watts = vmeter.samples("cpu", 0, 10 * MSEC)
    assert np.allclose(watts, idle_w)


def test_window_passes_rail_power_through(setup):
    platform, vmeter = setup
    rail = platform.rails["cpu"]
    sim = platform.sim
    rail.set_part("x", 2.0)
    vmeter.open_window("cpu", 0)
    sim.run(until=100 * MSEC)
    vmeter.close_window("cpu", 100 * MSEC)
    sim.run(until=200 * MSEC)
    idle_w = platform.idle_power("cpu")
    expected = 2.0 * 0.1 + idle_w * 0.1
    # The rail carries its own idle contribution too; account for it.
    base = rail.power_now() - 2.0
    expected += base * 0.1
    assert vmeter.energy(0, 200 * MSEC) == pytest.approx(expected, rel=1e-6)


def test_open_window_extends_to_query_time(setup):
    platform, vmeter = setup
    vmeter.open_window("cpu", 50 * MSEC)
    wins = vmeter.windows("cpu", 0, 200 * MSEC)
    assert wins == [(50 * MSEC, 200 * MSEC)]


def test_windows_clip_to_query_range(setup):
    platform, vmeter = setup
    vmeter.open_window("cpu", 10 * MSEC)
    vmeter.close_window("cpu", 90 * MSEC)
    assert vmeter.windows("cpu", 20 * MSEC, 50 * MSEC) == [
        (20 * MSEC, 50 * MSEC)
    ]
    assert vmeter.windows("cpu", 100 * MSEC, 200 * MSEC) == []


def test_double_open_and_close_are_tolerated(setup):
    platform, vmeter = setup
    vmeter.open_window("cpu", 0)
    vmeter.open_window("cpu", 5 * MSEC)    # ignored: already open
    vmeter.close_window("cpu", 10 * MSEC)
    vmeter.close_window("cpu", 20 * MSEC)  # ignored: already closed
    assert vmeter.windows("cpu", 0, SEC) == [(0, 10 * MSEC)]


def test_zero_width_window_dropped(setup):
    platform, vmeter = setup
    vmeter.open_window("cpu", 10)
    vmeter.close_window("cpu", 10)
    assert vmeter.windows("cpu", 0, SEC) == []


def test_samples_switch_between_rail_and_idle(setup):
    platform, vmeter = setup
    platform.rails["cpu"].set_part("x", 3.0)
    vmeter.open_window("cpu", 20 * MSEC)
    vmeter.close_window("cpu", 40 * MSEC)
    platform.sim.run(until=60 * MSEC)
    times, watts = vmeter.samples("cpu", 0, 60 * MSEC, dt=MSEC)
    idle_w = platform.idle_power("cpu")
    assert watts[5] == pytest.approx(idle_w)
    assert watts[30] > 2.9
    assert watts[55] == pytest.approx(idle_w)


def test_observed_fraction(setup):
    platform, vmeter = setup
    vmeter.open_window("cpu", 0)
    vmeter.close_window("cpu", 250 * MSEC)
    assert vmeter.observed_fraction("cpu", 0, SEC) == pytest.approx(0.25)
    assert vmeter.observed_fraction("cpu", 0, 0) == 0.0


def test_multi_component_energy_sums(setup):
    platform, _ = setup
    vmeter = VirtualPowerMeter(platform, ("cpu", "gpu"))
    energy_total = vmeter.energy(0, SEC)
    energy_cpu = vmeter.energy(0, SEC, component="cpu")
    energy_gpu = vmeter.energy(0, SEC, component="gpu")
    assert energy_total == pytest.approx(energy_cpu + energy_gpu)
