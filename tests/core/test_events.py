"""Tests for the power-event API (§8.2)."""

import pytest

from repro.apps.base import App
from repro.core.events import (
    MonotonicIncrease,
    PowerEventMonitor,
    SpikeDetected,
    ThresholdAbove,
)
from repro.hw.platform import Platform
from repro.kernel.actions import Compute, Sleep
from repro.kernel.kernel import Kernel
from repro.sim.clock import MSEC, SEC, from_msec


def booted():
    platform = Platform.am57(seed=8)
    kernel = Kernel(platform)
    return platform, kernel


def phased_app(kernel, quiet_ms, busy_ms):
    """Idle for quiet_ms, then continuous compute for busy_ms, repeat."""
    app = App(kernel, "phased")

    def behavior():
        while True:
            yield Sleep(from_msec(quiet_ms))
            deadline = kernel.now + from_msec(busy_ms)
            while kernel.now < deadline:
                yield Compute(2e6)

    app.spawn(behavior())
    return app


# -- predicate units --------------------------------------------------------------


def test_threshold_predicate():
    predicate = ThresholdAbove(1.0, min_samples=2)
    assert predicate.check([(0, 2.0)]) is None          # too few samples
    assert predicate.check([(0, 2.0), (1, 0.5)]) is None
    payload = predicate.check([(0, 2.0), (1, 3.0)])
    assert payload["watts"] == 3.0


def test_threshold_validation():
    with pytest.raises(ValueError):
        ThresholdAbove(1.0, min_samples=0)


def test_spike_predicate():
    predicate = SpikeDetected(factor=2.0, window=3)
    history = [(i, 0.5) for i in range(3)] + [(3, 2.0)]
    assert predicate.check(history)["watts"] == 2.0
    flat = [(i, 0.5) for i in range(4)]
    assert predicate.check(flat) is None
    with pytest.raises(ValueError):
        SpikeDetected(factor=1.0)


def test_monotonic_predicate():
    predicate = MonotonicIncrease(n=3)
    rising = [(0, 0.1), (1, 0.2), (2, 0.3)]
    assert predicate.check(rising)["to_w"] == 0.3
    assert predicate.check([(0, 0.3), (1, 0.2), (2, 0.4)]) is None
    with pytest.raises(ValueError):
        MonotonicIncrease(n=1)


# -- the monitor -------------------------------------------------------------------


def test_monitor_fires_on_high_power_phase():
    platform, kernel = booted()
    app = phased_app(kernel, quiet_ms=150, busy_ms=150)
    box = app.create_psbox(("cpu",))
    box.enter()
    events = []
    monitor = PowerEventMonitor(box, period=from_msec(25)).start()
    monitor.subscribe(ThresholdAbove(0.4, min_samples=2),
                      lambda t, payload: events.append((t, payload)))
    platform.sim.run(until=SEC)
    monitor.stop()
    assert events, "no high-power events despite busy phases"
    # Events land inside busy phases (power well above idle).
    for _t, payload in events:
        assert payload["watts"] > 0.4


def test_monitor_is_edge_triggered():
    platform, kernel = booted()
    app = phased_app(kernel, quiet_ms=200, busy_ms=200)
    box = app.create_psbox(("cpu",))
    box.enter()
    monitor = PowerEventMonitor(box, period=from_msec(20)).start()
    monitor.subscribe(ThresholdAbove(0.4))
    platform.sim.run(until=int(1.6 * SEC))
    monitor.stop()
    # ~4 busy phases -> ~4 events, not one per tick.
    assert 2 <= len(monitor.events) <= 6


def test_monitor_spike_on_burst_start():
    platform, kernel = booted()
    app = phased_app(kernel, quiet_ms=300, busy_ms=100)
    box = app.create_psbox(("cpu",))
    box.enter()
    monitor = PowerEventMonitor(box, period=from_msec(25)).start()
    monitor.subscribe(SpikeDetected(factor=3.0, window=4))
    platform.sim.run(until=int(1.5 * SEC))
    monitor.stop()
    assert monitor.events


def test_monitor_pauses_while_psbox_left():
    platform, kernel = booted()
    app = phased_app(kernel, quiet_ms=50, busy_ms=300)
    box = app.create_psbox(("cpu",))
    box.enter()
    monitor = PowerEventMonitor(box, period=from_msec(25)).start()
    monitor.subscribe(ThresholdAbove(0.4))
    platform.sim.run(until=200 * MSEC)
    box.leave()
    count_at_leave = len(monitor.history)
    platform.sim.run(until=600 * MSEC)
    assert len(monitor.history) == count_at_leave
    monitor.stop()


def test_monitor_stop_cancels_ticks():
    platform, kernel = booted()
    app = phased_app(kernel, quiet_ms=50, busy_ms=300)
    box = app.create_psbox(("cpu",))
    box.enter()
    monitor = PowerEventMonitor(box, period=from_msec(25)).start()
    platform.sim.run(until=100 * MSEC)
    monitor.stop()
    n = len(monitor.history)
    platform.sim.run(until=SEC)
    assert len(monitor.history) == n
