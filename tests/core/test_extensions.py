"""psbox behaviour on the §7 extension hardware: display, GPS, LTE."""

import pytest

from repro.accounting import PixelAccounting
from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.actions import (
    AcquireGps,
    ReleaseGps,
    SendPacket,
    Sleep,
    UpdateSurface,
    WaitAll,
)
from repro.kernel.kernel import Kernel
from repro.sim.clock import MSEC, SEC, from_msec


@pytest.fixture
def booted():
    platform = Platform.extended(seed=3)
    kernel = Kernel(platform)
    return platform, kernel


# -- display ---------------------------------------------------------------------


def test_display_psbox_reads_exact_surface_energy(booted):
    platform, kernel = booted
    app = App(kernel, "ui")

    def behavior():
        yield UpdateSurface(0.5, 0.8)
        yield Sleep(400 * MSEC)
        yield UpdateSurface(0.5, 0.2)   # dimmed
        yield Sleep(400 * MSEC)

    app.spawn(behavior())
    box = app.create_psbox(("display",))
    box.enter()
    platform.sim.run(until=SEC)
    observed = box.vmeter.energy(0, 800 * MSEC)
    display = platform.display
    expected = (display.surface_power(0.5, 0.8) * 0.4
                + display.surface_power(0.5, 0.2) * 0.4)
    assert observed == pytest.approx(expected, rel=1e-6)


def test_display_insulated_from_other_surfaces(booted):
    platform, kernel = booted
    app = App(kernel, "ui")
    other = App(kernel, "status_bar")

    def mine():
        yield UpdateSurface(0.4, 0.5)
        yield Sleep(500 * MSEC)

    def theirs():
        yield UpdateSurface(0.5, 1.0)
        yield Sleep(500 * MSEC)

    app.spawn(mine())
    other.spawn(theirs())
    box = app.create_psbox(("display",))
    box.enter()
    platform.sim.run(until=SEC)
    observed = box.vmeter.energy(0, 500 * MSEC)
    expected = platform.display.surface_power(0.4, 0.5) * 0.5
    assert observed == pytest.approx(expected, rel=1e-6)


def test_pixel_accounting_matches_psbox_for_display(booted):
    """The paper's point: OLED needs no sandbox — division is exact."""
    platform, kernel = booted
    a = App(kernel, "a")
    b = App(kernel, "b")

    def surface(app, fraction, intensity):
        def behavior():
            yield UpdateSurface(fraction, intensity)
            yield Sleep(600 * MSEC)
        return behavior

    a.spawn(surface(a, 0.3, 0.9)())
    b.spawn(surface(b, 0.6, 0.5)())
    box = a.create_psbox(("display",))
    box.enter()
    platform.sim.run(until=SEC)
    accounting = PixelAccounting(platform)
    shares = accounting.energies([a.id, b.id], 0, 600 * MSEC)
    assert box.vmeter.energy(0, 600 * MSEC) == pytest.approx(
        shares[a.id], rel=1e-9
    )
    assert accounting.unattributed([a.id, b.id], 0, 600 * MSEC) == \
        pytest.approx(platform.display.base_w * 0.6, rel=1e-6)


def test_multiple_display_psboxes_coexist(booted):
    platform, kernel = booted
    a = App(kernel, "a")
    b = App(kernel, "b")
    box_a = a.create_psbox(("display",))
    box_b = b.create_psbox(("display",))
    box_a.enter()
    box_b.enter()       # no exclusivity needed for direct components
    assert box_a.entered and box_b.entered


# -- GPS -------------------------------------------------------------------------


def test_gps_psbox_sees_operating_power_only(booted):
    platform, kernel = booted
    app = App(kernel, "nav")

    def behavior():
        yield AcquireGps()
        yield Sleep(SEC)
        yield ReleaseGps()

    app.spawn(behavior())
    box = app.create_psbox(("gps",))
    box.enter()
    platform.sim.run(until=int(1.5 * SEC))
    gps = platform.gps
    # Observed energy = tracking power over the operating window only;
    # the cold start (0.4 s at 0.45 W) is hidden.
    operating = SEC - gps.acquire_time
    expected = gps.tracking_w * operating / 1e9
    observed = box.vmeter.energy(0, int(1.5 * SEC))
    assert observed == pytest.approx(expected, rel=1e-6)


def test_gps_psbox_cannot_infer_other_apps_usage(booted):
    """While another app cold-starts the GPS, a psbox reads pure idle —
    the §4.1 off/suspended-state rule."""
    platform, kernel = booted
    observer = App(kernel, "observer")
    user = App(kernel, "navigator")

    def navigate():
        yield Sleep(100 * MSEC)
        yield AcquireGps()
        yield Sleep(100 * MSEC)    # still acquiring (cold start is 400 ms)
        yield ReleaseGps()

    user.spawn(navigate())
    box = observer.create_psbox(("gps",))
    box.enter()
    platform.sim.run(until=400 * MSEC)
    # The navigator powered the GPS through a partial cold start, but the
    # observer's psbox shows zero: off/ acquiring power is never revealed.
    assert box.vmeter.energy(0, 400 * MSEC) == pytest.approx(0.0, abs=1e-12)
    # The physical rail did burn acquisition energy.
    assert platform.meter.energy("gps", 0, 400 * MSEC) > 0.01


# -- LTE -------------------------------------------------------------------------


def _lte_sender(kernel, name, chunks, size=20_000, gap_ms=40):
    app = App(kernel, name)

    def behavior():
        for _ in range(chunks):
            yield SendPacket(size, wait=False, device="lte")
            yield Sleep(from_msec(gap_ms))
        yield WaitAll()

    app.spawn(behavior())
    return app


def test_lte_packets_flow_through_their_own_scheduler(booted):
    platform, kernel = booted
    app = _lte_sender(kernel, "cell", 4)
    platform.sim.run(until=3 * SEC)
    assert app.finished
    assert app.counters["tx_bytes"] == 4 * 20_000
    assert len(kernel.lte_sched.log.filter(kind="dispatch")) == 4
    assert not kernel.net_sched.log.filter(kind="dispatch")


def test_lte_psbox_insulation_is_weaker_than_wifi():
    """The §7 negative result, measured.

    Same app, same co-runner pattern on WiFi vs LTE: because the LTE RRC
    state cannot be virtualized, the psbox observation inherits whatever
    state the co-runner left.  The app sends with gaps longer than the
    connected tail, so alone it pays (and observes) an RRC promotion per
    burst, while under a co-runner the modem is already connected — a state
    difference WiFi's virtualization hides and LTE cannot.
    """

    def run(device, with_noise, seed=6):
        platform = Platform.extended(seed=seed)
        kernel = Kernel(platform)
        app = App(kernel, "main")

        def behavior():
            for _ in range(5):
                yield SendPacket(20_000, wait=True, device=device)
                yield Sleep(from_msec(1100))

        app.spawn(behavior())
        box = app.create_psbox((device,))
        box.enter()
        if with_noise:
            noise = App(kernel, "noise")

            def noisy():
                while True:
                    yield SendPacket(30_000, wait=True, device=device)

            noise.spawn(noisy())
        platform.sim.run(until=20 * SEC)
        assert app.finished
        return box.vmeter.energy(0, app.finished_at)

    def drift(device):
        alone = run(device, False)
        corun = run(device, True)
        return abs(corun - alone) / alone

    assert drift("lte") > drift("wifi")
