"""The differential fingerprint matrix.

One table, every observability/fault layering the engine's hot path has to
keep bit-identical, on every workload family:

    {tracer off, tracer on, profiler on, telemetry on,
     flight recorder armed, faults installed-but-disabled}
                x {mixed board, powercap board, 2-node cluster}

Each cell runs the workload with that layer attached and asserts the
sha256 fingerprint of the run's observable behaviour (rail change points,
kernel event logs, task end states) equals the bare serial baseline's,
bit for bit.  This is the harness that lets the event-loop hot path be
rewritten at all: the dedicated fast/traced/profiled run loops in
``Simulator.run`` must be indistinguishable in virtual time, and an
installed-but-disabled fault plan must stay a pure read at every site.

Enabled (injecting) fault plans legitimately change behaviour, so for
those the contract is seed-reproducibility, asserted per workload at the
bottom.
"""

import hashlib

import pytest

from repro.cluster import (
    USERS_PER_INSTANCE,
    Cluster,
    ClusterConfig,
    ClusterTelemetry,
    ClusterTopology,
    WaterFillingAllocator,
    WorkloadSpec,
)
from repro.experiments.faults_exp import build_workload
from repro.faults import SCENARIOS, fingerprint
from repro.obs import AlertEngine, FlightRecorder, Obs, Timeline, flight
from repro.obs import runtime as obs_runtime
from repro.obs.profiler import EventLoopProfiler

VARIANTS = ("tracer-off", "tracer-on", "profiler-on", "telemetry-on",
            "flight-on", "faults-installed")
WORKLOADS = ("mixed", "powercap", "cluster")

CLUSTER_HORIZON_S = 0.6


def _disabled_plan(sim, workload):
    """Install a real scenario's plan, disarmed, on ``sim``."""
    scn = next(s for s in SCENARIOS if s.workload == workload and s.faults)
    return scn.build_plan(sim, enabled=False)


def _injecting_scenario(workload):
    return next(s for s in SCENARIOS if s.workload == workload and s.faults)


def _run_board(workload, variant):
    """One full-board run (mixed/powercap) under a matrix variant."""
    work = build_workload(workload, 0)
    sim = work.platform.sim
    if variant == "tracer-off":
        Obs(sim, tracing=False).install().bind_kernel(work.kernel)
    elif variant == "tracer-on":
        Obs(sim, tracing=True).install().bind_kernel(work.kernel)
    elif variant == "profiler-on":
        EventLoopProfiler().install(sim)
    elif variant in ("telemetry-on", "flight-on"):
        # the full stack: tracer + timeline + a live alert engine
        # evaluating every sample as it streams off the board — and, for
        # flight-on, an armed recorder snapshotting on every fired alert
        obs = Obs(sim, tracing=True, timeline=Timeline()).install()
        obs.bind_kernel(work.kernel)
        AlertEngine().watch(obs)
        if variant == "flight-on":
            flight.arm(FlightRecorder(sessions=[obs]))
    elif variant == "faults-installed":
        _disabled_plan(sim, workload)
    elif variant != "baseline":
        raise AssertionError(variant)
    try:
        sim.run(until=work.horizon_ns)
        return fingerprint(work.platform, work.kernel)
    finally:
        flight.disarm()


def _cluster_setup():
    def spec(name, kind="web", tenant="t0", start_s=0.0,
             end_s=CLUSTER_HORIZON_S):
        return WorkloadSpec(name=name, tenant=tenant, kind=kind,
                            start_s=start_s, end_s=end_s,
                            users=USERS_PER_INSTANCE)

    topo = ClusterTopology.uniform(2)
    by_node = {
        "node00": [spec("a.web"),
                   spec("a.render", kind="render", start_s=0.1, end_s=0.5)],
        "node01": [spec("b.web", tenant="t1"),
                   spec("b.bulk", tenant="t1", kind="bulk", start_s=0.1,
                        end_s=0.5)],
    }
    config = ClusterConfig(budget_w=12.0, horizon_s=CLUSTER_HORIZON_S,
                           epoch_ms=200)
    return topo, by_node, config


def _run_cluster(variant):
    """A small capped cluster run; fingerprints every node, combined."""
    if variant == "tracer-off":
        obs_runtime.configure(tracing=False, metrics=True, profiling=False)
    elif variant == "tracer-on":
        obs_runtime.configure(tracing=True, metrics=True, profiling=False)
    elif variant == "profiler-on":
        obs_runtime.configure(tracing=False, metrics=False, profiling=True)
    elif variant in ("telemetry-on", "flight-on"):
        # full stack on every node *and* the cap loop itself: per-session
        # timelines, cluster epoch samplers, the process alert engine —
        # flight-on additionally arms the in-memory recorder, so every
        # fired alert snapshots mid-run through the live hooks
        obs_runtime.configure(tracing=True, metrics=True, profiling=False,
                              telemetry=True, flight=variant == "flight-on")
    try:
        topo, by_node, config = _cluster_setup()
        telemetry = (ClusterTelemetry.for_runtime(label="cap-loop")
                     if variant in ("telemetry-on", "flight-on") else None)
        cluster = Cluster(topo, by_node, WaterFillingAllocator(), config,
                          seed=5, telemetry=telemetry)
        if variant == "faults-installed":
            for node in cluster.nodes:
                _disabled_plan(node.platform.sim, "mixed")
        cluster.run()
        if variant in ("telemetry-on", "flight-on"):
            obs_runtime.finalize_telemetry()
        combined = hashlib.sha256()
        for node in cluster.nodes:
            combined.update(node.name.encode())
            combined.update(
                fingerprint(node.platform, node.kernel).encode())
        return combined.hexdigest()
    finally:
        obs_runtime.reset()


def _run(workload, variant):
    if workload == "cluster":
        return _run_cluster(variant)
    return _run_board(workload, variant)


@pytest.fixture(scope="module")
def baselines():
    """Bare serial fingerprints: no session, no profiler, no plan."""
    return {workload: _run(workload, "baseline") for workload in WORKLOADS}


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("variant", VARIANTS)
def test_variant_is_bit_identical_to_serial_baseline(
        variant, workload, baselines):
    assert _run(workload, variant) == baselines[workload]


@pytest.mark.parametrize("workload", ("mixed", "powercap"))
def test_injecting_plan_is_seed_reproducible(workload, baselines):
    """Armed faults may change the run — but identically at a seed."""
    scn = _injecting_scenario(workload)

    def injected():
        work = build_workload(workload, 0)
        plan = scn.build_plan(work.platform.sim, enabled=True)
        work.platform.sim.run(until=work.horizon_ns)
        return fingerprint(work.platform, work.kernel), plan.injections()

    first, n_first = injected()
    second, n_second = injected()
    assert first == second
    assert n_first == n_second > 0
    assert first != baselines[workload]
