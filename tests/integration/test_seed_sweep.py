"""Seed sweeps: the headline claims must not hinge on one lucky seed."""

import pytest

from repro.accounting import PerSampleUsageAccounting
from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.actions import Compute, Sleep, SubmitAccel
from repro.kernel.kernel import Kernel
from repro.sim.clock import SEC, from_usec


def _fixed_cpu(kernel):
    app = App(kernel, "main")

    def behavior():
        for _ in range(25):
            yield Compute(5e6)
            yield Sleep(from_usec(200))

    app.spawn(behavior())
    return app


def _cpu_noise(kernel):
    app = App(kernel, "noise")

    def behavior():
        while True:
            yield Compute(4e6)
            yield Sleep(from_usec(150))

    app.spawn(behavior())
    return app


def _drifts(seed):
    def run(use_psbox, with_noise):
        platform = Platform.am57(seed=seed)
        kernel = Kernel(platform)
        app = _fixed_cpu(kernel)
        box = None
        if use_psbox:
            box = app.create_psbox(("cpu",))
            box.enter()
        other = _cpu_noise(kernel) if with_noise else None
        platform.sim.run(until=6 * SEC)
        assert app.finished
        if use_psbox:
            return box.vmeter.energy(0, app.finished_at)
        ids = [app.id] + ([other.id] if other else [])
        return PerSampleUsageAccounting(platform, "cpu").energies(
            ids, 0, app.finished_at)[app.id]

    psbox = abs(run(True, True) - run(True, False)) / run(True, False)
    base = abs(run(False, True) - run(False, False)) / run(False, False)
    return psbox, base


@pytest.mark.parametrize("seed", [1, 7, 13, 29, 101])
def test_insulation_headline_across_seeds(seed):
    psbox_drift, baseline_drift = _drifts(seed)
    assert psbox_drift < 0.10, (
        "seed {}: psbox drift {:.1%}".format(seed, psbox_drift)
    )
    assert psbox_drift < baseline_drift, (
        "seed {}: psbox {:.1%} vs baseline {:.1%}".format(
            seed, psbox_drift, baseline_drift
        )
    )


@pytest.mark.parametrize("seed", [3, 17, 55])
def test_gpu_window_invariant_across_seeds(seed):
    """No foreign command in flight inside psbox windows, any seed."""
    platform = Platform.full(seed=seed)
    kernel = Kernel(platform)
    boxed = App(kernel, "boxed")
    other = App(kernel, "other")

    def flow(app, n, cycles):
        def behavior():
            for _ in range(n):
                yield SubmitAccel("gpu", "x", cycles, 0.6, wait=True)
                yield Sleep(from_usec(800))
        return behavior

    boxed.spawn(flow(boxed, 20, 1.5e6)())
    other.spawn(flow(other, 40, 2.5e6)())
    box = boxed.create_psbox(("gpu",))
    box.enter()
    platform.sim.run(until=4 * SEC)

    dispatches = {}
    foreign = []
    for t, kind, payload in platform.gpu.log:
        if payload.get("app") != other.id:
            continue
        if kind == "dispatch":
            dispatches[payload["seq"]] = t
        elif kind == "complete":
            foreign.append((dispatches.pop(payload["seq"]), t))
    windows = box.vmeter.windows("gpu", 0, platform.sim.now)
    assert windows
    for lo, hi in windows:
        for f0, f1 in foreign:
            assert min(hi, f1) - max(lo, f0) <= 0
