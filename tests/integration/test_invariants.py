"""Property-based invariants over the full stack.

Randomized workloads and sandbox schedules must never violate the system's
core guarantees: window disjointness, energy additivity, accounting
conservation, capacity bounds, progress.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accounting import PerSampleUsageAccounting
from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.actions import Compute, Sleep
from repro.kernel.kernel import Kernel
from repro.sim.clock import MSEC, from_usec

workload = st.lists(
    st.tuples(
        st.floats(0.3e6, 6e6),       # burst cycles
        st.integers(50, 2000),       # sleep us
    ),
    min_size=1,
    max_size=3,
)


def build(seed, specs):
    platform = Platform.am57(seed=seed)
    kernel = Kernel(platform)
    apps = []
    for i, (burst, sleep_us) in enumerate(specs):
        app = App(kernel, "app{}".format(i))

        def behavior(burst=burst, sleep_us=sleep_us, app=app):
            while True:
                yield Compute(burst)
                app.count("work", 1)
                yield Sleep(from_usec(sleep_us))

        app.spawn(behavior())
        apps.append(app)
    return platform, kernel, apps


@given(st.integers(0, 10_000), workload)
@settings(max_examples=12, deadline=None)
def test_every_app_makes_progress(seed, specs):
    platform, kernel, apps = build(seed, specs)
    platform.sim.run(until=400 * MSEC)
    for app in apps:
        assert app.counters.get("work", 0) > 0


@given(st.integers(0, 10_000), workload)
@settings(max_examples=12, deadline=None)
def test_busy_time_never_exceeds_capacity(seed, specs):
    platform, kernel, apps = build(seed, specs)
    platform.sim.run(until=400 * MSEC)
    horizon = 400 * MSEC
    for trace in platform.cpu.busy_traces:
        busy = trace.integrate(0, horizon)
        assert 0 <= busy <= horizon + 1


@given(st.integers(0, 10_000), workload)
@settings(max_examples=10, deadline=None)
def test_accounting_shares_conserve_rail_power(seed, specs):
    import numpy as np

    platform, kernel, apps = build(seed, specs)
    platform.sim.run(until=300 * MSEC)
    ids = [app.id for app in apps]
    acct = PerSampleUsageAccounting(platform, "cpu", dt=100_000)
    times, shares = acct.shares(ids, 0, 300 * MSEC)
    total = sum(shares.values())
    _t, watts = platform.meter.sample("cpu", 0, len(times) * acct.dt,
                                      acct.dt)
    assert (total <= watts + 1e-9).all()
    usage = acct.extractor.usage(ids, 0, len(times) * acct.dt, acct.dt)
    active = sum(usage[i] for i in ids) > 0
    np.testing.assert_allclose(total[active], watts[active], rtol=1e-9)


@given(
    st.integers(0, 10_000),
    st.lists(st.integers(10, 80), min_size=2, max_size=5),
)
@settings(max_examples=10, deadline=None)
def test_vmeter_windows_disjoint_under_random_enter_leave(seed, dwell_ms):
    platform, kernel, apps = build(seed, [(4e6, 150), (3e6, 200)])
    box = apps[0].create_psbox(("cpu",))
    t = 20 * MSEC
    entering = True
    for dwell in dwell_ms:
        platform.sim.at(t, box.enter if entering else box.leave)
        entering = not entering
        t += dwell * MSEC
    platform.sim.run(until=t + 50 * MSEC)
    if box.entered:
        box.leave()
    windows = box.vmeter.windows("cpu", 0, platform.sim.now)
    for (a0, a1), (b0, b1) in zip(windows, windows[1:]):
        assert a1 <= b0, "windows must be disjoint and ordered"
    for lo, hi in windows:
        assert 0 <= lo < hi <= platform.sim.now


@given(st.integers(0, 10_000), st.integers(1, 8))
@settings(max_examples=10, deadline=None)
def test_vmeter_energy_additivity(seed, splits):
    platform, kernel, apps = build(seed, [(4e6, 150), (3e6, 200)])
    box = apps[0].create_psbox(("cpu",))
    box.enter()
    platform.sim.run(until=300 * MSEC)
    horizon = 300 * MSEC
    whole = box.vmeter.energy(0, horizon)
    step = horizon // (splits + 1)
    edges = list(range(0, horizon, step)) + [horizon]
    parts = sum(
        box.vmeter.energy(a, b) for a, b in zip(edges, edges[1:])
    )
    assert parts == pytest.approx(whole, rel=1e-9)


@given(st.integers(0, 10_000))
@settings(max_examples=8, deadline=None)
def test_observed_power_bounded_by_rail_peak(seed):
    import numpy as np

    platform, kernel, apps = build(seed, [(5e6, 100), (3e6, 300)])
    box = apps[0].create_psbox(("cpu",))
    box.enter()
    platform.sim.run(until=300 * MSEC)
    _t, observed = box.sample(t0=0, t1=300 * MSEC, dt=MSEC)
    _t2, rail = platform.meter.sample("cpu", 0, 300 * MSEC, MSEC)
    assert float(observed.max()) <= float(rail.max()) + 1e-9
    assert float(observed.min()) >= 0
