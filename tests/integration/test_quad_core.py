"""Generality: spatial balloons on a 4-core cluster.

The paper's CPU prototype is a dual-core A15; nothing in the design is
2-core-specific, so the mechanism must hold on wider machines: coscheduling
forces all four cores, loss stays confined, observations stay consistent.
"""


from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.actions import Compute, Sleep
from repro.kernel.kernel import Kernel
from repro.sim.clock import SEC, from_usec


def boot(seed=71):
    platform = Platform.am57(seed=seed, n_cpu_cores=4)
    kernel = Kernel(platform)
    return platform, kernel


def spinner(kernel, name, tasks=1):
    app = App(kernel, name)

    def behavior():
        while True:
            yield Compute(4e6)
            app.count("work", 1)
            yield Sleep(from_usec(150))

    for i in range(tasks):
        app.spawn(behavior(), name="{}.t{}".format(name, i))
    return app


def test_balloon_covers_all_four_cores():
    platform, kernel = boot()
    boxed = spinner(kernel, "boxed", tasks=2)
    spinner(kernel, "noise1", tasks=2)
    spinner(kernel, "noise2", tasks=2)
    box = boxed.create_psbox(("cpu",))
    box.enter()
    platform.sim.run(until=SEC)
    windows = box.vmeter.windows("cpu", 0, SEC)
    assert windows
    foreign = 0
    covered = 0
    for lo, hi in windows:
        covered += hi - lo
        for trace in platform.cpu.owner_traces:
            for t0, t1, owner in trace.segments(lo, hi):
                if owner not in (-1.0, float(boxed.id)):
                    foreign += t1 - t0
    # 4 cores x covered time; IPI-flight leak only.
    assert foreign < 0.03 * covered * 4


def test_confinement_on_four_cores():
    platform, kernel = boot()
    apps = [spinner(kernel, "i{}".format(i)) for i in range(5)]
    box = apps[4].create_psbox(("cpu",))
    platform.sim.at(int(0.8 * SEC), box.enter)
    platform.sim.run(until=int(2.8 * SEC))
    window = (SEC, int(2.8 * SEC))
    rates = [app.rate("work", *window) for app in apps]
    before = [app.rate("work", int(0.2 * SEC), int(0.8 * SEC))
              for app in apps]
    boxed_loss = (before[4] - rates[4]) / before[4]
    assert boxed_loss > 0.4, "4-core balloon waste must hit the boxed app"
    for i in range(4):
        loss = (before[i] - rates[i]) / before[i]
        assert loss < 0.15, "neighbour {} lost {:.0%}".format(i, loss)


def test_multithreaded_boxed_app_uses_its_balloon():
    """A 4-thread app in psbox on 4 cores wastes nothing: balloons are
    cheap when the app can fill them."""
    platform, kernel = boot()
    boxed = spinner(kernel, "boxed", tasks=4)
    other = spinner(kernel, "other", tasks=2)
    box = boxed.create_psbox(("cpu",))
    box.enter()
    platform.sim.run(until=2 * SEC)
    # Inside windows all four cores should mostly run the boxed app.
    windows = box.vmeter.windows("cpu", SEC, 2 * SEC)
    owned = 0
    covered = 0
    for lo, hi in windows:
        covered += (hi - lo) * 4
        for trace in platform.cpu.owner_traces:
            for t0, t1, owner in trace.segments(lo, hi):
                if owner == float(boxed.id):
                    owned += t1 - t0
    assert covered > 0
    assert owned > 0.8 * covered


def test_insulation_consistency_on_four_cores():
    def run(with_noise):
        platform, kernel = boot(seed=72)
        app = App(kernel, "main")

        def behavior():
            for _ in range(25):
                yield Compute(5e6)
                yield Sleep(from_usec(200))

        app.spawn(behavior())
        box = app.create_psbox(("cpu",))
        box.enter()
        if with_noise:
            spinner(kernel, "noise1", tasks=2)
            spinner(kernel, "noise2")
        platform.sim.run(until=8 * SEC)
        assert app.finished
        return box.vmeter.energy(0, app.finished_at)

    alone = run(False)
    corun = run(True)
    assert abs(corun - alone) / alone < 0.12
