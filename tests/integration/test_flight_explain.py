"""Seeded end-to-end: blinded daemon -> alert -> flight dump -> explain.

The issue's acceptance scenario: a two-node cluster under a far-too-tight
budget, with ``powercap.telemetry`` corrupt injected on **node00 only**
(its daemon reuses stale leaf readings all run).  The ``cap.compliance``
SLO must fire, the armed flight recorder must write a self-contained dump,
and ``explain`` over that dump must name the faulted site on the faulted
node — and rank tenants — identically across two fresh runs.
"""

import json
import os

import pytest

from repro.cluster import (
    USERS_PER_INSTANCE,
    Cluster,
    ClusterConfig,
    ClusterTelemetry,
    ClusterTopology,
    WaterFillingAllocator,
    WorkloadSpec,
)
from repro.faults import FaultPlan
from repro.obs import runtime as obs_runtime
from repro.obs.explain import explain, format_incidents, load, render_json

HORIZON_S = 1.2
EPOCH_MS = 200
SEED = 5


def spec(name, kind="web", tenant="t0", start_s=0.0, end_s=HORIZON_S):
    return WorkloadSpec(name=name, tenant=tenant, kind=kind, start_s=start_s,
                        end_s=end_s, users=USERS_PER_INSTANCE)


def blinded_run(flight_dir):
    """One full cluster run with telemetry + flight armed, node00 blinded."""
    obs_runtime.configure(telemetry=True, flight=True,
                          flight_dir=flight_dir)
    try:
        topo = ClusterTopology.uniform(2)
        by_node = {
            "node00": [spec("a.web"),
                       spec("a.render", kind="render", start_s=0.1,
                            end_s=1.0)],
            "node01": [spec("b.web", tenant="t1"),
                       spec("b.bulk", tenant="t1", kind="bulk", start_s=0.1,
                            end_s=1.0)],
        }
        config = ClusterConfig(budget_w=1.0, horizon_s=HORIZON_S,
                               epoch_ms=EPOCH_MS)
        telemetry = ClusterTelemetry.for_runtime(label="cap-loop")
        cluster = Cluster(topo, by_node, WaterFillingAllocator(), config,
                          seed=SEED, telemetry=telemetry)
        blinded = cluster.nodes[0]
        assert blinded.name == "node00"
        plan = FaultPlan(blinded.platform.sim, enabled=True)
        plan.add("powercap.telemetry", "corrupt", prob=1.0)
        plan.install()
        cluster.run()
        obs_runtime.finalize_telemetry()
        recorder = obs_runtime.flight_recorder()
        assert recorder.flush() > 0
        return recorder
    finally:
        obs_runtime.reset()


@pytest.fixture(scope="module")
def twice(tmp_path_factory):
    """The same seeded run done twice, dumping into separate directories."""
    dir_a = str(tmp_path_factory.mktemp("flight-a"))
    dir_b = str(tmp_path_factory.mktemp("flight-b"))
    blinded_run(dir_a)
    blinded_run(dir_b)
    return dir_a, dir_b


def _report(flight_dir):
    report = explain(load(flight_dir))
    report["source"] = "<flight>"     # only the tmp path differs by design
    return report


def _compliance_incident(report):
    matches = [i for i in report["incidents"]
               if i["trigger"]["rule"] == "cap.compliance"]
    assert matches, "cap.compliance never fired"
    return matches[0]


def test_blinded_daemon_fires_and_dumps(twice):
    flight_dir, _ = twice
    names = sorted(os.listdir(flight_dir))
    assert "manifest.json" in names
    assert "flight-000.json" in names
    manifest = json.loads(
        open(os.path.join(flight_dir, "manifest.json")).read())
    assert any(t.get("rule") == "cap.compliance"
               for t in manifest["triggers"])


def test_dump_is_self_contained_evidence(twice):
    flight_dir, _ = twice
    report = _report(flight_dir)
    incident = _compliance_incident(report)
    # the breach window covers the breached series with real samples
    assert incident["breached"]["series"] == "cluster.compliance_err"
    assert incident["breached"]["session"] == "cap-loop"
    assert incident["breached"]["points_in_window"] >= 4
    assert incident["breached"]["max"] > 0.01


def test_explain_names_the_faulted_node(twice):
    flight_dir, _ = twice
    incident = _compliance_incident(_report(flight_dir))
    sites = {s["site"]: s for s in incident["injection_sites"]}
    assert "powercap.telemetry" in sites
    site = sites["powercap.telemetry"]
    assert site["count"] > 0
    # only node00 was blinded: every injecting session is node00's
    assert site["sessions"]
    assert all("node00" in session for session in site["sessions"])
    assert all("node01" not in session for session in site["sessions"])


def test_explain_ranks_the_tenants(twice):
    flight_dir, _ = twice
    incident = _compliance_incident(_report(flight_dir))
    ranked = incident["attribution"]["tenants"]["policies"]["per_sample"]
    assert {row["entity"] for row in ranked} == {"t0", "t1"}
    assert incident["top"]["tenants"] in ("t0", "t1")
    # shares are a ranked, normalized split of the window energy
    assert ranked[0]["share"] >= ranked[1]["share"]
    assert ranked[0]["share"] + ranked[1]["share"] == pytest.approx(
        1.0, abs=1e-6)


def test_text_report_tells_the_story(twice):
    flight_dir, _ = twice
    text = format_incidents(_report(flight_dir))
    assert "cap.compliance" in text
    assert "powercap.telemetry" in text
    assert "top tenant" in text


def test_dump_and_report_are_run_deterministic(twice):
    dir_a, dir_b = twice
    # the first dump is byte-identical across the two fresh runs
    dump_a = open(os.path.join(dir_a, "flight-000.json")).read()
    dump_b = open(os.path.join(dir_b, "flight-000.json")).read()
    assert dump_a == dump_b
    # and so is the rendered incident report (modulo the tmp dir name)
    assert render_json(_report(dir_a)) == render_json(_report(dir_b))
