"""Stress and failure-injection tests across the stack."""

import pytest

from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.actions import Compute, SendPacket, Sleep, SubmitAccel
from repro.kernel.kernel import Kernel
from repro.sim.clock import MSEC, SEC, from_msec, from_usec


def spinner(kernel, name, burst=3e6, pause_us=0):
    app = App(kernel, name)

    def behavior():
        while True:
            yield Compute(burst)
            app.count("work", 1)
            if pause_us:
                yield Sleep(from_usec(pause_us))

    app.spawn(behavior())
    return app


def test_many_pure_spinners_with_one_psbox():
    """Six zero-sleep CPU hogs on two cores, one sandboxed: no stalls."""
    platform = Platform.am57(seed=31)
    kernel = Kernel(platform)
    apps = [spinner(kernel, "s{}".format(i)) for i in range(6)]
    box = apps[0].create_psbox(("cpu",))
    box.enter()
    platform.sim.run(until=2 * SEC)
    for app in apps:
        assert app.counters.get("work", 0) > 0, "{} starved".format(app.name)
    assert platform.cpu.utilization(SEC, 2 * SEC) > 0.8


def test_enter_leave_storm():
    """Toggling the psbox every few ms must not corrupt window state."""
    platform = Platform.am57(seed=32)
    kernel = Kernel(platform)
    target = spinner(kernel, "target", pause_us=100)
    spinner(kernel, "noise", pause_us=100)
    box = target.create_psbox(("cpu",))
    t = 10 * MSEC
    for i in range(120):
        platform.sim.at(t, box.enter if i % 2 == 0 else box.leave)
        t += 5 * MSEC
    platform.sim.run(until=t + 100 * MSEC)
    if box.entered:
        box.leave()
    windows = box.vmeter.windows("cpu", 0, platform.sim.now)
    for (a0, a1), (b0, b1) in zip(windows, windows[1:]):
        assert a1 <= b0
    assert kernel.smp.active_cosched is None


def test_gpu_psbox_churn_under_storm():
    platform = Platform.full(seed=33)
    kernel = Kernel(platform)
    boxed = App(kernel, "boxed")
    other = App(kernel, "other")

    def gpu_flow(app, n, cycles):
        def behavior():
            for _ in range(n):
                yield SubmitAccel("gpu", "x", cycles, 0.6, wait=True)
        return behavior

    boxed.spawn(gpu_flow(boxed, 60, 0.8e6)())
    other.spawn(gpu_flow(other, 60, 1.2e6)())
    box = boxed.create_psbox(("gpu",))
    t = 5 * MSEC
    for i in range(40):
        platform.sim.at(t, box.enter if i % 2 == 0 else box.leave)
        t += 11 * MSEC
    platform.sim.run(until=4 * SEC)
    assert boxed.finished and other.finished
    assert kernel.gpu_sched.state == "normal"


def test_huge_single_burst_is_preemptible():
    """A 1e9-cycle burst must not lock out other apps."""
    platform = Platform.am57(seed=34)
    kernel = Kernel(platform)
    hog = App(kernel, "hog")

    def behavior():
        yield Compute(1e9)

    hog.spawn(behavior())
    other = spinner(kernel, "other", burst=2e6, pause_us=100)
    platform.sim.run(until=SEC)
    assert other.counters.get("work", 0) > 50


def test_nic_under_many_senders():
    platform = Platform.full(seed=35)
    kernel = Kernel(platform)
    apps = []
    for i in range(5):
        app = App(kernel, "tx{}".format(i))

        def behavior(app=app):
            for _ in range(20):
                yield SendPacket(16_000, wait=True)

        app.spawn(behavior())
        apps.append(app)
    platform.sim.run(until=10 * SEC)
    for app in apps:
        assert app.finished
        assert app.counters["tx_bytes"] == 20 * 16_000
    assert platform.nic.queued_count == 0


def test_meter_noise_does_not_bias_energy():
    """Sampling noise is zero-mean; exact energy integrals are untouched."""
    platform = Platform.am57(seed=36)
    platform.meter.noise_w = 0.05
    kernel = Kernel(platform)
    app = spinner(kernel, "a", pause_us=200)
    platform.sim.run(until=SEC)
    exact = platform.meter.energy("cpu", 0, SEC)
    _t, watts = platform.meter.sample("cpu", 0, SEC, dt=100_000)
    sampled = float(watts.mean())
    assert sampled == pytest.approx(exact / 1.0, rel=0.02)


def test_full_vertical_psbox_all_components():
    """One app sandboxes CPU+GPU+DSP+WiFi simultaneously."""
    platform = Platform.full(seed=37)
    kernel = Kernel(platform)
    app = App(kernel, "vertical")

    def behavior():
        for _ in range(4):
            yield Compute(2e6)
            yield SubmitAccel("gpu", "g", 1.5e6, 0.6, wait=True)
            yield SubmitAccel("dsp", "d", 8e6, 0.5, wait=True)
            yield SendPacket(20_000, wait=True)
            yield Sleep(from_msec(5))

    app.spawn(behavior())
    noise_cpu = spinner(kernel, "ncpu", pause_us=150)
    box = app.create_psbox(("cpu", "gpu", "dsp", "wifi"))
    box.enter()
    platform.sim.run(until=10 * SEC)
    assert app.finished
    total = box.vmeter.energy(0, app.finished_at)
    parts = sum(
        box.vmeter.energy(0, app.finished_at, component=c)
        for c in ("cpu", "gpu", "dsp", "wifi")
    )
    assert total == pytest.approx(parts, rel=1e-9)
    assert total > 0


def test_leaving_unentered_psbox_is_safe():
    platform = Platform.full(seed=38)
    kernel = Kernel(platform)
    app = spinner(kernel, "a", pause_us=100)
    box = app.create_psbox(("cpu",))
    box.leave()         # never entered: no-op
    assert not box.entered
    platform.sim.run(until=100 * MSEC)


def test_zero_duration_observation_windows():
    platform = Platform.full(seed=39)
    kernel = Kernel(platform)
    app = spinner(kernel, "a", pause_us=100)
    box = app.create_psbox(("cpu",))
    box.enter()
    assert box.read() == 0.0                     # zero elapsed time
    times, watts = box.sample()
    assert len(times) == 0
