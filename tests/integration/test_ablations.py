"""Ablation tests: each psbox mechanism matters (DESIGN.md section 6)."""


from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.actions import Sleep, SubmitAccel
from repro.kernel.kernel import Kernel, KernelConfig
from repro.sim.clock import MSEC, SEC, from_usec


def gpu_fixed(kernel, name="main", n=15):
    app = App(kernel, name)

    def behavior():
        for _ in range(n):
            yield SubmitAccel("gpu", "draw", 2.5e6, 0.7, wait=True)
            yield Sleep(from_usec(700))

    app.spawn(behavior())
    return app


def gpu_noise(kernel):
    app = App(kernel, "noise")

    def behavior():
        while True:
            yield SubmitAccel("gpu", "noise", 3e6, 0.9, wait=True)

    app.spawn(behavior())
    return app


def observed_energy(config, with_noise, seed=11):
    platform = Platform.full(seed=seed)
    kernel = Kernel(platform, config)
    app = gpu_fixed(kernel)
    box = app.create_psbox(("gpu",))
    box.enter()
    if with_noise:
        gpu_noise(kernel)
    platform.sim.run(until=8 * SEC)
    assert app.finished
    return box.vmeter.energy(0, app.finished_at)


def drift(config):
    alone = observed_energy(config, with_noise=False)
    corun = observed_energy(config, with_noise=True)
    return abs(corun - alone) / alone


def test_draining_off_leaks_foreign_power():
    """Without drain phases, foreign in-flight commands pollute windows."""
    clean = drift(KernelConfig())
    leaky = drift(KernelConfig(draining_enabled=False))
    assert leaky > clean
    assert leaky > 0.10


def test_draining_off_violates_window_invariant():
    platform = Platform.full(seed=11)
    kernel = Kernel(platform, KernelConfig(draining_enabled=False))
    app = gpu_fixed(kernel)
    box = app.create_psbox(("gpu",))
    box.enter()
    noise = gpu_noise(kernel)
    platform.sim.run(until=8 * SEC)
    windows = box.vmeter.windows("gpu", 0, app.finished_at)
    dispatches = {}
    foreign = []
    for t, kind, payload in platform.gpu.log:
        if payload.get("app") != noise.id:
            continue
        if kind == "dispatch":
            dispatches[payload["seq"]] = t
        elif kind == "complete":
            foreign.append((dispatches.pop(payload["seq"]), t))
    overlap = 0
    for lo, hi in windows:
        for f0, f1 in foreign:
            overlap += max(0, min(hi, f1) - max(lo, f0))
    assert overlap > 0, "ablation should actually leak"


def test_vstate_off_inherits_lingering_frequency():
    """Without power-state virtualization, the psbox sees the co-runner's
    frequency state."""

    def first_window_freq(vstate):
        platform = Platform.full(seed=12)
        kernel = Kernel(platform, KernelConfig(vstate_enabled=vstate))
        noise = gpu_noise(kernel)          # ramps the GPU to max
        platform.sim.run(until=300 * MSEC)
        app = gpu_fixed(kernel, n=3)
        box = app.create_psbox(("gpu",))
        box.enter()
        platform.sim.run(until=320 * MSEC)
        windows = box.vmeter.windows("gpu", 300 * MSEC, 320 * MSEC)
        if not windows:
            return None
        lo = windows[0][0]
        return platform.gpu.freq_domain.freq_trace.value_at(lo + 100_000)

    with_vstate = first_window_freq(True)
    without = first_window_freq(False)
    assert with_vstate is not None and without is not None
    assert with_vstate < without, (
        "fresh psbox must start at a pristine (low) frequency"
    )


def test_metering_rate_does_not_fix_entanglement():
    """§2.3: finer sampling cannot un-entangle the baseline accounting."""
    from repro.accounting import PerSampleUsageAccounting
    from repro.sim.clock import USEC

    def baseline_drift(dt):
        def run(with_noise):
            platform = Platform.full(seed=13)
            kernel = Kernel(platform)
            app = gpu_fixed(kernel)
            ids = [app.id]
            if with_noise:
                ids.append(gpu_noise(kernel).id)
            platform.sim.run(until=8 * SEC)
            acct = PerSampleUsageAccounting(platform, "gpu", dt=dt)
            return acct.energies(ids, 0, app.finished_at)[app.id]

        alone = run(False)
        corun = run(True)
        return abs(corun - alone) / alone

    coarse = baseline_drift(1 * MSEC)
    fine = baseline_drift(10 * USEC)
    # Finer metering does not reduce the attribution error materially.
    assert fine > 0.5 * coarse
    assert fine > 0.08
