"""Tests for analysis helpers: energy, metrics, reports."""

import numpy as np
import pytest

from repro.analysis.energy import energy_consistency, percent_delta, trace_energy
from repro.analysis.metrics import latency_summary, throughput, throughput_series
from repro.analysis.report import format_series, format_table
from repro.apps.base import App
from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel
from repro.sim.clock import MSEC, SEC


def test_percent_delta():
    assert percent_delta(110, 100) == pytest.approx(10.0)
    assert percent_delta(90, 100) == pytest.approx(-10.0)
    with pytest.raises(ValueError):
        percent_delta(1, 0)


def test_trace_energy():
    times = np.arange(0, SEC, MSEC, dtype=np.int64)
    watts = np.full(len(times), 2.0)
    assert trace_energy(times, watts) == pytest.approx(2.0)
    assert trace_energy(times[:1], watts[:1]) == 0.0


def test_energy_consistency_is_max_abs_deviation():
    assert energy_consistency(100, [95, 103, 99]) == pytest.approx(5.0)


def test_throughput_counts_metric_events():
    platform = Platform.am57(seed=1)
    kernel = Kernel(platform)
    app = App(kernel, "a")
    for t in (100, 200, 300):
        platform.sim.call_later(t * MSEC, app.count, "items", 2)
    platform.sim.run(until=SEC)
    assert throughput(app, "items", 0, SEC) == pytest.approx(6.0)
    assert throughput(app, "items", 0, 150 * MSEC) == pytest.approx(
        2 / 0.15
    )


def test_throughput_series_windows():
    platform = Platform.am57(seed=1)
    kernel = Kernel(platform)
    app = App(kernel, "a")
    platform.sim.call_later(50 * MSEC, app.count, "items", 1)
    platform.sim.call_later(150 * MSEC, app.count, "items", 3)
    platform.sim.run(until=SEC)
    starts, rates = throughput_series(app, "items", 0, 200 * MSEC, 100 * MSEC)
    assert len(starts) == 2
    assert rates[0] == pytest.approx(10.0)
    assert rates[1] == pytest.approx(30.0)


def test_latency_summary():
    summary = latency_summary([1.0, 2.0, 3.0, 100.0])
    assert summary["count"] == 4
    assert summary["mean"] == pytest.approx(26.5)
    assert summary["max"] == 100.0
    assert latency_summary([])["count"] == 0


def test_format_table_alignment():
    table = format_table(["name", "val"], [["a", 1], ["long-name", 22]],
                         title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert len(lines) == 5


def test_format_series_sparkline():
    out = format_series([0, 1, 2, 3], label="ramp")
    assert out.startswith("ramp")
    assert "[0..3]" in out
    assert format_series([]) == " (empty)"


def test_format_series_downsamples_long_input():
    out = format_series(range(1000), width=40)
    # label-less output: "[lo..hi] " + sparkline
    chars = out.split("] ")[-1]
    assert len(chars) == 40
