"""Differential bit-identity tests.

The fault layer's core promise: a disabled (or absent) plan leaves every
run bit-identical to a build without the layer.  These tests fingerprint
whole runs — rail traces, event logs, task end states, observation
windows — and require exact digest equality.
"""

import pytest

from repro.check import InvariantChecker
from repro.experiments.faults_exp import build_workload
from repro.faults import SCENARIOS, TaskCrashInjector, fingerprint, scenario


def _run(workload, seed=0, scn=None, inject=False, check=False):
    work = build_workload(workload, seed)
    plan = None
    if scn is not None:
        plan = scn.build_plan(work.platform.sim, enabled=inject)
        if any(site == TaskCrashInjector.SITE
               for site, _kind, _p in scn.faults):
            TaskCrashInjector(work.kernel, work.crash_targets).start()
    checker = None
    if check:
        checker = InvariantChecker(work.kernel).attach()
        if work.controller is not None:
            checker.watch_powercap(work.controller)
    work.platform.sim.run(until=work.horizon_ns)
    return fingerprint(work.platform, work.kernel), plan, checker


@pytest.fixture(scope="module")
def baselines():
    """Fingerprints of both workloads with no fault plan at all."""
    return {name: _run(name)[0] for name in ("mixed", "powercap")}


@pytest.mark.parametrize("scn", SCENARIOS, ids=[s.name for s in SCENARIOS])
def test_disabled_scenario_is_bit_identical_to_no_plan(scn, baselines):
    print_, plan, _checker = _run(scn.workload, scn=scn, inject=False)
    assert print_ == baselines[scn.workload]
    assert plan.injections() == 0


def test_attached_checker_does_not_perturb_the_run(baselines):
    print_, _plan, checker = _run("mixed", check=True)
    assert print_ == baselines["mixed"]
    assert checker.report.ok
    assert checker.report.checks > 0


def test_injected_run_is_reproducible_at_a_seed():
    scn = scenario("ipi-delay")
    first, plan1, _ = _run("mixed", scn=scn, inject=True)
    second, plan2, _ = _run("mixed", scn=scn, inject=True)
    assert first == second
    assert plan1.injections() == plan2.injections() > 0


def test_injected_run_differs_from_baseline(baselines):
    print_, plan, _ = _run("mixed", scn=scenario("ipi-delay"), inject=True)
    assert plan.injections() > 0
    assert print_ != baselines["mixed"]
