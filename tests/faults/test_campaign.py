"""Campaign classification over representative scenarios.

The full 14-scenario matrix (including the slower powercap workload) runs
in CI's nightly soak; tier-1 keeps a representative subset of one
detected and one tolerated scenario per fault family.
"""

import pytest

from repro.experiments.faults_exp import run_faults, run_scenario, soak_seeds
from repro.faults import scenario


@pytest.mark.parametrize("name, expect_invariant", [
    ("ipi-drop", "shootdown_liveness"),
    ("gpu-drain-stuck", "drain_liveness"),
    ("governor-restore-corrupt", "vstate_restore"),
])
def test_detected_scenarios_name_the_broken_invariant(name, expect_invariant):
    outcome = run_scenario(scenario(name), seed=0)
    assert outcome.matches
    assert outcome.outcome == "detected"
    assert expect_invariant in outcome.first_violation


@pytest.mark.parametrize("name", ["ipi-delay", "task-crash", "meter-noise"])
def test_tolerated_scenarios_inject_but_stay_clean(name):
    outcome = run_scenario(scenario(name), seed=0)
    assert outcome.matches
    assert outcome.outcome == "tolerated"
    assert outcome.injections > 0
    assert outcome.violations == 0


def test_armed_scenario_that_never_fires_is_a_mismatch():
    scn = scenario("ipi-delay")
    # empty active window [0, 0): armed spec that can never fire
    import dataclasses
    never = dataclasses.replace(scn, faults=(
        ("smp.ipi", "delay", {"extra_ns": 10, "t1": 0}),
    ))
    outcome = run_scenario(never, seed=0)
    assert outcome.injections == 0
    assert not outcome.matches


def test_campaign_runs_a_named_subset():
    result = run_faults(seed=0, scenarios=[scenario("baseline"),
                                           scenario("ipi-drop")])
    assert result.ok
    assert [o.name for o in result.outcomes] == ["baseline", "ipi-drop"]


def test_soak_seed_list_is_deterministic():
    assert soak_seeds(5, entropy=42) == soak_seeds(5, entropy=42)
    assert len(set(soak_seeds(25, entropy=0))) == 25
