"""Tests of the task-crash injector and of Task.crash itself."""

from repro.apps.base import App
from repro.faults import FaultPlan, TaskCrashInjector
from repro.hw.platform import Platform
from repro.kernel.actions import Compute, Sleep
from repro.kernel.kernel import Kernel
from repro.sim.clock import MSEC, SEC, from_msec, from_usec


def _spinner_app(kernel, name="victim"):
    app = App(kernel, name)

    def factory():
        def behavior():
            while True:
                yield Compute(3e6)
                app.count("work", 1)
                yield Sleep(from_usec(200))

        return behavior()

    app.spawn(factory())
    return app, factory


def _boot(seed=5):
    platform = Platform.full(seed=seed)
    return platform, Kernel(platform)


def test_crashes_and_respawns_tasks():
    platform, kernel = _boot()
    app, factory = _spinner_app(kernel)
    plan = FaultPlan(platform.sim).install()
    plan.add("task.crash", "crash", interval_ns=from_msec(50),
             extra_ns=from_msec(5), limit=4)
    injector = TaskCrashInjector(kernel, [(app, factory)]).start()
    platform.sim.run(until=SEC)
    assert injector.crashes >= 1
    assert len(app.tasks) == 1 + injector.crashes   # one respawn per crash
    assert sum(1 for task in app.tasks if not task.alive) >= injector.crashes
    assert any(task.alive for task in app.tasks)    # app survived the abuse
    assert plan.injections("task.crash") == injector.crashes


def test_inert_without_enabled_crash_spec():
    platform, kernel = _boot()
    app, factory = _spinner_app(kernel)
    plan = FaultPlan(platform.sim, enabled=False).install()
    plan.add("task.crash", "crash", interval_ns=from_msec(50))
    injector = TaskCrashInjector(kernel, [(app, factory)]).start()
    platform.sim.run(until=200 * MSEC)
    assert injector.crashes == 0
    assert len(app.tasks) == 1


def test_inert_without_any_plan():
    platform, kernel = _boot()
    app, factory = _spinner_app(kernel)
    injector = TaskCrashInjector(kernel, [(app, factory)]).start()
    platform.sim.run(until=200 * MSEC)
    assert injector.crashes == 0
    assert len(app.tasks) == 1


def test_crash_before_deferred_start_is_safe():
    platform, kernel = _boot()
    app, _factory = _spinner_app(kernel)
    task = app.tasks[0]
    task.crash()            # spawn defers start(); crash beats it to the punch
    platform.sim.run(until=10 * MSEC)
    assert not task.alive
    assert app.counters.get("work", 0) == 0


def test_crash_mid_burst_releases_the_core():
    platform, kernel = _boot()
    app, _factory = _spinner_app(kernel)
    other, _ = _spinner_app(kernel, name="survivor")
    platform.sim.run(until=2 * MSEC)          # let the burst get on a core
    task = app.tasks[0]
    assert task.alive
    task.crash()
    assert not any(
        core.owner_id == app.id for core in platform.cpu.cores
    )
    before = other.counters.get("work", 0)
    platform.sim.run(until=300 * MSEC)
    assert other.counters.get("work", 0) > before   # the core still schedules
