"""Unit tests of the fault-plan mechanics (arming, gating, typed queries)."""

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.sim.engine import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=3)


def test_no_plan_installed_by_default(sim):
    assert sim.faults is None


def test_install_and_uninstall(sim):
    plan = FaultPlan(sim).install()
    assert sim.faults is plan
    plan.uninstall()
    assert sim.faults is None


def test_disabled_plan_queries_are_pure_reads(sim):
    plan = FaultPlan(sim, enabled=False)
    plan.add("smp.ipi", "delay", extra_ns=100, jitter_ns=50)
    plan.add("smp.ipi", "drop", prob=1.0)
    plan.add("meter.sample", "noise", noise_w=1.0)
    plan.add("meter.sample", "dropout", fraction=1.0)
    plan.install()
    watts = np.ones(5)
    assert plan.delay("smp.ipi", 7) == 7
    assert plan.drops("smp.ipi") is False
    assert plan.hold_ns("gpu.drain") == 0
    assert plan.corrupts("governor.restore") is False
    assert plan.sample_noise("meter.sample", watts) is watts
    assert plan.sample_dropout("meter.sample", watts) is watts
    assert plan.injections() == 0
    # crucially: no RNG stream was ever touched
    assert not any(name.startswith("faults.")
                   for name in sim.rng._streams)


def test_unarmed_site_queries_are_pure_reads(sim):
    plan = FaultPlan(sim).install()   # enabled, but no specs
    assert plan.delay("smp.ipi", 7) == 7
    assert plan.drops("smp.ipi") is False
    assert plan.injections() == 0
    assert not any(name.startswith("faults.")
                   for name in sim.rng._streams)


def test_delay_adds_extra_within_jitter_and_logs(sim):
    plan = FaultPlan(sim).install()
    plan.add("smp.ipi", "delay", extra_ns=100, jitter_ns=50)
    for _ in range(20):
        delayed = plan.delay("smp.ipi", 7)
        assert 107 <= delayed < 157
    assert plan.injections() == 20
    assert plan.injections("smp.ipi") == 20
    assert plan.injections("gpu.drain") == 0
    t, kind, payload = plan.log.records[0]
    assert kind == "inject"
    assert payload["site"] == "smp.ipi"
    assert payload["fault"] == "delay"


def test_probability_gates_each_opportunity(sim):
    plan = FaultPlan(sim).install()
    plan.add("smp.ipi", "drop", prob=0.0)
    assert not any(plan.drops("smp.ipi") for _ in range(50))
    plan.add("gpu.drain", "hold", prob=1.0, extra_ns=5)
    assert all(plan.hold_ns("gpu.drain") == 5 for _ in range(10))


def test_time_window_bounds_arming(sim):
    plan = FaultPlan(sim).install()
    plan.add("smp.ipi", "drop", t0=100, t1=200)
    seen = {}
    for t in (50, 150, 250):
        sim.at(t, lambda t=t: seen.__setitem__(t, plan.drops("smp.ipi")))
    sim.run(until=300)
    assert seen == {50: False, 150: True, 250: False}


def test_limit_caps_total_injections(sim):
    plan = FaultPlan(sim).install()
    plan.add("smp.ipi", "drop", limit=2)
    results = [plan.drops("smp.ipi") for _ in range(5)]
    assert results == [True, True, False, False, False]
    assert plan.injections() == 2


def test_dropout_forward_fills_and_zeroes_leading_losses(sim):
    plan = FaultPlan(sim).install()
    plan.add("meter.sample", "dropout", fraction=1.0)
    watts = np.array([1.0, 2.0, 3.0])
    assert plan.sample_dropout("meter.sample", watts).tolist() == [0, 0, 0]


def test_noise_never_goes_negative(sim):
    plan = FaultPlan(sim).install()
    plan.add("meter.sample", "noise", noise_w=100.0)
    noisy = plan.sample_noise("meter.sample", np.full(200, 0.01))
    assert (noisy >= 0).all()
    assert not np.allclose(noisy, 0.01)


def test_same_seed_same_decisions():
    outcomes = []
    for _ in range(2):
        sim = Simulator(seed=9)
        plan = FaultPlan(sim).install()
        plan.add("smp.ipi", "delay", extra_ns=10, jitter_ns=1000, prob=0.5)
        outcomes.append([plan.delay("smp.ipi", 0) for _ in range(30)])
    assert outcomes[0] == outcomes[1]
