# Convenience targets for the psbox reproduction.

PYTHON ?= python

.PHONY: install test bench figures examples clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper figure/table without pytest.
figures:
	$(PYTHON) -m repro.experiments all

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/entanglement_tour.py
	$(PYTHON) examples/fairness_confinement.py
	$(PYTHON) examples/vr_adaptive_rendering.py
	$(PYTHON) examples/offload_decision.py
	$(PYTHON) examples/power_events.py
	$(PYTHON) examples/sidechannel_attack.py 1

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
