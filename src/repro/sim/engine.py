"""The simulator: clock, event loop, process spawning."""

from time import perf_counter

from repro.sim.events import EventQueue
from repro.sim.process import Process, Signal
from repro.sim.rng import RngRegistry


class Simulator:
    """Owns the virtual clock and runs events in timestamp order."""

    def __init__(self, seed=0):
        self._now = 0
        self._queue = EventQueue()
        self.rng = RngRegistry(seed)
        self.processes = []
        # Active fault-injection plan (:class:`repro.faults.FaultPlan`), or
        # None.  Components consult it at their injection sites; with no
        # plan installed those sites are pure reads and the simulation is
        # bit-identical to a build without them.
        self.faults = None
        # Observability session (:class:`repro.obs.Obs`), or None.  Like
        # ``faults``, every instrumentation point guards on it, so an
        # uninstrumented run pays one attribute read per site; the session
        # itself schedules no events and draws no RNG, so even an installed
        # one leaves the simulated schedule bit-identical.
        self.obs = None
        # Wall-clock profiler (:class:`repro.obs.EventLoopProfiler`), or
        # None.  Measures host time per event handler; virtual time is
        # untouched.
        self.profile = None

    @property
    def now(self):
        """Current simulation time in integer nanoseconds."""
        return self._now

    def at(self, time, fn, *args):
        """Schedule ``fn(*args)`` at an absolute time (>= now)."""
        if time < self._now:
            raise ValueError(
                "cannot schedule at t={} before now={}".format(time, self._now)
            )
        return self._push(time, fn, args)

    def call_later(self, delay, fn, *args):
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds."""
        return self.at(self._now + delay, fn, *args)

    def call_soon(self, fn, *args):
        """Schedule ``fn(*args)`` at the current instant (after pending ties)."""
        return self._push(self._now, fn, args)

    def _push(self, time, fn, args):
        event = self._queue.push(time, fn, args)
        obs = self.obs
        if obs is not None and obs.tracer.enabled:
            # Trace-context propagation: the event inherits the span that
            # is current right now, so a span begun in this handler can
            # close (and parent children) in the continuation.
            ctx = obs.tracer.current
            if ctx is not None:
                event.ctx = ctx
        return event

    def signal(self, name=""):
        """Create a :class:`Signal` bound to this simulator."""
        return Signal(self, name)

    def spawn(self, generator, name=""):
        """Start a generator as a simulation process."""
        process = Process(self, generator, name).start()
        self.processes.append(process)
        return process

    def run(self, until=None):
        """Run events until the queue drains or the clock reaches ``until``.

        When ``until`` is given the clock always finishes exactly there, even
        if the queue drained earlier — callers rely on ``now`` afterwards.
        """
        while True:
            next_time = self._queue.peek_time()
            if next_time is None or (until is not None and next_time > until):
                break
            event = self._queue.pop()
            self._now = event.time
            obs = self.obs
            if self.profile is None and (obs is None
                                         or not obs.tracer.enabled):
                # The fast path also covers an installed session with
                # tracing off: metrics hooks live inside handlers and need
                # no per-event bookkeeping, only spans do.
                event.fn(*event.args)
            else:
                self._dispatch(event)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def step(self):
        """Run a single event; return False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        obs = self.obs
        if self.profile is None and (obs is None or not obs.tracer.enabled):
            event.fn(*event.args)
        else:
            self._dispatch(event)
        return True

    def _dispatch(self, event):
        """The observed dispatch path: trace-context resume + profiling."""
        obs = self.obs
        tracer = None
        if obs is not None and obs.tracer.enabled:
            tracer = obs.tracer
            tracer._enter_event(event.ctx)
        profile = self.profile
        try:
            if profile is not None:
                start = perf_counter()
                try:
                    event.fn(*event.args)
                finally:
                    profile.record(event.fn, perf_counter() - start)
            else:
                event.fn(*event.args)
        finally:
            # A raising handler must still close the tracer's event scope:
            # callers that catch and keep stepping would otherwise see this
            # event's context leak into every later cascade.
            if tracer is not None:
                tracer._exit_event()

    def pending(self):
        """Number of live events still queued."""
        return len(self._queue)
