"""The simulator: clock, event loop, process spawning.

The event loop is the hottest code in the repository — every kernel,
hardware, powercap, and cluster scenario is millions of trips through
``run``.  Three decisions keep it fast without changing observable
behaviour (the sha256 differential tests pin this down bit for bit):

* **fused pop-if-due** — the loop mirrors ``EventQueue.pop_due`` inline
  (head slot + heap spillover) instead of the historical ``peek_time()``
  + ``pop()`` double walk;
* **per-segment dispatch decision** — ``run`` latches the observability
  session and profiler once per call and enters a dedicated loop (fast /
  traced / profiled), instead of re-reading ``self.obs``/``self.profile``
  for every event.  Installing a session or toggling ``tracer.enabled``
  mid-handler therefore takes effect at the next ``run``/``step`` call —
  nothing in the tree does this, and sessions are documented as
  install-before-run;
* **lazy trace bookkeeping** — with tracing enabled the loop pays one
  flag check per event until the first span begins
  (``tracer._seen_spans``); only after that does it stamp scheduling
  context onto events and reset the tracer's per-cascade state.

The scheduling entry points (``at``/``call_later``/``call_soon``) inline
``EventQueue.push`` for the same reason; the queue's method remains the
canonical definition of the ordering contract.
"""

from heapq import heappop, heappush
from time import perf_counter

from repro.sim.events import Event, EventQueue
from repro.sim.process import Process, Signal
from repro.sim.rng import RngRegistry

_new_event = Event.__new__

#: limit for an un-bounded run(); int times compare fine against it
_FOREVER = float("inf")


class Simulator:
    """Owns the virtual clock and runs events in timestamp order."""

    __slots__ = ("_now", "_queue", "rng", "processes", "faults", "obs",
                 "profile", "_ctx_tracer")

    def __init__(self, seed=0):
        self._now = 0
        self._queue = EventQueue()
        self.rng = RngRegistry(seed)
        self.processes = []
        # Active fault-injection plan (:class:`repro.faults.FaultPlan`), or
        # None.  Components consult it at their injection sites; with no
        # plan installed those sites are pure reads and the simulation is
        # bit-identical to a build without them.
        self.faults = None
        # Observability session (:class:`repro.obs.Obs`), or None.  Like
        # ``faults``, every instrumentation point guards on it, so an
        # uninstrumented run pays one attribute read per site; the session
        # itself schedules no events and draws no RNG, so even an installed
        # one leaves the simulated schedule bit-identical.
        self.obs = None
        # Wall-clock profiler (:class:`repro.obs.EventLoopProfiler`), or
        # None.  Measures host time per event handler; virtual time is
        # untouched.
        self.profile = None
        # The active tracer when scheduling-context stamping may be needed
        # (session installed with tracing enabled), else None.  Maintained
        # by Obs.install/uninstall and re-latched by run()/step().
        self._ctx_tracer = None

    @property
    def now(self):
        """Current simulation time in integer nanoseconds."""
        return self._now

    # -- scheduling --------------------------------------------------------------
    #
    # The three entry points repeat the slot/heap push inline: a chained
    # helper (the historical at -> _push -> queue.push) costs two extra
    # Python frames per event, which is most of the queue's former budget.
    # EventQueue.push documents the ordering contract they all follow.

    def at(self, time, fn, *args):
        """Schedule ``fn(*args)`` at an absolute time (>= now)."""
        if time < self._now:
            raise ValueError(
                "cannot schedule at t={} before now={}".format(time, self._now)
            )
        queue = self._queue
        event = _new_event(Event)
        event.time = time
        event.fn = fn
        event.args = args
        event.cancelled = False
        tracer = self._ctx_tracer
        if tracer is not None and tracer._seen_spans:
            stack = tracer._stack
            ctx = stack[-1] if stack else tracer._event_ctx
            if ctx is not None:
                event.ctx = ctx
        head = queue._head
        if head is None:
            queue._head = event
        elif time < head.time:
            heappush(queue._heap,
                     (head.time, getattr(head, "seq", -1), head))
            queue._head = event
        else:
            seq = queue._seq
            queue._seq = seq + 1
            event.seq = seq
            heappush(queue._heap, (time, seq, event))
        return event

    def call_later(self, delay, fn, *args):
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds."""
        now = self._now
        time = now + delay
        if time < now:
            raise ValueError(
                "cannot schedule at t={} before now={}".format(time, now)
            )
        queue = self._queue
        event = _new_event(Event)
        event.time = time
        event.fn = fn
        event.args = args
        event.cancelled = False
        tracer = self._ctx_tracer
        if tracer is not None and tracer._seen_spans:
            stack = tracer._stack
            ctx = stack[-1] if stack else tracer._event_ctx
            if ctx is not None:
                event.ctx = ctx
        head = queue._head
        if head is None:
            queue._head = event
        elif time < head.time:
            heappush(queue._heap,
                     (head.time, getattr(head, "seq", -1), head))
            queue._head = event
        else:
            seq = queue._seq
            queue._seq = seq + 1
            event.seq = seq
            heappush(queue._heap, (time, seq, event))
        return event

    def call_soon(self, fn, *args):
        """Schedule ``fn(*args)`` at the current instant (after pending ties)."""
        time = self._now
        queue = self._queue
        event = _new_event(Event)
        event.time = time
        event.fn = fn
        event.args = args
        event.cancelled = False
        tracer = self._ctx_tracer
        if tracer is not None and tracer._seen_spans:
            stack = tracer._stack
            ctx = stack[-1] if stack else tracer._event_ctx
            if ctx is not None:
                event.ctx = ctx
        head = queue._head
        if head is None:
            queue._head = event
        elif time < head.time:
            heappush(queue._heap,
                     (head.time, getattr(head, "seq", -1), head))
            queue._head = event
        else:
            seq = queue._seq
            queue._seq = seq + 1
            event.seq = seq
            heappush(queue._heap, (time, seq, event))
        return event

    def signal(self, name=""):
        """Create a :class:`Signal` bound to this simulator."""
        return Signal(self, name)

    def spawn(self, generator, name=""):
        """Start a generator as a simulation process."""
        process = Process(self, generator, name).start()
        self.processes.append(process)
        return process

    # -- the event loop ----------------------------------------------------------

    def _latch_dispatch(self):
        """Latch the per-segment dispatch decision; returns the tracer."""
        obs = self.obs
        tracer = obs.tracer if obs is not None and obs.tracer.enabled \
            else None
        self._ctx_tracer = tracer
        return tracer

    def run(self, until=None):
        """Run events until the queue drains or the clock reaches ``until``.

        When ``until`` is given the clock always finishes exactly there, even
        if the queue drained earlier — callers rely on ``now`` afterwards.
        """
        tracer = self._latch_dispatch()
        limit = until if until is not None else _FOREVER
        queue = self._queue
        heap = queue._heap
        if tracer is None and self.profile is None:
            # Fast loop: the inlined pop_due and nothing else.
            while True:
                event = queue._head
                if event is None:
                    break
                time = event.time
                if time > limit:
                    break
                queue._head = heappop(heap)[2] if heap else None
                if event.cancelled:
                    continue
                self._now = time
                args = event.args
                if args:
                    event.fn(*args)
                else:
                    event.fn()
        elif self.profile is None:
            # Traced loop: until the first span begins, one flag check per
            # event is the entire tracing cost.  Afterwards each event
            # resets the per-cascade state the way _enter_event used to —
            # the reset folds into the *next* event's prologue (and the
            # finally below), which nothing can observe in between.
            stack = tracer._stack
            try:
                while True:
                    event = queue._head
                    if event is None:
                        break
                    time = event.time
                    if time > limit:
                        break
                    queue._head = heappop(heap)[2] if heap else None
                    if event.cancelled:
                        continue
                    self._now = time
                    if tracer._seen_spans:
                        tracer._event_ctx = getattr(event, "ctx", None)
                        if stack:
                            del stack[:]
                    args = event.args
                    if args:
                        event.fn(*args)
                    else:
                        event.fn()
            finally:
                tracer._event_ctx = None
                if stack:
                    del stack[:]
        else:
            # Profiled (and possibly traced) loop: rare, so it takes the
            # generic per-event dispatch.
            pop_due = queue.pop_due
            while True:
                event = pop_due(limit)
                if event is None:
                    break
                self._now = event.time
                self._dispatch(event)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def step(self):
        """Run a single event; return False when the queue is empty."""
        tracer = self._latch_dispatch()
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        if tracer is None and self.profile is None:
            event.fn(*event.args)
        else:
            self._dispatch(event)
        return True

    def _dispatch(self, event):
        """The generic observed dispatch: trace-context resume + profiling."""
        obs = self.obs
        tracer = None
        if obs is not None and obs.tracer.enabled:
            tracer = obs.tracer
            tracer._enter_event(getattr(event, "ctx", None))
        profile = self.profile
        try:
            if profile is not None:
                start = perf_counter()
                try:
                    event.fn(*event.args)
                finally:
                    profile.record(event.fn, perf_counter() - start)
            else:
                event.fn(*event.args)
        finally:
            # A raising handler must still close the tracer's event scope:
            # callers that catch and keep stepping would otherwise see this
            # event's context leak into every later cascade.
            if tracer is not None:
                tracer._exit_event()

    def pending(self):
        """Number of live events still queued (O(queued) — diagnostics)."""
        return len(self._queue)
