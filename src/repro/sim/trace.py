"""Trace containers: piecewise-constant signals and timestamped event logs.

``StepTrace`` is the backbone of power metering.  A hardware component sets a
new value whenever its state changes; between change points the value is
constant.  Resampling and integration are then exact, which is what lets the
in-situ meter model behave like a DAQ without simulating every sample as an
event.
"""

import bisect
from collections import deque

import numpy as np


class StepTrace:
    """A right-continuous step function of time.

    ``set(t, v)`` appends a change point; times must be non-decreasing.
    Setting twice at the same instant overwrites (last-writer-wins), which is
    the natural semantics for state changes within one event cascade.
    """

    def __init__(self, initial=0.0, name=""):
        self.name = name
        self._times = [0]
        self._values = [float(initial)]

    def set(self, t, value):
        """Record that the signal takes ``value`` from time ``t`` onward."""
        last = self._times[-1]
        if t < last:
            raise ValueError(
                "trace {!r}: set at t={} before last change t={}".format(
                    self.name, t, last
                )
            )
        value = float(value)
        if t == last:
            self._values[-1] = value
        else:
            self._times.append(t)
            self._values.append(value)

    def add(self, t, delta):
        """Adjust the signal by ``delta`` from time ``t`` onward."""
        # Appends dominate (set() forbids t < last anyway), and for them the
        # value at t IS the last value — skip value_at's bisect entirely.
        if t >= self._times[-1]:
            self.set(t, self._values[-1] + delta)
        else:
            self.set(t, self.value_at(t) + delta)

    def value_at(self, t):
        """Signal value at time ``t`` (right-continuous)."""
        idx = bisect.bisect_right(self._times, t) - 1
        if idx < 0:
            return self._values[0]
        return self._values[idx]

    @property
    def last_value(self):
        return self._values[-1]

    @property
    def last_time(self):
        return self._times[-1]

    def __len__(self):
        return len(self._times)

    def segments(self, t0, t1):
        """Yield (start, end, value) covering exactly [t0, t1)."""
        if t1 <= t0:
            return
        idx = max(bisect.bisect_right(self._times, t0) - 1, 0)
        start = t0
        while start < t1:
            value = self._values[idx]
            if idx + 1 < len(self._times):
                end = min(self._times[idx + 1], t1)
            else:
                end = t1
            if end > start:
                yield (start, end, value)
            start = end
            idx += 1

    def _window(self, t0, t1):
        """Change-point index range [lo, hi) covering the interval [t0, t1].

        ``_times[lo]`` is the last change at or before ``t0`` (clamped to the
        first), so the window alone determines every value on the interval.
        """
        lo = bisect.bisect_right(self._times, t0) - 1
        if lo < 0:
            lo = 0
        hi = bisect.bisect_right(self._times, t1)
        return lo, hi

    def integrate(self, t0, t1):
        """Integral of the signal over [t0, t1) in value*nanoseconds.

        For a power trace in watts, divide by 1e9 to get joules.
        """
        if t1 <= t0:
            return 0.0
        lo, hi = self._window(t0, t1)
        if hi - lo <= 32:
            # Few segments: the Python loop beats numpy array setup.
            total = 0.0
            for start, end, value in self.segments(t0, t1):
                total += value * (end - start)
            return total
        # Segment i runs [starts[i], ends[i]) with value vals[i]; the outer
        # boundaries are clipped to the query window.  Widths stay int64 so
        # ns arithmetic is exact; the dot upcasts them.
        edge = np.asarray(self._times[lo:hi], dtype=np.int64)
        vals = np.asarray(self._values[lo:hi], dtype=np.float64)
        starts = np.empty(hi - lo, dtype=np.int64)
        starts[0] = t0
        starts[1:] = edge[1:]
        ends = np.empty(hi - lo, dtype=np.int64)
        ends[:-1] = edge[1:]
        ends[-1] = t1
        return float(np.dot(vals, ends - starts))

    def resample(self, t0, t1, dt):
        """Sample the signal on the uniform grid t0, t0+dt, ... (< t1).

        Returns ``(times, values)`` numpy arrays; point samples of the step
        function, the way a DAQ ADC would observe an (ideal) rail signal.
        Converts only the change points inside the query window, so periodic
        meter reads stay O(window) even against a long trace history.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        times = np.arange(t0, t1, dt, dtype=np.int64)
        lo, hi = self._window(t0, t1)
        change_times = np.asarray(self._times[lo:hi], dtype=np.int64)
        values = np.asarray(self._values[lo:hi], dtype=np.float64)
        idx = np.searchsorted(change_times, times, side="right") - 1
        idx = np.clip(idx, 0, len(values) - 1)
        return times, values[idx]

    def mean(self, t0, t1):
        """Time-weighted mean over [t0, t1)."""
        if t1 <= t0:
            raise ValueError("empty interval")
        return self.integrate(t0, t1) / (t1 - t0)


class EventTrace:
    """A flat, append-only log of timestamped records.

    Records are (time, kind, payload) tuples; ``payload`` is a dict.  Used
    for scheduling decisions, command dispatch/completion, packet activity —
    anything the experiments later need to slice.

    With ``capacity`` set the log becomes a bounded ring: the oldest records
    are evicted once ``capacity`` is reached and ``dropped`` counts the
    evictions, so long soak runs hold memory constant while analysis code
    can still see (and surface as a metric) how much history it lost.
    Subscribers always see every record — eviction only limits retention.
    """

    def __init__(self, name="", capacity=None):
        if capacity is not None and capacity < 1:
            raise ValueError("trace capacity must be >= 1 (or None)")
        self.name = name
        self.capacity = capacity
        self.dropped = 0
        if capacity is None:
            self.records = []
        else:
            self.records = deque(maxlen=capacity)
        self._subscribers = []

    def log(self, t, kind, **payload):
        if self.capacity is not None and len(self.records) == self.capacity:
            self.dropped += 1
        self.records.append((t, kind, payload))
        if self._subscribers:
            for fn in tuple(self._subscribers):
                fn(t, kind, payload)

    def subscribe(self, fn):
        """Call ``fn(t, kind, payload)`` on every future record.

        This is the event bus observers (e.g. ``repro.check``) attach to.
        Subscribers run synchronously inside the component that logged, so
        they must be read-only with respect to simulation state.
        """
        self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn):
        """Remove a subscriber (no-op when not subscribed)."""
        if fn in self._subscribers:
            self._subscribers.remove(fn)

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def filter(self, kind=None, t0=None, t1=None, **match):
        """Return records matching a kind, time window, and payload fields."""
        out = []
        for t, k, payload in self.records:
            if kind is not None and k != kind:
                continue
            if t0 is not None and t < t0:
                continue
            if t1 is not None and t >= t1:
                continue
            if any(payload.get(key) != value for key, value in match.items()):
                continue
            out.append((t, k, payload))
        return out

    def times(self, kind=None, **match):
        """Timestamps of matching records."""
        return [t for t, _, _ in self.filter(kind=kind, **match)]
