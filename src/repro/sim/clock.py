"""Time units and conversions.

All simulation time is kept as integer nanoseconds.  Integer time makes event
ordering exact and reproducible; floats are used only at analysis boundaries
(power traces, plots) where exactness no longer matters.
"""

NSEC = 1
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000


def seconds(t):
    """Convert integer nanoseconds to float seconds."""
    return t / SEC


def from_seconds(s):
    """Convert float seconds to integer nanoseconds (rounded)."""
    return int(round(s * SEC))


def from_usec(us):
    """Convert microseconds to integer nanoseconds."""
    return int(round(us * USEC))


def from_msec(ms):
    """Convert milliseconds to integer nanoseconds."""
    return int(round(ms * MSEC))
