"""Event objects and the event queue backing the simulator."""

import heapq
import itertools


class Event:
    """A scheduled callback.

    Events order by (time, seq); the monotonically increasing sequence number
    makes ties deterministic (FIFO among events scheduled for the same
    instant).  Cancelling marks the event dead; the queue drops dead events
    lazily when they surface.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "ctx", "_queue")

    def __init__(self, time, seq, fn, args):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Trace context: the span that was current when this event was
        # scheduled (see repro.obs.tracer).  None unless an observability
        # session is installed; the simulator stamps it.
        self.ctx = None
        # Back-reference to the owning queue while the event is queued and
        # live; cleared on pop and on cancel so the queue's live-event
        # counter moves exactly once per event.
        self._queue = None

    def cancel(self):
        """Prevent this event from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            self._queue = None
            queue._live -= 1

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "Event(t={}, seq={}, {}, {})".format(
            self.time, self.seq, getattr(self.fn, "__name__", self.fn), state
        )


class EventQueue:
    """Binary-heap priority queue of :class:`Event`."""

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()
        # Live (queued, not cancelled) events.  ``cancel`` decrements it
        # immediately, so ``len(queue)`` never counts dead heap entries —
        # lazy prunes in ``pop``/``peek_time`` only discard corpses whose
        # count already moved.
        self._live = 0

    def __len__(self):
        return self._live

    def push(self, time, fn, args):
        event = Event(time, next(self._counter), fn, args)
        event._queue = self
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self):
        """Pop the next live event, or return None when the queue drains."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                event._queue = None
                self._live -= 1
                return event
        return None

    def peek_time(self):
        """Time of the next live event, or None.  Prunes dead head entries."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None
