"""Event objects and the event queue backing the simulator.

The queue is a *slot-plus-heap* structure tuned for the simulator's hot
path.  The single earliest live-or-cancelled event sits in a head slot;
everything else spills into a binary heap of ``(time, seq, event)`` tuples
(tuple comparison stays in C, unlike comparing event objects).  Most
simulation workloads schedule each next event at or after the head, so the
common push touches only the slot and the common pop refills it from the
heap top — no per-event heap walk, and with an empty heap no heap traffic
at all.

Tie order is exact (time, seq) FIFO, with ``seq`` assigned *lazily*: an
event gets a sequence number only when it enters the heap.  That is sound
because the head slot is only ever displaced by a strictly smaller time —
so while an event owns the slot, every same-time event in the heap was
pushed after it, and spilling the slot owner with the sentinel seq ``-1``
(below every counter value) preserves FIFO exactly.  Two sentinel entries
can never collide at one timestamp: taking the slot requires a time
strictly below the previous head, which is itself a lower bound on every
heap entry, so a second same-time event can never reach the slot while the
first one's spill is still queued.
"""

import heapq

_heappush = heapq.heappush
_heappop = heapq.heappop


class Event:
    """A scheduled callback.

    Events order by (time, seq); the sequence number makes ties
    deterministic (FIFO among events scheduled for the same instant).
    Cancelling marks the event dead; the queue drops dead events lazily
    when they surface.  Queue-created events materialize ``seq`` (on heap
    entry) and ``ctx`` (when a tracing session stamps scheduling context)
    lazily, so readers outside the queue must tolerate their absence.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "ctx")

    def __init__(self, time, seq, fn, args):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Trace context: the span that was current when this event was
        # scheduled (see repro.obs.tracer).  Only stamped by the simulator
        # while a tracing session is active and has begun at least one span.
        self.ctx = None

    def cancel(self):
        """Prevent this event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "Event(t={}, seq={}, {}, {})".format(
            self.time, getattr(self, "seq", None),
            getattr(self.fn, "__name__", self.fn), state,
        )


class EventQueue:
    """Slot-plus-heap priority queue of :class:`Event`.

    ``len()`` is exact but O(queued): it walks the heap skipping corpses.
    The hot path deliberately keeps no live-event counter — diagnostics and
    tests read the length; the event loop never does.
    """

    __slots__ = ("_head", "_heap", "_seq")

    def __init__(self):
        # Invariant: ``_head is None`` implies the heap is empty, and the
        # head is <= every heap entry in (time, seq) order.  The head may
        # be a cancelled corpse; pops skip it lazily.
        self._head = None
        self._heap = []
        self._seq = 0

    def __len__(self):
        head = self._head
        alive = 0 if head is None or head.cancelled else 1
        return alive + sum(
            1 for item in self._heap if not item[2].cancelled
        )

    def push(self, time, fn, args):
        """Schedule ``fn(*args)`` at ``time``; returns the Event handle."""
        event = Event.__new__(Event)
        event.time = time
        event.fn = fn
        event.args = args
        event.cancelled = False
        head = self._head
        if head is None:
            self._head = event
        elif time < head.time:
            # Spill the slot owner; sentinel -1 orders it before every
            # same-time heap entry, all of which were pushed after it.
            _heappush(self._heap,
                      (head.time, getattr(head, "seq", -1), head))
            self._head = event
        else:
            seq = self._seq
            self._seq = seq + 1
            event.seq = seq
            _heappush(self._heap, (time, seq, event))
        return event

    def pop(self):
        """Pop the next live event, or return None when the queue drains."""
        heap = self._heap
        event = self._head
        while event is not None:
            self._head = _heappop(heap)[2] if heap else None
            if not event.cancelled:
                return event
            event = self._head
        return None

    def pop_due(self, limit):
        """Fused peek+pop: the next live event with ``time <= limit``.

        Returns None when the queue is drained *or* the next live event is
        past the limit (the event stays queued).  This is the single
        operation the simulator's run loop is built on — one call replaces
        the historical ``peek_time()`` + ``pop()`` double heap walk.
        """
        heap = self._heap
        event = self._head
        while event is not None:
            if event.time > limit:
                # The head is the queue-wide minimum, so nothing is due —
                # even a cancelled head only shadows later times.
                return None
            self._head = _heappop(heap)[2] if heap else None
            if not event.cancelled:
                return event
            event = self._head
        return None

    def peek_time(self):
        """Time of the next live event, or None.  Prunes dead head entries."""
        heap = self._heap
        event = self._head
        while event is not None and event.cancelled:
            event = self._head = _heappop(heap)[2] if heap else None
        if event is not None:
            return event.time
        return None
