"""Generator-based simulation processes.

A process is a Python generator driven by the simulator.  It may yield:

* an ``int`` — sleep for that many nanoseconds;
* a :class:`Signal` — suspend until the signal fires; the value sent back
  into the generator is the signal payload.

This is the simpy-style coroutine model, trimmed to the two primitives the
rest of the code base needs.  Kernel-side machinery (schedulers, drivers)
uses plain event callbacks instead, which are cheaper and easier to cancel.
"""


class Signal:
    """A broadcast condition processes can wait on.

    ``fire(payload)`` resumes every current waiter with ``payload``.  Waiters
    registered after the fire wait for the *next* fire — signals have no
    memory, exactly like a condition variable broadcast.
    """

    __slots__ = ("sim", "name", "_waiters", "_callbacks")

    def __init__(self, sim, name=""):
        self.sim = sim
        self.name = name
        self._waiters = []
        self._callbacks = []

    def wait(self, process):
        self._waiters.append(process)

    def subscribe(self, fn):
        """Register a plain callback invoked with the payload on every fire."""
        self._callbacks.append(fn)

    def unsubscribe(self, fn):
        self._callbacks.remove(fn)

    def fire(self, payload=None):
        """Resume all waiters and invoke all subscribers with ``payload``."""
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.sim.call_soon(process.resume, payload)
        for fn in list(self._callbacks):
            fn(payload)

    def __repr__(self):
        return "Signal({!r}, waiters={})".format(self.name, len(self._waiters))


class Process:
    """Drives one generator coroutine inside the simulator."""

    __slots__ = ("sim", "generator", "name", "finished", "result",
                 "_pending_event", "done")

    def __init__(self, sim, generator, name=""):
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.finished = False
        self.result = None
        self._pending_event = None
        self.done = Signal(sim, name=self.name + ".done")

    def start(self):
        self.sim.call_soon(self.resume, None)
        return self

    def resume(self, value=None):
        """Advance the generator by one step; reschedule per its yield."""
        if self.finished:
            return
        self._pending_event = None
        try:
            yielded = self.generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.done.fire(self.result)
            return
        if isinstance(yielded, Signal):
            yielded.wait(self)
        elif isinstance(yielded, int):
            if yielded < 0:
                raise ValueError(
                    "process {!r} yielded negative delay {}".format(self.name, yielded)
                )
            self._pending_event = self.sim.call_later(yielded, self.resume, None)
        else:
            raise TypeError(
                "process {!r} yielded {!r}; expected int delay or Signal".format(
                    self.name, yielded
                )
            )

    def kill(self):
        """Terminate the process without firing its done signal."""
        self.finished = True
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self.generator.close()

    def __repr__(self):
        state = "finished" if self.finished else "running"
        return "Process({!r}, {})".format(self.name, state)
