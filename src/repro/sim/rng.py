"""Deterministic named random-number streams.

Every stochastic component asks the registry for a stream by name
(e.g. ``"app.bodytrack.0"``).  Streams are independent and stable across
runs and across unrelated changes elsewhere in the simulation, which keeps
experiments reproducible and diffable.
"""

import zlib

import numpy as np


class RngRegistry:
    """Factory of independent ``numpy.random.Generator`` streams."""

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._streams = {}

    def stream(self, name):
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            tag = zlib.crc32(name.encode("utf-8"))
            self._streams[name] = np.random.default_rng([self.seed, tag])
        return self._streams[name]

    def fresh(self, name):
        """Return a brand-new generator for ``name``, resetting its state."""
        self._streams.pop(name, None)
        return self.stream(name)
