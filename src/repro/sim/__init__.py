"""Discrete-event simulation engine used by every substrate in this repo.

The engine is intentionally small: an event heap over an integer-nanosecond
clock, generator-based processes, deterministic named RNG streams, and
piecewise-constant signal traces (the representation of power rails).
"""

from repro.sim.clock import (
    MSEC,
    NSEC,
    SEC,
    USEC,
    from_msec,
    from_seconds,
    from_usec,
    seconds,
)
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.process import Process, Signal
from repro.sim.rng import RngRegistry
from repro.sim.trace import EventTrace, StepTrace

__all__ = [
    "Event",
    "EventTrace",
    "MSEC",
    "NSEC",
    "Process",
    "RngRegistry",
    "SEC",
    "Signal",
    "Simulator",
    "StepTrace",
    "USEC",
    "from_msec",
    "from_seconds",
    "from_usec",
    "seconds",
]
