"""Content-addressed result cache for parallel experiment cells.

Every cell result is keyed on the four things that determine it bit for
bit: the experiment name, the seed, a canonical hash of the cell config,
and a fingerprint of the ``repro`` source tree.  Re-running a soak after an
interrupt (or re-running it untouched) skips every completed cell; editing
*any* source file under ``src/repro`` rotates the code fingerprint and
invalidates the whole cache at once — deliberately coarse, because a cell's
behaviour can depend on any module the simulation transitively imports.

Entries are one JSON file per cell under ``root/<experiment>/<kk>/<key>.json``
(two-level fan-out keeps directories small on big sweeps); writes go through
a temp file + rename so a killed soak never leaves a torn entry behind.
"""

import hashlib
import json
import os
import tempfile

#: What :meth:`ResultCache.get` returns on a miss.  A sentinel rather than
#: ``None`` because ``None`` is a perfectly good cached payload — without
#: the distinction a None-valued cell would be re-executed and re-written
#: on every run.
MISS = object()


def config_hash(config):
    """Canonical sha256 of a JSON-able config dict (key order immaterial)."""
    canon = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


_CODE_FINGERPRINT = None


def code_fingerprint():
    """sha256 over every ``.py`` file in the installed ``repro`` package.

    Memoised per process: the tree is read once per run, not once per cell.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro

        package_root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(package_root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, package_root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


class ResultCache:
    """Filesystem-backed cache of finished cell payloads."""

    def __init__(self, root, fingerprint=None):
        self.root = root
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def key_for(self, item):
        """The cell's content address."""
        material = "|".join((
            item.experiment, str(int(item.seed)),
            config_hash(item.config), self.fingerprint,
        ))
        return hashlib.sha256(material.encode()).hexdigest()

    def path_for(self, item):
        key = self.key_for(item)
        return os.path.join(self.root, item.experiment, key[:2],
                            key + ".json")

    def get(self, item):
        """The cached payload, or :data:`MISS` (counts a hit or a miss).

        Any unreadable entry — absent, torn JSON, or a JSON value that is
        not an object carrying ``"payload"`` — reads as a miss; the cell
        simply re-runs and rewrites it.
        """
        path = self.path_for(item)
        try:
            with open(path) as handle:
                entry = json.load(handle)
            payload = entry["payload"]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return MISS
        self.hits += 1
        return payload

    def put(self, item, payload):
        """Store a finished cell atomically (temp file + rename)."""
        path = self.path_for(item)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            # the payload is all get() returns; the rest is for humans
            # poking at the cache directory
            "experiment": item.experiment,
            "seed": int(item.seed),
            "config": dict(item.config),
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1

    def stats(self):
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes}
