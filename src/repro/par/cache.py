"""Content-addressed result cache for parallel experiment cells.

Every cell result is keyed on the four things that determine it bit for
bit: the experiment name, the seed, a canonical hash of the cell config,
and a fingerprint of the ``repro`` source tree.  Re-running a soak after an
interrupt (or re-running it untouched) skips every completed cell; editing
*any* source file under ``src/repro`` rotates the code fingerprint and
invalidates the whole cache at once — deliberately coarse, because a cell's
behaviour can depend on any module the simulation transitively imports.

Entries are one JSON file per cell under ``root/<experiment>/<kk>/<key>.json``
(two-level fan-out keeps directories small on big sweeps); writes go through
a temp file + rename so a killed soak never leaves a torn entry behind, and
entries are chmodded to umask-respecting permissions — ``mkstemp`` files are
0600, which in a cache directory shared across users would read as permanent
misses for everyone but the writer.

A cache can also mount a **read-through remote tier**: a second directory
(NFS mount, rsync'd mirror) or an HTTP(S)/file URL prefix serving the same
layout.  A local miss consults the remote; a remote hit is written back into
the local tier atomically, so the next lookup is local.  This is how a warm
campaign cache is shared across hosts — and how the psbox-as-a-service
daemon (ROADMAP item 4) will serve one.
"""

import hashlib
import json
import os
import tempfile

#: What :meth:`ResultCache.get` returns on a miss.  A sentinel rather than
#: ``None`` because ``None`` is a perfectly good cached payload — without
#: the distinction a None-valued cell would be re-executed and re-written
#: on every run.
MISS = object()


def config_hash(config):
    """Canonical sha256 of a JSON-able config dict (key order immaterial).

    Strict JSON only: ``allow_nan=False`` makes NaN/Infinity configs an
    error here instead of serialising as repr-dependent non-RFC tokens
    that silently fork cache keys (:class:`~repro.par.shard.WorkItem`
    rejects them earlier, at construction, with the cell identity).
    """
    canon = json.dumps(config, sort_keys=True, separators=(",", ":"),
                       allow_nan=False)
    return hashlib.sha256(canon.encode()).hexdigest()


_CODE_FINGERPRINT = None


def code_fingerprint():
    """sha256 over every ``.py`` file in the installed ``repro`` package.

    Memoised per process: the tree is read once per run, not once per cell.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro

        package_root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(package_root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, package_root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def umask_chmod(path):
    """Give ``path`` the 0666-minus-umask mode a plain ``open`` would.

    ``tempfile.mkstemp`` deliberately creates 0600 files; entries that
    keep that mode are unreadable to every other user of a shared cache
    directory, which reads as a permanent miss.
    """
    umask = os.umask(0)
    os.umask(umask)
    os.chmod(path, 0o666 & ~umask)


class ResultCache:
    """Filesystem-backed cache of finished cell payloads.

    ``remote`` is an optional second tier consulted on local misses: a
    directory path, or a ``file://`` / ``http(s)://`` URL prefix serving
    the same ``<experiment>/<kk>/<key>.json`` layout.  Remote hits are
    written back into the local tier (atomically, like any put) so they
    are local from then on; remote failures of any kind read as misses.
    """

    def __init__(self, root, fingerprint=None, remote=None):
        self.root = root
        self.fingerprint = fingerprint or code_fingerprint()
        self.remote = remote
        self.hits = 0
        self.remote_hits = 0
        self.misses = 0
        self.writes = 0

    def key_for(self, item):
        """The cell's content address."""
        material = "|".join((
            item.experiment, str(int(item.seed)),
            config_hash(item.config), self.fingerprint,
        ))
        return hashlib.sha256(material.encode()).hexdigest()

    def rel_path_for(self, item):
        """The entry's path relative to either tier's root."""
        key = self.key_for(item)
        return os.path.join(item.experiment, key[:2], key + ".json")

    def path_for(self, item):
        return os.path.join(self.root, self.rel_path_for(item))

    def get(self, item):
        """The cached payload, or :data:`MISS` (counts a hit or a miss).

        Any unreadable entry — absent, torn JSON, or a JSON value that is
        not an object carrying ``"payload"`` — reads as a miss; the cell
        simply re-runs and rewrites it.  On a local miss the remote tier
        (when mounted) is consulted and a hit is written back locally.
        """
        path = self.path_for(item)
        try:
            with open(path) as handle:
                entry = json.load(handle)
            payload = entry["payload"]
        except (OSError, ValueError, KeyError, TypeError):
            return self._get_remote(item)
        self.hits += 1
        return payload

    def _get_remote(self, item):
        """The remote tier's answer to a local miss (write-back on hit)."""
        entry = (self._fetch_remote(self.rel_path_for(item))
                 if self.remote else None)
        try:
            payload = entry["payload"]
        except (KeyError, TypeError):
            self.misses += 1
            return MISS
        self._write_entry(self.path_for(item), entry)
        self.remote_hits += 1
        return payload

    def _fetch_remote(self, rel_path):
        """The remote entry as a parsed dict, or ``None`` on any failure."""
        try:
            if "://" in self.remote:
                from urllib.request import urlopen

                url = "/".join([self.remote.rstrip("/")]
                               + rel_path.split(os.sep))
                with urlopen(url, timeout=10) as response:
                    return json.loads(response.read().decode("utf-8"))
            with open(os.path.join(self.remote, rel_path)) as handle:
                return json.load(handle)
        except Exception:
            return None    # unreachable/absent/torn remote reads as a miss

    def _write_entry(self, path, entry):
        """Atomic, umask-respecting entry write (put and remote write-back)."""
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
            umask_chmod(tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def put(self, item, payload):
        """Store a finished cell atomically (temp file + rename)."""
        entry = {
            # the payload is all get() returns; the rest is for humans
            # poking at the cache directory
            "experiment": item.experiment,
            "seed": int(item.seed),
            "config": dict(item.config),
            "payload": payload,
        }
        self._write_entry(self.path_for(item), entry)
        self.writes += 1

    def stats(self):
        return {"hits": self.hits, "remote_hits": self.remote_hits,
                "misses": self.misses, "writes": self.writes}
