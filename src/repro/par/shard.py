"""Work items and the shard scheduler.

A parallel run is a flat list of :class:`WorkItem` cells — one independent
(experiment, seed, config) simulation each.  The scheduler's only job is to
split that list into shards for the worker pool; the *merge* is where
determinism lives: results are reassembled by each item's ``index`` (its
position in the original work-list, the shard key), never by completion
order, so a parallel run is byte-identical to the serial one no matter how
the pool interleaves.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class WorkItem:
    """One independent simulation cell.

    ``runner`` names a module-level function as ``"package.module:func"``;
    spawn-started workers import it by name, so nothing but primitives ever
    crosses the process boundary.  The function is called as
    ``func(seed, config)`` and must return a JSON-serialisable payload
    (that is also what the result cache stores).
    """

    experiment: str          # campaign name ("faults", "sweep", ...)
    runner: str              # spawn-safe dotted entry point
    seed: int
    config: dict = field(default_factory=dict)   # JSON-able cell parameters
    index: int = 0           # position in the work-list == the shard key

    def spec(self):
        """The picklable/JSON-able wire form workers receive."""
        return {
            "experiment": self.experiment,
            "runner": self.runner,
            "seed": int(self.seed),
            "config": dict(self.config),
            "index": int(self.index),
        }


def work_list(experiment, runner, cells):
    """Build an indexed work-list from ``(seed, config)`` pairs."""
    return [
        WorkItem(experiment=experiment, runner=runner, seed=seed,
                 config=config, index=index)
        for index, (seed, config) in enumerate(cells)
    ]


def plan_shards(items, jobs, oversubscribe=4):
    """Split ``items`` into round-robin shards for a ``jobs``-worker pool.

    Round-robin interleaving spreads adjacent cells — which tend to share a
    cost profile (same scenario at different seeds) — across shards, and
    oversubscribing the pool (more shards than workers) lets fast workers
    pick up extra shards instead of idling behind a slow one.  The shard
    layout affects wall-clock only; the merge reorders by item index.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1, got {}".format(jobs))
    n_shards = min(len(items), max(1, jobs) * max(1, oversubscribe))
    if n_shards <= 1:
        return [list(items)] if items else []
    shards = [[] for _ in range(n_shards)]
    for position, item in enumerate(items):
        shards[position % n_shards].append(item)
    return shards


def merge_results(indexed_payloads, n_items):
    """Order payloads by shard key; completion order never leaks through.

    ``indexed_payloads`` is an iterable of ``(index, payload)`` in *any*
    order (the pool's completion order).  Raises if a cell is missing or
    duplicated — a partial merge silently reordering would defeat the
    bit-identity guarantee.
    """
    slots = [None] * n_items
    seen = [False] * n_items
    for index, payload in indexed_payloads:
        if not 0 <= index < n_items:
            raise ValueError("result index {} outside work-list of {}".format(
                index, n_items))
        if seen[index]:
            raise ValueError("duplicate result for cell {}".format(index))
        seen[index] = True
        slots[index] = payload
    missing = [i for i, ok in enumerate(seen) if not ok]
    if missing:
        raise ValueError("missing results for cells {}".format(missing[:8]))
    return slots
