"""Work items and the deterministic merge.

A parallel run is a flat list of :class:`WorkItem` cells — one independent
(experiment, seed, config) simulation each.  Scheduling is the executor
backends' business (workers *pull* cells from a shared queue — see
:mod:`repro.par.executors` — which replaced the old round-robin shard
plan); the *merge* is where determinism lives: results are reassembled by
each item's ``index`` (its position in the original work-list, the shard
key), never by completion order, so a parallel run is byte-identical to
the serial one no matter how any backend interleaves.
"""

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class WorkItem:
    """One independent simulation cell.

    ``runner`` names a module-level function as ``"package.module:func"``;
    pool and socket workers import it by name, so nothing but primitives
    ever crosses the process boundary.  The function is called as
    ``func(seed, config)`` and must return a JSON-serialisable payload
    (that is also what the result cache stores).

    ``config`` must be *strict* JSON — NaN/Infinity values serialise as
    repr-dependent non-RFC tokens that would silently fork cache keys and
    confuse remote workers, so they are rejected here, at construction,
    with the cell identity in the error.
    """

    experiment: str          # campaign name ("faults", "sweep", ...)
    runner: str              # spawn-safe dotted entry point
    seed: int
    config: dict = field(default_factory=dict)   # JSON-able cell parameters
    index: int = 0           # position in the work-list == the shard key

    def __post_init__(self):
        try:
            json.dumps(self.config, sort_keys=True, allow_nan=False)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                "WorkItem config for ({!r}, seed={}) is not strict JSON "
                "(NaN/Infinity and non-JSON types are rejected because "
                "they fork cache keys): {}".format(
                    self.experiment, self.seed, exc)) from exc

    def spec(self):
        """The picklable/JSON-able wire form workers receive."""
        return {
            "experiment": self.experiment,
            "runner": self.runner,
            "seed": int(self.seed),
            "config": dict(self.config),
            "index": int(self.index),
        }


def work_list(experiment, runner, cells):
    """Build an indexed work-list from ``(seed, config)`` pairs."""
    return [
        WorkItem(experiment=experiment, runner=runner, seed=seed,
                 config=config, index=index)
        for index, (seed, config) in enumerate(cells)
    ]


def merge_results(indexed_payloads, n_items):
    """Order payloads by shard key; completion order never leaks through.

    ``indexed_payloads`` is an iterable of ``(index, payload)`` in *any*
    order (whatever steal order the backend's workers produced).  Raises
    if a cell is missing or duplicated — a partial merge silently
    reordering would defeat the bit-identity guarantee.
    """
    slots = [None] * n_items
    seen = [False] * n_items
    for index, payload in indexed_payloads:
        if not 0 <= index < n_items:
            raise ValueError("result index {} outside work-list of {}".format(
                index, n_items))
        if seen[index]:
            raise ValueError("duplicate result for cell {}".format(index))
        seen[index] = True
        slots[index] = payload
    missing = [i for i, ok in enumerate(seen) if not ok]
    if missing:
        raise ValueError("missing results for cells {}".format(missing[:8]))
    return slots
