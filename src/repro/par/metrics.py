"""Merging per-worker metrics snapshots into one aggregate.

Workers ship *snapshots* (plain dicts from ``MetricsRegistry.snapshot``),
not registries — raw histogram samples stay in the worker.  Merging is
therefore exact for counters (sums) and gauge envelopes (min/max), and
approximate for histograms: counts add and means combine count-weighted,
but quantiles cannot be recomputed from summaries, so a merged histogram
reports them only when a single worker contributed.  Merge order is the
caller's (the runner feeds snapshots in shard order), which keeps the
last-writer gauge value deterministic.
"""


def merge_snapshots(snapshots):
    """Fold metric snapshots into one; returns a snapshot-shaped dict."""
    merged = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, gauge in snap.get("gauges", {}).items():
            _merge_gauge(merged["gauges"], name, gauge)
        for name, hist in snap.get("histograms", {}).items():
            _merge_histogram(merged["histograms"], name, hist)
    merged["counters"] = dict(sorted(merged["counters"].items()))
    merged["gauges"] = dict(sorted(merged["gauges"].items()))
    merged["histograms"] = dict(sorted(merged["histograms"].items()))
    return merged


def _min_none(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _max_none(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def _merge_gauge(gauges, name, gauge):
    mine = gauges.get(name)
    if mine is None:
        gauges[name] = dict(gauge)
        return
    mine["min"] = _min_none(mine["min"], gauge["min"])
    mine["max"] = _max_none(mine["max"], gauge["max"])
    if gauge.get("value") is not None:
        mine["value"] = gauge["value"]


def _merge_histogram(histograms, name, hist):
    mine = histograms.get(name)
    if mine is None:
        histograms[name] = dict(hist)
        return
    count = mine["count"] + hist["count"]
    if count:
        means = [(h["mean"], h["count"]) for h in (mine, hist)
                 if h["mean"] is not None and h["count"]]
        total = sum(mean * n for mean, n in means)
        weight = sum(n for _mean, n in means)
        mine["mean"] = total / weight if weight else None
    mine["count"] = count
    mine["min"] = _min_none(mine["min"], hist["min"])
    mine["max"] = _max_none(mine["max"], hist["max"])
    # Quantiles are not mergeable from summaries; drop them once two
    # workers contribute rather than report a wrong number.
    for key in [k for k in mine if k.startswith("p")]:
        mine[key] = None
