"""The spawn-safe worker side of the parallel runner.

Workers are started with the ``spawn`` method — a fresh interpreter, no
inherited simulator state — so the protocol is deliberately narrow: a shard
crosses the boundary as a list of primitive cell specs, the worker imports
each cell's runner by dotted name, boots its own :class:`Simulator` inside
that runner, and ships back JSON-able payloads.  Nothing live (simulators,
kernels, RNG registries) is ever pickled.

When the parent asks for metrics, the worker arms the process-global
observability runtime (``repro.obs.runtime``) exactly the way the CLI's
``--metrics`` flag does, then drains its sessions after every shard and
returns the merged snapshot alongside the results — that is how per-worker
``repro.obs`` metrics reach the parent's aggregate.
"""

import importlib
import sys
from time import perf_counter

from repro.obs import runtime as obs_runtime
from repro.obs.exporters import metrics_snapshot


class CellError(RuntimeError):
    """A cell's runner raised; carries the cell identity for triage."""


#: True only in a pool child whose :func:`worker_init` armed metrics.  The
#: parent's serial path (jobs=1 / single shard) calls :func:`run_shard`
#: in-process, where draining would destroy sessions the CLI's ``--trace``/
#: ``--metrics`` export still needs — so the drain keys off this flag, never
#: off ``obs_runtime.is_active()`` (which is also true in an observing
#: parent).
_drain_metrics = False


def resolve_runner(dotted):
    """``"package.module:func"`` -> the callable (imported in-process)."""
    module_name, _sep, func_name = dotted.partition(":")
    if not _sep or not module_name or not func_name:
        raise ValueError(
            "runner must be 'package.module:function', got {!r}".format(
                dotted))
    module = importlib.import_module(module_name)
    runner = getattr(module, func_name, None)
    if runner is None:
        raise ValueError("module {} has no attribute {!r}".format(
            module_name, func_name))
    return runner


def run_cell(spec):
    """Run one cell spec; returns ``{"index", "payload", "wall_s"}``."""
    runner = resolve_runner(spec["runner"])
    start = perf_counter()
    try:
        payload = runner(spec["seed"], spec["config"])
    except Exception as exc:
        raise CellError(
            "cell {index} ({experiment}, seed={seed}, config={config}) "
            "failed: {exc!r}".format(exc=exc, **spec)) from exc
    return {
        "index": spec["index"],
        "payload": payload,
        "wall_s": perf_counter() - start,
    }


def run_shard(cell_specs):
    """Run a whole shard in order; the pool's unit of dispatch.

    Returns ``{"cells": [...], "metrics": merged-snapshot-or-None}``.  The
    metrics half is only populated in a pool child whose
    :func:`worker_init` armed metrics; the sessions are drained so the next
    shard this worker picks up starts from zero.  In-process callers (the
    runner's serial path) always get ``metrics=None`` and their runtime is
    left untouched.
    """
    cells = [run_cell(spec) for spec in cell_specs]
    metrics = None
    if _drain_metrics:
        drained = obs_runtime.drain_sessions()
        if drained:
            metrics = metrics_snapshot(drained)["merged"]
    return {"cells": cells, "metrics": metrics}


def worker_init(sys_path_entries, obs_metrics):
    """Pool initializer: make ``repro`` importable, optionally arm metrics.

    ``spawn`` children rebuild ``sys.path`` from the environment, which may
    lack the checkout the parent imported ``repro`` from (e.g. a plain
    ``PYTHONPATH=src`` run started from another directory) — so the parent
    passes its own entries along.
    """
    for entry in reversed(sys_path_entries):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    if obs_metrics:
        global _drain_metrics
        obs_runtime.configure(tracing=False, metrics=True, profiling=False)
        _drain_metrics = True
