"""Tiny spawn-safe cell runners for tests and benchmarks.

Real cells live next to their experiments (e.g.
``repro.experiments.faults_exp:run_scenario_cell``); these exist so the
runner, shard, and cache machinery can be exercised without booting a
full platform — and from spawned workers, which import runners by dotted
name and therefore cannot reach functions defined inside test modules.
"""

import time


def square_cell(seed, config):
    """Pure arithmetic: deterministic, instant."""
    return {"seed": seed, "value": seed * seed + config.get("offset", 0)}


def sleep_cell(seed, config):
    """Burn ``config["s"]`` wall seconds; for scheduling/scaling tests."""
    time.sleep(config.get("s", 0.01))
    return {"seed": seed}


def sim_cell(seed, config):
    """Boot a real :class:`Simulator` and run a chained-event loop."""
    from repro.obs import runtime as obs_runtime
    from repro.sim.engine import Simulator

    sim = Simulator(seed=seed)
    obs = obs_runtime.install(sim)   # no-op unless the runtime is armed
    fired = [0]

    def ping():
        fired[0] += 1
        sim.call_later(1000, ping)

    ping()
    sim.run(until=config.get("horizon_ns", 1_000_000))
    if obs is not None:
        obs.metrics.inc("par.testing.pings", fired[0])
        obs.metrics.observe("par.testing.horizon_ns", sim.now)
    return {"seed": seed, "now": sim.now, "fired": fired[0]}


def boom_cell(seed, config):
    """Always raises; error-path coverage."""
    raise RuntimeError("boom (seed={})".format(seed))


def mixed_cell(seed, config):
    """Raises for seeds listed in ``config["boom_seeds"]``; succeeds
    otherwise — partial-failure coverage for the streaming runner."""
    if seed in config.get("boom_seeds", ()):
        raise RuntimeError("boom (seed={})".format(seed))
    return {"seed": seed, "value": seed * seed}
