"""The thread-pool backend: work-stealing threads in one interpreter.

``jobs`` threads pull cells off a shared :class:`CellQueue` and push
events as each cell finishes.  Threads share the interpreter, so there
is no spawn boot and nothing crosses a process boundary — but the GIL
serialises pure-Python simulation work, so this backend only wins when
cells release the GIL (I/O-bound cells, native extensions); ``auto``
never selects it, it is an explicit choice.  Cells run in the parent
process, so an armed observability runtime sees them directly (no
per-cell metrics snapshots, same as inline).
"""

import queue
import threading

from repro.par.executors.base import CellQueue, Executor, run_cell_event


class ThreadExecutor(Executor):
    name = "thread"

    def run(self, specs):
        specs = list(specs)
        if not specs:
            return
        cells = CellQueue(specs)
        events = queue.Queue()

        def pull_loop():
            while True:
                spec = cells.steal()
                if spec is None:
                    return
                try:
                    events.put(run_cell_event(spec))
                except BaseException as exc:  # surfaced in the main thread
                    events.put(exc)
                    return

        threads = [threading.Thread(target=pull_loop, daemon=True)
                   for _ in range(min(self.jobs, len(specs)))]
        for thread in threads:
            thread.start()
        try:
            for _ in range(len(specs)):
                event = events.get()
                if isinstance(event, BaseException):
                    raise event
                yield event
        finally:
            for thread in threads:
                thread.join()
