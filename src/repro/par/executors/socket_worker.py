"""The worker end of the socket-distributed backend.

Run on any host that can reach the parent's listening socket::

    python -m repro.par.executors.socket_worker --connect parent:7777

The worker connects, applies the hello's import-path entries (only the
ones that exist on *this* host — a remote machine uses its own ``repro``
install), arms per-worker metrics when asked, then pulls cells until the
parent says exit.  One JSON object per line in each direction; cells run
through the exact :func:`repro.par.worker.run_shard` path the spawn pool
uses, so a socket cell is bit-identical to every other backend's.
"""

import argparse
import json
import os
import socket
import sys


def serve(sock):
    """The pull loop on an open connection; returns the exit status."""
    reader = sock.makefile("r", encoding="utf-8", newline="\n")
    writer = sock.makefile("w", encoding="utf-8", newline="\n")

    def send(msg):
        writer.write(json.dumps(msg, separators=(",", ":")) + "\n")
        writer.flush()

    hello = json.loads(reader.readline())
    if hello.get("op") != "hello":
        print("socket_worker: expected hello, got {!r}".format(hello),
              file=sys.stderr)
        return 1
    entries = [entry for entry in hello.get("sys_path", ())
               if os.path.isdir(entry)]
    # repro imports must wait for the path fix-up the hello carries
    from repro.par.worker import CellError, run_shard, worker_init

    worker_init(entries, hello.get("obs_metrics", False))
    send({"op": "ready"})
    for line in reader:
        msg = json.loads(line)
        op = msg.get("op")
        if op == "cell":
            spec = msg["spec"]
            try:
                result = run_shard([spec])
            except CellError as exc:
                send({"op": "error", "index": spec["index"],
                      "error": str(exc)})
            else:
                send({"op": "result", "cell": result["cells"][0],
                      "metrics": result["metrics"]})
            send({"op": "ready"})
        elif op == "exit":
            return 0
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.par.executors.socket_worker",
        description="Serve cells for a socket-distributed parallel run.",
    )
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the parent runner's listening address")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="connect timeout in seconds (default 30)")
    args = parser.parse_args(argv)
    host, _sep, port = args.connect.rpartition(":")
    if not _sep or not host:
        parser.error("--connect must be 'host:port', got {!r}".format(
            args.connect))
    with socket.create_connection((host, int(port)),
                                  timeout=args.timeout) as sock:
        sock.settimeout(None)
        return serve(sock)


if __name__ == "__main__":
    sys.exit(main())
