"""The spawn process-pool backend, scheduled cell-by-cell.

Each worker is a fresh ``spawn``-started interpreter (no inherited
simulator state) that imports cells by dotted name, exactly the worker
protocol :mod:`repro.par.worker` defines.  Dispatch is per *cell*, not
per pre-planned shard: the pool's shared call queue is the steal source,
so an idle worker always takes the oldest unstarted cell instead of
idling behind a skewed shard — the work-stealing replacement for the old
round-robin shard plan.  Events stream back through ``as_completed``,
letting the runner persist finished cells while the pool is still busy.

Every worker pays an interpreter-boot cost (importing ``repro`` is the
bulk of it), which is the whole reason ``auto`` only picks this backend
when the cost model says the workload amortises it.
"""

import os
import sys

from repro.par.executors.base import Executor
from repro.par.worker import CellError, run_shard, worker_init


def parent_sys_path():
    """The import-path entries a fresh worker interpreter needs.

    Whatever path the parent imported ``repro`` from must be visible to
    the child too (``PYTHONPATH=src`` runs, editable installs from a
    different cwd, ...).
    """
    import repro

    package_parent = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__)))
    return [package_parent] + [entry for entry in sys.path if entry]


class SpawnExecutor(Executor):
    name = "spawn"

    def run(self, specs):
        from concurrent.futures import ProcessPoolExecutor, as_completed
        from multiprocessing import get_context

        specs = list(specs)
        if not specs:
            return
        workers = min(self.jobs, len(specs))
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=get_context("spawn"),
            initializer=worker_init,
            initargs=(parent_sys_path(), self.obs_metrics),
        ) as pool:
            futures = {pool.submit(run_shard, [spec]): spec["index"]
                       for spec in specs}
            for future in as_completed(futures):
                index = futures[future]
                try:
                    result = future.result()
                except CellError as exc:
                    yield {"ok": False, "index": index, "error": str(exc)}
                    continue
                yield {"ok": True, "cell": result["cells"][0],
                       "metrics": result["metrics"]}
