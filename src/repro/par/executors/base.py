"""The executor protocol and the work-stealing cell queue.

An :class:`Executor` turns a list of primitive cell specs (the wire form
from :meth:`repro.par.shard.WorkItem.spec`) into a *stream* of cell
events, yielded as cells finish rather than when the whole pool drains.
The runner consumes the stream to persist completed cells immediately
(a late failure no longer discards finished work) and merges by
work-list index afterwards, so completion order — which differs per
backend and per run — never reaches the output.

Events are plain dicts:

* ``{"ok": True, "cell": {"index", "payload", "wall_s"}, "metrics": ...}``
  — one finished cell; ``metrics`` is a per-cell ``repro.obs`` snapshot
  from pool children (``None`` from in-process backends, whose cells
  register with the parent's runtime directly);
* ``{"ok": False, "index": i, "error": "..."}`` — the cell's runner
  raised :class:`~repro.par.worker.CellError`; the message carries the
  cell identity.  Any *other* exception (a bad runner spec, a dead
  worker pool) is a programming error and propagates.

Scheduling is pull-based everywhere: workers take the next cell from a
shared queue the moment they go idle (:class:`CellQueue` for the thread
and socket backends, the process pool's own call queue for spawn), so a
fast worker steals the cells a round-robin shard plan would have
stranded behind a slow one.
"""

import threading
from collections import deque

from repro.par.worker import CellError, run_cell


class Executor:
    """One execution strategy for a list of independent cells.

    Subclasses set :attr:`name` (the ``--backend`` token) and implement
    :meth:`run`; construction takes ``(jobs, obs_metrics)`` and must be
    cheap — any real resources (pools, sockets, subprocesses) are
    acquired inside :meth:`run` and released before it finishes.
    """

    #: the CLI token (``--backend <name>``); set by each subclass
    name = None

    def __init__(self, jobs=1, obs_metrics=False):
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got {}".format(jobs))
        self.jobs = jobs
        self.obs_metrics = obs_metrics

    def run(self, specs):
        """Yield one event per cell in ``specs``, in completion order."""
        raise NotImplementedError


class CellQueue:
    """The shared deque work-stealing workers pull cells from.

    FIFO hand-out keeps early (usually expensive, skew-prone) cells
    starting first; fairness beyond that is whatever the workers'
    relative speed produces — which is exactly the point, and exactly
    what the index-keyed merge makes invisible.
    """

    def __init__(self, specs):
        self._cells = deque(specs)
        self._lock = threading.Lock()

    def steal(self):
        """The next cell spec, or ``None`` when the queue is dry."""
        with self._lock:
            try:
                return self._cells.popleft()
            except IndexError:
                return None

    def push_back(self, spec):
        """Return a cell to the front (a worker died mid-cell)."""
        with self._lock:
            self._cells.appendleft(spec)

    def __len__(self):
        with self._lock:
            return len(self._cells)


def run_cell_event(spec):
    """Run one cell in-process; returns its event (never raises CellError).

    The shared success/failure path for the inline and thread backends;
    non-CellError exceptions (bad runner spec, import failure) propagate —
    they are caller bugs, not cell outcomes.
    """
    try:
        cell = run_cell(spec)
    except CellError as exc:
        return {"ok": False, "index": spec["index"], "error": str(exc)}
    return {"ok": True, "cell": cell, "metrics": None}
