"""The socket-distributed backend: multi-host workers over line JSON.

The parent listens on a TCP socket; workers — local subprocesses it
launches itself, remote ones started by hand — connect and *pull* cells
one at a time off the shared :class:`CellQueue`, so a fast host streams
through cells while a slow one chews on its current cell: work stealing
across machines.  The wire protocol is one JSON object per line, cells
crossing in the primitive spec form :meth:`repro.par.shard.WorkItem.spec`
already defines:

=====================  =============================================
direction              message
=====================  =============================================
parent -> worker       ``{"op": "hello", "obs_metrics": b, "sys_path": [..]}``
worker -> parent       ``{"op": "ready"}``
parent -> worker       ``{"op": "cell", "spec": {...}}`` or ``{"op": "exit"}``
worker -> parent       ``{"op": "result", "cell": {...}, "metrics": ...}``
                       or ``{"op": "error", "index": i, "error": "..."}``,
                       then ``{"op": "ready"}`` again
=====================  =============================================

By default the executor launches ``jobs`` local worker subprocesses
(``python -m repro.par.executors.socket_worker --connect host:port``) —
the same command starts a *remote* worker against a parent listening on
a routable address (``PSBOX_SOCKET_LISTEN=0.0.0.0:7777``; set
``PSBOX_SOCKET_LAUNCH=0`` to use remote workers only).  Remote hosts
must have ``repro`` importable; the hello's ``sys_path`` entries are
only applied where they exist.  A worker that dies mid-cell has its
cell pushed back for another worker; the run fails fast only when every
launched worker is gone with cells still outstanding.
"""

import json
import os
import queue
import socket
import subprocess
import sys
import threading

from repro.par.executors.base import CellQueue, Executor
from repro.par.executors.spawn import parent_sys_path

#: env knobs for multi-host runs (documented in EXPERIMENTS.md)
LISTEN_ENV = "PSBOX_SOCKET_LISTEN"
LAUNCH_ENV = "PSBOX_SOCKET_LAUNCH"

WORKER_MODULE = "repro.par.executors.socket_worker"


def send_msg(writer, msg):
    """One protocol message: compact JSON, one line, flushed."""
    writer.write(json.dumps(msg, separators=(",", ":")) + "\n")
    writer.flush()


def parse_addr(addr):
    host, _sep, port = addr.rpartition(":")
    if not _sep or not host:
        raise ValueError(
            "socket address must be 'host:port', got {!r}".format(addr))
    return host, int(port)


class SocketExecutor(Executor):
    name = "socket"

    def __init__(self, jobs=1, obs_metrics=False, listen=None, launch=None):
        super().__init__(jobs=jobs, obs_metrics=obs_metrics)
        self.listen = (listen if listen is not None
                       else os.environ.get(LISTEN_ENV, "127.0.0.1:0"))
        env_launch = os.environ.get(LAUNCH_ENV)
        self.launch = (launch if launch is not None
                       else (int(env_launch) if env_launch is not None
                             else jobs))

    def run(self, specs):
        specs = list(specs)
        if not specs:
            return
        host, port = parse_addr(self.listen)
        server = socket.create_server((host, port))
        server.settimeout(0.2)
        bound_port = server.getsockname()[1]
        cells = CellQueue(specs)
        events = queue.Queue()
        stop = threading.Event()
        serving = []      # live per-connection threads
        sys_path = parent_sys_path()

        procs = self._launch_local(bound_port, len(specs), sys_path)

        def accept_loop():
            while not stop.is_set():
                try:
                    conn, _addr = server.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                thread = threading.Thread(
                    target=self._serve, daemon=True,
                    args=(conn, cells, events, sys_path))
                serving.append(thread)
                thread.start()

        acceptor = threading.Thread(target=accept_loop, daemon=True)
        acceptor.start()
        try:
            got = 0
            while got < len(specs):
                try:
                    event = events.get(timeout=1.0)
                except queue.Empty:
                    self._check_liveness(procs, serving,
                                         len(specs) - got)
                    continue
                got += 1
                yield event
        finally:
            stop.set()
            acceptor.join()
            server.close()
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
            for thread in serving:
                thread.join(timeout=5)

    def _launch_local(self, port, n_cells, sys_path):
        """Start the local worker subprocesses (none when launch=0)."""
        workers = min(self.launch, self.jobs, n_cells)
        if workers <= 0:
            return []
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            sys_path + [env["PYTHONPATH"]] if env.get("PYTHONPATH")
            else sys_path)
        command = [sys.executable, "-m", WORKER_MODULE,
                   "--connect", "127.0.0.1:{}".format(port)]
        return [subprocess.Popen(command, env=env) for _ in range(workers)]

    def _serve(self, conn, cells, events, sys_path):
        """One connection's request loop: hand out cells, collect events."""
        in_flight = None
        reader = conn.makefile("r", encoding="utf-8", newline="\n")
        writer = conn.makefile("w", encoding="utf-8", newline="\n")
        try:
            send_msg(writer, {"op": "hello",
                              "obs_metrics": self.obs_metrics,
                              "sys_path": sys_path})
            for line in reader:
                msg = json.loads(line)
                op = msg.get("op")
                if op == "ready":
                    spec = cells.steal()
                    if spec is None:
                        send_msg(writer, {"op": "exit"})
                        break
                    in_flight = spec
                    send_msg(writer, {"op": "cell", "spec": spec})
                elif op == "result":
                    in_flight = None
                    events.put({"ok": True, "cell": msg["cell"],
                                "metrics": msg.get("metrics")})
                elif op == "error":
                    in_flight = None
                    events.put({"ok": False, "index": msg["index"],
                                "error": msg["error"]})
        except (OSError, ValueError):
            pass     # connection lost; the cell (if any) is requeued below
        finally:
            if in_flight is not None:
                cells.push_back(in_flight)
            try:
                conn.close()
            except OSError:
                pass

    def _check_liveness(self, procs, serving, outstanding):
        """Fail fast when every launched worker is gone mid-run."""
        if not procs or outstanding <= 0:
            return   # external-worker mode: keep waiting
        if any(proc.poll() is None for proc in procs):
            return
        if any(thread.is_alive() for thread in serving):
            return
        raise RuntimeError(
            "all {} socket worker(s) exited with {} cell(s) outstanding "
            "(worker exit codes: {})".format(
                len(procs), outstanding,
                [proc.returncode for proc in procs]))
