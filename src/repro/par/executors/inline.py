"""The zero-overhead backend: run every cell in this process, in order.

No pool, no spawn boot, no pickling — the exact code path a serial run
takes, wrapped in the executor event stream.  This is what ``auto``
selects on one-core hosts and for workloads too small to amortise a
worker interpreter boot (BENCH_par.json's parallel-slower-than-serial
regression); it is also why cells run here register with the *parent's*
``repro.obs`` runtime and ship no per-cell metrics snapshots.
"""

from repro.par.executors.base import Executor, run_cell_event


class InlineExecutor(Executor):
    name = "inline"

    def run(self, specs):
        for spec in specs:
            yield run_cell_event(spec)
