"""repro.par.executors — pluggable execution backends for the runner.

Four strategies behind one :class:`~repro.par.executors.base.Executor`
protocol, all streaming cell events so the runner can persist results as
they finish and all feeding the same index-keyed merge (the byte-identity
gate):

=============  ======================================================
``inline``     this process, zero overhead — what serial always was
``thread``     work-stealing threads (GIL-bound; explicit choice only)
``spawn``      spawn process pool, scheduled cell-by-cell (pull model)
``socket``     multi-host workers over a line-JSON socket protocol
=============  ======================================================

:func:`choose_backend` is the ``auto`` policy: inline unless a real pool
is possible (cores, jobs, and cells all > 1) *and* the cost model's
measured per-cell estimate projects a saving that clears the spawn-boot
bill.  That single comparison is the fix for BENCH_par.json's
parallel-slower-than-serial regression.
"""

import os

from repro.par.executors.base import CellQueue, Executor, run_cell_event
from repro.par.executors.inline import InlineExecutor
from repro.par.executors.socket import SocketExecutor
from repro.par.executors.spawn import SpawnExecutor
from repro.par.executors.thread import ThreadExecutor

#: name -> class, in documentation order
BACKENDS = {cls.name: cls for cls in (
    InlineExecutor, ThreadExecutor, SpawnExecutor, SocketExecutor)}

#: what one spawned worker's interpreter boot costs, dominated by the
#: ``import repro`` a fresh interpreter pays before its first cell
SPAWN_BOOT_S = 1.0


def choose_backend(n_cells, jobs, cpu_count=None, est_cell_s=None):
    """The ``auto`` policy: pick a backend name from measured capacity.

    ``inline`` whenever a pool cannot help (one core, one job, one cell)
    or the cost model projects the spawn boots outweigh the parallel
    saving; ``spawn`` otherwise.  With no estimate yet the choice is
    optimistic (``spawn`` when a pool is possible) — the run itself then
    records the costs that inform the next decision.  ``thread`` is never
    auto-selected: simulation cells hold the GIL, so threads add
    scheduling overhead without adding parallelism.
    """
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    workers = min(jobs, max(1, cores), n_cells)
    if workers <= 1:
        return "inline"
    if est_cell_s is None:
        return "spawn"
    serial_s = est_cell_s * n_cells
    saved_s = serial_s - serial_s / workers
    if saved_s > SPAWN_BOOT_S * workers:
        return "spawn"
    return "inline"


def make_executor(backend, jobs=1, obs_metrics=False):
    """Instantiate a backend by name; ``auto`` must be resolved already."""
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise ValueError("unknown backend {!r} (available: {})".format(
            backend, ", ".join(sorted(BACKENDS) + ["auto"]))) from None
    return cls(jobs=jobs, obs_metrics=obs_metrics)


__all__ = [
    "BACKENDS",
    "CellQueue",
    "Executor",
    "InlineExecutor",
    "SPAWN_BOOT_S",
    "SocketExecutor",
    "SpawnExecutor",
    "ThreadExecutor",
    "choose_backend",
    "make_executor",
    "run_cell_event",
]
