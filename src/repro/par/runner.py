"""The parallel experiment runner over pluggable executor backends.

``ParallelRunner.run(items)`` fans a work-list of independent simulation
cells across an :mod:`executor backend <repro.par.executors>` and returns
their payloads *in work-list order* — the merge sorts by shard key, never
completion order, so with deterministic cells the output is byte-identical
to a serial run whatever the backend.

The default backend is ``auto``: inline (no pool, zero overhead) unless
the host has spare cores *and* the persisted cost model projects that the
parallel saving clears the spawn-boot bill — the measured-cost answer to
BENCH_par.json's parallel-slower-than-serial regression.  Scheduling is
work-stealing everywhere (workers pull cells one at a time from a shared
queue), so a skewed cell no longer strands the fast workers the old
round-robin shard plan pinned behind it.

A :class:`~repro.par.cache.ResultCache` short-circuits completed cells
before anything is dispatched, and fresh results are *streamed* back:
each cell is persisted the moment it finishes, so a failure late in the
run no longer discards the completed cells — failed cells are collected
and reported together, with their identities, at the end.
"""

import os
import sys
from dataclasses import dataclass, field
from time import perf_counter

from repro.par.cache import MISS
from repro.par.cost import shared_model
from repro.par.executors import BACKENDS, choose_backend, make_executor
from repro.par.metrics import merge_snapshots
from repro.par.shard import merge_results
from repro.par.worker import CellError


def effective_jobs(requested, cpu_count=None, stream=None):
    """Clamp a ``--jobs`` request to the host's core count.

    BENCH_par.json shows oversubscribing a small host is a pure loss
    (``--jobs 4`` is *slower* than ``--jobs 2`` on one core): every spawned
    worker pays an interpreter boot and then time-slices the same cores.
    The CLIs route their ``--jobs`` through here so the request is capped
    at ``os.cpu_count()`` with a one-line stderr warning instead of
    silently oversubscribing.  Returns the capped job count.
    """
    if requested < 1:
        raise ValueError("jobs must be >= 1, got {}".format(requested))
    cores = cpu_count if cpu_count is not None else os.cpu_count()
    if not cores:          # cpu_count() may return None on exotic hosts
        return requested
    if requested <= cores:
        return requested
    print("warning: --jobs {} exceeds the {} available CPU core{}; "
          "capping at {} (oversubscribed workers only add spawn cost)"
          .format(requested, cores, "" if cores == 1 else "s", cores),
          file=stream if stream is not None else sys.stderr)
    return cores


@dataclass
class RunStats:
    """What one ``run()`` did; ``summary()`` is the one-line stderr form."""

    cells: int = 0
    cached: int = 0
    executed: int = 0
    failed: int = 0
    jobs: int = 1
    backend: str = "inline"      # the backend that actually ran (post-auto)
    wall_s: float = 0.0
    cell_wall_s: float = 0.0     # summed per-cell time (the serial cost)
    cache: dict = field(default_factory=dict)

    def summary(self):
        line = ("par[{0.backend}]: {0.cells} cells, {0.cached} cached, "
                "{0.executed} executed on {0.jobs} jobs, "
                "wall {0.wall_s:.2f}s (serial cost {0.cell_wall_s:.2f}s)"
                .format(self))
        if self.failed:
            line += " — {} FAILED".format(self.failed)
        if self.cells and self.cached == self.cells:
            line += " — all cells cached"
        return line


class ParallelRunner:
    """Fan a work-list across an executor backend; merge deterministically."""

    def __init__(self, jobs=1, cache=None, obs_metrics=False,
                 backend="auto"):
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got {}".format(jobs))
        if backend != "auto" and backend not in BACKENDS:
            raise ValueError("unknown backend {!r} (available: {})".format(
                backend, ", ".join(sorted(BACKENDS) + ["auto"])))
        self.jobs = jobs
        self.cache = cache
        self.obs_metrics = obs_metrics
        self.backend = backend
        self.stats = RunStats(jobs=jobs)
        #: merged per-worker ``repro.obs`` metrics (subprocess runs only;
        #: in-process cells register with the parent's runtime directly)
        self.obs_snapshot = None

    def run(self, items):
        """Execute every cell; returns payloads ordered by work-list index.

        Completed cells are cached as they finish.  If any cell fails, the
        remaining cells still run, every completed cell is persisted, and
        one :class:`CellError` naming each failed cell is raised at the
        end — a single bad cell no longer discards the whole run.
        """
        items = list(items)
        start = perf_counter()
        self.stats = RunStats(jobs=self.jobs, cells=len(items))
        self.obs_snapshot = None

        indexed = []      # (index, payload) from cache and executor alike
        todo = []
        for item in items:
            payload = self.cache.get(item) if self.cache else MISS
            if payload is not MISS:
                indexed.append((item.index, payload))
            else:
                todo.append(item)
        self.stats.cached = len(indexed)
        self.stats.executed = len(todo)

        cost = shared_model(self.cache)
        backend = self.backend
        if backend == "auto":
            estimate = (cost.estimate(todo[0].experiment)
                        if todo else None)
            backend = choose_backend(len(todo), self.jobs,
                                     est_cell_s=estimate)
        self.stats.backend = backend

        failures = []
        by_index = {item.index: item for item in todo}
        metric_snaps = {}
        if todo:
            executor = make_executor(backend,
                                     jobs=min(self.jobs, len(todo)),
                                     obs_metrics=self.obs_metrics)
            for event in executor.run([item.spec() for item in todo]):
                if not event["ok"]:
                    failures.append((event["index"], event["error"]))
                    continue
                cell = event["cell"]
                index = cell["index"]
                self.stats.cell_wall_s += cell["wall_s"]
                cost.observe(by_index[index].experiment, cell["wall_s"])
                indexed.append((index, cell["payload"]))
                if self.cache is not None:
                    # streamed write-back: a later failure cannot lose it
                    self.cache.put(by_index[index], cell["payload"])
                if event.get("metrics"):
                    metric_snaps[index] = event["metrics"]
        if metric_snaps:
            # merge in index order so last-writer gauges stay deterministic
            self.obs_snapshot = merge_snapshots(
                [metric_snaps[index] for index in sorted(metric_snaps)])
        cost.save()

        self.stats.failed = len(failures)
        if self.cache is not None:
            self.stats.cache = self.cache.stats()
        self.stats.wall_s = perf_counter() - start
        if failures:
            failures.sort()
            completed = self.stats.executed - len(failures)
            persisted = (" {} completed cell(s) persisted to the result "
                         "cache;".format(completed) if self.cache is not None
                         else "")
            raise CellError(
                "{} of {} executed cell(s) failed;{} failures:\n{}".format(
                    len(failures), self.stats.executed, persisted,
                    "\n".join("  " + error for _index, error in failures)))
        return merge_results(indexed, len(items))
