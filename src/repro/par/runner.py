"""The process-pool experiment runner.

``ParallelRunner.run(items)`` fans a work-list of independent simulation
cells across ``jobs`` spawn-started processes and returns their payloads
*in work-list order* — the merge sorts by shard key, never completion
order, so with deterministic cells the output is byte-identical to a
serial run (``jobs=1`` executes the very same cell code path in-process,
no pool at all).

A :class:`~repro.par.cache.ResultCache` short-circuits completed cells
before anything is dispatched: resumed soaks and repeated sweeps only pay
for the cells they have not seen.  Fresh results are written back after the
pool drains.
"""

import os
import sys
from dataclasses import dataclass, field
from time import perf_counter

from repro.par.cache import MISS
from repro.par.metrics import merge_snapshots
from repro.par.shard import merge_results, plan_shards
from repro.par.worker import run_shard, worker_init


def effective_jobs(requested, cpu_count=None, stream=None):
    """Clamp a ``--jobs`` request to the host's core count.

    BENCH_par.json shows oversubscribing a small host is a pure loss
    (``--jobs 4`` is *slower* than ``--jobs 2`` on one core): every spawned
    worker pays an interpreter boot and then time-slices the same cores.
    The CLIs route their ``--jobs`` through here so the request is capped
    at ``os.cpu_count()`` with a one-line stderr warning instead of
    silently oversubscribing.  Returns the capped job count.
    """
    if requested < 1:
        raise ValueError("jobs must be >= 1, got {}".format(requested))
    cores = cpu_count if cpu_count is not None else os.cpu_count()
    if not cores:          # cpu_count() may return None on exotic hosts
        return requested
    if requested <= cores:
        return requested
    print("warning: --jobs {} exceeds the {} available CPU core{}; "
          "capping at {} (oversubscribed workers only add spawn cost)"
          .format(requested, cores, "" if cores == 1 else "s", cores),
          file=stream if stream is not None else sys.stderr)
    return cores


@dataclass
class RunStats:
    """What one ``run()`` did; ``summary()`` is the one-line stderr form."""

    cells: int = 0
    cached: int = 0
    executed: int = 0
    jobs: int = 1
    shards: int = 0
    wall_s: float = 0.0
    cell_wall_s: float = 0.0     # summed per-cell time (the serial cost)
    cache: dict = field(default_factory=dict)

    def summary(self):
        line = ("par: {0.cells} cells, {0.cached} cached, {0.executed} "
                "executed across {0.shards} shards on {0.jobs} jobs, "
                "wall {0.wall_s:.2f}s (serial cost {0.cell_wall_s:.2f}s)"
                .format(self))
        if self.cells and self.cached == self.cells:
            line += " — all cells cached"
        return line


class ParallelRunner:
    """Fan a work-list across processes; merge deterministically."""

    def __init__(self, jobs=1, cache=None, obs_metrics=False,
                 oversubscribe=4):
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got {}".format(jobs))
        self.jobs = jobs
        self.cache = cache
        self.obs_metrics = obs_metrics
        self.oversubscribe = oversubscribe
        self.stats = RunStats(jobs=jobs)
        #: merged per-worker ``repro.obs`` metrics (subprocess runs only;
        #: in-process cells register with the parent's runtime directly)
        self.obs_snapshot = None

    def run(self, items):
        """Execute every cell; returns payloads ordered by work-list index."""
        items = list(items)
        start = perf_counter()
        self.stats = RunStats(jobs=self.jobs, cells=len(items))
        self.obs_snapshot = None

        indexed = []      # (index, payload) from cache and pool alike
        todo = []
        for item in items:
            payload = self.cache.get(item) if self.cache else MISS
            if payload is not MISS:
                indexed.append((item.index, payload))
            else:
                todo.append(item)
        self.stats.cached = len(indexed)
        self.stats.executed = len(todo)

        by_index = {item.index: item for item in todo}
        shards = plan_shards(todo, self.jobs,
                             oversubscribe=self.oversubscribe)
        self.stats.shards = len(shards)
        if self.jobs == 1 or len(shards) <= 1:
            shard_results = [run_shard([item.spec() for item in shard])
                             for shard in shards]
        else:
            shard_results = self._run_pool(shards)

        metric_snaps = []
        for result in shard_results:
            for cell in result["cells"]:
                index = cell["index"]
                payload = cell["payload"]
                self.stats.cell_wall_s += cell["wall_s"]
                indexed.append((index, payload))
                if self.cache is not None:
                    self.cache.put(by_index[index], payload)
            if result["metrics"] is not None:
                metric_snaps.append(result["metrics"])
        if metric_snaps:
            self.obs_snapshot = merge_snapshots(metric_snaps)

        if self.cache is not None:
            self.stats.cache = self.cache.stats()
        self.stats.wall_s = perf_counter() - start
        return merge_results(indexed, len(items))

    def _run_pool(self, shards):
        """Dispatch shards to a spawn pool; results come back per shard."""
        from concurrent.futures import ProcessPoolExecutor
        from multiprocessing import get_context

        # Whatever path the parent imported repro from must be visible to
        # the spawned interpreter too (PYTHONPATH=src runs, editable
        # installs from a different cwd, ...).
        import repro

        package_parent = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        path_entries = [package_parent] + [
            entry for entry in sys.path if entry]

        workers = min(self.jobs, len(shards))
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=get_context("spawn"),
            initializer=worker_init,
            initargs=(path_entries, self.obs_metrics),
        ) as pool:
            futures = [pool.submit(run_shard,
                                   [item.spec() for item in shard])
                       for shard in shards]
            # Collect in submission (shard) order: results land whenever,
            # but gauge last-writer merges stay deterministic this way.
            return [future.result() for future in futures]
