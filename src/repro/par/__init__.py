"""repro.par — the parallel sharded experiment runner.

Every multi-run workload in this repo — fault soaks, powercap sweeps, the
figure experiments — is a list of independent, bit-reproducible
(experiment, seed, config) cells.  This package fans such a work-list
across a pool of spawn-started processes and merges the results by shard
key, so parallel output is byte-identical to the serial run; a
content-addressed cache keyed on (experiment, seed, config hash, code
fingerprint) lets re-runs and resumed soaks skip completed cells.

Typical use::

    from repro.par import ParallelRunner, ResultCache, work_list

    items = work_list("faults", "repro.experiments.faults_exp:run_scenario_cell",
                      [(seed, {"scenario": name}) for ...])
    runner = ParallelRunner(jobs=8, cache=ResultCache(".parcache"))
    payloads = runner.run(items)        # ordered by work-list index
"""

from repro.par.cache import MISS, ResultCache, code_fingerprint, config_hash
from repro.par.metrics import merge_snapshots
from repro.par.runner import ParallelRunner, RunStats, effective_jobs
from repro.par.shard import WorkItem, merge_results, plan_shards, work_list
from repro.par.worker import CellError, resolve_runner, run_cell, run_shard

__all__ = [
    "CellError",
    "MISS",
    "ParallelRunner",
    "ResultCache",
    "RunStats",
    "WorkItem",
    "code_fingerprint",
    "config_hash",
    "effective_jobs",
    "merge_results",
    "merge_snapshots",
    "plan_shards",
    "resolve_runner",
    "run_cell",
    "run_shard",
    "work_list",
]
