"""repro.par — the parallel sharded experiment runner.

Every multi-run workload in this repo — fault soaks, powercap sweeps, the
figure experiments, cluster calibration — is a list of independent,
bit-reproducible (experiment, seed, config) cells.  This package fans
such a work-list across a pluggable executor backend (``inline`` /
``thread`` / ``spawn`` / ``socket`` — see :mod:`repro.par.executors`)
with work-stealing scheduling, and merges the results by shard key, so
parallel output is byte-identical to the serial run; a content-addressed
cache keyed on (experiment, seed, config hash, code fingerprint) lets
re-runs and resumed soaks skip completed cells, optionally read-through
from a shared remote tier.  The default backend is ``auto``: a persisted
cost model decides whether a pool's spawn boots would beat just running
inline.

Typical use::

    from repro.par import ParallelRunner, ResultCache, work_list

    items = work_list("faults", "repro.experiments.faults_exp:run_scenario_cell",
                      [(seed, {"scenario": name}) for ...])
    runner = ParallelRunner(jobs=8, cache=ResultCache(".parcache"))
    payloads = runner.run(items)        # ordered by work-list index
"""

from repro.par.cache import MISS, ResultCache, code_fingerprint, config_hash
from repro.par.cost import CostModel, shared_model
from repro.par.executors import BACKENDS, choose_backend, make_executor
from repro.par.metrics import merge_snapshots
from repro.par.runner import ParallelRunner, RunStats, effective_jobs
from repro.par.shard import WorkItem, merge_results, work_list
from repro.par.worker import CellError, resolve_runner, run_cell, run_shard

__all__ = [
    "BACKENDS",
    "CellError",
    "CostModel",
    "MISS",
    "ParallelRunner",
    "ResultCache",
    "RunStats",
    "WorkItem",
    "choose_backend",
    "code_fingerprint",
    "config_hash",
    "effective_jobs",
    "make_executor",
    "merge_results",
    "merge_snapshots",
    "resolve_runner",
    "run_cell",
    "run_shard",
    "shared_model",
    "work_list",
]
