"""Persisted per-experiment cell-cost estimates for backend selection.

The parallel-slower-than-serial regression (BENCH_par.json) happens when
the runner pays worker interpreter boots for a workload too cheap to
amortise them.  Fixing that needs a *measured* notion of what one cell
costs — so every run feeds each finished cell's ``wall_s`` into an
exponentially weighted mean per experiment name, and ``auto`` backend
selection compares the projected parallel saving against the spawn-boot
bill before committing to a pool (the same measured-cost-driven
scheduling posture as WattsApp's power predictor).

Estimates persist beside the result cache (``<cache>/cost_model.json``)
so the *first* cell of a resumed soak already knows what cells cost;
cache-less runs share one in-memory model per process, which is enough
for a benchmark or test that runs serial before parallel.  The file is
advisory: losing it only means one conservative first decision.
"""

import json
import os
import tempfile

#: the file written next to the cache's experiment directories
COST_FILE = "cost_model.json"

#: EWMA weight of the newest observation once an estimate exists
ALPHA = 0.3

#: shared models: absolute path (or None for in-memory) -> CostModel
_MODELS = {}


def shared_model(cache=None):
    """The process-shared model for a cache (or the in-memory one)."""
    path = (os.path.join(cache.root, COST_FILE)
            if cache is not None else None)
    key = os.path.abspath(path) if path else None
    model = _MODELS.get(key)
    if model is None:
        model = _MODELS[key] = CostModel(path)
    return model


class CostModel:
    """EWMA of observed cell wall-seconds, keyed by experiment name."""

    def __init__(self, path=None):
        self.path = path
        self._mean_s = {}
        self._count = {}
        self._dirty = False
        if path is not None:
            self._load()

    def _load(self):
        try:
            with open(self.path) as handle:
                doc = json.load(handle)
            experiments = doc["experiments"]
        except (OSError, ValueError, KeyError, TypeError):
            return   # absent or torn: start cold, the next save rewrites
        for name, entry in experiments.items():
            try:
                mean, count = float(entry["mean_s"]), int(entry["count"])
            except (KeyError, TypeError, ValueError):
                continue
            if mean >= 0 and count > 0:
                self._mean_s[name] = mean
                self._count[name] = count

    def estimate(self, experiment):
        """Mean cell seconds for an experiment, or ``None`` if unseen."""
        return self._mean_s.get(experiment)

    def observe(self, experiment, wall_s):
        """Fold one finished cell's wall clock into the estimate."""
        wall_s = max(0.0, float(wall_s))
        mean = self._mean_s.get(experiment)
        if mean is None:
            self._mean_s[experiment] = wall_s
        else:
            self._mean_s[experiment] = (1.0 - ALPHA) * mean + ALPHA * wall_s
        self._count[experiment] = self._count.get(experiment, 0) + 1
        self._dirty = True

    def save(self):
        """Atomically persist (no-op for in-memory or unchanged models)."""
        if self.path is None or not self._dirty:
            return
        doc = {"experiments": {
            name: {"mean_s": self._mean_s[name], "count": self._count[name]}
            for name in sorted(self._mean_s)
        }}
        parent = os.path.dirname(self.path) or "."
        os.makedirs(parent, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(doc, handle, indent=2, sort_keys=True)
                handle.write("\n")
            umask = os.umask(0)
            os.umask(umask)
            os.chmod(tmp, 0o666 & ~umask)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._dirty = False

    def snapshot(self):
        """The persisted shape, for tests and humans."""
        return {name: {"mean_s": self._mean_s[name],
                       "count": self._count[name]}
                for name in sorted(self._mean_s)}
