"""Analysis helpers: energy comparison, throughput/latency metrics, reports."""

from repro.analysis.energy import (
    energy_consistency,
    percent_delta,
    trace_energy,
)
from repro.analysis.metrics import (
    latency_summary,
    throughput,
    throughput_series,
)
from repro.analysis.report import format_series, format_table

__all__ = [
    "energy_consistency",
    "format_series",
    "format_table",
    "latency_summary",
    "percent_delta",
    "throughput",
    "throughput_series",
    "trace_energy",
]
