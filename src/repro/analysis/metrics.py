"""Throughput and latency metrics over app event logs."""

import numpy as np


def throughput(app, metric, t0, t1):
    """Units of ``metric`` per second over [t0, t1)."""
    return app.rate(metric, t0, t1)


def throughput_series(app, metric, t0, t1, window):
    """(window_start_times, rates) over consecutive windows."""
    starts = np.arange(t0, t1 - window + 1, window, dtype=np.int64)
    rates = np.array([
        app.rate(metric, int(s), int(s + window)) for s in starts
    ])
    return starts, rates


def latency_summary(values_ns):
    """mean / p50 / p95 / max of a latency sample set, in nanoseconds."""
    if not len(values_ns):
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    arr = np.asarray(values_ns, dtype=np.float64)
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }
