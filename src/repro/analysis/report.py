"""Plain-text rendering of tables and series for the benchmark harness.

The benchmark suite prints the same rows/series the paper's figures show;
these helpers keep that output consistent and readable.
"""


def format_table(headers, rows, title=None):
    """Render an aligned plain-text table."""
    columns = [headers] + [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(row[i]) for row in columns) for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in columns[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


_BLOCKS = " ▁▂▃▄▅▆▇█"


def format_series(values, width=60, label=""):
    """Render a numeric series as a one-line unicode sparkline."""
    values = list(values)
    if not values:
        return label + " (empty)"
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    chars = "".join(
        _BLOCKS[int((v - low) / span * (len(_BLOCKS) - 1))] for v in values
    )
    prefix = label + " " if label else ""
    return "{}[{:.3g}..{:.3g}] {}".format(prefix, low, high, chars)
