"""Energy arithmetic over traces and observations."""

import numpy as np


def percent_delta(value, reference):
    """Signed percent difference of ``value`` vs ``reference``."""
    if reference == 0:
        raise ValueError("reference energy is zero")
    return 100.0 * (value - reference) / reference


def trace_energy(times, watts):
    """Energy (J) of uniformly sampled power: sum(watts) * dt.

    ``times`` must be the uniform nanosecond grid the samples came from.
    """
    if len(times) < 2:
        return 0.0
    dt = float(times[1] - times[0])
    return float(np.sum(watts)) * dt / 1e9


def energy_consistency(reference_joules, observations):
    """Max absolute percent deviation of observations from a reference.

    This is the paper's §6.1 headline statistic: psbox keeps it under ~5%,
    the existing approach reaches 60%.
    """
    return max(
        abs(percent_delta(value, reference_joules)) for value in observations
    )
