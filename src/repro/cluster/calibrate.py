"""Uncapped node calibration — the cluster's ``repro.par`` phase.

Before the global cap loop can enforce a budget it needs to know what the
placed cluster *would* draw unconstrained: the datacenter budget is a
fraction of that peak (exactly how the single-board powercap experiment
derives its cap).  Each node's uncapped run is independent of every other
node's, which makes calibration the embarrassingly parallel phase: one
:class:`~repro.par.WorkItem` per node, fanned across workers by
:class:`~repro.par.ParallelRunner`, byte-identical to the serial path and
short-circuited by the content-addressed result cache on replay.

The payload is a per-epoch mean-draw series, so the experiment can sum
*aligned* windows across nodes and take the true cluster-wide peak rather
than adding up per-node peaks that never coincide.
"""

from repro.cluster.topology import Node, NodeSpec, node_seed
from repro.cluster.workloads import WorkloadSpec
from repro.par import ParallelRunner, work_list
from repro.sim.clock import SEC

#: the dotted entry point spawn-started workers import
CELL_RUNNER = "repro.cluster.calibrate:run_node_calibration"


def run_node_calibration(seed, config):
    """Spawn-safe cell: one node, uncapped, full horizon.

    ``config`` carries the node spec, its placed workload specs, and the
    epoch/horizon geometry — primitives only, straight off the wire.
    """
    spec = NodeSpec.from_dict(config["node"])
    workloads = [WorkloadSpec.from_dict(w) for w in config["workloads"]]
    horizon_ns = int(config["horizon_s"] * SEC)
    epoch_ns = int(config["epoch_ms"] * 1e6)
    node = Node(spec, workloads, seed=seed, with_controller=False,
                obs_label="cal/" + spec.name)
    node.advance(horizon_ns)
    series = node.mean_power_series(epoch_ns, horizon_ns)
    return {
        "node": spec.name,
        "series_w": series,
        "peak_w": round(max(series), 6) if series else 0.0,
        "mean_w": round(sum(series) / len(series), 6) if series else 0.0,
    }


def calibration_items(topology, by_node, seed, horizon_s, epoch_ms):
    """One work item per node, in topology order (the shard key)."""
    cells = []
    for index, spec in enumerate(topology):
        workloads = by_node.get(spec.name, ())
        cells.append((node_seed(seed, index), {
            "node": spec.to_dict(),
            "workloads": [w.to_dict() for w in workloads],
            "horizon_s": horizon_s,
            "epoch_ms": epoch_ms,
        }))
    return work_list("cluster", CELL_RUNNER, cells)


def calibrate(topology, by_node, seed, horizon_s, epoch_ms, jobs=1,
              cache=None, obs_metrics=False, backend="auto"):
    """Run calibration across workers; returns ``(payloads, runner)``.

    Payloads arrive in topology order regardless of jobs or backend (the
    merge is by work-list index), so everything derived from them is
    deterministic.
    """
    runner = ParallelRunner(jobs=jobs, cache=cache, obs_metrics=obs_metrics,
                            backend=backend)
    payloads = runner.run(
        calibration_items(topology, by_node, seed, horizon_s, epoch_ms))
    return payloads, runner


def cluster_peak_w(payloads):
    """Peak *aligned* cluster draw: max over epochs of the node sum."""
    if not payloads:
        return 0.0
    length = max(len(p["series_w"]) for p in payloads)
    peak = 0.0
    for i in range(length):
        total = sum(p["series_w"][i] for p in payloads
                    if i < len(p["series_w"]))
        peak = max(peak, total)
    return round(peak, 6)
