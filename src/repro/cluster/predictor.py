"""Per-workload power prediction for placement (WattsApp-style).

WattsApp places containers by *predicted* power against node headroom
rather than reacting to overload after the fact.  We mirror the shape: a
static per-kind model (watts per fully loaded instance, calibrated once
against the simulated hardware's power models) multiplied by the
instance's load fraction, times a per-kind *correction factor* the
predictor learns online from ``(predicted, measured)`` pairs the cluster
feeds back after every epoch.  The correction is an EWMA of the measured
ratio, so a systematically hot or cool workload class bends future
placements within a few epochs.
"""

from repro.cluster.workloads import KIND_COMPONENT


#: watts one fully loaded instance of each kind draws (static prior,
#: calibrated against uncapped node runs of the standard mix; the online
#: correction absorbs what the prior gets wrong)
KIND_WATTS = {
    "web": 1.20,       # one CPU core near-busy at the governed OPPs
    "render": 0.90,    # double-buffered GPU frame stream, 0.85 W bursts
    "bulk": 0.45,      # WiFi chunk stream incl. tail states
}

#: predicted idle floor a node pays before any instance lands on it
NODE_IDLE_WATTS = 0.45


class PowerPredictor:
    """Predict an instance's draw; learn per-kind corrections online."""

    def __init__(self, kind_watts=None, smoothing=0.3):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be within (0, 1]")
        self.kind_watts = dict(kind_watts or KIND_WATTS)
        unknown = set(self.kind_watts) - set(KIND_COMPONENT)
        if unknown:
            raise ValueError("unknown workload kinds: {}".format(
                ", ".join(sorted(unknown))))
        self.smoothing = smoothing
        self._correction = {kind: 1.0 for kind in self.kind_watts}
        self._samples = {kind: 0 for kind in self.kind_watts}
        self._abs_err = {kind: 0.0 for kind in self.kind_watts}

    def predict(self, spec):
        """Predicted steady draw of ``spec`` in watts (never negative)."""
        base = self.kind_watts[spec.kind] * spec.load
        return max(0.0, base * self._correction[spec.kind])

    def observe(self, kind, predicted_w, measured_w):
        """Feed back one (predicted, measured) pair for a *running* kind.

        Ratios are clipped to [0.25, 4.0] before smoothing: one wild
        metering sample (an instance caught mid-throttle, say) must not
        capsize the class model.
        """
        if kind not in self._correction:
            raise KeyError("unknown workload kind {!r}".format(kind))
        if predicted_w <= 1e-9:
            return
        ratio = min(max(measured_w / predicted_w, 0.25), 4.0)
        alpha = self.smoothing
        self._correction[kind] = (
            (1.0 - alpha) * self._correction[kind] + alpha * ratio
        )
        self._samples[kind] += 1
        self._abs_err[kind] += abs(measured_w - predicted_w)

    def correction(self, kind):
        return self._correction[kind]

    def mean_abs_error_w(self):
        """Mean |predicted - measured| over every observation so far."""
        samples = sum(self._samples.values())
        if not samples:
            return 0.0
        return sum(self._abs_err.values()) / samples

    def stats(self):
        """JSON-able snapshot of what the predictor has learned."""
        return {
            "corrections": {k: round(v, 6)
                            for k, v in sorted(self._correction.items())},
            "samples": dict(sorted(self._samples.items())),
            "mean_abs_error_w": round(self.mean_abs_error_w(), 6),
        }
