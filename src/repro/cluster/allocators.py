"""Global cap allocators: how the datacenter budget becomes node caps.

Each epoch the cluster hands an allocator one :class:`NodeTelemetry` per
node and the datacenter budget; the allocator returns every node's root
cap for the next epoch.  Two implementations ship behind the same
:class:`GlobalAllocator` protocol so the experiment can compare them
head-to-head:

* :class:`WaterFillingAllocator` — the nvPAX-style constrained
  optimization: each node is granted ``min(demand, weighted share)`` by
  the same pure :func:`~repro.powercap.waterfill` pass the single-board
  budget tree uses, floors keep idle nodes alive, a slow integral trim
  squeezes out the residual between the *measured* aggregate and the
  budget, and leftover budget is returned weight-proportionally (grants
  are permissions).  Quiet nodes automatically free budget for busy ones
  — slack redistribution at datacenter scope.
* :class:`PIBaselineAllocator` — the PR-1 PI controller lifted one level:
  static weighted shares scaled by one global PI loop on the aggregate
  error.  It tracks the cap but moves every node in lockstep, so an idle
  node's slack is never re-aimed at a hot one.
"""

from dataclasses import dataclass

from repro.powercap import waterfill


@dataclass(frozen=True)
class NodeTelemetry:
    """One node's epoch readout, as the global loop sees it."""

    name: str
    measured_w: float        # mean aggregate rail draw over the epoch
    demand_w: float          # unthrottled-demand estimate (incl. overhead)
    cap_w: float             # root cap in force during the epoch
    weight: float = 1.0


class GlobalAllocator:
    """Protocol: ``allocate(telemetry, budget_w, dt_s) -> {node: cap_w}``."""

    name = "abstract"

    def reset(self):
        """Forget controller state (fresh run)."""

    def allocate(self, telemetry, budget_w, dt_s):
        raise NotImplementedError

    def static_shares(self, telemetry, budget_w):
        """The weight-proportional division — every allocator's reference."""
        total = sum(t.weight for t in telemetry)
        return {t.name: budget_w * t.weight / total for t in telemetry}


class WaterFillingAllocator(GlobalAllocator):
    """Constrained-optimization division of the budget over node demands."""

    name = "waterfill"

    def __init__(self, floor_w=0.5, kp=0.6, ki=2.0, trim_fraction=0.3):
        if floor_w < 0:
            raise ValueError("floor must be non-negative")
        self.floor_w = floor_w
        self.kp = kp
        self.ki = ki
        self.trim_fraction = trim_fraction
        self._trim_w = 0.0

    def reset(self):
        self._trim_w = 0.0

    def allocate(self, telemetry, budget_w, dt_s):
        telemetry = list(telemetry)
        if not telemetry:
            return {}
        aggregate = sum(t.measured_w for t in telemetry)
        # Outer trim on the *measured* aggregate: per-node controllers
        # enforce their caps only to within their own model error, and the
        # sum of those residuals is a bias this integrator removes; the
        # proportional term covers the epochs the integrator needs to
        # wind up after a demand swing.
        error = budget_w - aggregate
        limit = self.trim_fraction * budget_w
        self._trim_w = _clip(self._trim_w + self.ki * error * dt_s,
                             -limit, limit)
        available = max(0.0, budget_w + self._trim_w + self.kp * error)

        weights = [t.weight for t in telemetry]
        total_weight = sum(weights)
        # Floors first: every node keeps enough cap for its idle platform
        # even at zero demand (a cap below the idle floor just saturates
        # the node's throttles without saving the difference).
        floors = [min(self.floor_w, available * w / total_weight)
                  for w in weights]
        remaining = max(0.0, available - sum(floors))
        over_floor = [max(0.0, t.demand_w - f)
                      for t, f in zip(telemetry, floors)]
        grants = waterfill(over_floor, weights, remaining)
        caps = [f + g for f, g in zip(floors, grants)]
        # Leftover budget (total demand below the line) is returned
        # weight-proportionally: caps are permissions, and a node whose
        # demand estimate lagged a burst ramps without waiting an epoch.
        leftover = available - sum(caps)
        if leftover > 0:
            caps = [c + leftover * w / total_weight
                    for c, w in zip(caps, weights)]
        return {t.name: c for t, c in zip(telemetry, caps)}


class PIBaselineAllocator(GlobalAllocator):
    """Static shares under one global PI loop (the single-board law)."""

    name = "pi"

    def __init__(self, kp=0.5, ki=2.0, scale_span=0.5):
        self.kp = kp
        self.ki = ki
        self.scale_span = scale_span
        self._integral = 0.0

    def reset(self):
        self._integral = 0.0

    def allocate(self, telemetry, budget_w, dt_s):
        telemetry = list(telemetry)
        if not telemetry:
            return {}
        shares = self.static_shares(telemetry, budget_w)
        aggregate = sum(t.measured_w for t in telemetry)
        error = (budget_w - aggregate) / budget_w if budget_w > 0 else 0.0
        self._integral = _clip(self._integral + self.ki * error * dt_s,
                               -self.scale_span, self.scale_span)
        scale = _clip(1.0 + self.kp * error + self._integral,
                      1.0 - self.scale_span, 1.0 + self.scale_span)
        return {name: share * scale for name, share in shares.items()}


def redistribution_w(caps, telemetry):
    """Watts of cap moved away from the weight-proportional division.

    Uniform scaling (the PI baseline) scores ~0 by construction; demand
    following (water-filling) scores the slack it actually re-aimed.
    """
    total_cap = sum(caps.values())
    total_weight = sum(t.weight for t in telemetry)
    moved = 0.0
    for t in telemetry:
        proportional = total_cap * t.weight / total_weight
        moved += max(0.0, caps[t.name] - proportional)
    return moved


def _clip(value, lo, hi):
    return lo if value < lo else hi if value > hi else value
