"""Cluster-level telemetry: the global cap loop as an observable process.

The epoch loop in :class:`~repro.cluster.cluster.Cluster` is plain Python
driving N node simulators — it is not itself an event-loop process, so the
per-node ``sim.obs`` sessions never see it.  This module gives the loop
its own session: an :class:`EpochClock` (a duck-typed "simulator" whose
``now`` is the current epoch boundary) carries an
:class:`~repro.obs.session.Obs` session labelled for the run, so the
loop's spans, counter samples, timeline series, and alert instants land in
the same exporters as every node's — one merged Chrome trace where each
node is its own ``pid`` track and the cap loop is another, with cross-node
cascades lined up on one timeline.

Per epoch the sampler records, into the virtual-time series store:

* ``cluster.aggregate_w`` / ``cluster.budget_w`` /
  ``cluster.compliance_err`` / ``cluster.redistributed_w`` — the global
  loop's own control error;
* ``cluster.node_power_w`` / ``node_cap_w`` / ``node_headroom_w`` /
  ``node_demand_w`` (label ``node=``) — per-node draw against the cap
  that was *in effect* during the epoch;
* ``cluster.tenant_users`` / ``tenant_grant_w`` / ``tenant_measured_w``
  (label ``tenant=``) — per-tenant concurrent users and the allocator
  grants actually reaching them, recorded only for tenants with live
  instances (which is what makes the starvation rule a simple
  threshold).

Everything here is read-only against the node simulators — telemetry-on
cluster runs fingerprint bit-identical to bare ones (the differential
matrix's telemetry column).
"""

from repro.obs import flight
from repro.obs import runtime as obs_runtime
from repro.obs.session import Obs
from repro.obs.timeline import Timeline
from repro.sim.clock import SEC


class EpochClock:
    """A minimal ``sim``-shaped object for the cap loop's Obs session.

    The tracer and exporters only ever read ``now`` (and ``install``
    publishes ``obs``); the loop advances ``now`` to each epoch boundary
    before sampling, so cluster-level events carry honest virtual time.
    """

    def __init__(self):
        self.now = 0
        self.obs = None
        self.faults = None
        self._ctx_tracer = None


class ClusterTelemetry:
    """One cap-loop run's observability: session, samplers, alert feed."""

    def __init__(self, obs):
        self.obs = obs
        self.clock = obs.sim

    @classmethod
    def standalone(cls, label="cluster", tracing=True, timeline=None,
                   engine=None):
        """A self-contained instance (tests, library use).

        ``engine`` (an :class:`~repro.obs.alerts.AlertEngine`) is wired to
        watch the session when given.
        """
        obs = Obs(EpochClock(), label=label, tracing=tracing,
                  timeline=timeline if timeline is not None
                  else Timeline()).install()
        if engine is not None:
            engine.watch(obs)
        return cls(obs)

    @classmethod
    def for_runtime(cls, label="cluster"):
        """An instance registered with the CLI's global runtime, or None.

        The session shows up in ``obs_runtime.sessions()`` (so every
        export surface covers it) and, when telemetry is armed, its
        timeline is watched by the process-wide alert engine.
        """
        obs = obs_runtime.install(EpochClock(), label=label)
        if obs is None:
            return None
        return cls(obs)

    # -- samplers --------------------------------------------------------------------

    def on_placement(self, placements):
        """Record the placement pass: spill/delay/drop counts and rate."""
        obs = self.obs
        placed = [p for p in placements if not p.dropped]
        spills = sum(1 for p in placed if p.spilled)
        delays = [p.delayed_s for p in placed if p.delayed_s > 0]
        dropped = len(placements) - len(placed)
        obs.metrics.inc("placement.instances", len(placements))
        obs.metrics.inc("placement.placed", len(placed))
        obs.metrics.inc("placement.spills", spills)
        obs.metrics.inc("placement.delayed", len(delays))
        obs.metrics.inc("placement.dropped", dropped)
        for delay in delays:
            obs.metrics.observe("placement.delay_s", delay)
        for placement in placements:
            if placement.dropped:
                obs.tracer.instant(
                    "placement.drop", cat="placement", track="placement",
                    workload=placement.workload.name,
                    delayed_s=placement.delayed_s)
        timeline = obs.timeline
        if timeline is not None:
            now = self.clock.now
            timeline.record("placement.instances", now, len(placements))
            timeline.record("placement.spills", now, spills)
            timeline.record("placement.delayed", now, len(delays))
            timeline.record("placement.dropped", now, dropped)
            timeline.record(
                "placement.drop_rate", now,
                dropped / len(placements) if placements else 0.0)

    def on_epoch(self, record, node_telemetry, nodes, t0_ns, t1_ns):
        """Sample one epoch of the global loop.

        ``record`` is the loop's :class:`~repro.cluster.cluster
        .EpochRecord`; ``node_telemetry`` the
        :class:`~repro.cluster.allocators.NodeTelemetry` list (whose
        ``cap_w`` is the cap that governed the epoch, unlike
        ``record.caps_w`` which is next epoch's); ``nodes`` the live
        :class:`~repro.cluster.topology.Node` objects (read-only);
        ``t0_ns``/``t1_ns`` the epoch bounds.
        """
        obs = self.obs
        t1 = int(t1_ns)
        self.clock.now = t1
        if flight._recorder is not None:
            flight._recorder.note_cluster(nodes)
        budget = record.budget_w
        err = ((record.aggregate_w - budget) / budget) if budget else 0.0
        obs.metrics.inc("cluster.epochs")
        obs.metrics.set("cluster.aggregate_w", record.aggregate_w)
        obs.tracer.sample("cluster.aggregate_w", track="cap-loop",
                          watts=round(record.aggregate_w, 4),
                          budget=round(budget, 4))
        timeline = obs.timeline
        if timeline is not None:
            timeline.record("cluster.aggregate_w", t1, record.aggregate_w)
            timeline.record("cluster.budget_w", t1, budget)
            timeline.record("cluster.compliance_err", t1, err)
            timeline.record("cluster.redistributed_w", t1,
                            record.redistributed_w)
            for entry in node_telemetry:
                cap = entry.cap_w if entry.cap_w is not None else 0.0
                timeline.record("cluster.node_power_w", t1,
                                entry.measured_w, node=entry.name)
                timeline.record("cluster.node_cap_w", t1, cap,
                                node=entry.name)
                timeline.record("cluster.node_headroom_w", t1,
                                cap - entry.measured_w, node=entry.name)
                timeline.record("cluster.node_demand_w", t1,
                                entry.demand_w, node=entry.name)
            for tenant, stats in self._tenant_stats(
                    nodes, t0_ns / SEC, t1_ns / SEC).items():
                timeline.record("cluster.tenant_users", t1,
                                stats["users"], tenant=tenant)
                timeline.record("cluster.tenant_grant_w", t1,
                                stats["grant_w"], tenant=tenant)
                timeline.record("cluster.tenant_measured_w", t1,
                                stats["measured_w"], tenant=tenant)

    def _tenant_stats(self, nodes, t0_s, t1_s):
        """Per-tenant users/grant/measured over the epoch, active only."""
        stats = {}
        for node in nodes:
            controller = node.controller
            for workload in node.workloads:
                if not workload.overlaps(t0_s, t1_s):
                    continue
                entry = stats.setdefault(
                    workload.tenant,
                    {"users": 0, "grant_w": 0.0, "measured_w": 0.0})
                entry["users"] += workload.users
                if controller is not None:
                    state = controller.leaf_state(workload.name)
                    entry["grant_w"] += state["grant_w"]
                    entry["measured_w"] += state["measured_w"]
        return stats

    def on_run_complete(self, run):
        """Publish the finished run's summary metrics into the registry.

        The cap loop's end-of-run dict (compliance, tracking error, slack
        moved) used to live only in the returned plain dict; with a
        session active it also lands in the
        :class:`~repro.obs.MetricsRegistry`, so ``--metrics`` and the
        OpenMetrics dump carry it without anyone threading the dict
        around.
        """
        obs = self.obs
        for key, value in run.metrics.items():
            if isinstance(value, (int, float)):
                obs.metrics.set("cluster.{}".format(key), value)
