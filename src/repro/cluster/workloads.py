"""Datacenter workload generation: specs, service apps, traffic shapes.

A cluster run is driven by a list of :class:`WorkloadSpec` — one service
*instance* each, sized in users served.  Users are the scaling currency:
``USERS_PER_INSTANCE`` converts a traffic curve measured in (millions of)
users into a count of concurrently running instances, and each instance's
simulated intensity scales with its own load fraction.  Three generators
compose the standard shapes:

* :func:`generate_diurnal` — a sinusoidal day: instances arrive as the
  curve climbs and expire as it falls (natural churn);
* :func:`generate_flash_crowd` — a surge of short-lived instances landing
  within a fraction of a second (the placement stress test);
* tenant churn — tenants carry ``(join, leave)`` windows, so a tenant's
  whole population can appear or vanish mid-run.

Specs are plain JSON-able data (``to_dict`` / ``from_dict``): the
calibration cells ship them across the ``repro.par`` process boundary.
"""

import math
import random
from dataclasses import dataclass

from repro.apps.base import App
from repro.kernel.actions import (
    Compute,
    SendPacket,
    Sleep,
    SubmitAccel,
    WaitOutstanding,
)
from repro.sim.clock import SEC, from_usec

#: users one service instance absorbs before the generator adds another
USERS_PER_INSTANCE = 50_000

#: workload kind -> the hardware component its instances exercise
KIND_COMPONENT = {"web": "cpu", "render": "gpu", "bulk": "wifi"}

#: generator mix: fraction of instances of each kind
KIND_MIX = (("web", 0.55), ("render", 0.25), ("bulk", 0.20))


@dataclass(frozen=True)
class WorkloadSpec:
    """One service instance: tenant, kind, lifetime, and users served."""

    name: str
    tenant: str
    kind: str
    start_s: float
    end_s: float
    users: int
    weight: float = 1.0

    def __post_init__(self):
        if self.kind not in KIND_COMPONENT:
            raise ValueError("unknown workload kind {!r}".format(self.kind))
        if self.end_s <= self.start_s:
            raise ValueError("workload {!r} ends before it starts"
                             .format(self.name))
        if self.users < 1:
            raise ValueError("workload {!r} serves no users".format(self.name))

    @property
    def component(self):
        return KIND_COMPONENT[self.kind]

    @property
    def load(self):
        """Load fraction of one full instance, in (0, 1]."""
        return min(1.0, self.users / USERS_PER_INSTANCE)

    def overlaps(self, t0_s, t1_s):
        return self.start_s < t1_s and self.end_s > t0_s

    def to_dict(self):
        return {
            "name": self.name, "tenant": self.tenant, "kind": self.kind,
            "start_s": self.start_s, "end_s": self.end_s,
            "users": self.users, "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


# -- service apps ------------------------------------------------------------------

def service_app(kernel, spec):
    """Instantiate ``spec`` as a running app on ``kernel``.

    The app exists from boot (the node's powercap bindings want its psbox
    up front) but sleeps until ``start_s`` and retires its loop at
    ``end_s`` — arrival and departure without rebinding the controller.
    """
    app = App(kernel, spec.name, weight=spec.weight)
    rng = kernel.sim.rng.stream("cluster.{}.{}".format(spec.name, app.id))
    start_ns = int(spec.start_s * SEC)
    end_ns = int(spec.end_s * SEC)
    load = spec.load
    builder = _BEHAVIORS[spec.kind]
    app.spawn(builder(kernel, app, rng, start_ns, end_ns, load),
              name=spec.name + ".svc")
    return app


def _web_behavior(kernel, app, rng, start_ns, end_ns, load):
    """CPU request batches: burst size scales with the instance's load."""
    def behavior():
        if start_ns > kernel.now:
            yield Sleep(start_ns - kernel.now)
        while kernel.now < end_ns:
            cycles = max(float(rng.normal(2.4e6 * load, 0.3e6 * load)),
                         0.2e6)
            yield Compute(cycles)
            app.count("requests", max(1, int(120 * load)))
            yield Sleep(from_usec(int(rng.uniform(250, 450))))

    return behavior()


def _render_behavior(kernel, app, rng, start_ns, end_ns, load):
    """GPU frame stream, double buffered; frame rate scales with load."""
    def behavior():
        if start_ns > kernel.now:
            yield Sleep(start_ns - kernel.now)
        while kernel.now < end_ns:
            cycles = max(float(rng.normal(3.2e6 * load, 0.2e6 * load)),
                         0.3e6)
            yield SubmitAccel("gpu", "svc_frame", cycles, 0.85, wait=False)
            yield WaitOutstanding(2)
            app.count("frames", 1)
            yield Sleep(from_usec(int(rng.uniform(400, 800))))

    return behavior()


def _bulk_behavior(kernel, app, rng, start_ns, end_ns, load):
    """WiFi bulk stream: chunk cadence scales with load."""
    def behavior():
        if start_ns > kernel.now:
            yield Sleep(start_ns - kernel.now)
        while kernel.now < end_ns:
            size = int(rng.uniform(18_000, 30_000) * max(load, 0.2))
            yield SendPacket(max(size, 2_000), wait=True)
            app.count("kb", size / 1024.0)
            yield Sleep(from_usec(int(rng.uniform(300, 700) / max(load, 0.1))))

    return behavior()


_BEHAVIORS = {
    "web": _web_behavior,
    "render": _render_behavior,
    "bulk": _bulk_behavior,
}


# -- traffic shapes ----------------------------------------------------------------

@dataclass(frozen=True)
class Tenant:
    """One tenant: a share of the user base and a membership window.

    ``phase`` shifts the tenant's diurnal curve (fraction of a day): a
    global service's regional tenants peak hours apart, which is exactly
    the imbalance a cluster-level allocator exists to exploit — somebody's
    night pays for somebody else's noon.
    """

    name: str
    share: float = 1.0
    join_s: float = 0.0
    leave_s: float = math.inf
    weight: float = 1.0
    phase: float = 0.0


def diurnal_users(t_s, day_s, peak_users, base_fraction=0.30, phase=0.0):
    """The traffic curve: users online at ``t_s`` of a ``day_s``-long day.

    A raised sine squared — quiet night floor at ``base_fraction`` of the
    peak, maximum at mid-day (``t = day_s / 2`` for ``phase`` 0, earlier
    for positive phases).
    """
    x = (t_s / day_s + phase) % 1.0
    shape = math.sin(math.pi * x) ** 2
    return int(peak_users * (base_fraction + (1.0 - base_fraction) * shape))


def generate_diurnal(seed, horizon_s, peak_users, tenants, slot_s=0.5,
                     base_fraction=0.30):
    """Instance arrivals/expiries tracking the diurnal curve per tenant.

    Every ``slot_s`` the generator compares each tenant's target instance
    count (its share of the curve) against the instances still alive and
    tops the population up; each new instance lives a random 2–5 slots.
    The curve's downslope drains the population by expiry — churn for
    free.  Tenants outside their ``(join_s, leave_s)`` window target zero.
    """
    rng = random.Random(seed)
    specs = []
    alive = []           # (end_s, tenant name) heap-free bookkeeping
    serial = 0
    total_share = sum(t.share for t in tenants) or 1.0
    slots = int(math.ceil(horizon_s / slot_s))
    for slot in range(slots):
        t = slot * slot_s
        alive = [(end, tenant) for end, tenant in alive if end > t]
        for tenant in tenants:
            if not (tenant.join_s <= t < tenant.leave_s):
                continue
            users_now = diurnal_users(t, horizon_s, peak_users,
                                      base_fraction, phase=tenant.phase)
            tenant_users = users_now * tenant.share / total_share
            target = int(round(tenant_users / USERS_PER_INSTANCE))
            have = sum(1 for _end, name in alive if name == tenant.name)
            for _ in range(max(0, target - have)):
                end = min(t + rng.randint(2, 5) * slot_s, horizon_s,
                          tenant.leave_s)
                if end <= t:
                    continue
                kind = _pick_kind(rng)
                specs.append(WorkloadSpec(
                    name="{}.{}.{:03d}".format(tenant.name, kind, serial),
                    tenant=tenant.name, kind=kind,
                    start_s=round(t, 6), end_s=round(end, 6),
                    users=USERS_PER_INSTANCE, weight=tenant.weight,
                ))
                alive.append((end, tenant.name))
                serial += 1
    return specs


def generate_flash_crowd(seed, at_s, duration_s, surge_users, tenant,
                         spread_s=0.25):
    """A flash crowd: ``surge_users`` worth of instances in ``spread_s``."""
    rng = random.Random(seed)
    n = max(1, int(round(surge_users / USERS_PER_INSTANCE)))
    specs = []
    for i in range(n):
        start = at_s + rng.uniform(0.0, spread_s)
        kind = _pick_kind(rng)
        specs.append(WorkloadSpec(
            name="{}.flash.{}.{:03d}".format(tenant.name, kind, i),
            tenant=tenant.name, kind=kind,
            start_s=round(start, 6), end_s=round(start + duration_s, 6),
            users=USERS_PER_INSTANCE, weight=tenant.weight,
        ))
    return specs


def _pick_kind(rng):
    roll = rng.random()
    acc = 0.0
    for kind, fraction in KIND_MIX:
        acc += fraction
        if roll < acc:
            return kind
    return KIND_MIX[-1][0]


def standard_mix(seed, horizon_s, peak_users=2_400_000, n_tenants=4,
                 flash_fraction=0.25):
    """The cluster experiment's canonical traffic: diurnal + flash + churn.

    ``n_tenants`` long-lived *regional* tenants share the diurnal curve
    with staggered phases (their peaks land hours apart — the imbalance
    slack redistribution feeds on); one of them leaves at 60% of the
    horizon while a late tenant joins at 45% (tenant churn), and the late
    tenant's launch is a flash crowd worth ``flash_fraction`` of the peak
    landing at 40%.  Returns the specs sorted by arrival and the tenants.
    """
    tenants = [
        Tenant("t{}".format(i), share=1.0,
               phase=0.5 * i / max(n_tenants - 1, 1),
               leave_s=0.60 * horizon_s if i == n_tenants - 1 else math.inf)
        for i in range(n_tenants)
    ]
    late = Tenant("late", share=0.8, join_s=0.45 * horizon_s)
    tenants.append(late)
    specs = generate_diurnal(seed, horizon_s, peak_users, tenants)
    specs += generate_flash_crowd(
        seed + 1, at_s=0.40 * horizon_s, duration_s=0.18 * horizon_s,
        surge_users=flash_fraction * peak_users, tenant=late,
    )
    specs.sort(key=lambda s: (s.start_s, s.name))
    return specs, tenants


def peak_concurrent_users(specs, horizon_s, step_s=0.25):
    """Max users served at once — the 'millions of users' headline stat."""
    peak = 0
    steps = int(horizon_s / step_s) + 1
    for i in range(steps):
        t = i * step_s
        now = sum(s.users for s in specs if s.start_s <= t < s.end_s)
        peak = max(peak, now)
    return peak
