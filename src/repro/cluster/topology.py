"""Cluster topology: node specs and the runtime node.

A :class:`NodeSpec` is pure data (JSON-able — calibration cells ship it to
``repro.par`` workers); a :class:`Node` is the running thing: one full
:class:`~repro.sim.engine.Simulator` board booted from the spec, the
placed workload instances as live apps in entered psboxes, and — unless
booted bare for calibration — a per-node budget tree enforced by the
existing :class:`~repro.powercap.PowerCapController`.  The cluster's
global loop only ever talks to a node through :meth:`Node.advance`,
:meth:`Node.telemetry` and :meth:`Node.set_cap`; everything below those
three calls is the single-board machinery of PRs 1–5, unchanged.
"""

from dataclasses import dataclass, field

from repro.cluster.workloads import service_app
from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel, KernelConfig
from repro.obs import runtime as obs_runtime
from repro.powercap import (
    BalloonAdmissionActuator,
    BudgetTree,
    CfsBandwidthActuator,
    GovernorClampActuator,
    LeafBinding,
    PowerCapController,
)
from repro.sim.clock import SEC, from_msec

#: seconds between a workload's end and its psbox leaving — covers the
#: service loop's final burst draining past its deadline
LEAVE_MARGIN_S = 0.05


@dataclass(frozen=True)
class NodeSpec:
    """One datacenter node: identity, size, and placement capacity."""

    name: str
    weight: float = 1.0
    n_cpu_cores: int = 2
    capacity_w: float = 4.0      # placement headroom prior (uncapped peak)
    components: tuple = ("cpu", "gpu", "wifi")

    def __post_init__(self):
        if self.capacity_w <= 0:
            raise ValueError("node capacity must be positive")
        if self.weight <= 0:
            raise ValueError("node weight must be positive")

    def to_dict(self):
        return {
            "name": self.name, "weight": self.weight,
            "n_cpu_cores": self.n_cpu_cores, "capacity_w": self.capacity_w,
            "components": list(self.components),
        }

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        data["components"] = tuple(data.get("components",
                                            ("cpu", "gpu", "wifi")))
        return cls(**data)


@dataclass
class ClusterTopology:
    """An ordered set of node specs (order is the tie-break everywhere)."""

    nodes: list = field(default_factory=list)

    def __post_init__(self):
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate node names in topology")

    def __len__(self):
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def node(self, name):
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError("no node {!r} in topology".format(name))

    @classmethod
    def uniform(cls, n, capacity_w=4.0, n_cpu_cores=2, weight=1.0):
        """``n`` identical nodes named ``node00`` .. ``node{n-1}``."""
        if n < 1:
            raise ValueError("topology needs at least one node")
        return cls([
            NodeSpec(name="node{:02d}".format(i), weight=weight,
                     n_cpu_cores=n_cpu_cores, capacity_w=capacity_w)
            for i in range(n)
        ])

    def total_capacity_w(self):
        return sum(node.capacity_w for node in self.nodes)


def node_seed(base_seed, index):
    """Per-node simulator seed: distinct boards, one campaign seed."""
    return base_seed * 1009 + 101 * (index + 1)


class Node:
    """A booted node: simulator, kernel, placed apps, powercap daemon."""

    def __init__(self, spec, workloads, seed, with_controller=True,
                 controller_config=None, obs_label=None):
        self.spec = spec
        self.name = spec.name
        self.workloads = list(workloads)
        self.platform = Platform.full(seed=seed,
                                      n_cpu_cores=spec.n_cpu_cores)
        self.kernel = Kernel(self.platform, config=KernelConfig())
        # obs_label distinguishes the many sessions one campaign boots per
        # node name (calibration, each allocator's enforcement run).
        obs_runtime.install(self.platform.sim, kernel=self.kernel,
                            label=obs_label or spec.name)
        self.apps = {}
        self.boxes = {}
        sim = self.platform.sim
        for workload in self.workloads:
            if workload.component not in spec.components:
                raise ValueError(
                    "workload {!r} needs {!r} which node {!r} lacks".format(
                        workload.name, workload.component, spec.name))
            app = service_app(self.kernel, workload)
            box = app.create_psbox((workload.component,))
            self.apps[workload.name] = app
            self.boxes[workload.name] = box
            # psboxes follow the instance's lifetime: accelerator and NIC
            # schedulers serve one sandbox at a time, so an instance may
            # only hold its component's box while it actually runs (the
            # placement layer keeps exclusive components overlap-free).
            sim.at(int(workload.start_s * SEC), self._enter_box,
                   workload.name)
            sim.at(int((workload.end_s + LEAVE_MARGIN_S) * SEC),
                   self._leave_box, workload.name)
        self.tree = None
        self.controller = None
        if with_controller:
            self.tree = self._build_tree()
            self.controller = PowerCapController(
                self.kernel, self.tree, self._build_bindings(),
                config=controller_config,
            ).start()

    # -- construction ------------------------------------------------------------

    def _enter_box(self, name):
        self.boxes[name].enter()

    def _leave_box(self, name):
        box = self.boxes[name]
        if box.entered:
            box.leave()

    def _build_tree(self):
        """node root -> tenant -> one leaf per placed instance.

        Tenants are uncapped below the node root (their split falls out of
        weighted water-filling over live demand); the root cap is what the
        global allocator rewrites every epoch via :meth:`set_cap`.
        """
        spec = {"name": self.name, "cap_w": self.spec.capacity_w,
                "children": []}
        by_tenant = {}
        for workload in self.workloads:
            by_tenant.setdefault(workload.tenant, []).append(workload)
        for tenant in sorted(by_tenant):
            members = by_tenant[tenant]
            spec["children"].append({
                "name": "{}/{}".format(self.name, tenant),
                "weight": members[0].weight,
                "children": [{"name": w.name, "weight": w.weight}
                             for w in members],
            })
        return BudgetTree.from_spec(spec)

    def _build_bindings(self):
        kernel = self.kernel
        bindings = []
        for workload in self.workloads:
            app = self.apps[workload.name]
            box = self.boxes[workload.name]
            if workload.component == "cpu":
                actuators = (
                    GovernorClampActuator(kernel.cpu_governor,
                                          (box.ctx_key,)),
                    CfsBandwidthActuator(kernel.smp, app),
                )
            elif workload.component == "gpu":
                actuators = (
                    GovernorClampActuator(kernel.gpu_governor,
                                          (box.ctx_key,)),
                    BalloonAdmissionActuator(kernel.gpu_sched, app,
                                             period=from_msec(40)),
                )
            else:
                actuators = (
                    BalloonAdmissionActuator(kernel.net_sched, app,
                                             period=from_msec(60)),
                )
            bindings.append(LeafBinding(workload.name, box,
                                        actuators=actuators))
        return bindings

    # -- the cluster-facing surface ------------------------------------------------

    def advance(self, until_ns):
        """Run this node's simulator up to the epoch boundary."""
        self.platform.sim.run(until=until_ns)

    def set_cap(self, cap_w):
        """Install the global allocator's grant as this node's root cap."""
        if self.tree is None:
            raise RuntimeError("calibration nodes have no budget tree")
        self.tree.root.cap_w = max(0.0, float(cap_w))

    @property
    def cap_w(self):
        return None if self.tree is None else self.tree.root.cap_w

    def aggregate_power(self, t0, t1):
        """True node draw: mean over every rail in [t0, t1)."""
        if t1 <= t0:
            return 0.0
        return sum(rail.mean_power(t0, t1)
                   for rail in self.platform.rails.values())

    def demand_w(self, t0, t1):
        """The node's unthrottled-demand estimate for the global loop.

        Per-leaf estimates invert the actuator attenuation exactly the way
        the node controller does (same config constants), plus whatever
        aggregate draw the managed leaves do not account for (idle floors,
        unmanaged world) — so a fully idle node still demands its floor.
        """
        aggregate = self.aggregate_power(t0, t1)
        if self.controller is None:
            return aggregate
        cfg = self.controller.config
        managed = 0.0
        demand = 0.0
        for workload in self.workloads:
            state = self.controller.leaf_state(workload.name)
            attainable = max(1.0 - cfg.throttle_strength * state["level"],
                             0.1)
            managed += state["measured_w"]
            demand += (state["measured_w"] * (1.0 + cfg.demand_headroom)
                       / attainable)
        return demand + max(0.0, aggregate - managed)

    def active_workloads(self, t0_s, t1_s):
        return [w for w in self.workloads if w.overlaps(t0_s, t1_s)]

    def throttle_actions(self):
        """Actuator applications the node's daemon performed so far."""
        if self.controller is None:
            return 0
        return sum(1 for entry in self.controller.telemetry.records()
                   if entry["action"] in ("throttle", "relax"))

    def mean_power_series(self, epoch_ns, horizon_ns):
        """Per-epoch mean aggregate draw — the calibration payload."""
        series = []
        t = 0
        while t < horizon_ns:
            end = min(t + epoch_ns, horizon_ns)
            series.append(round(self.aggregate_power(t, end), 6))
            t = end
        return series

    def __repr__(self):
        return "Node({!r}, {} workloads)".format(self.name,
                                                 len(self.workloads))
