"""The simulated datacenter: N nodes, one budget, one global cap loop.

``Cluster.run()`` boots every node (a full per-node simulator + powercap
daemon, see :mod:`repro.cluster.topology`), then advances them in lockstep
epochs.  At each epoch boundary the loop closes over node telemetry —
measured aggregate draw and unthrottled-demand estimates — hands it to the
:class:`~repro.cluster.allocators.GlobalAllocator`, and installs the
returned caps as the nodes' budget-tree roots for the next epoch.  The
node daemons do the actual throttling; the global loop only ever moves
budget between boards.

Epoch boundaries also feed the placement predictor: measured per-instance
draw flows back into the per-kind correction factors, so a campaign's
later placements are better informed than its first.
"""

from dataclasses import dataclass, field

from repro.cluster.allocators import NodeTelemetry, redistribution_w
from repro.cluster.topology import Node, node_seed
from repro.sim.clock import SEC


@dataclass
class ClusterConfig:
    """Shape of one cluster run."""

    budget_w: float                  # the datacenter cap the loop enforces
    horizon_s: float = 6.0
    epoch_ms: int = 250
    settle_window: tuple = (0.35, 0.90)   # metrics window, horizon fractions
    observe_level_max: float = 0.25  # skip predictor feedback when throttled

    def __post_init__(self):
        if self.budget_w <= 0:
            raise ValueError("budget must be positive")
        if self.epoch_ms <= 0:
            raise ValueError("epoch must be positive")


@dataclass
class EpochRecord:
    """One row of the global loop's telemetry."""

    t_s: float                       # epoch end, seconds
    aggregate_w: float               # cluster draw over the epoch
    budget_w: float
    caps_w: dict                     # node -> cap installed for next epoch
    measured_w: dict                 # node -> epoch mean draw
    demand_w: dict                   # node -> demand estimate
    redistributed_w: float           # cap moved off the proportional split


@dataclass
class ClusterRun:
    """Everything one allocator's run produced."""

    allocator: str
    epochs: list = field(default_factory=list)
    throttle_actions: int = 0
    predictor_stats: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)


class Cluster:
    """N simulated nodes under one datacenter budget."""

    def __init__(self, topology, placements_by_node, allocator, config,
                 seed=0, predictor=None, placements=None, telemetry=None):
        self.topology = topology
        self.allocator = allocator
        self.config = config
        self.seed = seed
        self.predictor = predictor
        self.telemetry = telemetry   # ClusterTelemetry or None (dormant)
        self._placements = list(placements or [])
        self.nodes = [
            # Session labels carry the allocator so one trace file can hold
            # both head-to-head runs without ambiguous node names.
            Node(spec, placements_by_node.get(spec.name, ()),
                 seed=node_seed(seed, index),
                 obs_label="{}/{}".format(allocator.name, spec.name))
            for index, spec in enumerate(topology)
        ]

    def run(self):
        """Drive the epoch loop over the whole horizon; returns the run."""
        cfg = self.config
        self.allocator.reset()
        epoch_ns = int(cfg.epoch_ms * 1e6)
        horizon_ns = int(cfg.horizon_s * SEC)
        dt_s = epoch_ns / 1e9

        # Epoch zero starts from the proportional division — the
        # allocator has no telemetry yet.
        weights = {node.name: node.spec.weight for node in self.nodes}
        total_weight = sum(weights.values())
        for node in self.nodes:
            node.set_cap(cfg.budget_w * weights[node.name] / total_weight)

        run = ClusterRun(allocator=self.allocator.name)
        predicted_by_name = {p.workload.name: p.predicted_w
                             for p in self._placements}
        t = 0
        while t < horizon_ns:
            end = min(t + epoch_ns, horizon_ns)
            for node in self.nodes:
                node.advance(end)
            telemetry = [
                NodeTelemetry(
                    name=node.name,
                    measured_w=node.aggregate_power(t, end),
                    demand_w=node.demand_w(t, end),
                    cap_w=node.cap_w,
                    weight=node.spec.weight,
                )
                for node in self.nodes
            ]
            caps = self.allocator.allocate(telemetry, cfg.budget_w, dt_s)
            for node in self.nodes:
                node.set_cap(caps[node.name])
            record = EpochRecord(
                t_s=end / SEC,
                aggregate_w=sum(x.measured_w for x in telemetry),
                budget_w=cfg.budget_w,
                caps_w={x.name: caps[x.name] for x in telemetry},
                measured_w={x.name: x.measured_w for x in telemetry},
                demand_w={x.name: x.demand_w for x in telemetry},
                redistributed_w=redistribution_w(caps, telemetry),
            )
            run.epochs.append(record)
            if self.telemetry is not None:
                self.telemetry.on_epoch(record, telemetry, self.nodes,
                                        t, end)
            if self.predictor is not None:
                self._feed_predictor(predicted_by_name, t, end)
            t = end

        run.throttle_actions = sum(node.throttle_actions()
                                   for node in self.nodes)
        if self.predictor is not None:
            run.predictor_stats = self.predictor.stats()
        run.metrics = self._metrics(run)
        if self.telemetry is not None:
            self.telemetry.on_run_complete(run)
        return run

    def _feed_predictor(self, predicted_by_name, t0, t1):
        """Close the WattsApp loop: measured per-instance draw -> model."""
        cfg = self.config
        t0_s, t1_s = t0 / SEC, t1 / SEC
        for node in self.nodes:
            controller = node.controller
            for workload in node.active_workloads(t0_s, t1_s):
                if not (workload.start_s <= t0_s
                        and workload.end_s >= t1_s):
                    continue          # partial epochs under-measure
                state = controller.leaf_state(workload.name)
                if state["level"] > cfg.observe_level_max:
                    continue          # throttled draw is not demand
                predicted = predicted_by_name.get(workload.name)
                if predicted is None:
                    continue
                self.predictor.observe(workload.kind, predicted,
                                       state["measured_w"])

    def _metrics(self, run):
        """Cap compliance and slack redistribution over the settle window."""
        cfg = self.config
        lo = cfg.settle_window[0] * cfg.horizon_s
        hi = cfg.settle_window[1] * cfg.horizon_s
        window = [e for e in run.epochs if lo <= e.t_s <= hi]
        if not window:
            window = run.epochs
        n = len(window)
        mean_agg = sum(e.aggregate_w for e in window) / n
        err = [(e.aggregate_w - e.budget_w) / e.budget_w for e in window]
        return {
            "epochs": len(run.epochs),
            "window_epochs": n,
            "mean_aggregate_w": round(mean_agg, 6),
            "budget_w": round(cfg.budget_w, 6),
            "compliance_pct": round(
                (mean_agg - cfg.budget_w) / cfg.budget_w * 100.0, 6),
            "mean_abs_error_pct": round(
                sum(abs(x) for x in err) / n * 100.0, 6),
            "max_overshoot_pct": round(max(err) * 100.0, 6),
            "redistributed_slack_w": round(
                sum(e.redistributed_w for e in window) / n, 6),
            "throttle_actions": run.throttle_actions,
        }
