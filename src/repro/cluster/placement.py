"""Power-aware placement: predicted draw against node headroom.

WattsApp's scheduling rule, transplanted: an arriving instance is placed
on a node whose *predicted* power profile leaves headroom for the
instance's predicted draw over its whole lifetime — not on whichever node
currently looks calm.  Among the nodes that fit, the one with the most
lifetime headroom wins (worst-fit keeps the cluster balanced, which is
what the global cap loop wants from its nodes).

Two fallbacks, in order, when nothing fits:

* **spill** — headroom is exhausted everywhere: the instance lands on the
  least-loaded capable node anyway (admission control is the global cap
  loop's job, not the placer's) and the spill is recorded, because the
  spill rate is the honest measure of provisioning quality;
* **delay** — psbox semantics make accelerators and NICs *exclusive* (one
  sandbox per component at a time, ``repro.core.manager``), so a GPU or
  WiFi instance that overlaps every capable node's existing window is
  queued: its start shifts to the earliest free slot, like an accelerator
  job queue.  Instances whose slot would fall off the horizon are dropped
  and reported.
"""

import dataclasses
from dataclasses import dataclass

from repro.cluster.predictor import NODE_IDLE_WATTS

#: components the kernel serves one sandbox at a time
EXCLUSIVE_COMPONENTS = ("gpu", "wifi", "dsp", "lte")

#: padding between exclusive windows on one node: psboxes leave a beat
#: after their workload ends (topology.LEAVE_MARGIN_S) and event ties at
#: a shared boundary must never race an enter against a leave
EXCLUSIVE_GAP_S = 0.2


@dataclass(frozen=True)
class Placement:
    """One placement decision (pure record)."""

    workload: object        # the WorkloadSpec as placed (possibly shifted)
    node: str               # target node name; None when dropped
    predicted_w: float      # the predictor's estimate at placement time
    spilled: bool = False   # True when no node had power headroom
    delayed_s: float = 0.0  # start shift from exclusive-window queueing

    @property
    def dropped(self):
        return self.node is None


class PlacementEngine:
    """Assign workload specs to topology nodes by predicted power."""

    def __init__(self, topology, predictor, horizon_s,
                 idle_w=NODE_IDLE_WATTS, min_slice_s=0.3):
        self.topology = topology
        self.predictor = predictor
        self.horizon_s = horizon_s
        self.idle_w = idle_w
        self.min_slice_s = min_slice_s
        self._segments = {node.name: [] for node in topology}

    # -- the predicted load model -------------------------------------------------

    def predicted_peak_w(self, node_name, t0_s, t1_s, extra_w=0.0):
        """Predicted peak draw of ``node_name`` over [t0_s, t1_s).

        The idle floor plus the worst simultaneous overlap of every
        instance already placed there (evaluated at segment starts — the
        peak of a sum of step functions lands on someone's arrival).
        """
        segments = [
            seg for seg in self._segments[node_name]
            if seg.start_s < t1_s and seg.end_s > t0_s
        ]
        points = {t0_s}
        points.update(seg.start_s for seg in segments
                      if t0_s <= seg.start_s < t1_s)
        peak = 0.0
        for point in points:
            level = sum(seg.watts for seg in segments
                        if seg.start_s <= point < seg.end_s)
            peak = max(peak, level + extra_w)
        return self.idle_w + peak

    def headroom_w(self, node_spec, t0_s, t1_s, extra_w=0.0):
        return node_spec.capacity_w - self.predicted_peak_w(
            node_spec.name, t0_s, t1_s, extra_w=extra_w)

    # -- exclusive-window bookkeeping ----------------------------------------------

    def _window_free(self, node_name, component, t0_s, t1_s):
        if component not in EXCLUSIVE_COMPONENTS:
            return True
        lo, hi = t0_s - EXCLUSIVE_GAP_S, t1_s + EXCLUSIVE_GAP_S
        return not any(
            seg.component == component
            and seg.start_s < hi and seg.end_s > lo
            for seg in self._segments[node_name]
        )

    def _earliest_slot(self, node_name, component, start_s, duration_s):
        """First ``t >= start_s`` with a free exclusive window on the node."""
        t = start_s
        while True:
            conflicts = [
                seg for seg in self._segments[node_name]
                if seg.component == component
                and seg.start_s < t + duration_s + EXCLUSIVE_GAP_S
                and seg.end_s > t - EXCLUSIVE_GAP_S
            ]
            if not conflicts:
                return t
            t = max(seg.end_s for seg in conflicts) + EXCLUSIVE_GAP_S

    # -- placement ----------------------------------------------------------------

    def place(self, spec):
        """Place one instance; returns its :class:`Placement`."""
        predicted = self.predictor.predict(spec)
        capable = [node for node in self.topology
                   if spec.component in node.components]
        if not capable:
            raise ValueError("no node offers component {!r}"
                             .format(spec.component))
        free = [node for node in capable
                if self._window_free(node.name, spec.component,
                                     spec.start_s, spec.end_s)]
        fits = [
            (self.headroom_w(node, spec.start_s, spec.end_s,
                             extra_w=predicted), node)
            for node in free
        ]
        fits = [(headroom, node) for headroom, node in fits if headroom >= 0]
        if fits:
            # Tenant affinity first: keep a tenant's instances together
            # (rack locality — and with regional tenants peaking at
            # different hours, it is what gives the global allocator
            # quiet nodes to raid).  Worst-fit within the preferred set:
            # keep the most headroom after placing (ties break on
            # topology order — max() keeps the first of equals).
            home = [(headroom, node) for headroom, node in fits
                    if self._hosts_tenant(node.name, spec.tenant)]
            best = max(home or fits, key=lambda pair: pair[0])[1]
            return self._commit(spec, best, predicted, spilled=False)
        if free:
            # Power spill: exclusivity holds somewhere, headroom nowhere.
            best = min(free, key=lambda node: self.predicted_peak_w(
                node.name, spec.start_s, spec.end_s))
            return self._commit(spec, best, predicted, spilled=True)
        # Exclusive queueing: shift to the earliest slot anywhere.
        duration = spec.end_s - spec.start_s
        slots = [
            (self._earliest_slot(node.name, spec.component, spec.start_s,
                                 duration), index, node)
            for index, node in enumerate(capable)
        ]
        slot_t, _index, best = min(slots, key=lambda s: (s[0], s[1]))
        end = min(slot_t + duration, self.horizon_s)
        if end - slot_t < self.min_slice_s:
            return Placement(workload=spec, node=None, predicted_w=predicted,
                             spilled=True, delayed_s=slot_t - spec.start_s)
        shifted = dataclasses.replace(spec, start_s=round(slot_t, 6),
                                      end_s=round(end, 6))
        return self._commit(shifted, best, predicted, spilled=True,
                            delayed_s=slot_t - spec.start_s)

    def _hosts_tenant(self, node_name, tenant):
        return any(seg.tenant == tenant for seg in self._segments[node_name])

    def _commit(self, spec, node, predicted_w, spilled, delayed_s=0.0):
        self._segments[node.name].append(_Segment(
            start_s=spec.start_s, end_s=spec.end_s, watts=predicted_w,
            component=spec.component, name=spec.name, tenant=spec.tenant))
        return Placement(workload=spec, node=node.name,
                         predicted_w=predicted_w, spilled=spilled,
                         delayed_s=round(delayed_s, 6))

    def place_all(self, specs):
        """Place specs in arrival order (start time, then name)."""
        ordered = sorted(specs, key=lambda s: (s.start_s, s.name))
        return [self.place(spec) for spec in ordered]


@dataclass(frozen=True)
class _Segment:
    start_s: float
    end_s: float
    watts: float
    component: str
    name: str
    tenant: str = ""


def placements_by_node(placements):
    """``{node name: [WorkloadSpec, ...]}`` in arrival order (no drops)."""
    grouped = {}
    for placement in placements:
        if placement.dropped:
            continue
        grouped.setdefault(placement.node, []).append(placement.workload)
    return grouped


def placement_quality(placements, topology, horizon_s, engine):
    """JSON-able quality summary of one placement pass."""
    if not placements:
        return {"instances": 0, "placed": 0, "spills": 0, "spill_rate": 0.0,
                "delayed": 0, "mean_delay_s": 0.0, "dropped": 0,
                "predicted_peaks_w": {}, "balance_cv": 0.0}
    peaks = {
        node.name: round(
            engine.predicted_peak_w(node.name, 0.0, horizon_s), 6)
        for node in topology
    }
    values = list(peaks.values())
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    placed = [p for p in placements if not p.dropped]
    spills = sum(1 for p in placed if p.spilled)
    delays = [p.delayed_s for p in placed if p.delayed_s > 0]
    return {
        "instances": len(placements),
        "placed": len(placed),
        "spills": spills,
        "spill_rate": round(spills / len(placements), 6),
        "delayed": len(delays),
        "mean_delay_s": round(sum(delays) / len(delays), 6) if delays
        else 0.0,
        "dropped": len(placements) - len(placed),
        "predicted_peaks_w": peaks,
        "balance_cv": round((variance ** 0.5) / mean if mean else 0.0, 6),
    }
