"""repro.cluster — a simulated datacenter over the single-board psbox.

The single-board stack (PRs 1–5) gives one node trustworthy per-app power
and a hierarchical powercap daemon.  This package lifts it a level, per
WattsApp and nvPAX: a :class:`ClusterTopology` of N full simulated nodes,
a power-aware :class:`PlacementEngine` that assigns user-scaled workload
instances to nodes by *predicted* draw against headroom (with fallback
spill), and a :class:`Cluster` whose global cap loop closes over node
telemetry every epoch and re-divides the datacenter budget through a
pluggable :class:`GlobalAllocator` — an nvPAX-style water-filling
constrained optimizer and the PR-1 PI law lifted one level, compared
head-to-head by the ``cluster`` experiment.

Nothing here changes single-board behaviour: a node is the existing
``Simulator``/``Kernel``/``PowerCapController`` machinery booted N times.
"""

from repro.cluster.allocators import (
    GlobalAllocator,
    NodeTelemetry,
    PIBaselineAllocator,
    WaterFillingAllocator,
    redistribution_w,
)
from repro.cluster.calibrate import (
    calibrate,
    calibration_items,
    cluster_peak_w,
    run_node_calibration,
)
from repro.cluster.cluster import Cluster, ClusterConfig, ClusterRun
from repro.cluster.placement import (
    Placement,
    PlacementEngine,
    placement_quality,
    placements_by_node,
)
from repro.cluster.predictor import NODE_IDLE_WATTS, PowerPredictor
from repro.cluster.telemetry import ClusterTelemetry, EpochClock
from repro.cluster.topology import ClusterTopology, Node, NodeSpec, node_seed
from repro.cluster.workloads import (
    USERS_PER_INSTANCE,
    Tenant,
    WorkloadSpec,
    diurnal_users,
    generate_diurnal,
    generate_flash_crowd,
    peak_concurrent_users,
    service_app,
    standard_mix,
)

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClusterRun",
    "ClusterTelemetry",
    "ClusterTopology",
    "EpochClock",
    "GlobalAllocator",
    "NODE_IDLE_WATTS",
    "Node",
    "NodeSpec",
    "NodeTelemetry",
    "PIBaselineAllocator",
    "Placement",
    "PlacementEngine",
    "PowerPredictor",
    "Tenant",
    "USERS_PER_INSTANCE",
    "WaterFillingAllocator",
    "WorkloadSpec",
    "calibrate",
    "calibration_items",
    "cluster_peak_w",
    "diurnal_users",
    "generate_diurnal",
    "generate_flash_crowd",
    "node_seed",
    "peak_concurrent_users",
    "placement_quality",
    "placements_by_node",
    "redistribution_w",
    "run_node_calibration",
    "service_app",
    "standard_mix",
]
