"""Exporters: Chrome trace-event JSON, metrics snapshots, text tables.

The trace exporter emits the Chrome trace-event format (the ``traceEvents``
array form), which Perfetto, ``chrome://tracing``, and Speedscope all open
directly.  Spans become async begin/end pairs (``ph: "b"``/``"e"``) grouped
by the id of their *root* span, which is what renders a balloon's per-core
IPI shootdowns nested under the balloon span.  Instants become ``"i"``
events and counter samples become ``"C"`` events (graphed tracks).

One exported file can hold many simulator runs: each :class:`~repro.obs
.session.Obs` session becomes one trace "process" (pid), and each track
within it one named "thread" (tid) — so ``python -m repro.experiments fig6
--trace t.json`` yields a single timeline with every boot of the experiment
side by side.
"""

import json

from repro.analysis.report import format_table
from repro.obs.metrics import MetricsRegistry


def _us(t_ns):
    """Chrome trace timestamps are microseconds; keep ns resolution."""
    return t_ns / 1000.0


def _root_of(span, by_id):
    """Follow parent links to the span's root (async grouping id)."""
    seen = set()
    while span.parent_id is not None and span.parent_id not in seen:
        seen.add(span.id)
        parent = by_id.get(span.parent_id)
        if parent is None:
            break
        span = parent
    return span


def chrome_trace_events(sessions):
    """The ``traceEvents`` list for a set of Obs sessions."""
    events = []
    body = []   # (ts_ns, rank, tiebreak, event) — sorted after collection
    for pid, obs in enumerate(sessions, start=1):
        tracer = obs.tracer
        tracks = sorted(
            {span.track for span in tracer.spans}
            | {track for _t, track, _n, _c, _a in tracer.instants}
            | {track for _t, track, _n, _v in tracer.samples}
        )
        tids = {track: tid for tid, track in enumerate(tracks, start=1)}
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "ts": 0,
            "name": "process_name", "args": {"name": obs.label or
                                             "run-{}".format(pid)},
        })
        for track, tid in tids.items():
            events.append({
                "ph": "M", "pid": pid, "tid": tid, "ts": 0,
                "name": "thread_name", "args": {"name": track or "main"},
            })

        trace_end = obs.sim.now
        by_id = {span.id: span for span in tracer.spans}
        for order, span in enumerate(tracer.spans):
            root = _root_of(span, by_id)
            cat = root.cat or "span"
            tid = tids[span.track]
            begin = {
                "ph": "b", "cat": cat, "id": root.id, "name": span.name,
                "pid": pid, "tid": tid, "ts": _us(span.start),
                "args": dict(span.args),
            }
            body.append((span.start, 0, order, begin))
            end_t = span.end
            end_args = {}
            if end_t is None:
                # Unclosed span (dropped IPI, stuck drain): close it at the
                # end of the trace and say so — the gap IS the finding.
                end_t = trace_end
                end_args["unfinished"] = True
            end = {
                "ph": "e", "cat": cat, "id": root.id, "name": span.name,
                "pid": pid, "tid": tid, "ts": _us(end_t), "args": end_args,
            }
            # Ends at the same instant unwind LIFO (children close before
            # parents), which keeps every async stack properly nested.
            body.append((end_t, 2, -order, end))

        for order, (t, track, name, cat, args) in enumerate(tracer.instants):
            body.append((t, 1, order, {
                "ph": "i", "s": "t", "cat": cat or "event", "name": name,
                "pid": pid, "tid": tids[track], "ts": _us(t),
                "args": dict(args),
            }))
        for order, (t, track, name, values) in enumerate(tracer.samples):
            body.append((t, 1, order, {
                "ph": "C", "name": name, "pid": pid, "tid": tids[track],
                "ts": _us(t), "args": dict(values),
            }))

    body.sort(key=lambda item: (item[0], item[1], item[2]))
    events.extend(event for _t, _r, _o, event in body)
    return events


def export_chrome_trace(sessions, path):
    """Write one Chrome-trace/Perfetto JSON file covering ``sessions``.

    Returns the number of trace events written.
    """
    events = chrome_trace_events(sessions)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.obs",
            "sessions": [obs.label for obs in sessions],
        },
    }
    with open(path, "w") as handle:
        json.dump(document, handle)
    return len(events)


# -- metrics snapshots -------------------------------------------------------------


def metrics_snapshot(sessions):
    """JSON-ready snapshot: per-session metrics plus a merged rollup.

    ``unfinished_spans`` counts the spans still open at snapshot time, per
    session and summed — the aggregate the exporter's per-span
    ``unfinished: true`` annotations never provided, and the number the
    alert engine's trace-liveness rule watches.
    """
    merged = MetricsRegistry()
    per_session = []
    unfinished_total = 0
    for obs in sessions:
        merged.merge_from(obs.metrics)
        unfinished = obs.tracer.unfinished_count()
        unfinished_total += unfinished
        per_session.append({
            "label": obs.label,
            "sim_ns": obs.sim.now,
            "metrics": obs.metrics.snapshot(),
            "logs": obs.log_stats(),
            "unfinished_spans": unfinished,
        })
    return {"sessions": per_session, "merged": merged.snapshot(),
            "unfinished_spans": unfinished_total}


def export_metrics(sessions, path):
    """Write the metrics snapshot as JSON; returns the snapshot dict."""
    snap = metrics_snapshot(sessions)
    with open(path, "w") as handle:
        json.dump(snap, handle, indent=2, sort_keys=True)
    return snap


# -- timeline series ---------------------------------------------------------------


def timeline_jsonl_lines(sessions):
    """One JSON document per line, one line per (session, series).

    Each line carries the session label, the series name and labels, the
    retained ``[t_ns, value]`` points (oldest first), and the ring's
    dropped- and disordered-sample counts — so a consumer can both replay
    the window and know exactly how much history it is missing (and
    whether any sampler fed it out of order).  Sessions keep boot order;
    series within a session are sorted by (name, labels), so the dump is
    deterministic.
    """
    lines = []
    for obs in sessions:
        timeline = getattr(obs, "timeline", None)
        if timeline is None:
            continue
        for series in timeline.all():
            lines.append(json.dumps({
                "session": obs.label,
                "series": series.name,
                "labels": dict(series.labels),
                "dropped": series.dropped,
                "disordered": series.disordered,
                "points": [[t, v] for t, v in series.points()],
            }, sort_keys=True))
    return lines


def export_timeline_jsonl(sessions, path):
    """Write the JSONL time-series dump; returns the number of series."""
    lines = timeline_jsonl_lines(sessions)
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")
    return len(lines)


# -- discrete events: actuator actions + fault injections --------------------------


def events_jsonl_lines(sessions):
    """One JSON document per line: actuator actions and fault injections.

    The timeline dump carries the continuous signals; this surface carries
    the discrete causes — every retained powercap actuator decision
    (``kind: "action"``, from each kernel's
    :class:`~repro.powercap.telemetry.TelemetryRing`) and every fault the
    installed :class:`~repro.faults.plan.FaultPlan` injected
    (``kind: "inject"``).  The explain engine joins these against breached
    series windows to name *why* an alert fired.  Order is deterministic:
    sessions in boot order, each session's rings oldest-first.
    """
    lines = []
    for obs in sessions:
        kernel = getattr(obs, "kernel", None)
        controller = getattr(kernel, "powercap", None)
        if controller is not None:
            for entry in controller.telemetry.records():
                doc = dict(entry, session=obs.label, kind="action")
                doc["t_ns"] = doc.pop("t")
                lines.append(json.dumps(doc, sort_keys=True))
        plan = getattr(obs.sim, "faults", None)
        if plan is not None:
            for t, kind, payload in plan.log:
                if kind != "inject":
                    continue
                doc = dict(payload, session=obs.label, kind="inject", t_ns=t)
                lines.append(json.dumps(doc, sort_keys=True, default=str))
    return lines


def export_events_jsonl(sessions, path):
    """Write the discrete-event JSONL dump; returns the line count."""
    lines = events_jsonl_lines(sessions)
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")
    return len(lines)


def format_metrics_table(snapshot):
    """Aligned-text rendering of a merged metrics snapshot."""
    merged = snapshot.get("merged", snapshot)
    rows = []
    for name, value in merged["counters"].items():
        rows.append([name, "counter", str(value), "", ""])
    for name, gauge in merged["gauges"].items():
        rows.append([
            name, "gauge", _fmt(gauge["value"]),
            _fmt(gauge["min"]), _fmt(gauge["max"]),
        ])
    for name, hist in merged["histograms"].items():
        rows.append([
            name, "histogram",
            "n={} mean={}".format(hist["count"], _fmt(hist["mean"])),
            _fmt(hist["min"]), _fmt(hist["max"]),
        ])
    if not rows:
        return "(no metrics recorded)"
    return format_table(["metric", "kind", "value", "min", "max"], rows,
                        title="metrics snapshot")


def _fmt(value):
    if value is None:
        return "--"
    if isinstance(value, float):
        return "{:.6g}".format(value)
    return str(value)
