"""Metrics: counters, gauges, and weighted histograms behind one registry.

Kernel and hardware modules publish into the registry through the same
``sim.obs`` guard as the tracer, so an uninstrumented run pays one attribute
read per site.  Metrics are plain Python numbers — no RNG, no events — so a
live registry never perturbs the simulation.

Histograms are *weight-aware*: ``observe(value, weight=...)`` lets a module
weight a sample by the virtual time it was in effect (OPP residency, drain
idle fractions), which makes quantiles time-weighted rather than
change-point-weighted.  Unweighted observations (latencies) default to
weight 1.
"""

import bisect


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        self.value += n


class Gauge:
    """A last-writer-wins value that also tracks its min/max envelope."""

    __slots__ = ("name", "value", "min", "max", "updates")

    def __init__(self, name):
        self.name = name
        self.value = None
        self.min = None
        self.max = None
        self.updates = 0

    def set(self, value):
        value = float(value)
        self.value = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.updates += 1


class Histogram:
    """Weighted sample distribution with exact quantiles.

    Keeps raw (value, weight) pairs — the simulations this library runs
    record at most a few hundred thousand observations, and exact quantiles
    beat sketch accuracy for reproduction work.  ``merge_from`` concatenates
    raw samples, so cross-run merges stay exact too.
    """

    __slots__ = ("name", "_values", "_weights", "count", "total", "wtotal",
                 "min", "max", "_sorted")

    def __init__(self, name):
        self.name = name
        self._values = []
        self._weights = []
        self.count = 0
        self.total = 0.0     # sum of value * weight
        self.wtotal = 0.0    # sum of weights
        self.min = None
        self.max = None
        self._sorted = None  # cached (sorted pairs, cumulative weights)

    def observe(self, value, weight=1.0):
        value = float(value)
        weight = float(weight)
        if weight <= 0.0:
            return
        self._values.append(value)
        self._weights.append(weight)
        self._sorted = None
        self.count += 1
        self.total += value * weight
        self.wtotal += weight
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self):
        return self.total / self.wtotal if self.wtotal else None

    def _sorted_pairs(self):
        """Sorted (value, weight) pairs with cumulative weights, cached.

        Invalidated by ``observe``/``merge_from``, so a multi-quantile
        ``snapshot()`` sorts once instead of once per quantile.
        """
        if self._sorted is None:
            pairs = sorted(zip(self._values, self._weights))
            cum = []
            running = 0.0
            for _value, weight in pairs:
                running += weight
                cum.append(running)
            self._sorted = (pairs, cum)
        return self._sorted

    def quantile(self, q):
        """Weighted quantile: the smallest value covering fraction ``q``.

        An out-of-range ``q`` raises even on an empty histogram (the
        validity of the question does not depend on the data).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._values:
            return None
        pairs, cum = self._sorted_pairs()
        idx = bisect.bisect_left(cum, q * self.wtotal)
        return pairs[min(idx, len(pairs) - 1)][0]

    def merge_from(self, other):
        for value, weight in zip(other._values, other._weights):
            self.observe(value, weight)


class MetricsRegistry:
    """Create-on-first-use registry of named metrics."""

    QUANTILES = (0.5, 0.9, 0.99)

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    # -- handles (create on demand) ------------------------------------------------

    def counter(self, name):
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name):
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name):
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name)
        return metric

    # -- one-call conveniences (what instrumentation sites use) ---------------------

    def inc(self, name, n=1):
        self.counter(name).inc(n)

    def set(self, name, value):
        self.gauge(name).set(value)

    def observe(self, name, value, weight=1.0):
        self.histogram(name).observe(value, weight)

    # -- export ---------------------------------------------------------------------

    def merge_from(self, other):
        """Fold another registry in: counters add, gauges take the other's
        latest, histograms concatenate raw samples."""
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other.gauges.items():
            if gauge.updates:
                mine = self.gauge(name)
                mine.set(gauge.min)
                mine.set(gauge.max)
                mine.set(gauge.value)
        for name, hist in other.histograms.items():
            self.histogram(name).merge_from(hist)

    def snapshot(self):
        """All metrics as one JSON-ready dict."""
        snap = {
            "counters": {
                name: counter.value
                for name, counter in sorted(self.counters.items())
            },
            "gauges": {
                name: {"value": gauge.value, "min": gauge.min,
                       "max": gauge.max}
                for name, gauge in sorted(self.gauges.items())
            },
            "histograms": {},
        }
        for name, hist in sorted(self.histograms.items()):
            entry = {
                "count": hist.count,
                "mean": hist.mean,
                "min": hist.min,
                "max": hist.max,
            }
            for q in self.QUANTILES:
                entry["p{:g}".format(q * 100)] = hist.quantile(q)
            snap["histograms"][name] = entry
        return snap

    def __len__(self):
        return len(self.counters) + len(self.gauges) + len(self.histograms)
