"""The causal explain engine: from fired alerts to incident reports.

PR 8's alert engine answers *that* an SLO broke; this module answers
*why*.  Given the evidence a run left behind — a flight-recorder dump
(:mod:`repro.obs.flight`) or a ``--telemetry`` bundle directory — it
produces one structured **incident report** per alert episode:

1. **window** — the breach window around the firing sample, sized from
   the breached series' own sampling cadence and the rule's streak (the
   breach began ``streak`` samples before the alert latched);
2. **correlation** — every other exported series (per-leaf grants,
   per-node caps, placement drops, tenant draw ...) hold-resampled onto
   the window grid and ranked by time-aligned Pearson correlation with
   the breached signal — the "what moved with it" shortlist;
3. **attribution** — the :mod:`repro.accounting` policies (per-sample /
   even-split / last-trigger) run over the window via
   :func:`repro.accounting.incident.attribute_window`, naming the top
   contributing tenants (cluster evidence) and sandboxes (per-node
   leaf series) in the paper's own accounting semantics;
4. **discrete causes** — the actuator actions and injected faults that
   landed inside the window, with injection sites grouped and counted.

Reports render three ways: canonical JSON (:func:`render_json` — byte
deterministic, the CI-asserted artifact), an aligned-text digest
(:func:`format_incidents`), and a Chrome-trace overlay
(:func:`overlay_trace_events`) whose per-entity counter tracks graph the
attributed power next to alert/injection instants in Perfetto.

Everything here is pure post-processing over exported files; nothing
touches a live simulator.
"""

import json
import math
import os

from repro.accounting.incident import attribute_window, hold_resample
from repro.analysis.report import format_table

#: window sizing when a breached series has too few points to estimate
#: its cadence (ns) — one cluster epoch
DEFAULT_GAP_NS = 250_000_000

#: samples after the firing instant kept in the window (the controller's
#: reaction is evidence too)
POST_SAMPLES = 2

#: correlated-series shortlist length
TOP_CORRELATED = 8

#: grid resolution for correlation and attribution within a window
WINDOW_BINS = 24

#: discrete events listed verbatim per incident (totals are always exact)
MAX_LISTED_EVENTS = 40

#: attribution group -> singular row label in the text report
_SINGULAR = {"tenants": "tenant", "sandboxes": "sandbox"}


class Evidence:
    """Normalized run evidence: series, alerts, actions, injections.

    One shape regardless of source.  ``series`` entries are dicts with
    ``session``/``name``/``labels``/``points``; ``alerts`` are
    :meth:`~repro.obs.alerts.Alert.to_dict` dicts; ``actions`` are
    :class:`~repro.powercap.telemetry.TelemetryRing` entries (plus
    ``session``); ``injections`` are fault-plan log payloads (plus
    ``session``/``t_ns``).
    """

    def __init__(self, source, kind):
        self.source = source
        self.kind = kind             # "bundle" | "flight"
        self.series = []
        self.alerts = []
        self.actions = []
        self.injections = []

    def add_series(self, session, name, labels, points):
        self.series.append({
            "session": session, "name": name, "labels": dict(labels or {}),
            "points": [(int(t), float(v)) for t, v in points],
        })

    def find_series(self, name, session=None, labels=None):
        """Matching series entries (label subset match), evidence order."""
        out = []
        for entry in self.series:
            if entry["name"] != name:
                continue
            if session is not None and entry["session"] != session:
                continue
            if labels and any(entry["labels"].get(k) != v
                              for k, v in labels.items()):
                continue
            out.append(entry)
        return out

    def merged_points(self, entries):
        """Points of several series entries merged in time order."""
        points = [p for entry in entries for p in entry["points"]]
        points.sort()
        return points


def series_key(name, labels):
    if not labels:
        return name
    return "{}{{{}}}".format(name, ",".join(
        "{}={}".format(k, labels[k]) for k in sorted(labels)))


# -- loaders -----------------------------------------------------------------------


def load(path):
    """Evidence from a flight dump file, a flight dir, or a bundle dir."""
    if os.path.isfile(path):
        return load_flight_dump(path)
    if os.path.isdir(path):
        if os.path.exists(os.path.join(path, "series.jsonl")):
            return load_bundle(path)
        dumps = sorted(
            name for name in os.listdir(path)
            if name.startswith("flight-") and name.endswith(".json"))
        if dumps:
            return [load_flight_dump(os.path.join(path, name))
                    for name in dumps]
        raise FileNotFoundError(
            "{}: neither a telemetry bundle (series.jsonl) nor a flight "
            "dump directory (flight-*.json)".format(path))
    raise FileNotFoundError(path)


def load_bundle(path):
    """Evidence from a ``--telemetry DIR`` bundle."""
    evidence = Evidence(path, "bundle")
    with open(os.path.join(path, "series.jsonl")) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            evidence.add_series(doc["session"], doc["series"],
                                doc.get("labels"), doc.get("points", ()))
    report = os.path.join(path, "report.json")
    if os.path.exists(report):
        with open(report) as handle:
            evidence.alerts = list(json.load(handle).get("alerts", ()))
    events = os.path.join(path, "events.jsonl")
    if os.path.exists(events):
        with open(events) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                doc = json.loads(line)
                if doc.get("kind") == "action":
                    evidence.actions.append(doc)
                elif doc.get("kind") == "inject":
                    evidence.injections.append(doc)
    return evidence


def load_flight_dump(path):
    """Evidence from one self-contained flight dump file."""
    with open(path) as handle:
        dump = json.load(handle)
    return evidence_from_dump(dump, source=path)


def evidence_from_dump(dump, source="<memory>"):
    """Evidence from an in-memory flight snapshot dict."""
    evidence = Evidence(source, "flight")
    for session in dump.get("sessions", ()):
        label = session.get("label", "")
        for entry in session.get("series", ()):
            evidence.add_series(label, entry["name"], entry.get("labels"),
                                entry.get("points", ()))
        for inj in session.get("injections", ()):
            evidence.injections.append(dict(inj, session=label,
                                            kind="inject"))
    for action in dump.get("actions", ()):
        doc = dict(action, kind="action")
        if "t" in doc:
            doc["t_ns"] = doc.pop("t")
        evidence.actions.append(doc)
    evidence.alerts = list(dump.get("alerts", ()))
    trigger = dump.get("trigger", {})
    if trigger.get("type") == "violation":
        # Violation-triggered dumps carry no Alert; synthesize an episode
        # so the walk below has a trigger to explain.
        evidence.alerts.append({
            "rule": "check." + trigger.get("invariant", "violation"),
            "severity": "critical",
            "session": trigger.get("component", ""),
            "series": "", "labels": {}, "t_ns": trigger.get("t_ns", 0),
            "value": 0.0, "streak": 1,
            "message": trigger.get("message", ""),
        })
    return evidence


# -- the incident walk -------------------------------------------------------------


def _median_gap(times):
    if len(times) < 2:
        return DEFAULT_GAP_NS
    gaps = sorted(b - a for a, b in zip(times, times[1:]) if b > a)
    return gaps[len(gaps) // 2] if gaps else DEFAULT_GAP_NS


def _pearson(a, b):
    n = len(a)
    if n < 2:
        return None
    mean_a = sum(a) / n
    mean_b = sum(b) / n
    da = [x - mean_a for x in a]
    db = [x - mean_b for x in b]
    var_a = sum(x * x for x in da)
    var_b = sum(x * x for x in db)
    if var_a <= 0 or var_b <= 0:
        return None          # a constant signal correlates with nothing
    r = sum(x * y for x, y in zip(da, db)) / math.sqrt(var_a * var_b)
    return max(-1.0, min(1.0, r))


def _window_points(points, t0, t1):
    return [(t, v) for t, v in points if t0 <= t < t1]


def _correlated(evidence, breached, grid, breached_values, t0, t1):
    """Other series ranked by |Pearson r| against the breached window."""
    scored = []
    for entry in evidence.series:
        if entry is breached:
            continue
        if len(_window_points(entry["points"], t0, t1)) < 2:
            continue
        values = hold_resample(entry["points"], grid)
        r = _pearson(list(breached_values), list(values))
        if r is None:
            continue
        scored.append({
            "session": entry["session"],
            "series": series_key(entry["name"], entry["labels"]),
            "r": round(r, 4),
        })
    scored.sort(key=lambda row: (-abs(row["r"]), row["session"],
                                 row["series"]))
    return scored[:TOP_CORRELATED]


def _scoped(evidence, name, session):
    """Series entries for ``name``, preferring the alert's own session.

    A bundle can hold several independent runs (e.g. both allocators'
    cluster sessions); attributing across them would double-count, so
    when the triggering session carries the series itself, only its
    entries are used — the all-sessions union is the fallback for
    evidence where the alert session has none (a checker violation, a
    node alert explained from cluster-level series).
    """
    if session:
        scoped = evidence.find_series(name, session=session)
        if scoped:
            return scoped
    return evidence.find_series(name)


def _attribution(evidence, alert, t0, t1):
    """Tenant- and sandbox-level accounting over the incident window."""
    out = {}
    session = alert.get("session", "")
    # tenants: cluster-level measured draw vs the cluster aggregate
    tenants = {}
    for entry in _scoped(evidence, "cluster.tenant_measured_w", session):
        tenant = entry["labels"].get("tenant")
        if tenant:
            tenants.setdefault(tenant, []).extend(entry["points"])
    total = evidence.merged_points(
        _scoped(evidence, "cluster.aggregate_w", session))
    if tenants and total:
        for points in tenants.values():
            points.sort()
        out["tenants"] = attribute_window(total, tenants, t0, t1,
                                          n_bins=WINDOW_BINS)
    # sandboxes: per-leaf measured draw vs the node daemon's aggregate;
    # entities are "session/leaf" so multi-node evidence stays unambiguous
    leaves = {}
    for entry in _scoped(evidence, "powercap.leaf_measured_w", session):
        leaf = entry["labels"].get("leaf")
        if leaf:
            name = "{}/{}".format(entry["session"], leaf)
            leaves.setdefault(name, []).extend(entry["points"])
    leaf_totals = evidence.merged_points(
        _scoped(evidence, "powercap.aggregate_w", session))
    if leaves and leaf_totals:
        for points in leaves.values():
            points.sort()
        out["sandboxes"] = attribute_window(leaf_totals, leaves, t0, t1,
                                            n_bins=WINDOW_BINS)
    return out


def _top(attribution, group):
    ranked = attribution.get(group, {}).get("policies", {}).get("per_sample")
    return ranked[0]["entity"] if ranked else None


def _grouped_injections(injections):
    groups = {}
    for inj in injections:
        site = inj.get("site", "?")
        group = groups.setdefault(site, {"site": site, "count": 0,
                                         "sessions": set()})
        group["count"] += 1
        if inj.get("session"):
            group["sessions"].add(inj["session"])
    return [
        {"site": site, "count": groups[site]["count"],
         "sessions": sorted(groups[site]["sessions"])}
        for site in sorted(groups)
    ]


def explain(evidence):
    """Incident reports for every alert episode in ``evidence``.

    ``evidence`` may be one :class:`Evidence` or a list of them (a flight
    dump directory); returns the deterministic report dict rendered by
    :func:`render_json`.
    """
    if isinstance(evidence, list):
        merged = []
        seen = set()
        for one in evidence:
            for incident in explain(one)["incidents"]:
                trig = incident["trigger"]
                key = (trig["rule"], trig["session"], trig["t_ns"])
                if key in seen:
                    continue          # same episode captured by two dumps
                seen.add(key)
                merged.append(incident)
        merged.sort(key=lambda i: (i["trigger"]["t_ns"],
                                   i["trigger"]["session"],
                                   i["trigger"]["rule"]))
        for seq, incident in enumerate(merged):
            incident["id"] = seq
        return {"format": "psbox-incidents", "version": 1,
                "source": [one.source for one in evidence],
                "incidents": merged}

    incidents = []
    episodes = sorted(evidence.alerts,
                      key=lambda a: (a["t_ns"], a["session"], a["rule"]))
    for seq, alert in enumerate(episodes):
        incidents.append(_incident(evidence, alert, seq))
    return {"format": "psbox-incidents", "version": 1,
            "source": evidence.source, "incidents": incidents}


def _incident(evidence, alert, seq):
    matches = evidence.find_series(alert["series"],
                                   session=alert["session"],
                                   labels=alert.get("labels") or None)
    breached = matches[0] if matches else None
    points = breached["points"] if breached else []
    gap = _median_gap([t for t, _v in points])
    streak = max(int(alert.get("streak", 1)), 1)
    t_fire = int(alert["t_ns"])
    t0 = t_fire - (streak + 1) * gap
    t1 = t_fire + POST_SAMPLES * gap

    incident = {
        "id": seq,
        "trigger": dict(alert),
        "window": {"t0_ns": t0, "t1_ns": t1, "gap_ns": gap},
        "breached": None,
        "correlated": [],
        "attribution": {},
        "top": {},
        "actions": [],
        "actions_total": 0,
        "injections": [],
        "injections_total": 0,
        "injection_sites": [],
    }
    if breached is not None:
        in_window = _window_points(points, t0, t1)
        values = [v for _t, v in in_window]
        incident["breached"] = {
            "session": breached["session"],
            "series": series_key(breached["name"], breached["labels"]),
            "points_in_window": len(in_window),
            "min": round(min(values), 6) if values else None,
            "max": round(max(values), 6) if values else None,
        }
        dt = (t1 - t0) / WINDOW_BINS
        grid = [t0 + dt * (i + 0.5) for i in range(WINDOW_BINS)]
        breached_values = hold_resample(points, grid)
        incident["correlated"] = _correlated(
            evidence, breached, grid, breached_values, t0, t1)

    incident["attribution"] = _attribution(evidence, alert, t0, t1)
    incident["top"] = {
        group: _top(incident["attribution"], group)
        for group in sorted(incident["attribution"])
    }

    actions = [a for a in evidence.actions
               if t0 <= int(a.get("t_ns", 0)) < t1
               and a.get("action") not in ("hold", "aggregate")]
    actions.sort(key=lambda a: (int(a["t_ns"]), a.get("session", ""),
                                a.get("node", "")))
    incident["actions_total"] = len(actions)
    incident["actions"] = actions[:MAX_LISTED_EVENTS]

    injections = [i for i in evidence.injections
                  if t0 <= int(i.get("t_ns", 0)) < t1]
    injections.sort(key=lambda i: (int(i["t_ns"]), i.get("session", ""),
                                   i.get("site", "")))
    incident["injections_total"] = len(injections)
    incident["injections"] = injections[:MAX_LISTED_EVENTS]
    incident["injection_sites"] = _grouped_injections(injections)
    return incident


# -- renderers ---------------------------------------------------------------------


def render_json(report):
    """The canonical byte-deterministic rendering (CI asserts on this)."""
    return json.dumps(report, indent=1, sort_keys=True) + "\n"


def format_incidents(report):
    """Aligned-text digest: one block per incident."""
    incidents = report["incidents"]
    if not incidents:
        return "explain: no alert episodes in {}".format(report["source"])
    blocks = []
    for incident in incidents:
        trig = incident["trigger"]
        window = incident["window"]
        lines = [
            "incident #{}: {} [{}] on {} at {:.4f}s".format(
                incident["id"], trig["rule"], trig["severity"],
                trig["session"] or "-", trig["t_ns"] / 1e9),
            "  window  {:.4f}s .. {:.4f}s".format(
                window["t0_ns"] / 1e9, window["t1_ns"] / 1e9),
            "  breach  {}".format(
                incident["breached"]["series"] if incident["breached"]
                else "(series not in evidence)"),
        ]
        if trig.get("message"):
            lines.append("  detail  {}".format(trig["message"]))
        for group in sorted(incident["top"]):
            if incident["top"][group]:
                lines.append("  top {:<9} {}".format(
                    _SINGULAR.get(group, group), incident["top"][group]))
        for site in incident["injection_sites"]:
            lines.append("  faults  {} x{} on {}".format(
                site["site"], site["count"],
                ", ".join(site["sessions"]) or "-"))
        if incident["correlated"]:
            rows = [[c["session"], c["series"], "{:+.3f}".format(c["r"])]
                    for c in incident["correlated"]]
            lines.append(format_table(["session", "series", "r"], rows,
                                      title="correlated series"))
        for group in sorted(incident["attribution"]):
            ranked = incident["attribution"][group]["policies"].get(
                "per_sample", [])
            if not ranked:
                continue
            rows = [[row["entity"], "{:.6f}".format(row["energy_j"]),
                     "{:5.1f}%".format(100.0 * row["share"])]
                    for row in ranked]
            lines.append(format_table(
                [_SINGULAR.get(group, group), "energy (J)", "share"],
                rows, title="{} attribution (per_sample)".format(group)))
        if incident["actions_total"]:
            lines.append("  actions {} actuator change(s) in window".format(
                incident["actions_total"]))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"


def overlay_trace_events(report):
    """Chrome-trace overlay: attributed-power counter tracks + instants.

    One pid per incident; per-entity ``"C"`` counter samples graph each
    policy's per-sample attribution across the window bins, and alert /
    injection / action instants mark the discrete causes on their own
    tracks.  Merge-friendly with the main exported trace (distinct pids).
    """
    events = []
    for incident in report["incidents"]:
        pid = 1000 + incident["id"]
        trig = incident["trigger"]
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "ts": 0,
            "name": "process_name",
            "args": {"name": "incident #{} {}".format(
                incident["id"], trig["rule"])},
        })
        events.append({
            "ph": "i", "s": "p", "cat": "alert", "name": trig["rule"],
            "pid": pid, "tid": 1, "ts": trig["t_ns"] / 1000.0,
            "args": {"message": trig.get("message", "")},
        })
        for group in sorted(incident["attribution"]):
            attribution = incident["attribution"][group]
            t0, dt = attribution["t0_ns"], attribution["dt_ns"]
            ranked = attribution["policies"].get("per_sample", [])
            for row in ranked:
                # one counter sample per bin edge is overkill for a
                # report overlay; graph the window-mean attributed power
                mean_w = (row["energy_j"] * 1e9 /
                          (attribution["t1_ns"] - t0)
                          if attribution["t1_ns"] > t0 else 0.0)
                for edge in (t0, attribution["t1_ns"]):
                    events.append({
                        "ph": "C", "pid": pid, "tid": 2,
                        "name": "attributed.{}".format(row["entity"]),
                        "ts": edge / 1000.0,
                        "args": {"watts": round(mean_w, 6)},
                    })
        for inj in incident["injections"]:
            events.append({
                "ph": "i", "s": "t", "cat": "fault",
                "name": "inject." + inj.get("site", "?"),
                "pid": pid, "tid": 3, "ts": inj["t_ns"] / 1000.0,
                "args": {"session": inj.get("session", ""),
                         "fault": inj.get("fault", "")},
            })
        for action in incident["actions"]:
            events.append({
                "ph": "i", "s": "t", "cat": "powercap",
                "name": "action." + action.get("action", "?"),
                "pid": pid, "tid": 4, "ts": action["t_ns"] / 1000.0,
                "args": {"session": action.get("session", ""),
                         "node": action.get("node", ""),
                         "level": action.get("level", 0.0)},
            })
    return events


def export_incident_trace(report, path):
    """Write the overlay trace JSON; returns the event count."""
    events = overlay_trace_events(report)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ns"},
                  handle, sort_keys=True)
    return len(events)


def write_reports(report, out_dir):
    """Write incidents.json / incidents.txt / incident_trace.json.

    Returns the three paths.
    """
    os.makedirs(out_dir, exist_ok=True)
    json_path = os.path.join(out_dir, "incidents.json")
    with open(json_path, "w") as handle:
        handle.write(render_json(report))
    text_path = os.path.join(out_dir, "incidents.txt")
    with open(text_path, "w") as handle:
        handle.write(format_incidents(report))
    trace_path = os.path.join(out_dir, "incident_trace.json")
    export_incident_trace(report, trace_path)
    return json_path, text_path, trace_path
