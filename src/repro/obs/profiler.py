"""Host-side wall-clock profiler for the simulator's event loop.

Everything else in ``repro.obs`` measures *virtual* time; this measures the
real seconds the Python process spends inside each event-handler callsite.
The simulator times every dispatched event with ``time.perf_counter`` when a
profiler is installed (``sim.profile``), and the profiler aggregates by the
handler's ``module.qualname`` — which is exactly the granularity you need to
decide which kernel hot path to optimize next.

Like the tracer, the profiler is outside the simulation: it changes no
virtual-time behaviour (runs stay bit-identical), it only costs wall clock.
"""

from repro.analysis.report import format_table


class EventLoopProfiler:
    """Aggregates wall-clock time per event-handler callsite."""

    __slots__ = ("stats", "events", "total_s")

    def __init__(self):
        self.stats = {}      # callsite -> [calls, seconds]
        self.events = 0
        self.total_s = 0.0

    def install(self, sim):
        """Attach to a simulator (``sim.profile``); returns self."""
        sim.profile = self
        return self

    def record(self, fn, elapsed_s):
        """One dispatched event: ``fn`` ran for ``elapsed_s`` wall seconds."""
        key = callsite(fn)
        entry = self.stats.get(key)
        if entry is None:
            entry = self.stats[key] = [0, 0.0]
        entry[0] += 1
        entry[1] += elapsed_s
        self.events += 1
        self.total_s += elapsed_s

    def top(self, n=10):
        """The ``n`` hottest callsites: (callsite, calls, seconds), by
        cumulative wall time."""
        ranked = sorted(
            self.stats.items(), key=lambda item: item[1][1], reverse=True
        )
        return [(key, calls, seconds)
                for key, (calls, seconds) in ranked[:n]]

    def format_table(self, n=10):
        rows = []
        for key, calls, seconds in self.top(n):
            share = 100.0 * seconds / self.total_s if self.total_s else 0.0
            mean_us = 1e6 * seconds / calls if calls else 0.0
            rows.append([
                key, str(calls), "{:.4f}".format(seconds),
                "{:.1f}".format(mean_us), "{:.1f}%".format(share),
            ])
        title = ("event-loop profile — {} events, {:.3f} s wall"
                 .format(self.events, self.total_s))
        if not rows:
            return title + " (no events profiled)"
        return format_table(
            ["handler", "calls", "total s", "mean us", "share"], rows,
            title=title,
        )


def callsite(fn):
    """A stable ``module.qualname`` label for an event handler."""
    module = getattr(fn, "__module__", None) or "?"
    qualname = getattr(fn, "__qualname__", None) or repr(fn)
    return "{}.{}".format(module, qualname)
