"""repro.obs — unified tracing, metrics, and profiling for the psbox stack.

See docs/OBSERVABILITY.md for the full guide.  The short version:

>>> from repro.obs import Obs
>>> obs = Obs(platform.sim, label="demo").install()   # before running
>>> platform.sim.run(until=SEC)
>>> from repro.obs import export_chrome_trace
>>> export_chrome_trace([obs], "trace.json")          # open in Perfetto

or, from the command line::

    python -m repro.experiments fig6 --trace t.json --metrics m.json
"""

from repro.obs import explain, flight
from repro.obs.alerts import Alert, AlertEngine, AlertRule, default_rules
from repro.obs.explain import format_incidents, render_json
from repro.obs.exporters import (
    chrome_trace_events,
    events_jsonl_lines,
    export_chrome_trace,
    export_events_jsonl,
    export_metrics,
    export_timeline_jsonl,
    format_metrics_table,
    metrics_snapshot,
    timeline_jsonl_lines,
)
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.openmetrics import (
    export_openmetrics,
    openmetrics_lines,
    render_openmetrics,
)
from repro.obs.profiler import EventLoopProfiler
from repro.obs.session import Obs, kernel_logs
from repro.obs.timeline import Series, Timeline
from repro.obs.tracer import Span, Tracer

__all__ = [
    "Obs",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Timeline",
    "Series",
    "Alert",
    "AlertEngine",
    "AlertRule",
    "default_rules",
    "EventLoopProfiler",
    "FlightRecorder",
    "chrome_trace_events",
    "events_jsonl_lines",
    "explain",
    "flight",
    "export_chrome_trace",
    "export_events_jsonl",
    "export_metrics",
    "export_openmetrics",
    "export_timeline_jsonl",
    "format_incidents",
    "metrics_snapshot",
    "openmetrics_lines",
    "render_json",
    "render_openmetrics",
    "timeline_jsonl_lines",
    "format_metrics_table",
    "kernel_logs",
]
