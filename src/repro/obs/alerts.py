"""Declarative SLO/alert rules evaluated on each timeline sample.

A rule is pure data — *which* series, *what* condition, *how long* it must
persist — and the :class:`AlertEngine` interprets it as samples stream off
the :class:`~repro.obs.timeline.Timeline`.  Streaming evaluation matters
twice: ring buffers evict old samples (a post-hoc scan could miss a breach
the window already lost), and firing *during* the run lets the engine drop
a tracer instant at the exact virtual time the SLO broke — so the alert
lines up with its cause on the Perfetto timeline.

Semantics:

* a rule *fires* once its condition has held for ``for_samples``
  consecutive samples of one series, and re-arms only after a sample
  where the condition is false (one alert per breach episode, not one
  per sample);
* ``at_end=True`` rules are instead evaluated once, in
  :meth:`AlertEngine.finalize`, against each matching series' last
  sample — the shape of "unfinished spans at trace end" or a placement
  drop-rate known only when placement is done;
* the engine is read-only (no RNG, no events): watching a run never
  perturbs it, so telemetry-on fingerprints stay bit-identical.
"""

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.obs import flight
from repro.obs.timeline import canonical_labels

#: supported rule conditions: value `op` threshold
_OPS = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
    "abs>": lambda value, threshold: abs(value) > threshold,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative SLO rule over a timeline series."""

    name: str
    series: str              # series name the rule watches
    op: str = ">"            # one of _OPS
    threshold: float = 0.0
    for_samples: int = 1     # consecutive breaching samples before firing
    labels: tuple = ()       # ((key, value), ...) subset the series must carry
    severity: str = "warning"    # "warning" | "critical"
    at_end: bool = False     # evaluate once at finalize, on the last sample
    description: str = ""

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError("unknown rule op {!r} (one of {})".format(
                self.op, sorted(_OPS)))
        if self.for_samples < 1:
            raise ValueError("for_samples must be >= 1")
        object.__setattr__(self, "labels",
                           canonical_labels(dict(self.labels)))

    def matches(self, series):
        """Does this rule watch ``series``? (name + label subset)"""
        if series.name != self.series:
            return False
        if self.labels:
            have = dict(series.labels)
            return all(have.get(k) == v for k, v in self.labels)
        return True

    def breached(self, value):
        return _OPS[self.op](value, self.threshold)

    def to_dict(self):
        return {
            "name": self.name, "series": self.series, "op": self.op,
            "threshold": self.threshold, "for_samples": self.for_samples,
            "labels": dict(self.labels), "severity": self.severity,
            "at_end": self.at_end, "description": self.description,
        }


@dataclass
class Alert:
    """One fired rule: where, when (virtual ns), and on what evidence."""

    rule: str
    severity: str
    session: str
    series: str
    labels: dict
    t_ns: int
    value: float
    streak: int
    message: str = ""

    def to_dict(self):
        return {
            "rule": self.rule, "severity": self.severity,
            "session": self.session, "series": self.series,
            "labels": dict(self.labels), "t_ns": self.t_ns,
            "value": self.value, "streak": self.streak,
            "message": self.message,
        }


def default_rules(compliance_band=0.01, compliance_epochs=4,
                  drop_rate=0.05, starvation_w=0.02, starvation_epochs=4):
    """The stock SLO set the ``--telemetry``/``--report`` CLI arms.

    * ``cap.compliance`` — the global cap loop's aggregate outside the
      ±``compliance_band`` band for more than ``compliance_epochs``
      consecutive epochs (nvPAX's compliance-over-time framing);
    * ``node.cap.compliance`` — same property one level down, on a node
      daemon's own root cap (longer fuse: node caps are rewritten every
      epoch, so transients are expected);
    * ``placement.drop_rate`` — the placement engine dropped more than
      ``drop_rate`` of all instances (provisioning failure);
    * ``tenant.starvation`` — a tenant with live users whose total grant
      stayed under ``starvation_w`` watts for ``starvation_epochs``
      consecutive epochs;
    * ``trace.unfinished_spans`` — spans still open at trace end (a
      liveness bug: dropped IPI, stuck drain), evaluated at finalize.
    """
    return [
        AlertRule("cap.compliance", series="cluster.compliance_err",
                  op="abs>", threshold=compliance_band,
                  for_samples=compliance_epochs, severity="critical",
                  description="cluster aggregate outside the cap band"),
        AlertRule("node.cap.compliance", series="powercap.compliance_err",
                  op="abs>", threshold=compliance_band,
                  for_samples=4 * compliance_epochs, severity="warning",
                  description="node aggregate outside its root-cap band"),
        AlertRule("placement.drop_rate", series="placement.drop_rate",
                  op=">", threshold=drop_rate, severity="critical",
                  description="placement dropped too many instances"),
        AlertRule("tenant.starvation", series="cluster.tenant_grant_w",
                  op="<", threshold=starvation_w,
                  for_samples=starvation_epochs, severity="critical",
                  description="active tenant granted almost no power"),
        AlertRule("trace.unfinished_spans", series="obs.unfinished_spans",
                  op=">", threshold=0.0, at_end=True,
                  description="spans still open at trace end"),
    ]


class AlertEngine:
    """Evaluates a rule set against every watched session's timeline."""

    def __init__(self, rules=None):
        self.rules = list(rules if rules is not None else default_rules())
        self.alerts = []
        self._watched = []       # (obs, timeline, subscriber fn)
        self._streaks = {}       # (rule name, session, series key) -> count
        self._fired = set()      # keys currently latched (fired, not re-armed)
        self._finalized = False

    # -- wiring --------------------------------------------------------------------

    def add_rule(self, rule):
        self.rules.append(rule)
        return rule

    def watch(self, obs):
        """Stream ``obs.timeline`` samples through the rules; returns self.

        Sessions without a timeline are ignored (nothing to evaluate).
        Idempotent per session: re-watching an already-watched session
        must not stack a second subscriber (each extra subscriber would
        double-count streaks and fire every rule twice).
        """
        timeline = getattr(obs, "timeline", None)
        if timeline is None:
            return self
        if any(watched is obs for watched, _tl, _fn in self._watched):
            return self

        def on_sample(series, t_ns, value, _obs=obs):
            self._on_sample(_obs, series, t_ns, value)

        timeline.subscribe(on_sample)
        self._watched.append((obs, timeline, on_sample))
        return self

    def unwatch_all(self):
        for _obs, timeline, fn in self._watched:
            timeline.unsubscribe(fn)
        del self._watched[:]

    # -- evaluation ------------------------------------------------------------------

    def _on_sample(self, obs, series, t_ns, value):
        for rule in self.rules:
            if rule.at_end or not rule.matches(series):
                continue
            key = (rule.name, obs.label, series.key)
            if rule.breached(value):
                streak = self._streaks.get(key, 0) + 1
                self._streaks[key] = streak
                if streak >= rule.for_samples and key not in self._fired:
                    self._fired.add(key)
                    self._fire(rule, obs, series, t_ns, value, streak)
            else:
                self._streaks[key] = 0
                self._fired.discard(key)

    def _fire(self, rule, obs, series, t_ns, value, streak):
        message = "{} {} {:g} for {} sample(s) (value {:g})".format(
            series.key, rule.op, rule.threshold, streak, value)
        self.alerts.append(Alert(
            rule=rule.name, severity=rule.severity, session=obs.label,
            series=series.name, labels=dict(series.labels), t_ns=t_ns,
            value=value, streak=streak, message=message,
        ))
        tracer = getattr(obs, "tracer", None)
        if tracer is not None:
            tracer.instant("alert." + rule.name, cat="alert", track="alerts",
                           severity=rule.severity, series=series.key,
                           value=round(value, 6))
        if flight._recorder is not None:
            flight._recorder.on_alert(self.alerts[-1], obs=obs, engine=self)

    def finalize(self):
        """Run the ``at_end`` rules against each series' last sample.

        Callers record end-of-run facts (the unfinished-span count) into
        the timelines first; finalize is idempotent.
        """
        if self._finalized:
            return self
        self._finalized = True
        for obs, timeline, _fn in self._watched:
            for series in timeline.all():
                last = series.last()
                if last is None:
                    continue
                t_ns, value = last
                for rule in self.rules:
                    if not rule.at_end or not rule.matches(series):
                        continue
                    if rule.breached(value):
                        key = (rule.name, obs.label, series.key)
                        if key not in self._fired:
                            self._fired.add(key)
                            self._fire(rule, obs, series, t_ns, value, 1)
        return self

    # -- reporting -------------------------------------------------------------------

    @property
    def ok(self):
        """True when nothing critical fired."""
        return not any(a.severity == "critical" for a in self.alerts)

    def summary(self):
        """The structured report: rules, fired alerts, per-rule counts."""
        counts = {}
        for alert in self.alerts:
            counts[alert.rule] = counts.get(alert.rule, 0) + 1
        return {
            "ok": self.ok,
            "rules": [rule.to_dict() for rule in self.rules],
            "alerts": [alert.to_dict() for alert in sorted(
                self.alerts, key=lambda a: (a.t_ns, a.session, a.rule))],
            "counts": dict(sorted(counts.items())),
        }

    def format_report(self):
        """Aligned-text rendering of the summary (the ``--report`` output)."""
        summary = self.summary()
        if not summary["alerts"]:
            return ("SLO report: ok — no alerts fired "
                    "({} rules evaluated)".format(len(self.rules)))
        rows = [
            [a["rule"], a["severity"], a["session"],
             "{:.4f}".format(a["t_ns"] / 1e9), a["series"],
             "{:g}".format(a["value"])]
            for a in summary["alerts"]
        ]
        table = format_table(
            ["rule", "severity", "session", "t (s)", "series", "value"],
            rows, title="SLO report — {} alert(s), {}".format(
                len(rows), "ok" if summary["ok"] else "NOT OK"))
        return table
