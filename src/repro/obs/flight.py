"""The flight recorder: an always-on black box that dumps on trouble.

Production power stacks keep a bounded "flight recorder" running at all
times: rings of recent events, actuator decisions, fault injections, and
the tail of every telemetry series.  Nothing is written while the run is
healthy; the moment an :class:`~repro.obs.alerts.AlertRule` fires or the
:class:`~repro.check.checker.InvariantChecker` records a violation, the
recorder snapshots everything it can see into one self-contained JSON dump
— the evidence the :mod:`repro.obs.explain` engine later turns into a
root-cause incident report, even when the live rings have long since
evicted the breach.

Wiring follows the repo's dormant-cost rule (DESIGN.md §5h): a trigger or
source site pays exactly **one branch** when no recorder is armed —
``if flight._recorder is not None`` against this module's global.  The
armed sites are:

* ``AlertEngine._fire`` — every fired alert triggers a snapshot;
* ``InvariantChecker._flag`` — every recorded violation triggers one;
* the powercap daemon tick and the cluster epoch sampler — these never
  trigger dumps, they only *register* their decision rings (the
  :class:`~repro.powercap.telemetry.TelemetryRing` of actuator actions)
  so snapshots can include them.

Everything the recorder does is read-only with respect to the simulation:
it draws no RNG, schedules no events, and only ever reads rings that
already exist — so flight-recorder-on runs stay sha256 bit-identical to
bare ones (asserted by the differential matrix's ``flight-on`` column).
"""

import json
import os

#: the process-global armed recorder; trigger sites branch on this being
#: None — that read-and-branch is their entire dormant cost
_recorder = None

FORMAT = "psbox-flight"
VERSION = 1


def arm(recorder):
    """Make ``recorder`` the process-global flight recorder; returns it."""
    global _recorder
    _recorder = recorder
    return recorder


def disarm():
    """Detach the global recorder (trigger sites go back to one branch)."""
    global _recorder
    _recorder = None


def active():
    """The armed recorder, or None."""
    return _recorder


def _jsonable(value):
    """``value`` reduced to JSON-safe primitives, deterministically.

    Unknown objects become their type name (never ``repr`` — memory
    addresses would make dumps differ run to run).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return "<{}>".format(type(value).__name__)


class FlightRecorder:
    """Bounded black-box capture with snapshot-on-trigger semantics.

    ``sessions`` is a list of :class:`~repro.obs.session.Obs` sessions or
    a zero-argument callable returning one (the CLI passes
    ``obs_runtime.sessions`` so late-booted simulators are covered).
    ``out_dir`` of None keeps dumps in memory only (tests, the
    differential matrix); a path writes ``flight-NNN.json`` files plus a
    ``manifest.json`` on :meth:`flush`.
    """

    def __init__(self, out_dir=None, sessions=(), series_tail=256,
                 events_tail=256, max_dumps=16):
        if series_tail < 1 or events_tail < 1:
            raise ValueError("flight tails must be >= 1")
        if max_dumps < 1:
            raise ValueError("max_dumps must be >= 1")
        self.out_dir = out_dir
        self.series_tail = series_tail
        self.events_tail = events_tail
        self.max_dumps = max_dumps
        self.dumps = []          # snapshot dicts, trigger order
        self.paths = []          # files written (out_dir set)
        self.suppressed = 0      # triggers past max_dumps
        self._sessions = sessions
        self._rings = {}         # id -> (label, TelemetryRing); insertion order
        self._alerts = []        # every alert seen, dump order context

    # -- source registration (the "note" sites) -------------------------------

    def watch(self, obs):
        """Explicitly add one session (when ``sessions`` is a list)."""
        if not callable(self._sessions):
            self._sessions = list(self._sessions)
            if obs not in self._sessions:
                self._sessions.append(obs)
        return self

    def note_ring(self, ring, label):
        """Register one actuator-decision ring under a session label.

        Idempotent per ring object; called from the powercap tick (and,
        for every node, from the cluster epoch sampler), so the ring is
        known to the recorder before any trigger can fire.
        """
        key = id(ring)
        if key not in self._rings:
            self._rings[key] = (label, ring)

    def note_cluster(self, nodes):
        """Register every cluster node's controller ring (epoch sampler)."""
        for node in nodes:
            controller = getattr(node, "controller", None)
            if controller is None:
                continue
            obs = getattr(node.platform.sim, "obs", None)
            label = obs.label if obs is not None and obs.label else node.name
            self.note_ring(controller.telemetry, label)

    # -- triggers -------------------------------------------------------------

    def on_alert(self, alert, obs=None, engine=None):
        """An :class:`~repro.obs.alerts.Alert` fired: snapshot."""
        self._alerts.append(alert.to_dict())
        self.snapshot(dict(alert.to_dict(), type="alert"))

    def on_violation(self, violation, sim=None):
        """The invariant checker flagged ``violation``: snapshot."""
        self.snapshot({
            "type": "violation",
            "t_ns": violation.t,
            "invariant": violation.invariant,
            "component": violation.component,
            "event": violation.event,
            "message": violation.message,
        })

    # -- the snapshot itself --------------------------------------------------

    def sessions(self):
        sessions = self._sessions
        return list(sessions() if callable(sessions) else sessions)

    def snapshot(self, trigger):
        """Capture one self-contained dump; returns it (or None if capped).

        Read-only against the simulation: every ring it copies already
        exists, and nothing here draws RNG or schedules events.
        """
        if len(self.dumps) >= self.max_dumps:
            self.suppressed += 1
            return None
        dump = {
            "format": FORMAT,
            "version": VERSION,
            "seq": len(self.dumps),
            "trigger": _jsonable(trigger),
            "sessions": [self._session_snapshot(obs)
                         for obs in self.sessions()],
            "actions": self._actions_snapshot(),
            "alerts": list(self._alerts),
            "suppressed": self.suppressed,
        }
        self.dumps.append(dump)
        if self.out_dir is not None:
            self._write(dump)
        return dump

    def _session_snapshot(self, obs):
        snap = {
            "label": obs.label,
            "now_ns": obs.sim.now,
            "series": [],
            "instants": [],
            "logs": {},
            "injections": [],
        }
        timeline = getattr(obs, "timeline", None)
        if timeline is not None:
            for series in timeline.all():
                points = series.points()[-self.series_tail:]
                snap["series"].append({
                    "name": series.name,
                    "labels": dict(series.labels),
                    "dropped": series.dropped,
                    "disordered": series.disordered,
                    "points": [[t, v] for t, v in points],
                })
        tracer = getattr(obs, "tracer", None)
        if tracer is not None:
            snap["instants"] = [
                [t, track, name, cat, _jsonable(args)]
                for t, track, name, cat, args
                in tracer.instants[-self.events_tail:]
            ]
        # the kernel's bounded event rings: the "recent dispatched events"
        # black box — scheduling decisions, drains, governor switches
        if getattr(obs, "kernel", None) is not None:
            from repro.obs.session import kernel_logs

            for log in kernel_logs(obs.kernel):
                records = list(log)[-self.events_tail:]
                # "seq" labels come from process-global counters (see
                # repro.faults.diff) — strip them so dumps from the same
                # seed are byte-identical run to run
                snap["logs"][log.name] = {
                    "retained": len(log),
                    "dropped": log.dropped,
                    "tail": [[t, kind, _jsonable(
                        {k: v for k, v in payload.items() if k != "seq"})]
                             for t, kind, payload in records],
                }
        plan = getattr(obs.sim, "faults", None)
        if plan is not None:
            snap["injections"] = [
                dict(_jsonable(payload), t_ns=t)
                for t, kind, payload in list(plan.log)[-self.events_tail:]
                if kind == "inject"
            ]
        return snap

    def _actions_snapshot(self):
        """Actuator decisions from every noted controller ring, tails."""
        out = []
        for label, ring in self._rings.values():
            for entry in ring.records()[-self.events_tail:]:
                out.append(dict(_jsonable(entry), session=label))
        return out

    def _write(self, dump):
        os.makedirs(self.out_dir, exist_ok=True)
        path = os.path.join(self.out_dir,
                            "flight-{:03d}.json".format(dump["seq"]))
        with open(path, "w") as handle:
            json.dump(dump, handle, indent=1, sort_keys=True)
            handle.write("\n")
        self.paths.append(path)
        return path

    def flush(self):
        """Write the manifest (out_dir set); returns the dump count."""
        if self.out_dir is not None and (self.paths or self.suppressed):
            os.makedirs(self.out_dir, exist_ok=True)
            manifest = {
                "format": FORMAT,
                "version": VERSION,
                "dumps": [os.path.basename(p) for p in self.paths],
                "suppressed": self.suppressed,
                "triggers": [d["trigger"] for d in self.dumps],
            }
            path = os.path.join(self.out_dir, "manifest.json")
            with open(path, "w") as handle:
                json.dump(manifest, handle, indent=1, sort_keys=True)
                handle.write("\n")
        return len(self.dumps)
