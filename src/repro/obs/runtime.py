"""Process-global observability wiring for the experiment CLI.

The experiment drivers boot many independent simulators per figure; this
module is how one ``--trace``/``--metrics``/``--profile`` invocation reaches
all of them without threading a parameter through every driver.  The CLI
calls :func:`configure` once; :func:`install` — called by
``repro.experiments.common.boot`` on every fresh simulator — then attaches
an :class:`~repro.obs.session.Obs` session (and the shared wall-clock
profiler) to each run.  With nothing configured, ``install`` is a no-op and
experiments behave exactly as before.
"""

from repro.obs.profiler import EventLoopProfiler
from repro.obs.session import Obs

_config = None       # dict of configure() kwargs, or None (inactive)
_sessions = []       # Obs sessions in boot order
_profiler = None     # one EventLoopProfiler shared across runs
_label_prefix = ""
_label_counts = {}


def configure(tracing=False, metrics=True, profiling=False):
    """Arm observability for every simulator booted from now on."""
    global _config
    _config = {"tracing": tracing, "metrics": metrics,
               "profiling": profiling}


def is_active():
    return _config is not None


def set_label_prefix(prefix):
    """Label subsequent sessions ``<prefix>:<n>`` (one per experiment)."""
    global _label_prefix
    _label_prefix = prefix


def install(sim, kernel=None, label=""):
    """Attach a session to a fresh simulator; returns it (or None)."""
    if _config is None:
        return None
    global _profiler
    if not label:
        n = _label_counts.get(_label_prefix, 0) + 1
        _label_counts[_label_prefix] = n
        label = "{}:{}".format(_label_prefix or "run", n)
    obs = Obs(sim, label=label, tracing=_config["tracing"]).install()
    if kernel is not None:
        obs.bind_kernel(kernel)
    _sessions.append(obs)
    if _config["profiling"]:
        if _profiler is None:
            _profiler = EventLoopProfiler()
        _profiler.install(sim)
    return obs


def sessions():
    return list(_sessions)


def drain_sessions():
    """Hand over and forget the accumulated sessions.

    Parallel workers (``repro.par.worker``) call this after every shard so
    each shard ships exactly its own metrics home — sessions must not leak
    into the next shard's snapshot.
    """
    drained = list(_sessions)
    _sessions.clear()
    return drained


def profiler():
    return _profiler


def reset():
    """Disarm and forget everything (the CLI's finally-block)."""
    global _config, _profiler, _label_prefix
    _config = None
    _profiler = None
    _label_prefix = ""
    _sessions.clear()
    _label_counts.clear()
