"""Process-global observability wiring for the experiment CLI.

The experiment drivers boot many independent simulators per figure; this
module is how one ``--trace``/``--metrics``/``--profile``/``--telemetry``
invocation reaches all of them without threading a parameter through every
driver.  The CLI calls :func:`configure` once; :func:`install` — called by
``repro.experiments.common.boot`` on every fresh simulator — then attaches
an :class:`~repro.obs.session.Obs` session (and the shared wall-clock
profiler) to each run.  With nothing configured, ``install`` is a no-op and
experiments behave exactly as before.

Telemetry adds two shared pieces: every installed session gets its own
:class:`~repro.obs.timeline.Timeline`, and one process-wide
:class:`~repro.obs.alerts.AlertEngine` watches them all — so one
``--report`` covers a whole cluster of sessions.
"""

from repro.obs import flight as flight_mod
from repro.obs.profiler import EventLoopProfiler
from repro.obs.session import Obs
from repro.obs.timeline import Timeline

_config = None       # dict of configure() kwargs, or None (inactive)
_sessions = []       # Obs sessions in boot order
_profiler = None     # one EventLoopProfiler shared across runs
_alerts = None       # one AlertEngine watching every telemetry session
_label_prefix = ""
_label_counts = {}

#: ring capacity of each session's timeline series
TIMELINE_CAPACITY = 4096


def configure(tracing=False, metrics=True, profiling=False, telemetry=False,
              rules=None, flight=False, flight_dir=None):
    """Arm observability for every simulator booted from now on.

    ``telemetry=True`` attaches a :class:`Timeline` to each session and
    stands up the process-wide alert engine with ``rules`` (default:
    :func:`repro.obs.alerts.default_rules`).  ``flight=True`` additionally
    arms a process-global :class:`~repro.obs.flight.FlightRecorder` over
    all installed sessions (dumps to ``flight_dir`` when given, in-memory
    otherwise) — snapshots fire from the alert engine and the invariant
    checker.
    """
    global _config, _alerts
    _config = {"tracing": tracing, "metrics": metrics,
               "profiling": profiling, "telemetry": telemetry}
    if telemetry:
        from repro.obs.alerts import AlertEngine

        _alerts = AlertEngine(rules)
    if flight:
        flight_mod.arm(flight_mod.FlightRecorder(
            out_dir=flight_dir, sessions=sessions))


def is_active():
    return _config is not None


def telemetry_active():
    return _config is not None and _config["telemetry"]


def set_label_prefix(prefix):
    """Label subsequent sessions ``<prefix>:<n>`` (one per experiment)."""
    global _label_prefix
    _label_prefix = prefix


def install(sim, kernel=None, label=""):
    """Attach a session to a fresh simulator; returns it (or None)."""
    if _config is None:
        return None
    global _profiler
    if not label:
        n = _label_counts.get(_label_prefix, 0) + 1
        _label_counts[_label_prefix] = n
        label = "{}:{}".format(_label_prefix or "run", n)
    timeline = Timeline(TIMELINE_CAPACITY) if _config["telemetry"] else None
    obs = Obs(sim, label=label, tracing=_config["tracing"],
              timeline=timeline).install()
    if kernel is not None:
        obs.bind_kernel(kernel)
    _sessions.append(obs)
    if _alerts is not None:
        _alerts.watch(obs)
    if _config["profiling"]:
        if _profiler is None:
            _profiler = EventLoopProfiler()
        _profiler.install(sim)
    return obs


def sessions():
    return list(_sessions)


def drain_sessions():
    """Hand over and forget the accumulated sessions.

    Parallel workers (``repro.par.worker``) call this after every shard so
    each shard ships exactly its own metrics home — sessions must not leak
    into the next shard's snapshot.
    """
    drained = list(_sessions)
    _sessions.clear()
    return drained


def profiler():
    return _profiler


def alert_engine():
    """The process-wide alert engine (None unless telemetry is armed)."""
    return _alerts


def finalize_telemetry():
    """Close out telemetry: record end-of-run facts, run ``at_end`` rules.

    Stamps each telemetry session's unfinished-span count into its
    timeline (series ``obs.unfinished_spans`` at the session's final
    virtual time), then finalizes the alert engine.  Returns the engine
    (None when telemetry was never armed).  Idempotent via the engine.
    """
    if _alerts is None:
        return None
    for obs in _sessions:
        if obs.timeline is not None:
            obs.timeline.record("obs.unfinished_spans", obs.sim.now,
                                obs.tracer.unfinished_count())
    return _alerts.finalize()


def flight_recorder():
    """The armed flight recorder (None unless ``--flight`` configured it)."""
    return flight_mod.active()


def reset():
    """Disarm and forget everything (the CLI's finally-block)."""
    global _config, _profiler, _alerts, _label_prefix
    if _alerts is not None:
        _alerts.unwatch_all()
    flight_mod.disarm()
    _config = None
    _profiler = None
    _alerts = None
    _label_prefix = ""
    _sessions.clear()
    _label_counts.clear()
