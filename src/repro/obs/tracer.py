"""Span-based tracing over virtual time.

A :class:`Span` is a named interval of *simulation* time with a category, a
display track, structured arguments, and an optional parent — the causal
structure the exporters turn into a Chrome-trace/Perfetto timeline.  Three
properties make the tracer safe to leave in kernel code:

* **read-only** — the tracer never schedules events and never draws RNG, so
  an enabled tracer observes a run without perturbing it (the differential
  tests assert bit-identical fingerprints with tracing on, off, and absent);
* **zero-cost when off** — components guard every hook with
  ``obs = self.sim.obs`` / ``if obs is not None``; with no session installed
  an instrumentation point is one attribute read and a branch;
* **causally linked across events** — scheduling an event while a span is
  current stamps that span onto the event (see the scheduling entry points
  in ``Simulator``), so a span begun in one event handler is the parent of
  spans begun in the continuation, even though the event loop unwound in
  between.  This is how an IPI-shootdown span begun at ``begin_coschedule``
  parents the per-core arrival work that runs microseconds later.

The simulator keys its per-event bookkeeping off ``_seen_spans``: until the
first ``begin`` call there is no context to propagate or reset, so the event
loop's entire tracing cost is one flag check per event.

Span lifetimes are explicit: ``begin`` returns a handle, ``end`` closes it.
Spans that never close (a dropped shootdown IPI, a drain that never
converges) stay open and are flagged ``unfinished`` by the exporter — an
unclosed span *is* the story of a liveness bug.
"""

class Span:
    """One open or closed interval of virtual time."""

    __slots__ = ("id", "parent_id", "name", "cat", "track", "start", "end",
                 "args")

    def __init__(self, span_id, parent_id, name, cat, track, start, args):
        self.id = span_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.track = track
        self.start = start
        self.end = None
        self.args = args

    @property
    def closed(self):
        return self.end is not None

    @property
    def duration(self):
        """Span length in ns (None while still open)."""
        if self.end is None:
            return None
        return self.end - self.start

    def __repr__(self):
        state = "[{}..{}]".format(self.start, self.end) if self.closed \
            else "[{}..".format(self.start)
        return "Span({}, {!r}, {})".format(self.id, self.name, state)


class Tracer:
    """Collects spans, instant events, and counter samples for one run.

    The *current* span — the innermost span begun in this event cascade, or
    the span inherited from the event that scheduled this cascade — becomes
    the default parent of new spans and is what the simulator stamps onto
    newly scheduled events.  ``begin(detached=True)`` creates a span without
    making it current, for bookkeeping spans (per-core IPIs, balloon phases)
    whose handle the component threads through its own state instead.
    """

    def __init__(self, sim):
        self.sim = sim
        self.enabled = True
        self.spans = []       # every Span, in begin order (closed in place)
        self.instants = []    # (t, track, name, cat, args)
        self.samples = []     # (t, track, name, values) counter-track points
        self._next_id = 1
        self._stack = []      # spans begun (scoped) in the current cascade
        self._event_ctx = None   # span inherited from the scheduling context
        # False until the first begin(): the simulator skips all per-event
        # context bookkeeping (and push-side stamping) while this is unset.
        self._seen_spans = False

    # -- the current-span context ------------------------------------------------

    @property
    def current(self):
        """The span new work should attach to, or None."""
        if self._stack:
            return self._stack[-1]
        return self._event_ctx

    def _enter_event(self, ctx):
        """Called by the simulator before dispatching an event."""
        self._event_ctx = ctx
        if self._stack:
            # A previous handler left scoped spans open: they stay open (the
            # owner holds their handles) but must not leak as parents into
            # an unrelated event cascade.  Mutate in place — the run loop
            # holds a reference to this exact list.
            del self._stack[:]

    def _exit_event(self):
        """Called by the simulator after an event handler returns."""
        self._event_ctx = None
        if self._stack:
            del self._stack[:]

    # -- spans ---------------------------------------------------------------------

    def begin(self, name, cat="", track="", parent=None, detached=False,
              **args):
        """Open a span at the current virtual time; returns its handle.

        ``parent`` overrides the current span as the causal parent.
        ``detached`` skips the current-span stack: the span exists and has a
        parent, but does not capture subsequently begun spans or scheduled
        events.  Returns None (a no-op handle) when tracing is disabled.
        """
        if not self.enabled:
            return None
        self._seen_spans = True
        if parent is None:
            parent = self.current
        span_id = self._next_id
        self._next_id = span_id + 1
        span = Span(
            span_id,
            parent.id if parent is not None else None,
            name, cat, track or (parent.track if parent is not None else ""),
            self.sim.now, args,
        )
        self.spans.append(span)
        if not detached:
            self._stack.append(span)
        return span

    def end(self, span, **args):
        """Close a span (args merge into the span's); None is a no-op."""
        if span is None or span.end is not None:
            return
        span.end = self.sim.now
        if args:
            span.args.update(args)
        if self._stack and span in self._stack:
            self._stack.remove(span)

    def span(self, name, cat="", track="", **args):
        """Context manager: a scoped span around a synchronous block."""
        return _ScopedSpan(self, name, cat, track, args)

    # -- instants and counter samples ---------------------------------------------

    def instant(self, name, cat="", track="", **args):
        """Record a zero-duration event at the current virtual time."""
        if not self.enabled:
            return
        if not track:
            current = self.current
            if current is not None:
                track = current.track
        self.instants.append((self.sim.now, track, name, cat, args))

    def sample(self, name, track="", **values):
        """Record a counter-track sample (rendered as a graph in Perfetto)."""
        if not self.enabled:
            return
        self.samples.append((self.sim.now, track, name, values))

    # -- introspection --------------------------------------------------------------

    def open_spans(self):
        return [span for span in self.spans if not span.closed]

    def unfinished_count(self):
        """Spans still open right now — at trace end, each is a finding."""
        return sum(1 for span in self.spans if span.end is None)

    def find(self, name=None, cat=None):
        """Closed-or-open spans matching a name and/or category."""
        return [
            span for span in self.spans
            if (name is None or span.name == name)
            and (cat is None or span.cat == cat)
        ]

    def children_of(self, span):
        return [s for s in self.spans if s.parent_id == span.id]

    def __len__(self):
        return len(self.spans)


class _ScopedSpan:
    __slots__ = ("_tracer", "_name", "_cat", "_track", "_args", "_span")

    def __init__(self, tracer, name, cat, track, args):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._track = track
        self._args = args
        self._span = None

    def __enter__(self):
        self._span = self._tracer.begin(
            self._name, cat=self._cat, track=self._track, **self._args
        )
        return self._span

    def __exit__(self, exc_type, exc, tb):
        self._tracer.end(self._span)
        return False
