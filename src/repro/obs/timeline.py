"""The virtual-time series store: labeled series of ``(t_ns, value)``.

Metrics (:mod:`repro.obs.metrics`) answer "how much, in total"; the
timeline answers "when, and how it evolved".  A :class:`Series` is a
bounded ring of ``(t_ns, value)`` samples — the :class:`~repro.sim.trace
.EventTrace` pattern: a fixed capacity keeps samplers O(1) memory over
arbitrarily long runs, and ``dropped`` counts what the window lost, so
nothing is discarded silently.

Samplers publish through the same ``sim.obs`` guard as the tracer and the
metrics registry (``obs.timeline`` is None unless telemetry was armed), so
a run without telemetry pays one extra branch per already-guarded site and
a run without any session pays exactly the one branch it always did.

Like everything in ``repro.obs``, the store is read-only with respect to
the simulation: recording a sample never schedules an event and never
draws RNG, so telemetry-on runs fingerprint bit-identical to bare ones
(asserted by ``tests/integration/test_differential_matrix.py``).

Subscribers (the :mod:`repro.obs.alerts` engine) see every sample as it is
recorded — streaming evaluation, not post-hoc scans — which is what lets
SLO rules fire mid-run even after the ring has evicted the evidence.
"""

from collections import deque


def canonical_labels(labels):
    """A label dict as the sorted ``((key, value), ...)`` identity tuple."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Series:
    """One labeled series: a bounded ring of ``(t_ns, value)`` samples."""

    __slots__ = ("name", "labels", "capacity", "dropped", "disordered",
                 "_points")

    def __init__(self, name, labels=(), capacity=4096):
        if capacity < 1:
            raise ValueError("series capacity must be >= 1")
        self.name = name
        self.labels = canonical_labels(dict(labels))
        self.capacity = capacity
        self.dropped = 0
        self.disordered = 0
        self._points = deque(maxlen=capacity)

    def append(self, t_ns, value):
        """Record one sample; evicts the oldest when the ring is full.

        Samples are expected in nondecreasing virtual-time order; an
        out-of-order timestamp is still kept (the sampler knows best)
        but counted in ``disordered`` — a miswired sampler shows up in
        the exports instead of silently corrupting window queries.
        """
        t_ns = int(t_ns)
        if self._points:
            if len(self._points) == self.capacity:
                self.dropped += 1
            if t_ns < self._points[-1][0]:
                self.disordered += 1
        self._points.append((t_ns, float(value)))

    def points(self):
        """The retained ``(t_ns, value)`` samples, oldest first."""
        return list(self._points)

    def times(self):
        return [t for t, _v in self._points]

    def values(self):
        return [v for _t, v in self._points]

    def last(self):
        """The newest retained sample, or None when empty."""
        return self._points[-1] if self._points else None

    def __len__(self):
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __repr__(self):
        return "Series({!r}, {} points, {} dropped)".format(
            self.key, len(self._points), self.dropped)

    @property
    def key(self):
        """The series identity: name plus canonical labels."""
        if not self.labels:
            return self.name
        return "{}{{{}}}".format(self.name, ",".join(
            "{}={}".format(k, v) for k, v in self.labels))


class Timeline:
    """Create-on-first-use store of labeled series for one session."""

    def __init__(self, capacity=4096):
        self.capacity = capacity
        self._series = {}        # (name, labels tuple) -> Series
        self._subscribers = []

    def series(self, name, **labels):
        """The series for ``(name, labels)``, created on first use."""
        key = (name, canonical_labels(labels))
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = Series(
                name, labels=key[1], capacity=self.capacity)
        return series

    def record(self, name, t_ns, value, **labels):
        """Append one sample and notify subscribers; returns the series."""
        series = self.series(name, **labels)
        series.append(t_ns, value)
        if self._subscribers:
            for fn in tuple(self._subscribers):
                fn(series, int(t_ns), float(value))
        return series

    def subscribe(self, fn):
        """Call ``fn(series, t_ns, value)`` on every future sample.

        Subscribers run synchronously inside the sampler, so they must be
        read-only with respect to simulation state (the alert engine is).
        """
        self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn):
        if fn in self._subscribers:
            self._subscribers.remove(fn)

    def all(self):
        """Every series, sorted by (name, labels) — the export order."""
        return [self._series[key] for key in sorted(self._series)]

    def names(self):
        return sorted({name for name, _labels in self._series})

    def total_dropped(self):
        return sum(series.dropped for series in self._series.values())

    def total_disordered(self):
        return sum(series.disordered for series in self._series.values())

    def __len__(self):
        return len(self._series)

    def __contains__(self, name):
        return any(key[0] == name for key in self._series)
