"""The observability session: one tracer + one metrics registry per run.

Installing a session (``Obs(sim).install()``) publishes it as ``sim.obs``,
the single attribute every instrumentation point in the kernel, hardware,
powercap, fault, and checker layers consults.  No session installed means
every one of those points is a read-and-branch — the disabled-hook cost the
differential tests and the BENCH_obs benchmark bound.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def kernel_logs(kernel):
    """Every EventTrace log a kernel owns (the fingerprint set)."""
    logs = []
    if kernel.smp is not None:
        logs.append(kernel.smp.log)
    for sched in (kernel.gpu_sched, kernel.dsp_sched):
        if sched is not None:
            logs.append(sched.log)
            logs.append(sched.engine.log)
    for sched in (kernel.net_sched, kernel.lte_sched):
        if sched is not None:
            logs.append(sched.log)
            logs.append(sched.nic.log)
    for governor in (kernel.cpu_governor, kernel.gpu_governor):
        if governor is not None:
            logs.append(governor.log)
    return logs


class Obs:
    """One run's observability context (tracing + metrics + telemetry).

    ``timeline`` is the optional virtual-time series store
    (:class:`~repro.obs.timeline.Timeline`): None unless telemetry was
    armed, so sampler sites inside the ``sim.obs`` guard pay exactly one
    extra branch when a session exists without telemetry — and a run with
    no session at all still pays only the one branch it always did.
    """

    def __init__(self, sim, label="", tracing=True, timeline=None):
        self.sim = sim
        self.label = label
        self.tracer = Tracer(sim)
        self.tracer.enabled = tracing
        self.metrics = MetricsRegistry()
        self.timeline = timeline
        self.kernel = None

    def install(self):
        """Publish as ``sim.obs``; returns self."""
        self.sim.obs = self
        # Keep the simulator's push-side tracer reference in sync so events
        # scheduled before the first run() still pick up span context.
        self.sim._ctx_tracer = self.tracer if self.tracer.enabled else None
        return self

    def uninstall(self):
        if getattr(self.sim, "obs", None) is self:
            self.sim.obs = None
            self.sim._ctx_tracer = None

    def bind_kernel(self, kernel):
        """Remember the kernel so snapshots can report its log health."""
        self.kernel = kernel
        return self

    def log_stats(self):
        """Retention/drop stats of the bound kernel's event logs."""
        stats = {}
        if self.kernel is not None:
            for log in kernel_logs(self.kernel):
                stats[log.name] = {
                    "retained": len(log),
                    "dropped": log.dropped,
                }
        plan = getattr(self.sim, "faults", None)
        if plan is not None:
            stats[plan.log.name] = {
                "retained": len(plan.log),
                "dropped": plan.log.dropped,
            }
        return stats

    def snapshot(self):
        """Metrics plus log health, JSON-ready."""
        snap = self.metrics.snapshot()
        snap["logs"] = self.log_stats()
        return snap
