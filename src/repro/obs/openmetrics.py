"""OpenMetrics text exposition of sessions' metrics and timelines.

One text document covering a set of :class:`~repro.obs.session.Obs`
sessions, in the OpenMetrics text format (the Prometheus exposition
format's standardized successor): counters become ``counter`` families
with the mandatory ``_total`` sample suffix, gauges become ``gauge``
families, histograms become ``summary`` families (count, sum, and the
registry's standard quantiles), and each timeline series contributes its
*last* sample as a gauge carrying the series labels.  Every sample carries
a ``session`` label so one dump can hold a whole cluster — the per-node
daemons and the global cap loop side by side, scrapeable by anything that
speaks Prometheus.

Metric names are sanitized to the OpenMetrics grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``; the repo's dotted names map ``.`` to
``_``), and label values are escaped per the spec (backslash, double
quote, newline).  The document ends with the mandatory ``# EOF``.
"""

import re

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_name(name):
    """A valid OpenMetrics metric name for ``name`` (dots become ``_``)."""
    name = _NAME_BAD.sub("_", str(name))
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def sanitize_label_name(name):
    name = _LABEL_BAD.sub("_", str(name))
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def escape_label_value(value):
    """Escape a label value per the exposition format."""
    return (str(value).replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _format_value(value):
    if value is None:
        return "NaN"
    if isinstance(value, float):
        return "{:.10g}".format(value)
    return str(value)


def _labelset(labels):
    """``{a="x",b="y"}`` (or empty string) from (name, value) pairs."""
    if not labels:
        return ""
    return "{{{}}}".format(",".join(
        '{}="{}"'.format(sanitize_label_name(k), escape_label_value(v))
        for k, v in labels))


class _Family:
    """One metric family: a type and its samples, collected across sessions."""

    __slots__ = ("name", "kind", "samples", "_seen")

    def __init__(self, name, kind):
        self.name = name
        self.kind = kind
        self.samples = []    # (sample name, label pairs, value)
        self._seen = set()

    def add(self, sample, labels, value):
        """Append one sample; exact labelset duplicates are dropped.

        A name can reach the same family twice for one session — the
        registry gauge the cap loop publishes and the timeline series'
        last value share e.g. ``cluster.aggregate_w`` — and duplicate
        labelsets are invalid exposition, so the first writer (the
        registry, emitted first) wins.
        """
        key = (sample, labels)
        if key in self._seen:
            return
        self._seen.add(key)
        self.samples.append((sample, labels, value))

    def lines(self):
        out = ["# TYPE {} {}".format(self.name, self.kind)]
        for sample, labels, value in self.samples:
            out.append("{}{} {}".format(sample, _labelset(labels),
                                        _format_value(value)))
        return out


def _session_labels(sessions):
    """Unique ``session`` label per session (duplicates get ``#n``)."""
    seen = {}
    labels = []
    for obs in sessions:
        label = obs.label or "run"
        n = seen.get(label, 0) + 1
        seen[label] = n
        labels.append(label if n == 1 else "{}#{}".format(label, n))
    return labels


def openmetrics_lines(sessions):
    """The full exposition document as a list of lines (incl. ``# EOF``)."""
    families = {}

    def family(raw_name, kind, suffix=""):
        name = sanitize_name(raw_name) + suffix
        fam = families.get(name)
        if fam is None:
            fam = families[name] = _Family(name, kind)
        return fam

    for obs, session in zip(sessions, _session_labels(sessions)):
        base = (("session", session),)
        registry = obs.metrics
        for name in sorted(registry.counters):
            fam = family(name, "counter")
            fam.add(fam.name + "_total", base,
                    registry.counters[name].value)
        for name in sorted(registry.gauges):
            gauge = registry.gauges[name]
            if gauge.updates:
                fam = family(name, "gauge")
                fam.add(fam.name, base, gauge.value)
        for name in sorted(registry.histograms):
            hist = registry.histograms[name]
            fam = family(name, "summary")
            fam.add(fam.name + "_count", base, hist.count)
            fam.add(fam.name + "_sum", base, hist.total)
            for q in registry.QUANTILES:
                fam.add(fam.name,
                        base + (("quantile", "{:g}".format(q)),),
                        hist.quantile(q))
        timeline = getattr(obs, "timeline", None)
        if timeline is not None:
            for series in timeline.all():
                last = series.last()
                if last is None:
                    continue
                fam = family(series.name, "gauge")
                fam.add(fam.name, base + series.labels, last[1])
            fam = family("repro.timeline.dropped_samples", "counter")
            fam.add(fam.name + "_total", base, timeline.total_dropped())
            fam = family("repro.timeline.disordered_samples", "counter")
            fam.add(fam.name + "_total", base, timeline.total_disordered())

    lines = []
    for name in sorted(families):
        lines.extend(families[name].lines())
    lines.append("# EOF")
    return lines


def render_openmetrics(sessions):
    """The exposition document as one string (trailing newline included)."""
    return "\n".join(openmetrics_lines(sessions)) + "\n"


def export_openmetrics(sessions, path):
    """Write the OpenMetrics dump; returns the number of metric families."""
    text = render_openmetrics(sessions)
    with open(path, "w") as handle:
        handle.write(text)
    return sum(1 for line in text.splitlines() if line.startswith("# TYPE"))
