"""Per-core CFS-like scheduling: runqueues, group entities, vruntime billing.

Mirrors the Linux structure the paper builds on: each core runs its own
scheduler instance over *group entities* (one per app per core, like a
cgroup's per-cpu entity).  psbox coscheduling (``repro.kernel.smp``) forces a
core onto a designated group entity and keeps billing it even while the core
idles — that is how lost sharing opportunities get charged to the sandboxed
app.
"""

from repro.sim.clock import from_msec


class GroupEntity:
    """An app's schedulable presence on one core.

    Holds the member tasks currently assigned to this core and a collective
    vruntime.  ``forced`` marks the entity as pinned by an active spatial
    balloon: it stays schedulable (and billable) even with no runnable
    member.
    """

    def __init__(self, group, core_id):
        self.group = group
        self.core_id = core_id
        self.vruntime = 0.0
        self.members = []        # tasks READY or RUNNING assigned here
        self.on_rq = False
        self.forced = False

    @property
    def weight(self):
        return self.group.weight

    @property
    def runnable(self):
        return bool(self.members)

    def pick_member(self):
        """The READY member with the smallest member vruntime, or None."""
        best = None
        for task in self.members:
            if task.runnable and (
                best is None or task.member_vruntime < best.member_vruntime
            ):
                best = task
        return best

    def min_member_vruntime(self):
        if not self.members:
            return 0.0
        return min(task.member_vruntime for task in self.members)

    def __repr__(self):
        return "GroupEntity({}, core{}, vr={:.3f}ms)".format(
            self.group.app.name, self.core_id, self.vruntime / 1e6
        )


class CoreScheduler:
    """One scheduler instance: a runqueue of group entities on one core."""

    def __init__(self, smp, core, tick_period=from_msec(1),
                 granularity=from_msec(1.5), wakeup_grace=from_msec(2)):
        self.smp = smp
        self.sim = smp.sim
        self.core = core
        self.tick_period = tick_period
        self.granularity = granularity
        self.wakeup_grace = wakeup_grace

        self.rq = []                  # entities with on_rq == True
        self.min_vruntime = 0.0
        self.current = None           # the entity occupying the core
        self.current_task = None      # its running member (None = forced idle)
        self.current_since = None
        self.forced_entity = None     # set by an active spatial balloon
        self._tick_event = None
        self._resched_pending = False

    # -- runqueue maintenance -------------------------------------------------

    def enqueue(self, entity, wakeup=False):
        if entity.on_rq:
            return
        if wakeup:
            entity.vruntime = max(
                entity.vruntime, self.min_vruntime - self.wakeup_grace
            )
        entity.on_rq = True
        self.rq.append(entity)

    def dequeue(self, entity):
        if not entity.on_rq:
            return
        entity.on_rq = False
        self.rq.remove(entity)

    def _update_min_vruntime(self):
        candidates = [entity.vruntime for entity in self.rq]
        if self.current is not None:
            candidates.append(self.current.vruntime)
        if candidates:
            self.min_vruntime = max(self.min_vruntime, min(candidates))

    # -- billing ----------------------------------------------------------------

    def settle(self):
        """Bill CPU time since the last settle to the occupying entity.

        A forced (ballooned) entity is billed even while the core idles:
        the kernel "does not differentiate the portion used by the app from
        the portion intentionally kept idle by the balloons" (§4.1).
        """
        now = self.sim.now
        if self.current is not None and self.current_since is not None:
            delta = now - self.current_since
            if delta > 0:
                self.current.vruntime += delta / self.current.weight
                if self.current_task is not None:
                    self.current_task.member_vruntime += (
                        delta / self.current_task.weight
                    )
        self.current_since = now
        self._update_min_vruntime()

    # -- picking ----------------------------------------------------------------

    def pick_next(self):
        """Choose the next entity: balloon override, else min vruntime."""
        if self.forced_entity is not None:
            return self.forced_entity
        best = None
        for entity in self.rq:
            if entity.group.throttled:
                # A bandwidth throttle's off-phase: the app keeps its
                # runqueue position but is never picked (powercap actuator).
                continue
            if entity.group.sandboxed and not self.smp.balloon_admissible(entity):
                # Sandboxed apps only ever run inside their balloon, and a
                # balloon preempts every core — so it must be justified by
                # the app's credit against the whole machine, not just this
                # runqueue (which may simply be empty).
                continue
            if best is None or entity.vruntime < best.vruntime:
                best = entity
        return best

    def best_waiting_vruntime(self, exclude_group):
        """Min vruntime among runqueued entities outside ``exclude_group``."""
        best = None
        for entity in self.rq:
            if entity.group is exclude_group:
                continue
            if best is None or entity.vruntime < best:
                best = entity.vruntime
        return best

    # -- the dispatch path ---------------------------------------------------------

    def resched_soon(self):
        """Coalesce reschedule requests within one event cascade."""
        if self._resched_pending:
            return
        self._resched_pending = True
        self.sim.call_soon(self._resched_run)

    def _resched_run(self):
        self._resched_pending = False
        self.reschedule()

    def reschedule(self):
        """Stop the current task, pick the best entity, dispatch it."""
        self.settle()
        candidate = self.pick_next()

        if (
            candidate is not None
            and candidate.group.sandboxed
            and self.forced_entity is None
            and not self.smp.cosched_busy(candidate.group)
        ):
            # Picking a sandboxed app starts a coscheduling period; the smp
            # layer forces this core (and IPIs the others), then we dispatch.
            self.smp.begin_coschedule(candidate.group, self)
            candidate = self.pick_next()

        self._stop_current_task()

        if candidate is None:
            self.current = None
            self._cancel_tick()
            self.smp.core_went_idle(self)
            return

        self.current = candidate
        task = candidate.pick_member()
        if task is not None:
            self.current_task = task
            task.state = "running"
            obs = self.sim.obs
            if obs is not None:
                obs.metrics.inc("cfs.dispatches")
            self.core.start(candidate.group.app.id, task.work)
        self.current_since = self.sim.now
        self._arm_tick()
        if self.waiting_tasks():
            self.smp.offer_work(self)

    def _stop_current_task(self):
        if self.current_task is not None:
            task = self.current_task
            self.current_task = None
            if task.running:
                self.core.preempt()
                task.state = "ready"
        self.current = None

    def on_current_finished(self, task):
        """The running member's burst completed (hardware already idle)."""
        if task is not self.current_task:
            return
        self.settle()
        self.current_task = None
        self.resched_soon()

    # -- the periodic tick -----------------------------------------------------------

    def _arm_tick(self):
        if self._tick_event is None:
            self._tick_event = self.sim.call_later(self.tick_period, self._tick)

    def _cancel_tick(self):
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def _tick(self):
        self._tick_event = None
        self.settle()
        if self.forced_entity is not None:
            self.smp.cosched_tick(self.forced_entity.group)
            if self.forced_entity is not None:
                # Balloon still active: maybe rotate to another READY member.
                self._maybe_rotate_member()
                self._arm_tick()
            return
        if self.current is None:
            return
        best = None
        for entity in self.rq:
            if entity is self.current or entity.group.throttled:
                continue
            if best is None or entity.vruntime < best.vruntime:
                best = entity
        if best is not None and best.vruntime + self.granularity < self.current.vruntime:
            self.reschedule()
        else:
            self._maybe_rotate_member()
            self._arm_tick()

    def _maybe_rotate_member(self):
        """Fair rotation among an entity's own members at tick granularity."""
        entity = self.current
        if entity is None or self.current_task is None:
            if entity is not None and self.current_task is None:
                # Forced-idle core: a member may have become READY meanwhile.
                task = entity.pick_member()
                if task is not None:
                    self.current_task = task
                    task.state = "running"
                    self.core.start(entity.group.app.id, task.work)
            return
        best = entity.pick_member()
        if (
            best is not None
            and best is not self.current_task
            and best.member_vruntime + self.granularity
            < self.current_task.member_vruntime
        ):
            task = self.current_task
            self.current_task = None
            if task.running:
                self.core.preempt()
                task.state = "ready"
            self.current_task = best
            best.state = "running"
            self.core.start(entity.group.app.id, best.work)

    # -- waiting-task census (for work stealing) ------------------------------------

    def waiting_tasks(self):
        """READY tasks queued here but not running."""
        waiting = []
        for entity in self.rq:
            for task in entity.members:
                if task.runnable and task is not self.current_task:
                    waiting.append(task)
        return waiting
