"""The kernel facade: wires schedulers, governors and drivers to a platform."""

import itertools
from dataclasses import dataclass

from repro.kernel.accel_sched import AccelScheduler
from repro.kernel.governor import OndemandGovernor
from repro.kernel.net_sched import PacketScheduler
from repro.kernel.smp import SmpScheduler
from repro.kernel.task import Task
from repro.sim.clock import from_msec, from_usec


@dataclass
class KernelConfig:
    """Tunables and ablation switches.

    ``loans_enabled`` — charge coscheduling losses to the sandboxed app
    (§4.2 CPU); disabling it makes unsandboxed apps absorb the loss.
    ``draining_enabled`` — drain in-flight foreign work at temporal-balloon
    boundaries; disabling it leaks overlapping power into psbox windows.
    ``vstate_enabled`` — virtualize operating power states per psbox;
    disabling it lets lingering DVFS / NIC state cross psbox boundaries.
    """

    ipi_delay: int = from_usec(15)
    loans_enabled: bool = True
    draining_enabled: bool = True
    vstate_enabled: bool = True
    cpu_governor_window: int = from_msec(25)
    gpu_governor_window: int = from_msec(20)


class Kernel:
    """One booted OS instance on a :class:`repro.hw.platform.Platform`."""

    def __init__(self, platform, config=None):
        self.platform = platform
        self.sim = platform.sim
        self.config = config or KernelConfig()
        self.apps = {}
        self.tasks = []
        self._app_ids = itertools.count(1)
        self._task_ids = itertools.count(1)

        self.smp = None
        self.cpu_governor = None
        self.gpu_sched = None
        self.gpu_governor = None
        self.dsp_sched = None
        self.net_sched = None
        self.lte_sched = None

        if platform.cpu is not None:
            self.smp = SmpScheduler(
                self,
                platform.cpu,
                ipi_delay=self.config.ipi_delay,
                loans_enabled=self.config.loans_enabled,
            )
            self.cpu_governor = OndemandGovernor(
                self.sim,
                platform.cpu.freq_domain,
                platform.cpu.max_core_utilization,
                window=self.config.cpu_governor_window,
            )
        if platform.gpu is not None:
            self.gpu_governor = OndemandGovernor(
                self.sim,
                platform.gpu.freq_domain,
                platform.gpu.utilization,
                window=self.config.gpu_governor_window,
            )
            self.gpu_sched = AccelScheduler(
                self,
                platform.gpu,
                "gpu",
                state_holder=self.gpu_governor if self.config.vstate_enabled
                else None,
                draining_enabled=self.config.draining_enabled,
            )
        if platform.dsp is not None:
            # The DSP runs at a fixed operating point (as on the C66x);
            # there is no governor state to virtualize.
            self.dsp_sched = AccelScheduler(
                self,
                platform.dsp,
                "dsp",
                state_holder=None,
                draining_enabled=self.config.draining_enabled,
            )
        if platform.nic is not None:
            holder = None
            if self.config.vstate_enabled:
                from repro.core.vstate import SnapshotContextHolder

                holder = SnapshotContextHolder(platform.nic)
            self.net_sched = PacketScheduler(
                self,
                platform.nic,
                state_holder=holder,
                draining_enabled=self.config.draining_enabled,
            )
        if platform.lte is not None:
            # No state holder: LTE RRC states are not OS-controllable, so
            # there is nothing the kernel could virtualize (paper §7).
            self.lte_sched = PacketScheduler(
                self,
                platform.lte,
                state_holder=None,
                draining_enabled=self.config.draining_enabled,
            )

    # -- app/task management ----------------------------------------------------

    @property
    def now(self):
        """clock_gettime(): the timestamp source shared with the meter."""
        return self.sim.now

    def next_app_id(self):
        return next(self._app_ids)

    def next_task_id(self):
        return next(self._task_ids)

    def register_app(self, app):
        self.apps[app.id] = app

    def spawn(self, app, behavior, name="", weight=1.0):
        """Create and start a task running ``behavior`` (a generator)."""
        if self.smp is None:
            raise RuntimeError(
                "platform has no CPU: tasks cannot run; drive devices "
                "directly or add a CPU to the platform"
            )
        task = Task(self, app, behavior, name=name, weight=weight)
        self.tasks.append(task)
        app.tasks.append(task)
        self.sim.call_soon(task.start)
        return task

    def accel_scheduler(self, device):
        if device == "gpu" and self.gpu_sched is not None:
            return self.gpu_sched
        if device == "dsp" and self.dsp_sched is not None:
            return self.dsp_sched
        raise KeyError("no accelerator scheduler for {!r}".format(device))

    def packet_scheduler(self, device):
        if device == "wifi" and self.net_sched is not None:
            return self.net_sched
        if device == "lte" and self.lte_sched is not None:
            return self.lte_sched
        raise KeyError("no packet scheduler for {!r}".format(device))

    def run(self, until):
        """Advance the simulation (convenience passthrough)."""
        return self.sim.run(until=until)
