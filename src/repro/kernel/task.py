"""Tasks: the schedulable threads of an app.

A task's behaviour is a generator yielding :mod:`repro.kernel.actions`
objects.  The task object is the state machine between the behaviour and the
kernel subsystems (CPU scheduler, accelerator drivers, packet scheduler).
"""

from repro.hw.cpu import WorkItem
from repro.kernel.actions import (
    AcquireGps,
    Compute,
    ReleaseGps,
    SendPacket,
    Sleep,
    SubmitAccel,
    UpdateSurface,
    WaitAll,
    WaitOutstanding,
)

NEW = "new"
READY = "ready"        # has a compute burst pending, waiting for / on a CPU
RUNNING = "running"    # currently on a core
SLEEPING = "sleeping"  # timer sleep
BLOCKED = "blocked"    # waiting on device completion(s)
DONE = "done"


class Task:
    """One thread of an app."""

    def __init__(self, kernel, app, behavior, name="", weight=1.0):
        self.kernel = kernel
        self.app = app
        self.behavior = behavior
        self.id = kernel.next_task_id()
        self.name = name or "{}.t{}".format(app.name, self.id)
        self.weight = float(weight)
        self.state = NEW
        self.work = None            # pending/running WorkItem when READY/RUNNING
        self.core_id = None         # core whose group entity holds us
        self.member_vruntime = 0.0
        self.outstanding = 0        # async submissions not yet completed
        self._waiting_all = False
        self._outstanding_limit = None
        self.finished_at = None

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Begin executing the behaviour (called by the kernel on spawn)."""
        if self.state == DONE:
            return   # crashed before its deferred start ran
        if self.state != NEW:
            raise RuntimeError("task {} already started".format(self.name))
        self._advance(None)

    def crash(self):
        """Kill the task abruptly (fault injection / app death).

        Safe in any state: pending completion callbacks for its outstanding
        device work become no-ops (``_async_done`` ignores non-BLOCKED
        tasks) and a pending timer wake checks for SLEEPING.  The kernel
        tears the task out of the scheduler exactly as on a normal exit.
        """
        if self.state == DONE:
            return
        self.behavior.close()
        self.work = None
        self._waiting_all = False
        self._outstanding_limit = None
        self._finish()

    @property
    def runnable(self):
        return self.state == READY

    @property
    def running(self):
        return self.state == RUNNING

    @property
    def alive(self):
        return self.state != DONE

    # -- behaviour driving -----------------------------------------------------

    def _advance(self, value):
        """Pull the next action from the behaviour and act on it."""
        while True:
            try:
                action = self.behavior.send(value)
            except StopIteration:
                self._finish()
                return
            value = None
            if isinstance(action, Compute):
                self.work = WorkItem(action.cycles, on_complete=self._burst_done)
                self.state = READY
                self.kernel.smp.task_ready(self)
                return
            if isinstance(action, Sleep):
                if action.duration == 0:
                    continue
                self.state = SLEEPING
                self.kernel.smp.task_blocked(self)
                self.kernel.sim.call_later(action.duration, self._wake)
                return
            if isinstance(action, SubmitAccel):
                self._submit_accel(action)
                if action.wait:
                    self.state = BLOCKED
                    self.kernel.smp.task_blocked(self)
                    return
                continue
            if isinstance(action, SendPacket):
                self._send_packet(action)
                if action.wait:
                    self.state = BLOCKED
                    self.kernel.smp.task_blocked(self)
                    return
                continue
            if isinstance(action, WaitAll):
                if self.outstanding == 0:
                    continue
                self._waiting_all = True
                self.state = BLOCKED
                self.kernel.smp.task_blocked(self)
                return
            if isinstance(action, WaitOutstanding):
                if self.outstanding < action.limit:
                    continue
                self._outstanding_limit = action.limit
                self.state = BLOCKED
                self.kernel.smp.task_blocked(self)
                return
            if isinstance(action, UpdateSurface):
                self.kernel.platform.display.set_surface(
                    self.app.id, action.fraction, action.intensity
                )
                continue
            if isinstance(action, AcquireGps):
                self.kernel.platform.gps.acquire(self.app.id)
                continue
            if isinstance(action, ReleaseGps):
                self.kernel.platform.gps.release(self.app.id)
                continue
            raise TypeError(
                "task {} yielded unknown action {!r}".format(self.name, action)
            )

    def _finish(self):
        self.state = DONE
        self.finished_at = self.kernel.sim.now
        self.kernel.smp.task_exited(self)
        self.app.task_finished(self)

    # -- CPU interaction (driven by the scheduler) ------------------------------

    def _burst_done(self, _core):
        """The current compute burst finished on a core."""
        self.work = None
        self.kernel.smp.task_burst_done(self)
        self._advance(None)

    def _wake(self):
        if self.state != SLEEPING:
            return
        self._advance(None)

    # -- device interaction -----------------------------------------------------

    def _submit_accel(self, action):
        scheduler = self.kernel.accel_scheduler(action.device)
        waited = action.wait
        self.outstanding += 1

        def on_complete(command):
            self.outstanding -= 1
            self.app.note_command_complete(action.device, command)
            self._async_done(waited)

        scheduler.submit(
            self.app,
            kind=action.kind,
            cycles=action.cycles,
            power_w=action.power_w,
            on_complete=on_complete,
        )

    def _send_packet(self, action):
        waited = action.wait
        self.outstanding += 1

        def on_complete(packet):
            self.outstanding -= 1
            self.app.note_packet_complete(packet)
            self._async_done(waited)

        scheduler = self.kernel.packet_scheduler(action.device)
        scheduler.send(self.app, action.size_bytes, on_complete)

    def _async_done(self, was_waited):
        """A completion arrived; unblock the task if it was waiting for it."""
        if self.state != BLOCKED:
            return
        if was_waited:
            self._advance(None)
        elif self._waiting_all and self.outstanding == 0:
            self._waiting_all = False
            self._advance(None)
        elif (
            self._outstanding_limit is not None
            and self.outstanding < self._outstanding_limit
        ):
            self._outstanding_limit = None
            self._advance(None)

    def __repr__(self):
        return "Task({!r}, {})".format(self.name, self.state)
