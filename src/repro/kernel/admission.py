"""Duty-cycled admission gating for the balloon schedulers.

The powercap actuators throttle accelerator and NIC apps by *admission*:
an app's commands/packets only dispatch during the on-phase of a periodic
duty cycle.  The gate lives outside the schedulers' fairness accounting —
a gated queue keeps its vruntime/credit, it just is not eligible right
now — so removing a gate restores exactly the untouched behavior.

The phase is derived from the simulation clock (``now % period``), which
keeps gating deterministic and free of per-gate timer state; the single
re-pump event is armed only while a gated queue actually has work.
"""


class _Gate:
    __slots__ = ("fraction", "period")

    def __init__(self, fraction, period):
        self.fraction = fraction
        self.period = period

    @property
    def on_ns(self):
        return max(1, int(self.fraction * self.period))


class AdmissionGate:
    """Per-app duty-cycle gates for one scheduler's dispatch pump.

    ``pump`` is invoked (with no arguments) whenever a gate edge may have
    made previously gated work dispatchable again.
    """

    def __init__(self, sim, pump):
        self.sim = sim
        self._pump = pump
        self._gates = {}
        self._event = None

    def __len__(self):
        return len(self._gates)

    def set(self, app_id, fraction, period):
        """Admit ``app_id`` for ``fraction`` of every ``period`` ns.

        ``fraction >= 1`` removes the gate.
        """
        if fraction <= 0.0:
            raise ValueError("admission fraction must be positive")
        if period <= 0:
            raise ValueError("admission period must be positive")
        if fraction >= 1.0:
            self.clear(app_id)
            return
        self._gates[app_id] = _Gate(fraction, int(period))
        self._pump()

    def clear(self, app_id):
        """Remove ``app_id``'s gate (no-op when none is set)."""
        if self._gates.pop(app_id, None) is not None:
            self._pump()

    def fraction(self, app_id):
        """The admitted fraction for ``app_id`` (1.0 when ungated)."""
        gate = self._gates.get(app_id)
        return 1.0 if gate is None else gate.fraction

    def gated(self, app_id):
        """True while ``app_id`` is in the off-phase of its duty cycle."""
        gate = self._gates.get(app_id)
        if gate is None:
            return False
        return (self.sim.now % gate.period) >= gate.on_ns

    def next_on_edge(self, app_id):
        """Absolute time the app's next on-phase begins."""
        gate = self._gates[app_id]
        return self.sim.now - (self.sim.now % gate.period) + gate.period

    def arm(self, t):
        """Schedule one pump at time ``t`` (coalesced with earlier arms)."""
        if self._event is not None and not self._event.cancelled \
                and self._event.time <= t:
            return
        if self._event is not None:
            self._event.cancel()
        self._event = self.sim.at(t, self._fire)

    def _fire(self):
        self._event = None
        self._pump()
