"""SMP coordination: task placement, work stealing, and coscheduling.

Coscheduling (spatial balloons) follows the paper's five-step protocol
(§4.2): schedule-in on the initiating core, IPI task shootdown on the other
cores with an initial scheduling loan, billed running (idle cores included),
schedule-out when no entity holds the best credit any more, and loan
redistribution across the psbox's per-core entities.
"""

from repro.kernel.cfs import CoreScheduler, GroupEntity
from repro.sim.clock import from_msec, from_usec
from repro.sim.trace import EventTrace


class AppGroup:
    """The kernel-side cgroup of one app: one GroupEntity per core."""

    def __init__(self, app, n_cores):
        self.app = app
        self.entities = [GroupEntity(self, core_id) for core_id in range(n_cores)]
        self.sandboxed = False   # True while the app's CPU psbox is entered
        self.throttled = False   # True during a bandwidth throttle's off-phase

    @property
    def weight(self):
        return self.app.weight

    def active_member_count(self):
        """Tasks READY or RUNNING across all cores."""
        return sum(len(entity.members) for entity in self.entities)


class _CpuThrottle:
    """One app's duty-cycled CPU bandwidth limit (powercap actuator)."""

    __slots__ = ("fraction", "period", "event")

    def __init__(self, fraction, period):
        self.fraction = fraction
        self.period = period
        self.event = None

    @property
    def on_ns(self):
        return max(1, int(self.fraction * self.period))


class _Coschedule:
    """Book-keeping of one active coscheduling (spatial balloon) period."""

    def __init__(self, group, started_at):
        self.group = group
        self.started_at = started_at
        self.pending_cores = set()
        self.window_open = None   # time when every core had switched in
        self.span = None          # obs: the balloon's trace span
        self.ipi_spans = {}       # obs: core id -> in-flight shootdown span


class SmpScheduler:
    """Owns the per-core schedulers and all cross-core policy."""

    def __init__(self, kernel, cluster, ipi_delay=from_usec(15),
                 loans_enabled=True):
        self.kernel = kernel
        self.sim = kernel.sim
        self.cluster = cluster
        self.ipi_delay = ipi_delay
        self.loans_enabled = loans_enabled
        self.cores = [CoreScheduler(self, core) for core in cluster.cores]
        self.groups = {}             # app id -> AppGroup
        self.throttles = {}          # app id -> _CpuThrottle
        self.active_cosched = None   # at most one spatial balloon at a time
        self.log = EventTrace("smp")
        # Callbacks the psbox manager hooks: fn(app, t).
        self.balloon_in_hooks = []
        self.balloon_out_hooks = []

    # -- groups and placement ---------------------------------------------------

    def group_for(self, app):
        if app.id not in self.groups:
            self.groups[app.id] = AppGroup(app, len(self.cores))
        return self.groups[app.id]

    def _entity_on(self, group, core_id):
        return group.entities[core_id]

    def _place(self, task):
        """Choose a core for a waking task."""
        group = self.group_for(task.app)
        cosched = self.active_cosched
        if cosched is not None and cosched.group is group:
            # Prefer a balloon core that is forced-idle right now.
            for sched in self.cores:
                if sched.forced_entity is not None and sched.current_task is None:
                    return sched.core.id
        def load(sched):
            return len(sched.waiting_tasks()) + (1 if sched.current_task else 0)

        best = min(self.cores, key=load)
        if task.core_id is not None:
            home = self.cores[task.core_id]
            if load(home) < load(best):
                return home.core.id
            if load(home) == load(best):
                # Break ties randomly so equally loaded cores share apps
                # fairly over time (wake-balance jitter).
                rng = self.sim.rng.stream("smp.place")
                return home.core.id if rng.random() < 0.5 else best.core.id
        return best.core.id

    # -- task state transitions (called by Task) -----------------------------------

    def task_ready(self, task):
        group = self.group_for(task.app)
        core_id = self._place(task)
        self._attach(task, group, core_id)
        sched = self.cores[core_id]
        entity = self._entity_on(group, core_id)
        sched.enqueue(entity, wakeup=True)
        # Preemption decision.
        if sched.current is None or (
            sched.forced_entity is None
            and entity is not sched.current
            and entity.vruntime + sched.granularity < sched.current.vruntime
        ):
            sched.resched_soon()
        elif sched.forced_entity is entity and sched.current_task is None:
            # Woken member of the ballooned app on a forced-idle core.
            sched.resched_soon()

    def _attach(self, task, group, core_id):
        old = task.core_id
        if old is not None and old != core_id:
            old_entity = self._entity_on(group, old)
            if task in old_entity.members:
                old_entity.members.remove(task)
                if not old_entity.members and not old_entity.forced:
                    self.cores[old].dequeue(old_entity)
        entity = self._entity_on(group, core_id)
        if task not in entity.members:
            entity.members.append(task)
            floor = entity.min_member_vruntime()
            task.member_vruntime = max(task.member_vruntime, floor)
        task.core_id = core_id

    def task_blocked(self, task):
        """Task went to sleep or blocked on a device."""
        self._detach(task)

    def task_exited(self, task):
        self._detach(task)

    def _detach(self, task):
        if task.core_id is None:
            return
        group = self.group_for(task.app)
        entity = self._entity_on(group, task.core_id)
        sched = self.cores[task.core_id]
        was_running = task is sched.current_task
        if was_running:
            sched.settle()
            sched.current_task = None
            # Revoke the core even if the task already left RUNNING state
            # (a crashed task is DONE by the time it reaches here but its
            # work item may still occupy the core); preempt() no-ops when
            # the core is idle.
            sched.core.preempt()
        if task in entity.members:
            entity.members.remove(task)
        if not entity.members and not entity.forced:
            sched.dequeue(entity)
        task.state = task.state if task.state in ("sleeping", "blocked", "done") \
            else "ready"
        if was_running:
            sched.resched_soon()
        self._schedule_members_check(group)

    def task_burst_done(self, task):
        """The task's compute burst completed on its core."""
        sched = self.cores[task.core_id]
        group = self.group_for(task.app)
        entity = self._entity_on(group, task.core_id)
        if task in entity.members:
            entity.members.remove(task)
        if not entity.members and not entity.forced:
            sched.dequeue(entity)
        sched.on_current_finished(task)
        self._schedule_members_check(group)

    def _schedule_members_check(self, group):
        """End the group's balloon if it turns out to have no active member.

        Deferred by one event cascade: a task that finished a burst usually
        re-readies with its next burst at the same instant, and tearing the
        balloon down just to rebuild it would churn loans and observation
        windows for nothing.
        """
        cosched = self.active_cosched
        if cosched is None or cosched.group is not group:
            return
        self.sim.call_soon(self._members_check, cosched)

    def _members_check(self, cosched):
        if self.active_cosched is not cosched:
            return
        if cosched.group.active_member_count() == 0:
            self.end_coschedule("no members")

    # -- work stealing ------------------------------------------------------------

    def core_went_idle(self, sched):
        if sched.forced_entity is not None:
            return
        # Never steal from a core with a reschedule in flight: it may be
        # about to dispatch the very task we would take, and synchronous
        # steals against deferred dispatches can ping-pong a task between
        # idle cores forever within one instant.
        victims = [
            s for s in self.cores
            if s is not sched and not s._resched_pending
        ]
        if not victims:
            return
        victim = max(victims, key=lambda s: len(s.waiting_tasks()))
        waiting = victim.waiting_tasks()
        if not waiting:
            return
        cosched = self.active_cosched
        candidates = [
            task for task in waiting
            if (cosched is None or self.group_for(task.app) is not cosched.group)
            and not self.group_for(task.app).throttled
        ]
        if not candidates:
            return
        task = min(candidates, key=lambda t: t.member_vruntime)
        group = self.group_for(task.app)
        self._attach(task, group, sched.core.id)
        entity = self._entity_on(group, sched.core.id)
        entity.vruntime = max(entity.vruntime, sched.min_vruntime)
        sched.enqueue(entity)
        sched.resched_soon()

    def offer_work(self, busy_sched):
        """A core dispatched but still has waiting tasks; wake an idle core
        so it can pull one (work conservation)."""
        for sched in self.cores:
            if (
                sched is not busy_sched
                and sched.current is None
                and sched.forced_entity is None
                and not sched._resched_pending
            ):
                sched.resched_soon()
                return

    # -- coscheduling (spatial balloons) ---------------------------------------------

    def cosched_busy(self, group):
        """True when a *different* group's balloon is active."""
        return self.active_cosched is not None and self.active_cosched.group is not group

    def balloon_admissible(self, entity):
        """May this sandboxed entity start a coscheduling period now?

        Mirrors the schedule-out rule: the entity must hold the best credit
        against every other entity machine-wide (running or waiting).  With
        loans disabled (ablation) the check degrades to the naive per-core
        rule — being picked locally suffices — which lets the sandboxed app
        free-ride through empty sibling runqueues.
        """
        if self.active_cosched is not None:
            return False
        if not self.loans_enabled:
            return True
        best = self._global_best_other(entity.group)
        if best is None:
            return True
        granularity = self.cores[entity.core_id].granularity
        return entity.vruntime <= best + granularity

    def begin_coschedule(self, group, initiator_sched):
        if self.active_cosched is not None:
            return
        cosched = _Coschedule(group, self.sim.now)
        self.active_cosched = cosched
        self.log.log(self.sim.now, "cosched_begin", app=group.app.id)
        obs = self.sim.obs
        if obs is not None:
            cosched.span = obs.tracer.begin(
                "balloon.cpu", cat="balloon", track="smp", app=group.app.id
            )
            obs.metrics.inc("smp.balloons")
            if self.loans_enabled:
                # The initial scheduling loan is granted at shootdown and
                # settled by loan redistribution at schedule-out.
                obs.tracer.instant("loan.grant", cat="loan", track="smp",
                                   app=group.app.id)
        # The balloon exists from schedule-in: the observation window opens
        # now.  The few microseconds it takes remote cores to honour the IPI
        # are a (tiny, realistic) leak across the boundary.
        cosched.window_open = self.sim.now
        for hook in self.balloon_in_hooks:
            hook(group.app, self.sim.now)
        plan = self.sim.faults
        for sched in self.cores:
            entity = self._entity_on(group, sched.core.id)
            entity.forced = True
            if sched is initiator_sched:
                sched.forced_entity = entity
                continue
            cosched.pending_cores.add(sched.core.id)
            if obs is not None:
                # One span per shootdown IPI: begins when the IPI is sent,
                # ends when the remote core honours it (_ipi_arrive).  A
                # dropped IPI leaves its span open — visibly unfinished in
                # the exported trace.
                cosched.ipi_spans[sched.core.id] = obs.tracer.begin(
                    "ipi.shootdown", cat="balloon", track="smp",
                    parent=cosched.span, detached=True, core=sched.core.id,
                )
                obs.metrics.inc("smp.ipi.sent")
            delay = self.ipi_delay
            if plan is not None:
                if plan.drops("smp.ipi"):
                    # Shootdown lost in transit: the core stays pending (a
                    # detectable liveness violation), never switches in.
                    continue
                delay = plan.delay("smp.ipi", delay)
            self.sim.call_later(delay, self._ipi_arrive, sched, cosched)

    def _ipi_arrive(self, sched, cosched):
        """Task shootdown on a remote core (step 2 of the protocol)."""
        if self.active_cosched is not cosched:
            return
        entity = self._entity_on(cosched.group, sched.core.id)
        sched.settle()
        sched.forced_entity = entity
        sched.enqueue(entity)
        sched.reschedule()
        cosched.pending_cores.discard(sched.core.id)
        obs = self.sim.obs
        if obs is not None:
            obs.tracer.end(cosched.ipi_spans.pop(sched.core.id, None))
            obs.metrics.inc("smp.ipi.arrived")
            obs.metrics.observe("smp.shootdown_latency_ns",
                                self.sim.now - cosched.started_at)

    def cosched_tick(self, group):
        """Periodic end-of-balloon check (step 4: schedule out when no
        entity holds the best credit on its core any more)."""
        cosched = self.active_cosched
        if cosched is None or cosched.group is not group:
            return
        if cosched.pending_cores:
            return
        if group.active_member_count() == 0:
            self.end_coschedule("no members")
            return
        global_best = self._global_best_other(group)
        if global_best is None:
            return  # app is alone: nobody loses by continuing
        all_exhausted = True
        for sched in self.cores:
            entity = self._entity_on(group, sched.core.id)
            reference = sched.best_waiting_vruntime(exclude_group=group)
            if reference is None:
                reference = global_best
            if entity.vruntime <= reference:
                all_exhausted = False
                break
        if all_exhausted:
            self.end_coschedule("credit exhausted")

    def _global_best_other(self, group):
        best = None
        for sched in self.cores:
            value = sched.best_waiting_vruntime(exclude_group=group)
            if value is not None and (best is None or value < best):
                best = value
        return best

    def end_coschedule(self, reason):
        cosched = self.active_cosched
        if cosched is None:
            return
        group = cosched.group
        self.active_cosched = None
        now = self.sim.now
        self.log.log(now, "cosched_end", app=group.app.id, reason=reason)
        obs = self.sim.obs
        if obs is not None:
            for span in cosched.ipi_spans.values():
                # A still-open IPI span at schedule-out means the shootdown
                # never arrived (dropped in transit).
                obs.tracer.end(span, dropped=True)
            cosched.ipi_spans.clear()
            obs.tracer.end(cosched.span, reason=reason)
            obs.metrics.observe("smp.balloon_ns", now - cosched.started_at)
        if cosched.window_open is not None:
            for hook in self.balloon_out_hooks:
                hook(group.app, now)

        for sched in self.cores:
            sched.settle()

        if self.loans_enabled:
            self._redistribute_loans(group, cosched)

        for sched in self.cores:
            entity = self._entity_on(group, sched.core.id)
            entity.forced = False
            sched.forced_entity = None
            if not entity.members:
                sched.dequeue(entity)
            sched.resched_soon()

    def _redistribute_loans(self, group, cosched):
        """Step 5: loan redistribution and repayment.

        Each entity's loan is the credit it borrowed to keep the core while
        a better-entitled task waited — the final vruntime gap to the best
        waiter.  The entities split the total evenly and *pay it back* with
        future credits on top of the normal billing, which is what
        disadvantages the sandboxed app in future competition.

        On machines wider than two cores, the gap alone under-prices the
        balloon: a single-threaded app reserves n cores but the per-core
        credit race only reflects one waiter's loss.  The repayment
        therefore carries a surcharge proportional to the cores the balloon
        held *idle* beyond the first — zero for a balloon the app actually
        fills, and zero on dual-core platforms, where the gap already
        covers the one idle sibling.
        """
        loans = []
        global_best = self._global_best_other(group)
        for sched in self.cores:
            entity = self._entity_on(group, sched.core.id)
            reference = sched.best_waiting_vruntime(exclude_group=group)
            if reference is None:
                reference = global_best
            if reference is None:
                loans.append(0.0)
            else:
                loans.append(max(0.0, entity.vruntime - reference))
        total = sum(loans)
        if total <= 0:
            return
        mean = total / len(loans)

        duration = self.sim.now - cosched.started_at
        surcharge = 0.0
        if duration > 0 and len(self.cores) > 2:
            idle_ns = 0
            for trace in self.cluster.owner_traces:
                for t0, t1, owner in trace.segments(
                        cosched.started_at, self.sim.now):
                    if owner == -1.0:
                        idle_ns += t1 - t0
            idle_cores_avg = idle_ns / duration
            surcharge = max(0.0, idle_cores_avg - 1.0) * duration

        shares = []
        for sched in self.cores:
            entity = self._entity_on(group, sched.core.id)
            share = mean + surcharge / entity.weight
            entity.vruntime += share
            shares.append(share)
        self.log.log(self.sim.now, "loan_redistribution", app=group.app.id,
                     total=total, surcharge=surcharge, shares=shares)
        obs = self.sim.obs
        if obs is not None:
            obs.tracer.instant("loan.settle", cat="loan", track="smp",
                               app=group.app.id, total=total,
                               surcharge=surcharge)
            obs.metrics.observe("smp.loan_total", total)

    # -- bandwidth throttling (powercap actuator hook) ---------------------------------

    def set_cpu_bandwidth(self, app, fraction, period=from_msec(10)):
        """Duty-cycle ``app``'s CPU access: runnable for ``fraction`` of
        every ``period``, throttled (never picked, balloons torn down) for
        the rest.  ``fraction >= 1`` removes the limit."""
        if fraction <= 0.0:
            raise ValueError("bandwidth fraction must be positive")
        if period <= 0:
            raise ValueError("bandwidth period must be positive")
        if fraction >= 1.0:
            self.clear_cpu_bandwidth(app)
            return
        throttle = self.throttles.get(app.id)
        if throttle is None:
            throttle = _CpuThrottle(fraction, int(period))
            self.throttles[app.id] = throttle
            # Start with a fresh runnable window so a newly throttled app
            # is never cut off mid-decision.
            self._throttle_on_edge(self.group_for(app), throttle)
        else:
            throttle.fraction = fraction
            throttle.period = int(period)

    def clear_cpu_bandwidth(self, app):
        """Remove ``app``'s bandwidth limit (no-op when none is set)."""
        throttle = self.throttles.pop(app.id, None)
        if throttle is None:
            return
        if throttle.event is not None:
            throttle.event.cancel()
            throttle.event = None
        group = self.group_for(app)
        if group.throttled:
            group.throttled = False
            for sched in self.cores:
                sched.resched_soon()

    def _throttle_on_edge(self, group, throttle):
        if self.throttles.get(group.app.id) is not throttle:
            return
        group.throttled = False
        throttle.event = self.sim.call_later(
            throttle.on_ns, self._throttle_off_edge, group, throttle
        )
        for sched in self.cores:
            sched.resched_soon()

    def _throttle_off_edge(self, group, throttle):
        if self.throttles.get(group.app.id) is not throttle:
            return
        group.throttled = True
        off_ns = max(1, throttle.period - throttle.on_ns)
        throttle.event = self.sim.call_later(
            off_ns, self._throttle_on_edge, group, throttle
        )
        cosched = self.active_cosched
        if cosched is not None and cosched.group is group:
            self.end_coschedule("bandwidth throttled")
        for sched in self.cores:
            sched.resched_soon()

    # -- psbox enter/leave -------------------------------------------------------------

    def set_sandboxed(self, app, sandboxed):
        group = self.group_for(app)
        group.sandboxed = sandboxed
        if not sandboxed:
            cosched = self.active_cosched
            if cosched is not None and cosched.group is group:
                self.end_coschedule("psbox left")
        else:
            # If the app is runnable right now, let the next pick start the
            # balloon promptly.
            for sched in self.cores:
                sched.resched_soon()
