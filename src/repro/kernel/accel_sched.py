"""Fair accelerator command scheduling with temporal balloons.

The baseline scheduler is CFS-in-spirit, as the paper built for SGX544 and
C66x: per-app virtual device runtime; the pending command of the app with
the minimal virtual runtime dispatches first, and multiple apps' commands
may overlap on the hardware (work conserving).

The psbox extension follows §4.2's five phases exactly:

1. *Drain others* — stop dispatching; wait for the hardware to finish every
   outstanding command; bill the accelerator's unutilized slots to the
   sandboxed app.
2. *Flush psbox* — switch the device to the psbox's virtualized power state
   and dispatch the commands the psbox accumulated.
3. *Serve psbox* — only psbox commands dispatch; everyone else buffers.
4. *Drain psbox* — once the policy decides others deserve the device, stop
   and wait for psbox commands to finish.  Phases 2-4 bill the whole device
   to the sandboxed app.
5. *Flush others* — restore the world power state and resume normal
   dispatch in queueing order.
"""

from collections import deque

from repro.hw.accel import Command
from repro.kernel.admission import AdmissionGate
from repro.sim.trace import EventTrace

NORMAL = "normal"
DRAIN_OTHERS = "drain_others"
SERVE = "serve"
DRAIN_PSBOX = "drain_psbox"


class _AppQueue:
    __slots__ = ("app", "pending", "vruntime")

    def __init__(self, app):
        self.app = app
        self.pending = deque()
        self.vruntime = 0.0


class AccelScheduler:
    """Driver-level command scheduler for one accelerator."""

    def __init__(self, kernel, engine, name, state_holder=None,
                 draining_enabled=True, yield_quantum=8_000_000):
        self.kernel = kernel
        self.sim = kernel.sim
        self.engine = engine
        self.name = name
        self.state_holder = state_holder
        self.draining_enabled = draining_enabled
        # Hysteresis on the serve->drain decision: without a quantum the
        # balloon would flap at credit-balance speed and the drain overhead
        # would never amortize.
        self.yield_quantum = yield_quantum

        self.queues = {}
        self.state = NORMAL
        self.psbox_app = None
        self.admission = AdmissionGate(self.sim, self._pump)
        self.log = EventTrace(name + ".sched")
        self.balloon_in_hooks = []   # fn(app, t)
        self.balloon_out_hooks = []  # fn(app, t)

        self._window_open_t = None
        self._window_billed_to = None
        self._drain_start_t = None
        self._drain_idle_ns = 0.0
        self._drain_last_t = None
        self._flush_remaining = 0
        self._fault_hold_until = None
        self._fault_site = name + ".drain"
        self._phase_span = None   # obs: span of the current balloon phase

    def _obs_phase(self, name, **args):
        """Close the current balloon-phase span and open the next.

        The drain_others -> serve -> drain_psbox progression becomes a
        chain of sibling spans on this scheduler's track; passing None just
        closes the chain (balloon over).
        """
        obs = self.sim.obs
        if obs is None:
            return
        obs.tracer.end(self._phase_span)
        self._phase_span = None
        if name is not None:
            self._phase_span = obs.tracer.begin(
                name, cat="balloon", track=self.name, detached=True, **args
            )

    def _fault_held(self):
        """True while an injected stall pins the current drain transition.

        One hold is drawn per drain phase; a re-pump is scheduled for when
        it expires.  Pure read (False) without an armed fault plan.
        """
        now = self.sim.now
        if self._fault_hold_until is not None:
            if now < self._fault_hold_until:
                return True
            self._fault_hold_until = None
            return False
        plan = self.sim.faults
        if plan is None:
            return False
        hold = plan.hold_ns(self._fault_site)
        if hold <= 0:
            return False
        self._fault_hold_until = now + hold
        self.sim.call_later(hold, self._pump)
        return True

    # -- submission --------------------------------------------------------------

    def _queue_for(self, app):
        if app.id not in self.queues:
            self.queues[app.id] = _AppQueue(app)
        return self.queues[app.id]

    def submit(self, app, kind, cycles, power_w, on_complete=None):
        """Enqueue one command on behalf of ``app``."""
        command = Command(app.id, kind, cycles, power_w)
        command.submit_t = self.sim.now
        command.on_complete = self._completion_wrapper(command, on_complete)
        self._queue_for(app).pending.append(command)
        self.log.log(self.sim.now, "submit", app=app.id, seq=command.seq)
        obs = self.sim.obs
        if obs is not None:
            obs.metrics.inc(self.name + ".submitted")
        self._pump()
        return command

    def _completion_wrapper(self, command, user_cb):
        def on_complete(_command):
            self.log.log(self.sim.now, "complete", app=command.app_id,
                         seq=command.seq)
            if not command.billed_by_window:
                # Fair billing by actual device occupancy (the command's
                # device-share integral).  Commands dispatched inside a
                # psbox window are covered by the full-window bill instead.
                q = self.queues.get(command.app_id)
                if q is not None:
                    q.vruntime += command.occupancy_ns / q.app.weight
            if user_cb is not None:
                user_cb(command)
            self._pump()
        return on_complete

    # -- psbox control (called by the psbox manager) --------------------------------

    def set_psbox(self, app):
        """Enter (app) or leave (None) temporal-balloon mode for ``app``."""
        if app is not None and self.psbox_app is not None:
            raise RuntimeError(
                "{}: psbox already active for app {}".format(
                    self.name, self.psbox_app.id
                )
            )
        if app is None and self.psbox_app is not None:
            if self.state in (SERVE, DRAIN_PSBOX, DRAIN_OTHERS):
                # Leave gracefully: close the window where it stands.
                if self._window_open_t is not None:
                    self._close_window()
                self.state = NORMAL
                self._obs_phase(None)   # a drain that never opened a window
            self._fault_hold_until = None
            self.psbox_app = None
            self._pump()
            return
        self.psbox_app = app
        if app is not None:
            self._queue_for(app)
            self._pump()

    # -- the dispatch pump ----------------------------------------------------------

    def _others_pending(self):
        return any(
            q.pending for q in self.queues.values()
            if self.psbox_app is None or q.app.id != self.psbox_app.id
        )

    def _min_other_vruntime(self):
        values = [
            q.vruntime for q in self.queues.values()
            if q.pending and (self.psbox_app is None
                              or q.app.id != self.psbox_app.id)
        ]
        return min(values) if values else None

    def _pick(self):
        """The pending, admitted queue with the minimal virtual runtime."""
        best = None
        wake = None
        for q in self.queues.values():
            if not q.pending:
                continue
            if self.admission.gated(q.app.id):
                edge = self.admission.next_on_edge(q.app.id)
                wake = edge if wake is None else min(wake, edge)
                continue
            if best is None or q.vruntime < best.vruntime:
                best = q
        if wake is not None:
            self.admission.arm(wake)
        return best

    def _pump(self):
        if self.state == DRAIN_OTHERS:
            self._drain_account()
            if self.engine.inflight_count == 0:
                if self._fault_held():
                    return
                self._open_window()
            else:
                return
        if self.state == DRAIN_PSBOX:
            if self.engine.inflight_count == 0:
                if self._fault_held():
                    return
                self._close_window()
            else:
                return
        if self.state == SERVE:
            self._pump_serve()
            return
        self._pump_normal()

    def _pump_normal(self):
        while True:
            q = self._pick()
            if q is None:
                return
            if self.psbox_app is not None and q.app.id == self.psbox_app.id:
                # Balloons begin regardless of free slots: draining is
                # precisely about waiting out a full device.
                self._begin_balloon()
                return
            if not self.engine.has_room:
                return
            command = q.pending.popleft()
            self._dispatch(command)

    def _settle_window_bill(self, q):
        """Accrue the full-device window bill up to now (phases 2-4)."""
        now = self.sim.now
        if self._window_billed_to is not None:
            q.vruntime += (now - self._window_billed_to) / q.app.weight
            self._window_billed_to = now

    def _pump_serve(self):
        q = self._queue_for(self.psbox_app)
        self._settle_window_bill(q)
        # Phase 2, "flush psbox": the commands that were buffered while we
        # drained must go out unconditionally — the drain was already paid
        # for.  Only afterwards may the policy yield the device.
        flushing = self._flush_remaining > 0
        min_other = self._min_other_vruntime()
        idle = not q.pending and self.engine.inflight_count == 0
        overdrawn = (min_other is not None
                     and q.vruntime > min_other + self.yield_quantum)
        gated = self.admission.gated(self.psbox_app.id)
        if gated:
            self.admission.arm(self.admission.next_on_edge(self.psbox_app.id))
        # The balloon closes when others deserve the device *or* when the
        # psbox app stops using it — mirroring the CPU balloon, which ends
        # when the app has no runnable member.  Keeping windows tied to
        # actual device use makes an app's observation structure identical
        # whether it runs alone or co-runs.  An admission gate's off-phase
        # duty-cycles the balloon the same way (powercap actuator).
        should_yield = not flushing and (overdrawn or idle or gated)
        if should_yield:
            self.state = DRAIN_PSBOX
            self.log.log(self.sim.now, "drain_psbox", app=self.psbox_app.id)
            self._obs_phase(self.name + ".drain_psbox",
                            app=self.psbox_app.id)
            if self.engine.inflight_count == 0:
                if self._fault_held():
                    return
                self._close_window()
                self._pump_normal()
            return
        while self.engine.has_room and q.pending:
            self._flush_remaining = max(0, self._flush_remaining - 1)
            command = q.pending.popleft()
            command.billed_by_window = True
            self._dispatch(command)

    def _dispatch(self, command):
        wait = self.sim.now - command.submit_t
        self.log.log(self.sim.now, "dispatch", app=command.app_id,
                     seq=command.seq, wait=wait)
        obs = self.sim.obs
        if obs is not None:
            obs.metrics.inc(self.name + ".dispatched")
            obs.metrics.observe(self.name + ".dispatch_wait_ns", wait)
        self.engine.dispatch(command)

    # -- balloon phase transitions ------------------------------------------------------

    def _begin_balloon(self):
        if not self.draining_enabled:
            # Ablation: skip draining entirely; open the window immediately
            # even with foreign commands in flight (leaky boundary).
            self._open_window()
            self._pump_serve()
            return
        self.state = DRAIN_OTHERS
        self._drain_start_t = self.sim.now
        self._drain_last_t = self.sim.now
        self._drain_idle_ns = 0.0
        self.log.log(self.sim.now, "drain_others", app=self.psbox_app.id)
        self._obs_phase(self.name + ".drain_others", app=self.psbox_app.id)
        if self.engine.inflight_count == 0:
            if self._fault_held():
                return
            self._open_window()
            self._pump_serve()

    def _drain_account(self):
        """Accumulate idle device slots during drain (billed to the psbox)."""
        now = self.sim.now
        if self._drain_last_t is None:
            return
        idle_fraction = (
            self.engine.parallelism - self.engine.inflight_count
        ) / self.engine.parallelism
        self._drain_idle_ns += idle_fraction * (now - self._drain_last_t)
        self._drain_last_t = now

    def _open_window(self):
        """Others drained: switch power state, start serving the psbox."""
        self._drain_account()
        q = self._queue_for(self.psbox_app)
        q.vruntime += self._drain_idle_ns / q.app.weight
        self._drain_last_t = None
        self.state = SERVE
        obs = self.sim.obs
        if obs is not None:
            if self._drain_start_t is not None:
                obs.metrics.observe(self.name + ".drain_ns",
                                    self.sim.now - self._drain_start_t)
            obs.metrics.inc(self.name + ".balloons")
        self._drain_start_t = None
        self._window_open_t = self.sim.now
        self._window_billed_to = self.sim.now
        self._flush_remaining = len(q.pending)
        if self.state_holder is not None:
            self.state_holder.switch_context(self._ctx_key())
        self.log.log(self.sim.now, "window_open", app=self.psbox_app.id)
        self._obs_phase(self.name + ".serve", app=self.psbox_app.id)
        for hook in self.balloon_in_hooks:
            hook(self.psbox_app, self.sim.now)

    def _close_window(self):
        """Psbox drained: settle the window bill, restore the world state."""
        now = self.sim.now
        q = self._queue_for(self.psbox_app)
        self._settle_window_bill(q)
        self._window_billed_to = None
        if self.state_holder is not None:
            self.state_holder.switch_context("world")
        self.log.log(now, "window_close", app=self.psbox_app.id)
        obs = self.sim.obs
        if obs is not None and self._window_open_t is not None:
            obs.metrics.observe(self.name + ".window_ns",
                                now - self._window_open_t)
        self._obs_phase(None)
        for hook in self.balloon_out_hooks:
            hook(self.psbox_app, now)
        self._window_open_t = None
        self.state = NORMAL

    def _ctx_key(self):
        return "psbox.{}".format(self.psbox_app.id)

    # -- metrics -----------------------------------------------------------------------

    def dispatch_waits(self, app_id=None, t0=None, t1=None):
        """Submit-to-dispatch latencies (ns) for §6.2."""
        waits = []
        for _t, _kind, payload in self.log.filter(kind="dispatch", t0=t0, t1=t1):
            if app_id is None or payload["app"] == app_id:
                waits.append(payload["wait"])
        return waits
