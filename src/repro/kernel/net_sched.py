"""Fair packet scheduling with temporal balloons for the WiFi NIC.

The baseline is a byte-fair queueing discipline (fq-style): per-app
buffers, and the pending packet of the app with the least sent-bytes credit
goes to the NIC FIFO next.  The psbox extension holds packets in per-app
buffers across balloon phases (§4.2 "Wireless interfaces"):

* draining waits until the NIC FIFO *and* its batched completion
  notifications are quiet — which is why WiFi draining latency can reach
  hundreds of ms, as the paper observes on the WiLink8;
* the packet scheduler inspects the packets buffered because of the balloon
  and discounts the sandboxed app's credit by the bytes that could have
  been dispatched without it;
* the NIC's operating power state (tx power level, tail timer) is
  virtualized per psbox through ``state_holder``.
"""

from collections import deque

from repro.hw.nic import Packet
from repro.kernel.admission import AdmissionGate
from repro.sim.clock import SEC
from repro.sim.trace import EventTrace

NORMAL = "normal"
DRAIN_OTHERS = "drain_others"
SERVE = "serve"
DRAIN_PSBOX = "drain_psbox"


class _SocketBuffer:
    __slots__ = ("app", "pending", "credit")

    def __init__(self, app):
        self.app = app
        self.pending = deque()
        self.credit = 0.0   # bytes sent / weight


class PacketScheduler:
    """Driver-level transmit scheduler for one NIC."""

    def __init__(self, kernel, nic, state_holder=None, queue_limit=3,
                 draining_enabled=True, yield_quantum=192_000):
        self.kernel = kernel
        self.sim = kernel.sim
        self.nic = nic
        self.state_holder = state_holder
        self.queue_limit = min(queue_limit, nic.fifo_depth)
        self.draining_enabled = draining_enabled
        # Bytes of credit hysteresis before the balloon yields the NIC; the
        # long WiLink-style drain (completion batching) must amortize.
        self.yield_quantum = yield_quantum

        self.buffers = {}
        self.state = NORMAL
        self.psbox_app = None
        self.admission = AdmissionGate(self.sim, self._pump)
        self.log = EventTrace("net.sched")
        self.balloon_in_hooks = []
        self.balloon_out_hooks = []

        self._window_open_t = None
        self._held_other_bytes = 0
        self._flush_remaining = 0
        self._drain_start_t = None
        self._drain_busy_est_ns = 0
        self._window_bytes = 0
        self._fault_hold_until = None
        self._fault_site = "net.drain"
        self._phase_span = None   # obs: span of the current balloon phase

        nic.space.subscribe(lambda _nic: self._pump())

    def _obs_phase(self, name, **args):
        """Balloon-phase span chaining (see AccelScheduler._obs_phase)."""
        obs = self.sim.obs
        if obs is None:
            return
        obs.tracer.end(self._phase_span)
        self._phase_span = None
        if name is not None:
            self._phase_span = obs.tracer.begin(
                name, cat="balloon", track=self.nic.name, detached=True,
                **args
            )

    def _fault_held(self):
        """True while an injected stall pins the current drain transition.

        Mirrors ``AccelScheduler._fault_held``: one hold per drain phase,
        re-pumped when it expires; a pure read without an armed plan.
        """
        now = self.sim.now
        if self._fault_hold_until is not None:
            if now < self._fault_hold_until:
                return True
            self._fault_hold_until = None
            return False
        plan = self.sim.faults
        if plan is None:
            return False
        hold = plan.hold_ns(self._fault_site)
        if hold <= 0:
            return False
        self._fault_hold_until = now + hold
        self.sim.call_later(hold, self._pump)
        return True

    # -- submission ----------------------------------------------------------------

    def _buffer_for(self, app):
        if app.id not in self.buffers:
            self.buffers[app.id] = _SocketBuffer(app)
        return self.buffers[app.id]

    def send(self, app, size_bytes, on_complete=None):
        """Deposit one transmit unit into the app's socket buffer."""
        packet = Packet(app.id, size_bytes)
        packet.submit_t = self.sim.now
        packet.on_complete = self._completion_wrapper(packet, on_complete)
        buffer = self._buffer_for(app)
        buffer.pending.append(packet)
        self.log.log(self.sim.now, "submit", app=app.id, seq=packet.seq,
                     size=size_bytes)
        if self.state in (SERVE, DRAIN_OTHERS, DRAIN_PSBOX) and (
            self.psbox_app is None or app.id != self.psbox_app.id
        ):
            self._held_other_bytes += size_bytes
        self._pump()
        return packet

    def _completion_wrapper(self, packet, user_cb):
        def on_complete(_packet):
            self.log.log(self.sim.now, "complete", app=packet.app_id,
                         seq=packet.seq)
            if user_cb is not None:
                user_cb(packet)
            self._pump()
        return on_complete

    # -- psbox control ------------------------------------------------------------------

    def set_psbox(self, app):
        if app is not None and self.psbox_app is not None:
            raise RuntimeError("net: psbox already active for app {}".format(
                self.psbox_app.id))
        if app is None and self.psbox_app is not None:
            if self._window_open_t is not None:
                self._close_window()
            self.state = NORMAL
            self._obs_phase(None)   # a drain that never opened a window
            self._fault_hold_until = None
            self.psbox_app = None
            self._pump()
            return
        self.psbox_app = app
        if app is not None:
            self._buffer_for(app)
            self._pump()

    # -- the pump ---------------------------------------------------------------------------

    def _others_pending(self):
        return any(
            b.pending for b in self.buffers.values()
            if self.psbox_app is None or b.app.id != self.psbox_app.id
        )

    def _min_other_credit(self):
        values = [
            b.credit for b in self.buffers.values()
            if b.pending and (self.psbox_app is None
                              or b.app.id != self.psbox_app.id)
        ]
        return min(values) if values else None

    def _pick(self):
        best = None
        wake = None
        for b in self.buffers.values():
            if not b.pending:
                continue
            if self.admission.gated(b.app.id):
                edge = self.admission.next_on_edge(b.app.id)
                wake = edge if wake is None else min(wake, edge)
                continue
            if best is None or b.credit < best.credit:
                best = b
        if wake is not None:
            self.admission.arm(wake)
        return best

    def _nic_has_room(self):
        return self.nic.queued_count < self.queue_limit and self.nic.has_room

    def _pump(self):
        if self.state == DRAIN_OTHERS:
            if self.nic.is_drained:
                if self._fault_held():
                    return
                self._open_window()
            else:
                return
        if self.state == DRAIN_PSBOX:
            if self.nic.is_drained:
                if self._fault_held():
                    return
                self._close_window()
            else:
                return
        if self.state == SERVE:
            self._pump_serve()
            return
        self._pump_normal()

    def _pump_normal(self):
        while True:
            buffer = self._pick()
            if buffer is None:
                return
            if self.psbox_app is not None and buffer.app.id == self.psbox_app.id:
                self._begin_balloon()
                return
            if not self._nic_has_room():
                return
            packet = buffer.pending.popleft()
            buffer.credit += packet.size_bytes / buffer.app.weight
            self._dispatch(packet)

    def _pump_serve(self):
        buffer = self._buffer_for(self.psbox_app)
        # Flush the packets buffered during draining before any yield
        # decision (the paper's "flush psbox" phase).
        flushing = self._flush_remaining > 0
        min_other = self._min_other_credit()
        idle = not buffer.pending and self.nic.queued_count == 0
        overdrawn = (min_other is not None
                     and buffer.credit > min_other + self.yield_quantum)
        gated = self.admission.gated(self.psbox_app.id)
        if gated:
            self.admission.arm(self.admission.next_on_edge(self.psbox_app.id))
        # Close the balloon when others deserve the NIC, when the psbox app
        # has nothing on the air, or during an admission gate's off-phase
        # (see accel_sched for the rationale).
        should_yield = not flushing and (overdrawn or idle or gated)
        if should_yield:
            self.state = DRAIN_PSBOX
            self.log.log(self.sim.now, "drain_psbox", app=self.psbox_app.id)
            self._obs_phase(self.nic.name + ".drain_psbox",
                            app=self.psbox_app.id)
            if self.nic.is_drained:
                if self._fault_held():
                    return
                self._close_window()
                self._pump_normal()
            return
        while self._nic_has_room() and buffer.pending:
            packet = buffer.pending.popleft()
            self._flush_remaining = max(0, self._flush_remaining - 1)
            buffer.credit += packet.size_bytes / buffer.app.weight
            self._dispatch(packet)

    def _dispatch(self, packet):
        if self.state == SERVE:
            self._window_bytes += packet.size_bytes
        submitted = packet.submit_t if packet.submit_t is not None \
            else self.sim.now
        wait = self.sim.now - submitted
        self.log.log(self.sim.now, "dispatch", app=packet.app_id,
                     seq=packet.seq, wait=wait)
        obs = self.sim.obs
        if obs is not None:
            obs.metrics.inc(self.nic.name + ".dispatched")
            obs.metrics.observe(self.nic.name + ".dispatch_wait_ns", wait)
        accepted = self.nic.enqueue(packet)
        if not accepted:
            raise RuntimeError("NIC FIFO overflow despite queue limit")

    # -- balloon phases ------------------------------------------------------------------------

    def _begin_balloon(self):
        if not self.draining_enabled:
            self._open_window()
            self._pump_serve()
            return
        self.state = DRAIN_OTHERS
        self._held_other_bytes = sum(
            pkt.size_bytes
            for b in self.buffers.values()
            if b.app.id != self.psbox_app.id
            for pkt in b.pending
        )
        # Estimate how much of the drain the NIC will spend actually
        # transmitting; the rest (notification batching etc.) is idle time
        # the balloon causes, billed to the sandboxed app at window open.
        self._drain_start_t = self.sim.now
        queued = self.nic.queued_count
        queued_bytes = sum(
            pkt.size_bytes for pkt in self.nic._fifo
        ) + (self.nic._transmitting.size_bytes
             if self.nic._transmitting is not None else 0)
        self._drain_busy_est_ns = int(
            queued_bytes * 8 / self.nic.rate_bps * 1e9
        ) + queued * self.nic.per_packet_overhead
        self.log.log(self.sim.now, "drain_others", app=self.psbox_app.id)
        self._obs_phase(self.nic.name + ".drain_others",
                        app=self.psbox_app.id)
        if self.nic.is_drained:
            if self._fault_held():
                return
            self._open_window()
            self._pump_serve()

    def _open_window(self):
        buffer = self._buffer_for(self.psbox_app)
        obs = self.sim.obs
        if obs is not None:
            if self._drain_start_t is not None:
                obs.metrics.observe(self.nic.name + ".drain_ns",
                                    self.sim.now - self._drain_start_t)
            obs.metrics.inc(self.nic.name + ".balloons")
        if self._drain_start_t is not None:
            drain = self.sim.now - self._drain_start_t
            idle = max(0, drain - self._drain_busy_est_ns)
            buffer.credit += (idle * self.nic.rate_bps / 8 / 1e9) \
                / buffer.app.weight
            self._drain_start_t = None
        self.state = SERVE
        self._window_open_t = self.sim.now
        self._flush_remaining = len(buffer.pending)
        if self.state_holder is not None:
            self.state_holder.switch_context(self._ctx_key())
        self.log.log(self.sim.now, "window_open", app=self.psbox_app.id)
        self._obs_phase(self.nic.name + ".serve", app=self.psbox_app.id)
        for hook in self.balloon_in_hooks:
            hook(self.psbox_app, self.sim.now)

    def _close_window(self):
        now = self.sim.now
        buffer = self._buffer_for(self.psbox_app)
        # Lost-opportunity penalty: the bytes others could have pushed
        # through the NIC during the window, bounded by link capacity.
        duration = now - self._window_open_t
        capacity_bytes = self.nic.rate_bps * duration / SEC / 8
        # Others could have used at most the capacity the psbox app left on
        # the table during its exclusive window.
        foregone = max(0.0, capacity_bytes - self._window_bytes)
        penalty = min(self._held_other_bytes, foregone)
        buffer.credit += penalty / buffer.app.weight
        self._held_other_bytes = 0
        self._window_bytes = 0
        if self.state_holder is not None:
            self.state_holder.switch_context("world")
        self.log.log(now, "window_close", app=self.psbox_app.id,
                     penalty=penalty)
        obs = self.sim.obs
        if obs is not None and self._window_open_t is not None:
            obs.metrics.observe(self.nic.name + ".window_ns",
                                now - self._window_open_t)
        self._obs_phase(None)
        for hook in self.balloon_out_hooks:
            hook(self.psbox_app, now)
        self._window_open_t = None
        self.state = NORMAL

    def _ctx_key(self):
        return "psbox.{}".format(self.psbox_app.id)

    # -- metrics -------------------------------------------------------------------------------

    def dispatch_waits(self, app_id=None, t0=None, t1=None):
        """Submit-to-dispatch latencies (ns)."""
        waits = []
        for _t, _kind, payload in self.log.filter(kind="dispatch", t0=t0, t1=t1):
            if app_id is None or payload["app"] == app_id:
                waits.append(payload["wait"])
        return waits
