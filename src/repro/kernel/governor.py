"""DVFS governors with per-context state.

The governor is ondemand-shaped: jump to the top OPP under high utilization,
step down under low utilization.  Crucially, *all* governor state (the
chosen OPP and the in-progress utilization window) is kept per context.
Contexts are the hook psbox uses for power-state virtualization: every psbox
gets its own context, plus one shared "world" context for everything else.
While a context is inactive its DVFS state is frozen; switching contexts
saves the hardware OPP into the old context and programs the new context's
OPP — so no app observes another app's lingering frequency state.
"""

from repro.sim.clock import from_msec
from repro.sim.trace import EventTrace

WORLD = "world"


class _ContextState:
    __slots__ = ("index", "busy", "wall")

    def __init__(self, index):
        self.index = index
        self.busy = 0.0
        self.wall = 0


class OndemandGovernor:
    """Ondemand-style governor over a :class:`repro.hw.dvfs.FreqDomain`.

    ``utilization_fn(t0, t1)`` must return the device's mean utilization in
    [0, 1] over the interval — core-busy fraction for the CPU cluster,
    inflight fraction for accelerators.
    """

    def __init__(
        self,
        sim,
        domain,
        utilization_fn,
        window=from_msec(25),
        tick=from_msec(5),
        up_threshold=0.75,
        down_threshold=0.30,
        initial_index=0,
    ):
        self.sim = sim
        self.domain = domain
        self.utilization_fn = utilization_fn
        self.window = window
        self.tick = tick
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.contexts = {WORLD: _ContextState(initial_index)}
        self.active = WORLD
        self.clamps = {}
        self.log = EventTrace("governor." + domain.name)
        self._last_settle = sim.now
        domain.set_opp(initial_index)
        self._tick_event = sim.call_later(tick, self._on_tick)
        self.enabled = True

    # -- context management (power-state virtualization hook) -------------------

    def context(self, key):
        if key not in self.contexts:
            # New contexts start from the lowest OPP: a fresh psbox must not
            # inherit the world's lingering frequency.
            self.contexts[key] = _ContextState(0)
        return self.contexts[key]

    def switch_context(self, key):
        """Save the active context's OPP, restore ``key``'s OPP."""
        self._settle()
        self.contexts[self.active].index = self.domain.index
        state = self.context(key)
        if not 0 <= state.index <= self.domain.max_index:
            raise ValueError(
                "context {!r} restores OPP index {}, outside the domain's "
                "OPP table 0..{}".format(key, state.index,
                                         self.domain.max_index)
            )
        self.active = key
        target = self._clamped(key, state.index)
        plan = self.sim.faults
        if plan is None or not plan.corrupts("governor.restore"):
            self.domain.set_opp(target)
        # else: the restore write was lost — the hardware keeps the previous
        # context's OPP, leaking lingering frequency state across the
        # boundary (exactly what repro.check's vstate invariant catches).
        self.log.log(self.sim.now, "switch", key=key, expected=target,
                     actual=self.domain.index)
        obs = self.sim.obs
        if obs is not None:
            track = "governor." + self.domain.name
            obs.tracer.instant("ctx.switch", cat="governor", track=track,
                               key=str(key), expected=target,
                               actual=self.domain.index)
            obs.tracer.sample("opp." + self.domain.name, track=track,
                              opp=self.domain.index)
            obs.metrics.inc("governor.{}.switches".format(self.domain.name))
        state.index = self.domain.index

    # -- OPP clamping (powercap actuator hook) -----------------------------------

    def set_clamp(self, key, max_index):
        """Cap context ``key``'s OPP choices at ``max_index``.

        The clamp constrains the governor's decisions — it does not shrink
        the domain's OPP table, so saved context indices always stay valid.
        Takes effect immediately when ``key`` is the active context.
        """
        if not 0 <= max_index <= self.domain.max_index:
            raise ValueError(
                "clamp index {} outside the domain's OPP table 0..{}".format(
                    max_index, self.domain.max_index
                )
            )
        self.clamps[key] = max_index
        state = self.context(key)
        if state.index > max_index:
            state.index = max_index
            if self.active == key:
                self.domain.set_opp(max_index)

    def clear_clamp(self, key):
        """Remove ``key``'s OPP clamp (no-op when none is set)."""
        self.clamps.pop(key, None)

    def _clamped(self, key, index):
        limit = self.clamps.get(key)
        return index if limit is None else min(index, limit)

    def drop_context(self, key):
        """Forget a context (psbox destroyed)."""
        if key == WORLD:
            raise ValueError("cannot drop the world context")
        self.contexts.pop(key, None)
        self.clamps.pop(key, None)
        if self.active == key:
            self.active = WORLD
            self.domain.set_opp(self.contexts[WORLD].index)

    # -- the governor loop -------------------------------------------------------

    def _settle(self):
        now = self.sim.now
        if now > self._last_settle:
            util = self.utilization_fn(self._last_settle, now)
            state = self.contexts[self.active]
            state.busy += util * (now - self._last_settle)
            state.wall += now - self._last_settle
        self._last_settle = now

    def _on_tick(self):
        self._tick_event = self.sim.call_later(self.tick, self._on_tick)
        if not self.enabled:
            return
        self._settle()
        state = self.contexts[self.active]
        if state.wall < self.window:
            return
        utilization = state.busy / state.wall if state.wall else 0.0
        state.busy = 0.0
        state.wall = 0
        if utilization > self.up_threshold:
            self._program(self._clamped(self.active, self.domain.max_index))
        elif utilization < self.down_threshold:
            self._program(self.domain.index - 1)
        state.index = self.domain.index

    def _program(self, index):
        """Write one tick decision to the hardware (fault injection site).

        An injected ``drop`` loses the write (the domain sticks at its
        current OPP); an injected ``hold`` lands it late, modelling an OPP
        transition latency spike.  Without an armed plan this is exactly
        ``domain.set_opp``.
        """
        plan = self.sim.faults
        if plan is not None:
            if plan.drops("governor.opp"):
                return
            lag = plan.hold_ns("governor.opp")
            if lag > 0:
                self.sim.call_later(lag, self.domain.set_opp, index)
                return
        previous = self.domain.index
        self.domain.set_opp(index)
        obs = self.sim.obs
        if obs is not None and self.domain.index != previous:
            track = "governor." + self.domain.name
            obs.tracer.instant("opp.transition", cat="governor", track=track,
                               index=self.domain.index, ctx=str(self.active))
            obs.tracer.sample("opp." + self.domain.name, track=track,
                              opp=self.domain.index)
            obs.metrics.inc("governor.{}.transitions".format(
                self.domain.name))

    def stop(self):
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
