"""The simulated OS kernel.

A work-conserving multicore scheduler (CFS-like), DVFS governors with
per-context (virtualizable) state, fair command schedulers for accelerators,
and a fair packet scheduler for the NIC.  psbox (``repro.core``) extends
these subsystems exactly where the paper extends Linux: the CPU scheduler
learns coscheduling + loans, and the command/packet schedulers learn
temporal balloons.
"""

from repro.kernel.actions import Compute, SendPacket, Sleep, SubmitAccel, WaitAll
from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.task import Task

__all__ = [
    "Compute",
    "Kernel",
    "KernelConfig",
    "SendPacket",
    "Sleep",
    "SubmitAccel",
    "Task",
    "WaitAll",
]
