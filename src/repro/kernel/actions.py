"""Actions a task behaviour may yield to the kernel.

Task behaviours are generators; each yielded action is a request to the
kernel, mirroring the syscall surface the paper's benchmark apps exercise:
burn CPU, sleep, offload accelerator commands, transmit packets, or wait for
outstanding asynchronous work.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Compute:
    """Burn ``cycles`` CPU cycles (a compute burst)."""

    cycles: float

    def __post_init__(self):
        if self.cycles <= 0:
            raise ValueError("Compute needs positive cycles")


@dataclass(frozen=True)
class Sleep:
    """Block for ``duration`` nanoseconds (timer sleep / frame pacing)."""

    duration: int

    def __post_init__(self):
        if self.duration < 0:
            raise ValueError("Sleep needs non-negative duration")


@dataclass(frozen=True)
class SubmitAccel:
    """Offload one command to an accelerator ("gpu" or "dsp").

    ``wait=True`` blocks the task until the command's completion interrupt;
    otherwise the command runs asynchronously (track with :class:`WaitAll`).
    """

    device: str
    kind: str
    cycles: float
    power_w: float
    wait: bool = True


@dataclass(frozen=True)
class SendPacket:
    """Deposit one transmit unit with a packet scheduler.

    ``device`` selects the radio ("wifi" or "lte"); ``wait=True`` blocks
    until the (batched) completion notification.
    """

    size_bytes: int
    wait: bool = False
    device: str = "wifi"


@dataclass(frozen=True)
class UpdateSurface:
    """Replace the app's display surface (OLED panel share + intensity)."""

    fraction: float
    intensity: float


@dataclass(frozen=True)
class AcquireGps:
    """Start using the GPS (powers it up / joins current users)."""


@dataclass(frozen=True)
class ReleaseGps:
    """Stop using the GPS (powers it down when last user leaves)."""


@dataclass(frozen=True)
class WaitAll:
    """Block until every outstanding async submission of this task completed."""


@dataclass(frozen=True)
class WaitOutstanding:
    """Block until fewer than ``limit`` async submissions are outstanding.

    The pipelining primitive: a double-buffered renderer issues frames with
    ``WaitOutstanding(2)``, a TCP-window sender with ``WaitOutstanding(w)``.
    """

    limit: int

    def __post_init__(self):
        if self.limit < 1:
            raise ValueError("WaitOutstanding needs a positive limit")
