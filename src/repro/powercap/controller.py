"""The power-cap daemon: a periodic closed-loop controller.

Every tick (a ``sim.Process``), the daemon reads each bound app's metered
power through :meth:`PsboxManager.read_power`, estimates demand, asks the
budget tree for grants, and drives each leaf's throttle level with a PI
controller:

* the proportional term reacts to the current overshoot;
* the integrator accumulates persistent overshoot (and unwinds on
  undershoot), which is what holds a steady throttle depth at zero error;
* hysteresis — a quantized level plus an error deadband — keeps actuators
  from flapping between adjacent levels on metering ripple.

Unmanaged draw (idle floors of unbound components, world activity) is
charged against the root cap each tick, so the *aggregate* rail power is
regulated to the cap, not just the sum of the managed apps.
"""

from dataclasses import dataclass, field

from repro.core.manager import PsboxManager
from repro.obs import flight
from repro.powercap.telemetry import TelemetryRing
from repro.sim.clock import from_msec


@dataclass
class LeafBinding:
    """Wires one budget-tree leaf to an app's psbox and its actuators."""

    node: str
    psbox: object
    actuators: tuple = ()

    def __post_init__(self):
        self.actuators = tuple(self.actuators)


@dataclass
class _LeafState:
    level: float = 0.0       # throttle level currently applied [0, 1]
    integral: float = 0.0    # PI integrator (already in level units)
    measured_w: float = 0.0
    grant_w: float = 0.0


@dataclass
class ControllerConfig:
    """Gains and shaping knobs of the PI loop."""

    period: int = from_msec(50)
    kp: float = 0.8              # proportional gain on normalized error
    ki: float = 4.0              # integral gain, 1/seconds
    ki_root: float = 1.0         # aggregate trim integral gain, 1/seconds
    levels: int = 16             # throttle quantization steps (hysteresis)
    deadband_w: float = 0.02     # ignore |error| below this when throttling up
    demand_headroom: float = 0.25  # demand estimate margin above measured
    throttle_strength: float = 0.8  # assumed power cut at full throttle
    floor_w: float = 0.05        # normalization floor for tiny grants
    extras: dict = field(default_factory=dict)


class PowerCapController:
    """Hierarchical multi-tenant power-budget enforcement daemon."""

    def __init__(self, kernel, tree, bindings, config=None, telemetry=None):
        self.kernel = kernel
        self.sim = kernel.sim
        self.tree = tree
        self.bindings = list(bindings)
        self.config = config or ControllerConfig()
        self.telemetry = telemetry or TelemetryRing()
        self.manager = PsboxManager.for_kernel(kernel)
        for binding in self.bindings:
            leaf = tree.node(binding.node)
            if not leaf.is_leaf:
                raise ValueError(
                    "binding target {!r} is not a leaf".format(binding.node)
                )
        self._states = {b.node: _LeafState() for b in self.bindings}
        self._trim_w = 0.0       # outer integrator on the aggregate error
        self._proc = None
        self.ticks = 0
        # Backref so offline consumers (events export, flight snapshots)
        # can find this kernel's actuator-decision ring from its session.
        kernel.powercap = self

    # -- lifecycle ---------------------------------------------------------------

    @property
    def running(self):
        return self._proc is not None and not self._proc.finished

    def start(self):
        """Start the periodic control loop; returns self."""
        if self._proc is None or self._proc.finished:
            self._proc = self.sim.spawn(self._run(), name="powercapd")
        return self

    def stop(self):
        """Stop the loop and release every actuator (no residue)."""
        if self._proc is not None and not self._proc.finished:
            self._proc.kill()
        self._proc = None
        for binding in self.bindings:
            for actuator in binding.actuators:
                actuator.release()
        for state in self._states.values():
            state.level = 0.0
            state.integral = 0.0
        self._trim_w = 0.0

    def _run(self):
        last = self.sim.now
        while True:
            yield self.config.period
            now = self.sim.now
            self._tick(last, now)
            last = now

    # -- readout -----------------------------------------------------------------

    def aggregate_power(self, t0, t1):
        """True platform draw: mean of every rail over [t0, t1)."""
        if t1 <= t0:
            return 0.0
        return sum(
            rail.mean_power(t0, t1)
            for rail in self.kernel.platform.rails.values()
        )

    def leaf_state(self, node):
        """The controller's last decision state for one leaf (read-only)."""
        state = self._states[node]
        return {
            "level": state.level,
            "measured_w": state.measured_w,
            "grant_w": state.grant_w,
        }

    # -- the control law -----------------------------------------------------------

    def _tick(self, t0, t1):
        if t1 <= t0:
            return
        self.ticks += 1
        cfg = self.config
        dt_s = (t1 - t0) / 1e9
        obs = self.sim.obs
        if flight._recorder is not None:
            flight._recorder.note_ring(
                self.telemetry,
                obs.label if obs is not None else self.tree.root.name)
        tick_span = None
        if obs is not None:
            tick_span = obs.tracer.begin(
                "powercap.tick", cat="powercap", track="powercap",
                detached=True, tick=self.ticks)
            obs.metrics.inc("powercap.ticks")

        measured = {}
        demands = {}
        plan = self.sim.faults
        for binding in self.bindings:
            state = self._states[binding.node]
            watts = self.manager.read_power(binding.psbox, t0, t1)
            if plan is not None and plan.corrupts("powercap.telemetry"):
                # Stale telemetry: the meter path did not deliver a fresh
                # reading this tick, so the daemon reuses the previous one.
                watts = state.measured_w
            measured[binding.node] = watts
            # Demand estimate: what the app would draw unthrottled.  The
            # measured power of a throttled app understates it by roughly
            # the actuators' attenuation, so invert that model (a leaf at
            # full throttle keeps ~(1 - throttle_strength) of its draw) and
            # add a fixed headroom — grants then track above measurement
            # and release cleanly when the tree has slack.
            attainable = max(1.0 - cfg.throttle_strength * state.level, 0.1)
            demands[binding.node] = (
                watts * (1.0 + cfg.demand_headroom) / attainable
            )

        aggregate = self.aggregate_power(t0, t1)
        root = self.tree.root
        if root.cap_w is not None:
            # Whatever the managed apps do not account for still drains the
            # cap: idle floors of unbound components, unmanaged world
            # activity, and double-counted idle fill.
            overhead = max(0.0, aggregate - sum(measured.values()))
            # Outer loop: the per-leaf model errors (demand estimates,
            # quantized levels) leave a residual bias between the true
            # aggregate and the cap; a slow integrator trims it out.  It
            # saturates harmlessly when the apps simply cannot draw more.
            self._trim_w = _clip(
                self._trim_w + cfg.ki_root * (root.cap_w - aggregate) * dt_s,
                -0.5 * root.cap_w, 0.5 * root.cap_w,
            )
            grants = self.tree.allocate(
                demands,
                available=max(0.0, root.cap_w - overhead + self._trim_w),
            )
        else:
            grants = self.tree.allocate(demands)

        for binding in self.bindings:
            state = self._states[binding.node]
            grant = grants[binding.node]
            error = measured[binding.node] - grant
            reference = max(grant, cfg.floor_w)
            normalized = error / reference
            state.integral = _clip(
                state.integral + cfg.ki * normalized * dt_s, 0.0, 1.0
            )
            raw = _clip(cfg.kp * normalized + state.integral, 0.0, 1.0)
            level = round(raw * cfg.levels) / cfg.levels
            action = "hold"
            if level != state.level and (
                level < state.level or abs(error) > cfg.deadband_w
            ):
                for actuator in binding.actuators:
                    actuator.apply(level)
                action = "throttle" if level > state.level else "relax"
                state.level = level
            state.measured_w = measured[binding.node]
            state.grant_w = grant
            self.telemetry.record(
                t1, binding.node, measured[binding.node], grant, action,
                state.level,
            )
            if obs is not None:
                if action != "hold":
                    obs.metrics.inc("powercap.actions." + action)
                node = binding.node
                obs.metrics.set("powercap.{}.level".format(node), state.level)
                obs.metrics.set("powercap.{}.grant_w".format(node), grant)
                obs.metrics.observe("powercap.{}.measured_w".format(node),
                                    measured[node], weight=dt_s)
                timeline = obs.timeline
                if timeline is not None:
                    timeline.record("powercap.leaf_level", t1, state.level,
                                    leaf=node)
                    timeline.record("powercap.leaf_grant_w", t1, grant,
                                    leaf=node)
                    timeline.record("powercap.leaf_measured_w", t1,
                                    measured[node], leaf=node)
        self.telemetry.record(
            t1, root.name, aggregate, root.cap_w, "aggregate", 0.0
        )
        if obs is not None:
            obs.metrics.set("powercap.aggregate_w", aggregate)
            obs.tracer.sample("powercap.aggregate_w", track="powercap",
                              watts=round(aggregate, 4))
            timeline = obs.timeline
            if timeline is not None:
                timeline.record("powercap.aggregate_w", t1, aggregate)
                if root.cap_w is not None:
                    timeline.record("powercap.cap_w", t1, root.cap_w)
                    timeline.record(
                        "powercap.compliance_err", t1,
                        (aggregate - root.cap_w) / root.cap_w
                        if root.cap_w else 0.0)
            obs.tracer.end(tick_span, aggregate_w=round(aggregate, 4),
                           cap_w=root.cap_w)


def _clip(value, lo, hi):
    return lo if value < lo else hi if value > hi else value
