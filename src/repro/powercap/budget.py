"""Hierarchical power budgets: platform -> tenant -> app.

The tree follows the nvPAX shape: every node may carry its own cap, sibling
caps may *oversubscribe* their parent (sum of child caps exceeding the
parent's), and at allocation time the parent's actual budget is divided by
weighted water-filling over the children's demands.  Two redistribution
mechanisms fall out of the same pass:

* **slack redistribution** — a child demanding less than its fair share
  frees the difference for its busier siblings (the water level rises);
* **borrowing** — a child whose demand exceeds its *own* cap may soak up
  whatever budget its siblings leave unused, up to the parent's budget.

Allocation is pure arithmetic over the demand vector — no simulator state —
so the controller can call it every tick and tests can probe it directly.
"""

_INF = float("inf")


def waterfill(requests, weights, capacity):
    """Weighted water-filling: grants ``g_i <= r_i`` summing to at most
    ``capacity``, short requests fully met, the rest filled to a common
    weighted level.

    Returns a list aligned with ``requests``.  When the requests fit, each
    is granted outright; otherwise the water level is raised progressively,
    so a request below its weighted share frees the difference for the
    others (slack redistribution).
    """
    # Defensive copies: callers may pass iterators or live lists they keep
    # mutating; the fill below indexes repeatedly and must see one stable
    # snapshot (and must never write through to the caller's list).
    requests = [float(r) for r in requests]
    weights = [float(w) for w in weights]
    if len(requests) != len(weights):
        raise ValueError("requests and weights must align")
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    if sum(requests) <= capacity:
        return list(requests)
    # Fill in order of normalized request: once the smallest consumers are
    # satisfied, the remaining capacity is re-shared among the rest.
    order = sorted(
        range(len(requests)), key=lambda i: (requests[i] / weights[i], i)
    )
    grants = [0.0] * len(requests)
    remaining = capacity
    active_weight = sum(weights)
    for i in order:
        share = remaining * weights[i] / active_weight if active_weight else 0.0
        grants[i] = min(requests[i], share)
        remaining -= grants[i]
        active_weight -= weights[i]
    return grants


class BudgetNode:
    """One node of the budget tree.

    ``cap_w=None`` means uncapped (bounded only by ancestors).  ``weight``
    sets the node's share in its siblings' water-filling.  ``borrowable``
    marks whether the node may exceed its own cap by borrowing budget its
    siblings leave unused.
    """

    def __init__(self, name, cap_w=None, weight=1.0, borrowable=True):
        if cap_w is not None and cap_w < 0:
            raise ValueError("cap must be non-negative")
        if weight <= 0:
            raise ValueError("weight must be positive")
        self.name = name
        self.cap_w = cap_w
        self.weight = float(weight)
        self.borrowable = borrowable
        self.parent = None
        self.children = []

    @property
    def is_leaf(self):
        return not self.children

    def add_child(self, node):
        """Attach ``node`` beneath this one; returns ``node``."""
        if node.parent is not None:
            raise ValueError("node {!r} already has a parent".format(node.name))
        node.parent = self
        self.children.append(node)
        return node

    def child(self, name, cap_w=None, weight=1.0, borrowable=True):
        """Create and attach a child in one step; returns the child."""
        return self.add_child(
            BudgetNode(name, cap_w=cap_w, weight=weight, borrowable=borrowable)
        )

    def walk(self):
        """This node and every descendant, depth first."""
        yield self
        for child in self.children:
            for node in child.walk():
                yield node

    def leaves(self):
        return [node for node in self.walk() if node.is_leaf]

    def path(self):
        """'platform/tenant/app'-style slash path from the root."""
        parts = []
        node = self
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    def __repr__(self):
        cap = "uncapped" if self.cap_w is None else "{:.2f}W".format(self.cap_w)
        return "BudgetNode({!r}, {}, {} children)".format(
            self.name, cap, len(self.children)
        )


class BudgetTree:
    """The budget hierarchy plus its allocation pass."""

    def __init__(self, root):
        self.root = root
        self._nodes = {}
        for node in root.walk():
            if node.name in self._nodes:
                raise ValueError("duplicate node name {!r}".format(node.name))
            self._nodes[node.name] = node

    @classmethod
    def from_spec(cls, spec):
        """Build a tree from nested dicts::

            BudgetTree.from_spec({
                "name": "platform", "cap_w": 3.0, "children": [
                    {"name": "tenant-a", "cap_w": 2.0, "children": [...]},
                    {"name": "tenant-b", "weight": 2.0},
                ],
            })
        """
        def build(entry):
            node = BudgetNode(
                entry["name"],
                cap_w=entry.get("cap_w"),
                weight=entry.get("weight", 1.0),
                borrowable=entry.get("borrowable", True),
            )
            for child in entry.get("children", ()):
                node.add_child(build(child))
            return node

        return cls(build(spec))

    def node(self, name):
        if name not in self._nodes:
            raise KeyError("no budget node {!r}".format(name))
        return self._nodes[name]

    def snapshot(self):
        """The tree as the nested-dict spec :meth:`from_spec` accepts.

        The snapshot is freshly built, JSON-able, and shares no state with
        the live tree — hand it to :func:`allocate_snapshot` (or across a
        process boundary) without any daemon or ``BudgetNode`` in sight.
        """
        def capture(node):
            entry = {"name": node.name, "weight": node.weight,
                     "borrowable": node.borrowable}
            if node.cap_w is not None:
                entry["cap_w"] = node.cap_w
            if node.children:
                entry["children"] = [capture(c) for c in node.children]
            return entry

        return capture(self.root)

    def __contains__(self, name):
        return name in self._nodes

    def leaves(self):
        return self.root.leaves()

    def demand_of(self, node, demands):
        """A node's aggregate demand: its own entry for leaves, the sum of
        the children's demands otherwise."""
        if node.is_leaf:
            return max(0.0, demands.get(node.name, 0.0))
        return sum(self.demand_of(child, demands) for child in node.children)

    def allocate(self, demands, available=None):
        """Divide the root budget over the tree for one demand vector.

        ``demands`` maps leaf names to watts of estimated demand (leaves
        absent from the mapping demand nothing).  ``available`` overrides
        the root's budget for this pass — the controller uses it to charge
        unmanaged draw (idle floors, world activity) against the cap.

        Returns ``{node name: granted watts}`` for every node.  A grant is
        the power the node may spend; leaf grants are the controller's
        per-app targets.
        """
        grants = {}
        if available is None:
            root_demand = self.demand_of(self.root, demands)
            available = self.root.cap_w if self.root.cap_w is not None \
                else root_demand
        self._distribute(self.root, max(0.0, float(available)), demands, grants)
        return grants

    def _distribute(self, node, available, demands, grants):
        grants[node.name] = available
        if node.is_leaf:
            return
        children = node.children
        child_demand = [self.demand_of(child, demands) for child in children]
        weights = [child.weight for child in children]
        # Pass 1: every child asks for its demand clipped to its own cap;
        # water-filling divides the parent budget (oversubscribed caps are
        # simply clipped here, and slack from quiet children raises the
        # level for busy ones).
        entitled = [
            min(d, child.cap_w if child.cap_w is not None else _INF)
            for d, child in zip(child_demand, children)
        ]
        base = waterfill(entitled, weights, available)
        slack = available - sum(base)
        # Pass 2: borrowing.  Children still demanding beyond their own cap
        # split the leftover budget, again by water-filling.
        extra = [0.0] * len(children)
        if slack > 0:
            overflow = [
                d - e if child.borrowable and child.cap_w is not None else 0.0
                for d, e, child in zip(child_demand, entitled, children)
            ]
            extra = waterfill(overflow, weights, slack)
            slack -= sum(extra)
        # Pass 3: whatever budget demand left unclaimed is granted anyway,
        # weight-proportionally, to the children allowed to exceed their
        # request (grants are *permissions*, not obligations — a leaf that
        # cannot use its bonus simply leaves it on the table, while one
        # whose demand estimate lagged ramps up without waiting a tick).
        if slack > 0:
            takers = [
                i for i, child in enumerate(children) if child.borrowable
            ]
            taker_weight = sum(weights[i] for i in takers)
            for i in takers:
                extra[i] += slack * weights[i] / taker_weight
        for child, b, e in zip(children, base, extra):
            self._distribute(child, b + e, demands, grants)


def _snapshot_demand(entry, demands):
    children = entry.get("children")
    if not children:
        return max(0.0, demands.get(entry["name"], 0.0))
    return sum(_snapshot_demand(child, demands) for child in children)


def _snapshot_distribute(entry, available, demands, grants):
    grants[entry["name"]] = available
    children = entry.get("children")
    if not children:
        return
    child_demand = [_snapshot_demand(child, demands) for child in children]
    weights = [child.get("weight", 1.0) for child in children]
    caps = [child.get("cap_w") for child in children]
    borrowable = [child.get("borrowable", True) for child in children]
    entitled = [
        min(d, cap if cap is not None else _INF)
        for d, cap in zip(child_demand, caps)
    ]
    base = waterfill(entitled, weights, available)
    slack = available - sum(base)
    extra = [0.0] * len(children)
    if slack > 0:
        overflow = [
            d - e if may_borrow and cap is not None else 0.0
            for d, e, cap, may_borrow
            in zip(child_demand, entitled, caps, borrowable)
        ]
        extra = waterfill(overflow, weights, slack)
        slack -= sum(extra)
    if slack > 0:
        takers = [i for i, may_borrow in enumerate(borrowable) if may_borrow]
        taker_weight = sum(weights[i] for i in takers)
        for i in takers:
            extra[i] += slack * weights[i] / taker_weight
    for child, b, e in zip(children, base, extra):
        _snapshot_distribute(child, b + e, demands, grants)


def allocate_snapshot(snapshot, demands, available=None):
    """One water-filling allocation pass over a budget-tree *snapshot*.

    ``snapshot`` is the nested-dict spec form (what
    :meth:`BudgetTree.snapshot` returns and :meth:`BudgetTree.from_spec`
    accepts); ``demands`` maps leaf names to watts.  Returns
    ``{node name: granted watts}`` for every node — the same grants a live
    :class:`BudgetTree` would compute — without instantiating a tree, a
    controller, or any simulator state.  Pure: neither the snapshot nor
    the demand mapping is mutated, so a cluster-level caller can rerun it
    against one captured snapshot as often as it likes.
    """
    grants = {}
    if available is None:
        root_demand = _snapshot_demand(snapshot, demands)
        cap = snapshot.get("cap_w")
        available = cap if cap is not None else root_demand
    _snapshot_distribute(snapshot, max(0.0, float(available)), demands, grants)
    return grants
