"""Controller decision telemetry: a fixed-size ring, exportable as JSON.

The daemon records one entry per node per tick.  A bounded ring keeps the
daemon's memory constant no matter how long the simulation runs; analysis
code exports the retained window with :meth:`TelemetryRing.to_json`.
"""

import json


class TelemetryRing:
    """Fixed-capacity ring buffer of controller decisions."""

    FIELDS = ("t", "node", "measured_w", "budget_w", "action", "level")

    def __init__(self, capacity=4096):
        if capacity < 1:
            raise ValueError("telemetry ring needs capacity >= 1")
        self.capacity = capacity
        self.dropped = 0
        self._slots = [None] * capacity
        self._next = 0
        self._count = 0

    def __len__(self):
        return self._count

    def record(self, t, node, measured_w, budget_w, action, level):
        """Append one decision; overwrites the oldest entry when full."""
        entry = {
            "t": int(t),
            "node": node,
            "measured_w": round(float(measured_w), 6),
            "budget_w": None if budget_w is None else round(float(budget_w), 6),
            "action": action,
            "level": round(float(level), 6),
        }
        if self._count == self.capacity:
            self.dropped += 1
        self._slots[self._next] = entry
        self._next = (self._next + 1) % self.capacity
        self._count = min(self._count + 1, self.capacity)
        return entry

    def records(self, node=None, t0=None, t1=None):
        """Retained entries, oldest first, optionally filtered."""
        if self._count < self.capacity:
            ordered = self._slots[: self._count]
        else:
            ordered = self._slots[self._next:] + self._slots[: self._next]
        return [
            entry for entry in ordered
            if (node is None or entry["node"] == node)
            and (t0 is None or entry["t"] >= t0)
            and (t1 is None or entry["t"] < t1)
        ]

    def latest(self, node=None):
        """The newest retained entry (for ``node``, if given), or None."""
        for entry in reversed(self.records(node=node)):
            return entry
        return None

    def to_json(self, indent=None):
        """The retained window as a JSON array string."""
        return json.dumps(self.records(), indent=indent, sort_keys=True)

    def clear(self):
        self._slots = [None] * self.capacity
        self._next = 0
        self._count = 0
        self.dropped = 0
