"""repro.powercap — hierarchical multi-tenant power-budget enforcement.

psbox (the rest of this repository) gives every app a trustworthy view of
its own power; this package closes the loop and *acts* on those readings.
A budget tree (platform -> tenant -> app) carries caps that may
oversubscribe; a periodic daemon compares each leaf's metered power —
read through the psbox virtual meters — against its water-filled grant and
throttles overshooting apps through the kernel's own mechanisms (governor
OPP clamps, CFS bandwidth duty cycles, balloon admission gates).

Nothing here runs unless a :class:`PowerCapController` is created and
started: with the daemon absent, every kernel path is bit-identical to the
plain reproduction.
"""

from repro.powercap.actuators import (
    Actuator,
    BalloonAdmissionActuator,
    CfsBandwidthActuator,
    GovernorClampActuator,
)
from repro.powercap.budget import (
    BudgetNode,
    BudgetTree,
    allocate_snapshot,
    waterfill,
)
from repro.powercap.controller import (
    ControllerConfig,
    LeafBinding,
    PowerCapController,
)
from repro.powercap.telemetry import TelemetryRing

__all__ = [
    "Actuator",
    "allocate_snapshot",
    "BalloonAdmissionActuator",
    "BudgetNode",
    "BudgetTree",
    "CfsBandwidthActuator",
    "ControllerConfig",
    "GovernorClampActuator",
    "LeafBinding",
    "PowerCapController",
    "TelemetryRing",
    "waterfill",
]
