"""Enforcement backends: how a throttle level becomes less power.

Each actuator maps the controller's throttle level ``u`` in [0, 1] onto one
existing kernel mechanism:

* :class:`GovernorClampActuator` — clamps the max OPP of a governor's
  contexts (``kernel/governor.py``), lowering the frequency ceiling an app's
  psbox context (or the world) may reach;
* :class:`CfsBandwidthActuator` — duty-cycles an app's runnable windows
  through the SMP scheduler (``kernel/smp.py``), shrinking its CPU share;
* :class:`BalloonAdmissionActuator` — duty-cycles an app's admission into
  an accelerator or NIC balloon scheduler, bounding its device occupancy.

``apply(0.0)`` always restores the untouched mechanism, so a stopped daemon
leaves no residue.
"""

from repro.sim.clock import from_msec


class Actuator:
    """Interface: ``apply(level)`` with level in [0, 1]; ``release()``."""

    def apply(self, level):
        raise NotImplementedError

    def release(self):
        self.apply(0.0)


def _check_level(level):
    if not 0.0 <= level <= 1.0:
        raise ValueError("throttle level must be within [0, 1]")
    return float(level)


class GovernorClampActuator(Actuator):
    """Max-OPP clamp on one or more governor contexts.

    Level 0 removes the clamp; level 1 pins the contexts to ``min_index``.
    Intermediate levels interpolate over the OPP table.
    """

    def __init__(self, governor, ctx_keys, min_index=0):
        if not ctx_keys:
            raise ValueError("need at least one governor context to clamp")
        if not 0 <= min_index <= governor.domain.max_index:
            raise ValueError("min_index outside the domain's OPP table")
        self.governor = governor
        self.ctx_keys = tuple(ctx_keys)
        self.min_index = min_index

    def apply(self, level):
        level = _check_level(level)
        if level <= 0.0:
            for key in self.ctx_keys:
                self.governor.clear_clamp(key)
            return
        top = self.governor.domain.max_index
        max_index = top - int(round(level * (top - self.min_index)))
        for key in self.ctx_keys:
            self.governor.set_clamp(key, max_index)


class CfsBandwidthActuator(Actuator):
    """Duty-cycled CPU bandwidth through the SMP scheduler.

    Level 0 is full bandwidth; level 1 throttles down to ``floor`` of every
    period (never zero — a starved app could not even drain its balloons).
    """

    def __init__(self, smp, app, floor=0.2, period=from_msec(10)):
        if not 0.0 < floor < 1.0:
            raise ValueError("bandwidth floor must be within (0, 1)")
        self.smp = smp
        self.app = app
        self.floor = floor
        self.period = period

    def apply(self, level):
        level = _check_level(level)
        fraction = 1.0 - (1.0 - self.floor) * level
        if fraction >= 1.0:
            self.smp.clear_cpu_bandwidth(self.app)
        else:
            self.smp.set_cpu_bandwidth(self.app, fraction, period=self.period)


class BalloonAdmissionActuator(Actuator):
    """Admission duty cycle on an accelerator or NIC balloon scheduler.

    Works on any scheduler exposing an ``admission`` :class:`AdmissionGate`
    (both ``AccelScheduler`` and ``PacketScheduler`` do).
    """

    def __init__(self, sched, app, floor=0.15, period=from_msec(40)):
        if not 0.0 < floor < 1.0:
            raise ValueError("admission floor must be within (0, 1)")
        self.sched = sched
        self.app = app
        self.floor = floor
        self.period = period

    def apply(self, level):
        level = _check_level(level)
        fraction = 1.0 - (1.0 - self.floor) * level
        if fraction >= 1.0:
            self.sched.admission.clear(self.app.id)
        else:
            self.sched.admission.set(self.app.id, fraction, self.period)
