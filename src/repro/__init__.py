"""repro — a full-system reproduction of "Power Sandbox: Power Awareness
Redefined" (EuroSys 2018) on a simulated embedded platform.

Quickstart::

    from repro import Platform, Kernel, PowerSandbox
    from repro.apps import calib3d, bodytrack
    from repro.sim import SEC

    platform = Platform.am57(seed=1)
    kernel = Kernel(platform)
    app = calib3d(kernel)
    bodytrack(kernel)                      # a noisy neighbour

    box = PowerSandbox(kernel, app, components=("cpu",))
    with box:
        platform.sim.run(until=SEC)
        joules = box.read()                # insulated energy observation
        times, watts = box.sample()        # timestamped power samples
"""

from repro.apps.base import App
from repro.core.psbox import PowerSandbox, PsboxError
from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel, KernelConfig

__version__ = "1.0.0"

__all__ = [
    "App",
    "Kernel",
    "KernelConfig",
    "Platform",
    "PowerSandbox",
    "PsboxError",
    "__version__",
]
