"""Trace fingerprinting for bit-identity (differential) testing.

``fingerprint`` folds everything observable about a finished run — rail
step traces, scheduler/governor event logs, task end states, observation
windows — into one hex digest.  Two runs are behaviourally identical iff
their fingerprints match, which is how the differential tests enforce the
fault layer's off-by-default promise.
"""

import hashlib

from repro.core.manager import PsboxManager


def _put(h, *parts):
    h.update(("|".join(str(p) for p in parts) + "\n").encode())


def fingerprint(platform, kernel=None):
    """A sha256 digest of the run's observable behaviour."""
    h = hashlib.sha256()
    _put(h, "now", platform.sim.now)
    for name in sorted(platform.rails):
        trace = platform.rails[name].trace
        # StepTrace keeps exact change points; hashing them captures the
        # full power history bit for bit.
        _put(h, "rail", name, tuple(trace._times), tuple(trace._values))
    if kernel is None:
        return h.hexdigest()

    logs = []
    if kernel.smp is not None:
        logs.append(kernel.smp.log)
    for sched in (kernel.gpu_sched, kernel.dsp_sched):
        if sched is not None:
            logs.append(sched.log)
            logs.append(sched.engine.log)
    for sched in (kernel.net_sched, kernel.lte_sched):
        if sched is not None:
            logs.append(sched.log)
            logs.append(sched.nic.log)
    for governor in (kernel.cpu_governor, kernel.gpu_governor):
        if governor is not None:
            logs.append(governor.log)
    for log in logs:
        for t, kind, payload in log:
            # "seq" labels come from process-global counters, so they carry
            # an arbitrary offset between runs in one process; record order
            # already captures sequencing.
            _put(h, "ev", log.name, t, kind,
                 sorted(item for item in payload.items() if item[0] != "seq"))

    for task in kernel.tasks:
        _put(h, "task", task.id, task.name, task.state, task.finished_at,
             repr(task.member_vruntime))

    manager = getattr(kernel, "psbox_manager", None)
    if manager is not None:
        for box in manager.sandboxes:
            for comp in box.components:
                if comp in PsboxManager.DIRECT_COMPONENTS:
                    continue
                _put(h, "win", box.app.id, comp,
                     tuple(box.vmeter.windows(comp, 0, platform.sim.now)))
    return h.hexdigest()
