"""Deterministic fault-injection plans.

A :class:`FaultPlan` is the single source of truth for every perturbation a
run may experience.  Components never invent faults; they ask the installed
plan at well-known *sites* ("smp.ipi", "gpu.drain", "governor.opp", ...)
whether something goes wrong *right now*, via one of the typed queries
below.  Three properties make campaigns reproducible and trustworthy:

* **bit-identical off by default** — with no plan installed (``sim.faults``
  is None), or with the plan disabled, or with no spec armed for a site,
  the query is a pure read: no RNG stream is touched and no event is
  scheduled, so the simulation is indistinguishable from one without the
  fault layer at all;
* **seed-reproducible** — every random decision draws from a dedicated
  per-site stream of the simulator's :class:`~repro.sim.rng.RngRegistry`
  (``faults.<site>``), so injected runs replay exactly and the fault RNG
  never perturbs any other stream;
* **auditable** — every actual injection is appended to ``plan.log`` (an
  :class:`~repro.sim.trace.EventTrace`), so a campaign can report exactly
  what it did and prove that a "tolerated" verdict covered real injections.

Known sites and the query each one answers:

========================  =========  =========================================
site                      kind       effect
========================  =========  =========================================
``smp.ipi``               delay      shootdown IPI arrives late
``smp.ipi``               drop       shootdown IPI is lost in transit
``gpu.drain``             hold       drain-phase transition stalls
``dsp.drain``             hold       (same, DSP scheduler)
``net.drain``             hold       (same, packet scheduler)
``governor.opp``          drop       OPP write silently ignored (stuck DVFS)
``governor.opp``          hold       OPP write lands late (transition spike)
``governor.restore``      corrupt    context-restore write lost at switch
``meter.sample``          noise      Gaussian noise on returned samples
``meter.sample``          dropout    samples lost, forward-filled
``powercap.telemetry``    corrupt    controller reads last tick's stale power
``task.crash``            crash      driven by TaskCrashInjector
========================  =========  =========================================
"""

from dataclasses import dataclass, field

import numpy as np

from repro.sim.trace import EventTrace


@dataclass
class FaultSpec:
    """One parameterized fault at one (site, kind).

    ``prob`` gates each opportunity independently; ``t0``/``t1`` bound the
    active window in sim time; ``limit`` caps the number of injections.
    The remaining fields parameterize specific kinds: ``extra_ns`` +
    ``jitter_ns`` for delays/holds (and the restart delay of crashes),
    ``noise_w`` for meter noise, ``fraction`` for per-sample dropout,
    ``interval_ns`` for the mean gap between crash attempts.
    """

    site: str
    kind: str
    prob: float = 1.0
    extra_ns: int = 0
    jitter_ns: int = 0
    noise_w: float = 0.0
    fraction: float = 0.0
    interval_ns: int = 0
    t0: int = 0
    t1: int = None
    limit: int = None
    count: int = field(default=0, init=False)   # injections so far


class FaultPlan:
    """The set of fault specs installed on one simulator."""

    def __init__(self, sim, name="faults", enabled=True):
        self.sim = sim
        self.name = name
        self.enabled = enabled
        self.specs = {}              # (site, kind) -> FaultSpec
        self.log = EventTrace(name)

    # -- construction ---------------------------------------------------------

    def add(self, site, kind, **params):
        """Register one fault spec; returns it for further tweaking."""
        spec = FaultSpec(site, kind, **params)
        self.specs[(site, kind)] = spec
        return spec

    def install(self):
        """Make this the simulator's active plan; returns self."""
        self.sim.faults = self
        return self

    def uninstall(self):
        if self.sim.faults is self:
            self.sim.faults = None

    # -- bookkeeping ----------------------------------------------------------

    def spec(self, site, kind):
        return self.specs.get((site, kind))

    def injections(self, site=None):
        """Number of injections performed (optionally for one site)."""
        if site is None:
            return len(self.log)
        return sum(1 for _t, _k, p in self.log if p.get("site") == site)

    def rng(self, site):
        """The dedicated RNG stream for one site's decisions."""
        return self.sim.rng.stream("faults." + site)

    # -- arming ---------------------------------------------------------------

    def _armed(self, site, kind):
        """The spec for (site, kind) if it could fire now, else None.

        Pure read: consults only the plan's own state and the clock, so a
        disabled/missing/out-of-window spec leaves the simulation untouched.
        """
        if not self.enabled:
            return None
        spec = self.specs.get((site, kind))
        if spec is None:
            return None
        now = self.sim.now
        if now < spec.t0 or (spec.t1 is not None and now >= spec.t1):
            return None
        if spec.limit is not None and spec.count >= spec.limit:
            return None
        return spec

    def fires(self, site, kind):
        """Roll the dice for one opportunity; the spec if it fires.

        Draws RNG only when the spec is armed (so disabled plans stay
        bit-identical).  Does not log — the typed queries below do, with
        kind-specific payloads.
        """
        spec = self._armed(site, kind)
        if spec is None:
            return None
        if spec.prob < 1.0 and self.rng(site).random() >= spec.prob:
            return None
        spec.count += 1
        return spec

    def _record(self, spec, **payload):
        self.log.log(self.sim.now, "inject", site=spec.site, fault=spec.kind,
                     **payload)
        obs = self.sim.obs
        if obs is not None:
            obs.tracer.instant("inject." + spec.site, cat="fault",
                               track="faults", kind=spec.kind, **payload)
            obs.metrics.inc("faults.injections")
            obs.metrics.inc("faults.injections." + spec.site)

    def _draw_ns(self, spec):
        extra = spec.extra_ns
        if spec.jitter_ns > 0:
            extra += int(self.rng(spec.site).integers(0, spec.jitter_ns))
        return extra

    # -- typed queries (the injection-site API) --------------------------------

    def delay(self, site, base_ns):
        """``base_ns`` plus any injected extra latency at this site."""
        spec = self.fires(site, "delay")
        if spec is None:
            return base_ns
        extra = self._draw_ns(spec)
        self._record(spec, extra_ns=extra)
        return base_ns + extra

    def drops(self, site):
        """True when this site's message/write is lost right now."""
        spec = self.fires(site, "drop")
        if spec is None:
            return False
        self._record(spec)
        return True

    def hold_ns(self, site):
        """Nanoseconds this site's transition must stall (0 = no fault)."""
        spec = self.fires(site, "hold")
        if spec is None:
            return 0
        hold = self._draw_ns(spec)
        if hold > 0:
            self._record(spec, hold_ns=hold)
        return hold

    def corrupts(self, site):
        """True when this site's state write is corrupted/lost right now."""
        spec = self.fires(site, "corrupt")
        if spec is None:
            return False
        self._record(spec)
        return True

    def sample_noise(self, site, watts):
        """Meter-sample perturbation: additive Gaussian noise (>= 0 W)."""
        if len(watts) == 0:
            return watts
        spec = self.fires(site, "noise")
        if spec is None or spec.noise_w <= 0:
            return watts
        noise = self.rng(site).normal(0.0, spec.noise_w, size=len(watts))
        self._record(spec, n=len(watts))
        return np.maximum(watts + noise, 0.0)

    def sample_dropout(self, site, watts):
        """Meter-sample perturbation: lost samples, forward-filled.

        Samples before the first surviving one read 0 W (the DAQ had
        nothing to repeat yet).
        """
        if len(watts) == 0:
            return watts
        spec = self.fires(site, "dropout")
        if spec is None or spec.fraction <= 0:
            return watts
        lost = self.rng(site).random(len(watts)) < spec.fraction
        if not lost.any():
            return watts
        self._record(spec, n=int(lost.sum()))
        index = np.where(lost, -1, np.arange(len(watts)))
        last_good = np.maximum.accumulate(index)
        return np.where(last_good >= 0,
                        watts[np.clip(last_good, 0, None)], 0.0)
