"""The named fault-scenario matrix for the campaign experiment.

Each :class:`Scenario` bundles a workload, the fault specs to arm, and the
*expected* campaign outcome: ``tolerated`` (the perturbation is absorbed —
every invariant still holds) or ``detected`` (the checker must report at
least one violation, naming event, time and component).  Either way there
is no silent corruption: a fault is only acceptable if the run proves which
side of the line it falls on.
"""

from dataclasses import dataclass

from repro.faults.plan import FaultPlan
from repro.sim.clock import from_msec, from_usec

TOLERATED = "tolerated"
DETECTED = "detected"

MIXED = "mixed"          # full platform, CPU+GPU+WiFi sandboxes contending
POWERCAP = "powercap"    # two-tenant workload under the powercap daemon


@dataclass(frozen=True)
class Scenario:
    name: str
    description: str
    workload: str
    expect: str
    faults: tuple    # of (site, kind, params-dict)

    def build_plan(self, sim, enabled=True):
        """Instantiate and install this scenario's plan on ``sim``."""
        plan = FaultPlan(sim, name="faults." + self.name, enabled=enabled)
        for site, kind, params in self.faults:
            plan.add(site, kind, **params)
        return plan.install()


SCENARIOS = (
    Scenario(
        "baseline", "no faults armed (sanity anchor)",
        MIXED, TOLERATED, (),
    ),
    Scenario(
        "ipi-delay", "shootdown IPIs arrive 40-60 us late",
        MIXED, TOLERATED,
        (("smp.ipi", "delay",
          {"extra_ns": from_usec(40), "jitter_ns": from_usec(20)}),),
    ),
    Scenario(
        "ipi-drop", "70% of shootdown IPIs lost in transit",
        MIXED, DETECTED,
        (("smp.ipi", "drop", {"prob": 0.7}),),
    ),
    Scenario(
        "ipi-delay-extreme", "shootdown IPIs delayed by 30 ms",
        MIXED, DETECTED,
        (("smp.ipi", "delay", {"extra_ns": from_msec(30)}),),
    ),
    Scenario(
        "gpu-drain-slow", "GPU drain transitions stall 10-15 ms",
        MIXED, TOLERATED,
        (("gpu.drain", "hold",
          {"extra_ns": from_msec(10), "jitter_ns": from_msec(5)}),),
    ),
    Scenario(
        "gpu-drain-stuck", "a GPU drain wedges for 400 ms",
        MIXED, DETECTED,
        (("gpu.drain", "hold", {"extra_ns": from_msec(400), "limit": 2}),),
    ),
    Scenario(
        "net-drain-slow", "WiFi drain transitions stall 20-30 ms",
        MIXED, TOLERATED,
        (("net.drain", "hold",
          {"extra_ns": from_msec(20), "jitter_ns": from_msec(10)}),),
    ),
    Scenario(
        "governor-stuck", "every governor OPP write silently ignored",
        MIXED, TOLERATED,
        (("governor.opp", "drop", {"prob": 1.0}),),
    ),
    Scenario(
        "governor-latency", "OPP transitions land 3-5 ms late",
        MIXED, TOLERATED,
        (("governor.opp", "hold",
          {"extra_ns": from_msec(3), "jitter_ns": from_msec(2)}),),
    ),
    Scenario(
        "governor-restore-corrupt",
        "half the context-restore OPP writes are lost",
        MIXED, DETECTED,
        (("governor.restore", "corrupt", {"prob": 0.5}),),
    ),
    Scenario(
        "meter-noise", "80 mW Gaussian noise on every meter sample",
        MIXED, TOLERATED,
        (("meter.sample", "noise", {"noise_w": 0.08}),),
    ),
    Scenario(
        "meter-dropout", "25% of meter samples lost (forward-filled)",
        MIXED, TOLERATED,
        (("meter.sample", "dropout", {"fraction": 0.25}),),
    ),
    Scenario(
        "task-crash", "tasks crash every ~120 ms and restart after 20 ms",
        MIXED, TOLERATED,
        (("task.crash", "crash",
          {"interval_ns": from_msec(120), "extra_ns": from_msec(20),
           "jitter_ns": from_msec(10), "limit": 6}),),
    ),
    Scenario(
        "powercap-stale", "the powercap daemon only ever sees stale power",
        POWERCAP, DETECTED,
        (("powercap.telemetry", "corrupt", {"prob": 1.0}),),
    ),
)


def scenario(name):
    for s in SCENARIOS:
        if s.name == name:
            return s
    raise KeyError("no fault scenario named {!r}".format(name))
