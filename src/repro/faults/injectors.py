"""Active injectors: faults that need their own timeline.

Most sites are passive — a component asks the plan at a decision point it
was reaching anyway.  Task crashes have no such point: nothing in the
kernel "attempts" to crash, so a driver must schedule the attempts.  The
:class:`TaskCrashInjector` draws crash times from the plan's own RNG stream
and is completely inert (schedules nothing) unless the plan arms a
``task.crash`` spec, preserving the bit-identical-off-by-default promise.
"""


class TaskCrashInjector:
    """Crashes random alive tasks of the target apps, then respawns them.

    ``targets`` is a list of ``(app, behavior_factory)`` pairs; after a
    crash the app gets a fresh task running ``behavior_factory()`` once the
    spec's restart delay (``extra_ns`` + ``jitter_ns``) elapses.  Attempt
    times are spaced exponentially with mean ``interval_ns``.
    """

    SITE = "task.crash"

    def __init__(self, kernel, targets):
        self.kernel = kernel
        self.sim = kernel.sim
        self.targets = list(targets)
        self.crashes = 0

    def start(self):
        """Arm the injector; a no-op without an enabled crash spec."""
        plan = self.sim.faults
        if plan is None or not plan.enabled or not self.targets:
            return self
        spec = plan.spec(self.SITE, "crash")
        if spec is None or spec.interval_ns <= 0:
            return self
        self._arm_next(plan, spec)
        return self

    def _arm_next(self, plan, spec):
        if spec.limit is not None and spec.count >= spec.limit:
            return
        gap = max(1, int(plan.rng(self.SITE).exponential(spec.interval_ns)))
        self.sim.call_later(gap, self._attempt)

    def _attempt(self):
        plan = self.sim.faults
        if plan is None or not plan.enabled:
            return
        spec = plan.spec(self.SITE, "crash")
        if spec is None:
            return
        fired = plan.fires(self.SITE, "crash")
        if fired is not None:
            self._crash_one(plan, fired)
        self._arm_next(plan, spec)

    def _crash_one(self, plan, spec):
        rng = plan.rng(self.SITE)
        app, factory = self.targets[int(rng.integers(len(self.targets)))]
        victims = [task for task in app.tasks if task.alive]
        if not victims:
            return
        victim = victims[int(rng.integers(len(victims)))]
        victim.crash()
        self.crashes += 1
        restart = spec.extra_ns
        if spec.jitter_ns > 0:
            restart += int(rng.integers(0, spec.jitter_ns))
        plan.log.log(self.sim.now, "inject", site=self.SITE, fault="crash",
                     task=victim.name, restart_ns=restart)
        self.sim.call_later(max(1, restart), self._respawn, app, factory)

    def _respawn(self, app, factory):
        app.spawn(factory())
