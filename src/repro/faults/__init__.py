"""Deterministic fault injection (`repro.faults`).

Install a :class:`FaultPlan` on a simulator and the kernel's injection
sites (IPI delivery, drain transitions, governor writes, meter sampling,
powercap telemetry, task lifetimes) perturb accordingly — seed-reproducibly
and bit-identically off by default.  ``repro.experiments faults`` runs the
named scenario matrix in :mod:`repro.faults.scenarios` against
:mod:`repro.check` and reports tolerated vs. detected outcomes.
"""

from repro.faults.diff import fingerprint
from repro.faults.injectors import TaskCrashInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.scenarios import DETECTED, SCENARIOS, TOLERATED, Scenario, scenario

__all__ = [
    "DETECTED",
    "FaultPlan",
    "FaultSpec",
    "SCENARIOS",
    "Scenario",
    "TOLERATED",
    "TaskCrashInjector",
    "fingerprint",
    "scenario",
]
