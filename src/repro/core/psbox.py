"""The PowerSandbox user API (Listing 1 of the paper)."""

from repro.core.manager import PsboxManager
from repro.core.vmeter import VirtualPowerMeter
from repro.hw import platform as hwplat


class PsboxError(RuntimeError):
    """Raised on illegal psbox use (e.g. observing power while outside)."""


class PowerSandbox:
    """An OS principal enclosing one app's power observation.

    The sandbox is bound at creation to a set of hardware components whose
    rails can be metered separately (``psbox_create(HW_CPU | ...)``).  The
    app may enter and leave freely; power may only be observed while
    entered.  All readings are timestamped against the kernel clock.
    """

    def __init__(self, kernel, app, components=(hwplat.CPU,)):
        components = tuple(components)
        if not components:
            raise ValueError("psbox needs at least one hardware component")
        for comp in components:
            if comp not in kernel.platform.rails:
                raise ValueError(
                    "platform has no separately metered rail {!r}".format(comp)
                )
        self.kernel = kernel
        self.app = app
        self.components = components
        self.vmeter = VirtualPowerMeter(kernel.platform, components,
                                        app_id=app.id)
        self.entered = False
        self.entered_at = None
        self.closed = False
        self.manager = PsboxManager.for_kernel(kernel)
        self.manager.register(self)
        self.ctx_key = "psbox.{}".format(app.id)
        app.psboxes.append(self)

    # -- enter / leave -----------------------------------------------------------

    def enter(self):
        """psbox_enter(): start insulating this app's power observation."""
        if self.closed:
            raise PsboxError("psbox was destroyed; create a new one")
        if self.entered:
            return
        self.manager.enter(self)
        self.entered = True
        self.entered_at = self.kernel.now

    def leave(self):
        """psbox_leave(): resume full-speed, unobserved execution."""
        if not self.entered:
            return
        self.manager.leave(self)
        self.entered = False

    def __enter__(self):
        self.enter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.leave()
        return False

    # -- observation --------------------------------------------------------------

    def _require_entered(self):
        if not self.entered:
            raise PsboxError(
                "app {} may only observe power inside its psbox".format(
                    self.app.name
                )
            )

    def read(self, since=None):
        """psbox_read(): energy in joules accumulated since ``since``
        (default: since entering)."""
        self._require_entered()
        t0 = self.entered_at if since is None else since
        return self.vmeter.energy(t0, self.kernel.now)

    def sample(self, component=None, t0=None, t1=None, dt=None):
        """psbox_sample(): timestamped power samples of one bound component
        (the only one, when the psbox is bound to a single component)."""
        self._require_entered()
        if component is None:
            if len(self.components) != 1:
                raise ValueError("psbox bound to several components; pick one")
            component = self.components[0]
        if component not in self.components:
            raise PsboxError(
                "psbox is not bound to component {!r}".format(component)
            )
        t0 = self.entered_at if t0 is None else t0
        t1 = self.kernel.now if t1 is None else t1
        return self.vmeter.samples(component, t0, t1, dt)

    def energy(self, t0, t1, component=None):
        """Energy over an explicit window (used by analysis code)."""
        self._require_entered()
        return self.vmeter.energy(t0, t1, component=component)

    def collect(self, n_samples, dt=None, component=None, callback=None):
        """Continuous collection of power samples (Listing 1, line 5).

        Fills a buffer with ``n_samples`` timestamped readings taken every
        ``dt`` nanoseconds from now; ``callback(times, watts)`` fires when
        the buffer is full.  Returns the live buffer (list of
        ``(time, watts)``) immediately so callers may also poll it.
        """
        self._require_entered()
        if n_samples < 1:
            raise ValueError("need at least one sample")
        if component is None:
            if len(self.components) != 1:
                raise ValueError("psbox bound to several components; pick one")
            component = self.components[0]
        dt = dt or self.kernel.platform.meter.sample_interval
        buffer = []
        state = {"last": self.kernel.now}

        def take():
            now = self.kernel.now
            if self.entered and now > state["last"]:
                joules = self.vmeter.energy(state["last"], now,
                                            component=component)
                watts = joules / ((now - state["last"]) / 1e9)
                buffer.append((now, watts))
            state["last"] = now
            if len(buffer) < n_samples:
                self.kernel.sim.call_later(dt, take)
            elif callback is not None:
                times = [t for t, _w in buffer]
                values = [w for _t, w in buffer]
                callback(times, values)

        self.kernel.sim.call_later(dt, take)
        return buffer

    def observation_windows(self, component, t0=None, t1=None):
        """The balloon windows this sandbox observed on ``component``.

        Kernel-side readout (no entered requirement): used by invariant
        checking and analysis code to audit window disjointness and
        attribution without reaching into ``core/vmeter.py`` internals.
        """
        t0 = 0 if t0 is None else t0
        t1 = self.kernel.now if t1 is None else t1
        return self.vmeter.windows(component, t0, t1)

    # -- lifecycle ----------------------------------------------------------------

    def close(self):
        """Destroy the sandbox: leave, drop virtualized state, unregister.

        After close() the sandbox cannot be entered again; its saved power
        states (governor contexts, NIC snapshots) are forgotten so a future
        sandbox of the same app starts pristine.
        """
        self.leave()
        kernel = self.kernel
        for governor in (kernel.cpu_governor, kernel.gpu_governor):
            if governor is not None and self.ctx_key in governor.contexts:
                governor.drop_context(self.ctx_key)
        if kernel.net_sched is not None \
                and kernel.net_sched.state_holder is not None:
            holder = kernel.net_sched.state_holder
            if self.ctx_key in holder.saved or holder.active == self.ctx_key:
                holder.drop_context(self.ctx_key)
        if self in self.manager.sandboxes:
            self.manager.sandboxes.remove(self)
        if self in self.app.psboxes:
            self.app.psboxes.remove(self)
        self.closed = True
