"""App-defined power events over psbox observations (§8.2).

The paper proposes wrapping the psbox interface under mobile sensor APIs:
apps subscribe to a "power" sensor and register predicates — "high power",
"frequent power spikes", "power keeps increasing" — continuously evaluated
over power samples by the OS or a sensor hub.  This module is that layer:

    monitor = PowerEventMonitor(box, period=from_msec(50))
    monitor.subscribe(ThresholdAbove(0.8), on_high_power)
    monitor.subscribe(MonotonicIncrease(4), on_power_creep)

Predicates are edge-triggered: a callback fires when its condition becomes
true, and re-arms once it has become false again.
"""

from collections import deque

from repro.sim.clock import from_msec


class PowerPredicate:
    """Base predicate over a history of (time, watts) observations."""

    def check(self, history):
        """Return a payload dict when the condition holds, else None."""
        raise NotImplementedError


class ThresholdAbove(PowerPredicate):
    """Mean power above ``watts`` for at least ``min_samples`` samples."""

    def __init__(self, watts, min_samples=1):
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.watts = float(watts)
        self.min_samples = min_samples

    def check(self, history):
        if len(history) < self.min_samples:
            return None
        recent = list(history)[-self.min_samples:]
        if all(w > self.watts for _t, w in recent):
            return {"watts": recent[-1][1], "threshold": self.watts}
        return None


class SpikeDetected(PowerPredicate):
    """Latest sample exceeds ``factor`` x the trailing-window mean."""

    def __init__(self, factor=2.0, window=8, floor_w=0.01):
        if factor <= 1.0:
            raise ValueError("factor must exceed 1")
        self.factor = factor
        self.window = window
        self.floor_w = floor_w

    def check(self, history):
        if len(history) < self.window + 1:
            return None
        *trail, (t, latest) = list(history)[-(self.window + 1):]
        mean = sum(w for _t, w in trail) / len(trail)
        baseline = max(mean, self.floor_w)
        if latest > self.factor * baseline:
            return {"watts": latest, "baseline": mean}
        return None


class MonotonicIncrease(PowerPredicate):
    """Power strictly increased across the last ``n`` observations."""

    def __init__(self, n=3, tolerance_w=0.0):
        if n < 2:
            raise ValueError("need at least two observations to increase")
        self.n = n
        self.tolerance_w = tolerance_w

    def check(self, history):
        if len(history) < self.n:
            return None
        recent = [w for _t, w in list(history)[-self.n:]]
        if all(b > a + self.tolerance_w for a, b in zip(recent, recent[1:])):
            return {"from_w": recent[0], "to_w": recent[-1]}
        return None


class _Subscription:
    __slots__ = ("predicate", "callback", "armed")

    def __init__(self, predicate, callback):
        self.predicate = predicate
        self.callback = callback
        self.armed = True


class PowerEventMonitor:
    """Continuously evaluates predicates over a psbox's power readings.

    Each period, the monitor appends one observation — the mean power over
    the elapsed period, from the sandbox's virtual meter — and evaluates
    every subscription.  Events carry ``(time, payload)``.
    """

    def __init__(self, psbox, period=from_msec(50), component=None,
                 history=64):
        self.psbox = psbox
        self.period = period
        self.component = component
        self.history = deque(maxlen=history)
        self.events = []               # (time, predicate, payload) log
        self._subscriptions = []
        self._last_t = psbox.kernel.now
        self._tick_event = None
        self.running = False

    def subscribe(self, predicate, callback=None):
        """Register a predicate; ``callback(time, payload)`` on each event."""
        subscription = _Subscription(predicate, callback)
        self._subscriptions.append(subscription)
        return subscription

    def start(self):
        if self.running:
            return self
        self.running = True
        self._last_t = self.psbox.kernel.now
        self._arm()
        return self

    def stop(self):
        self.running = False
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def _arm(self):
        self._tick_event = self.psbox.kernel.sim.call_later(
            self.period, self._tick
        )

    def _tick(self):
        self._tick_event = None
        if not self.running:
            return
        now = self.psbox.kernel.now
        if self.psbox.entered and now > self._last_t:
            joules = self.psbox.vmeter.energy(
                self._last_t, now,
                component=self.component,
            )
            watts = joules / ((now - self._last_t) / 1e9)
            self.history.append((now, watts))
            self._evaluate(now)
        self._last_t = now
        self._arm()

    def _evaluate(self, now):
        for subscription in self._subscriptions:
            payload = subscription.predicate.check(self.history)
            if payload is not None and subscription.armed:
                subscription.armed = False
                self.events.append((now, subscription.predicate, payload))
                if subscription.callback is not None:
                    subscription.callback(now, payload)
            elif payload is None:
                subscription.armed = True
