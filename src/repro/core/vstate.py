"""Power-state virtualization: per-psbox copies of operating/idle states.

Two holder flavours cover the hardware in this repo:

* DVFS devices (CPU, GPU) virtualize through the governor's per-context
  state (:class:`repro.kernel.governor.OndemandGovernor` is itself a
  context holder).
* Snapshot devices (the WiFi NIC) expose ``snapshot()`` / ``restore()`` /
  ``default_state()``; :class:`SnapshotContextHolder` keeps one saved state
  per context.

Off/suspended states are deliberately *not* virtualized (§4.1): they never
appear in these snapshots, and the virtual power meter feeds idle power for
any period the hardware does not belong to the psbox.
"""

WORLD = "world"


class SnapshotContextHolder:
    """Keeps one saved operating state per context for a snapshot device."""

    def __init__(self, device):
        self.device = device
        self.active = WORLD
        self.saved = {}

    def switch_context(self, key):
        """Save the active context's state; program ``key``'s state."""
        if key == self.active:
            return
        self.saved[self.active] = self.device.snapshot()
        self.active = key
        if key in self.saved:
            self.device.restore(self.saved[key])
        else:
            # A fresh psbox starts from the device's pristine operating
            # state — it must not inherit anyone's lingering state.
            self.device.restore(self.device.default_state())

    def drop_context(self, key):
        if key == WORLD:
            raise ValueError("cannot drop the world context")
        if self.active == key:
            # Leave first; switching saves the active state, which must not
            # resurrect the context we are dropping.
            self.switch_context(WORLD)
        self.saved.pop(key, None)
