"""User-level coscheduling via scheduler activations (§7 alternative).

The paper notes psbox could be built on scheduler activations [3] instead
of kernel coscheduling: the app, upon entering its psbox, spawns dummy
threads to occupy unused cores, and adjusts their number on upcalls as its
real threads suspend/resume.  This module implements that design so it can
be compared against the kernel mechanism:

* **Boundary quality** — dummies compete through ordinary CFS instead of
  forced scheduling, so other apps can slip in between dummy wakeups; the
  boundary is statistical, not enforced.
* **Power cost** — dummy threads *spin*, so the "insulated" observation
  includes their active power, where a kernel balloon's forced-idle cores
  sit at idle power.

Observation windows are derived post-hoc from core ownership: instants
where every core belongs to the app (real or dummy thread).
"""

from repro.kernel.actions import Compute, Sleep
from repro.sim.clock import from_msec, from_usec


class _DummyControl:
    __slots__ = ("active",)

    def __init__(self):
        self.active = False


class UserLevelCoscheduler:
    """Activation-style psbox enforcement, entirely in user space."""

    def __init__(self, kernel, app, upcall_period=from_usec(500),
                 dummy_burst=0.25e6):
        self.kernel = kernel
        self.app = app
        self.platform = kernel.platform
        self.upcall_period = upcall_period
        self.dummy_burst = dummy_burst
        self.engaged = False
        self.engaged_at = None
        self._controls = []
        self._tick_event = None
        n_cores = self.platform.cpu.n_cores
        # One dummy per core is the most we could ever need.
        for i in range(n_cores):
            control = _DummyControl()
            self._controls.append(control)
            app.spawn(self._dummy(control),
                      name="{}.dummy{}".format(app.name, i))

    def _dummy(self, control):
        """A dummy thread: spins while activated, parks otherwise."""
        while True:
            if control.active:
                yield Compute(self.dummy_burst)
            else:
                yield Sleep(from_msec(2))

    # -- engage / disengage ------------------------------------------------------

    def engage(self):
        """Enter: start the upcall loop that sizes the dummy pool."""
        if self.engaged:
            return
        self.engaged = True
        self.engaged_at = self.kernel.now
        self._upcall()

    def disengage(self):
        self.engaged = False
        for control in self._controls:
            control.active = False
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def _upcall(self):
        """Emulates the kernel's activation upcall: resize the dummy pool
        to ``n_cores - real_runnable`` whenever real threads change state."""
        self._tick_event = self.kernel.sim.call_later(
            self.upcall_period, self._upcall
        )
        if not self.engaged:
            return
        real_active = sum(
            1 for task in self.app.tasks
            if task.state in ("ready", "running")
            and not task.name.split(".")[-1].startswith("dummy")
        )
        n_cores = self.platform.cpu.n_cores
        wanted = 0
        if real_active > 0:
            wanted = max(0, n_cores - real_active)
        for index, control in enumerate(self._controls):
            control.active = index < wanted

    # -- observation --------------------------------------------------------------

    def observation_windows(self, t0, t1):
        """Instants where the app owns every core (real or dummy)."""
        traces = self.platform.cpu.owner_traces
        per_core = [list(trace.segments(t0, t1)) for trace in traces]
        edges = sorted({t0, t1} | {
            s for segments in per_core for s, _e, _v in segments
        })
        windows = []
        current = None
        for start, end in zip(edges, edges[1:]):
            owned = all(
                self._owner_at(segments, start) == self.app.id
                for segments in per_core
            )
            if owned:
                if current is None:
                    current = [start, end]
                else:
                    current[1] = end
            elif current is not None:
                windows.append(tuple(current))
                current = None
        if current is not None:
            windows.append(tuple(current))
        return windows

    @staticmethod
    def _owner_at(segments, t):
        for start, end, owner in segments:
            if start <= t < end:
                return int(owner)
        return -1

    def energy(self, t0, t1):
        """Insulated energy estimate: rail power inside full-ownership
        windows, idle power elsewhere — the activation analogue of the
        virtual power meter."""
        rail = self.platform.rails["cpu"]
        idle_w = self.platform.idle_power("cpu")
        covered = 0
        total = 0.0
        for lo, hi in self.observation_windows(t0, t1):
            total += rail.energy(lo, hi)
            covered += hi - lo
        total += idle_w * (t1 - t0 - covered) / 1e9
        return total
