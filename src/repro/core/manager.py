"""Kernel-side psbox management.

One manager per kernel.  It owns the registry of sandboxes, wires balloon
window events from the schedulers into each sandbox's virtual power meter,
and switches power-state contexts at CPU balloon boundaries (accelerator
and NIC schedulers switch their own contexts, since those boundaries are
theirs to define).
"""

from repro.hw import platform as hwplat


class PsboxManager:
    """Registry + event hub for all power sandboxes of one kernel."""

    @classmethod
    def for_kernel(cls, kernel):
        manager = getattr(kernel, "psbox_manager", None)
        if manager is None:
            manager = cls(kernel)
            kernel.psbox_manager = manager
        return manager

    def __init__(self, kernel):
        self.kernel = kernel
        self.platform = kernel.platform
        self.sandboxes = []
        # component -> the psbox currently *entered* on it (accel/NIC);
        # CPU sandboxes are tracked per app since several may coexist.
        self.occupants = {}
        self.cpu_occupants = {}
        if kernel.smp is not None:
            kernel.smp.balloon_in_hooks.append(self._cpu_balloon_in)
            kernel.smp.balloon_out_hooks.append(self._cpu_balloon_out)
        for sched, comp in (
            (kernel.gpu_sched, hwplat.GPU),
            (kernel.dsp_sched, hwplat.DSP),
            (kernel.net_sched, hwplat.WIFI),
            (kernel.lte_sched, hwplat.LTE),
        ):
            if sched is not None:
                sched.balloon_in_hooks.append(self._device_hook(comp, True))
                sched.balloon_out_hooks.append(self._device_hook(comp, False))

    # -- registration / enter / leave ------------------------------------------

    def register(self, psbox):
        self.sandboxes.append(psbox)

    #: components observed without any kernel mechanism: display power
    #: decomposes exactly per app, GPS operating power is shareable (§7).
    DIRECT_COMPONENTS = (hwplat.DISPLAY, hwplat.GPS)

    def enter(self, psbox):
        for comp in psbox.components:
            if comp in self.DIRECT_COMPONENTS:
                continue
            occupant = self.occupants.get(comp)
            if occupant is not None and occupant is not psbox \
                    and comp != hwplat.CPU:
                # Accelerator and NIC schedulers serve one sandbox at a
                # time; the CPU scheduler serializes any number of
                # sandboxes through alternating balloons.
                raise RuntimeError(
                    "component {!r} already sandboxed by app {}".format(
                        comp, occupant.app.id
                    )
                )
        for comp in psbox.components:
            if comp in self.DIRECT_COMPONENTS:
                continue
            if comp == hwplat.CPU:
                self.cpu_occupants[psbox.app.id] = psbox
                self.kernel.smp.set_sandboxed(psbox.app, True)
                continue
            self.occupants[comp] = psbox
            if comp == hwplat.GPU:
                self.kernel.gpu_sched.set_psbox(psbox.app)
            elif comp == hwplat.DSP:
                self.kernel.dsp_sched.set_psbox(psbox.app)
            elif comp == hwplat.WIFI:
                self.kernel.net_sched.set_psbox(psbox.app)
            elif comp == hwplat.LTE:
                self.kernel.lte_sched.set_psbox(psbox.app)

    def leave(self, psbox):
        for comp in psbox.components:
            if comp in self.DIRECT_COMPONENTS:
                continue
            if comp == hwplat.CPU:
                if self.cpu_occupants.get(psbox.app.id) is psbox:
                    # Ending the balloon fires the balloon-out hook, which
                    # needs the registration still in place to close the
                    # observation window — unregister afterwards.
                    self.kernel.smp.set_sandboxed(psbox.app, False)
                    del self.cpu_occupants[psbox.app.id]
                continue
            if self.occupants.get(comp) is not psbox:
                continue
            if comp == hwplat.GPU:
                self.kernel.gpu_sched.set_psbox(None)
            elif comp == hwplat.DSP:
                self.kernel.dsp_sched.set_psbox(None)
            elif comp == hwplat.WIFI:
                self.kernel.net_sched.set_psbox(None)
            elif comp == hwplat.LTE:
                self.kernel.lte_sched.set_psbox(None)
            del self.occupants[comp]

    # -- kernel-side readout -------------------------------------------------------

    def read_power(self, psbox, t0, t1):
        """Mean metered power of ``psbox`` in watts over [t0, t1).

        Kernel-side (privileged) readout for daemons like ``repro.powercap``:
        unlike :meth:`PowerSandbox.read` it does not require the sandbox to
        be entered, and it shields callers from ``core/vmeter.py`` internals.
        """
        if psbox not in self.sandboxes:
            raise ValueError(
                "psbox of app {} is not registered with this kernel".format(
                    psbox.app.id
                )
            )
        if t1 <= t0:
            return 0.0
        return psbox.vmeter.energy(t0, t1) / ((t1 - t0) / 1e9)

    def boxes_bound_to(self, component):
        """Registered sandboxes bound to ``component`` (entered or not)."""
        return [box for box in self.sandboxes if component in box.components]

    # -- balloon window plumbing ---------------------------------------------------

    def _psbox_of(self, app, component):
        if component == hwplat.CPU:
            return self.cpu_occupants.get(app.id)
        occupant = self.occupants.get(component)
        if occupant is not None and occupant.app is app:
            return occupant
        return None

    def _cpu_balloon_in(self, app, t):
        psbox = self._psbox_of(app, hwplat.CPU)
        if psbox is None:
            return
        if self.kernel.cpu_governor is not None \
                and self.kernel.config.vstate_enabled:
            self.kernel.cpu_governor.switch_context(psbox.ctx_key)
        psbox.vmeter.open_window(hwplat.CPU, t)

    def _cpu_balloon_out(self, app, t):
        psbox = self._psbox_of(app, hwplat.CPU)
        if psbox is None:
            return
        psbox.vmeter.close_window(hwplat.CPU, t)
        if self.kernel.cpu_governor is not None \
                and self.kernel.config.vstate_enabled:
            self.kernel.cpu_governor.switch_context("world")

    def _device_hook(self, component, opening):
        def hook(app, t):
            psbox = self._psbox_of(app, component)
            if psbox is None:
                return
            if opening:
                psbox.vmeter.open_window(component, t)
            else:
                psbox.vmeter.close_window(component, t)
        return hook
