"""psbox — the power sandbox, this paper's contribution.

A :class:`PowerSandbox` encloses one app and exposes a *virtual power
meter*: timestamped power of the app running in its vertical slice of the
stack, insulated from concurrent apps.  The kernel-side pieces live in
:class:`PsboxManager` (balloon window bookkeeping and power-state context
switching); the enforcement mechanisms live inside the kernel schedulers
(``repro.kernel.smp`` for spatial balloons, ``repro.kernel.accel_sched`` and
``repro.kernel.net_sched`` for temporal balloons).

Typical use (Listing 1 of the paper, pythonically)::

    box = PowerSandbox(kernel, app, components=("cpu",))   # psbox_create
    with box:                                              # enter/leave
        ...                                                # run, adapt
        joules = box.read()                                # psbox_read
        times, watts = box.sample(t0, t1)                  # psbox_sample
"""

from repro.core.activations import UserLevelCoscheduler
from repro.core.events import (
    MonotonicIncrease,
    PowerEventMonitor,
    SpikeDetected,
    ThresholdAbove,
)
from repro.core.manager import PsboxManager
from repro.core.psbox import PowerSandbox, PsboxError
from repro.core.vmeter import VirtualPowerMeter
from repro.core.vstate import SnapshotContextHolder

__all__ = [
    "MonotonicIncrease",
    "PowerEventMonitor",
    "PowerSandbox",
    "PsboxError",
    "PsboxManager",
    "SnapshotContextHolder",
    "SpikeDetected",
    "ThresholdAbove",
    "UserLevelCoscheduler",
    "VirtualPowerMeter",
]
