"""The virtual power meter behind every psbox.

While a resource balloon holds the hardware for the psbox, the rail's real
metered power *is* the psbox's power (the app plus its vertical
environment).  Outside those windows the kernel feeds idle-power samples:
"to the app, the hardware appears idle" (§4.1).  Readings are timestamped
with the same clock apps read via ``Kernel.now`` — the paper's
clock_gettime() alignment.
"""

import numpy as np


class VirtualPowerMeter:
    """Per-component observation windows over the platform's rails.

    Most components are observed through balloon windows.  Two extension
    components follow §7's special rules instead:

    * ``display`` — OLED power decomposes exactly per app; the meter reads
      the app's own surface-power trace directly (no windows needed);
    * ``gps`` — hardware power is revealed whenever the device is in its
      steady operating state, and hidden (idle-filled) during off/cold
      start, so no app can infer others' GPS usage.
    """

    def __init__(self, platform, components, app_id=None):
        self.platform = platform
        self.components = tuple(components)
        self.app_id = app_id
        self._windows = {comp: [] for comp in self.components}
        self._open_at = {comp: None for comp in self.components}

    # -- window bookkeeping (driven by the psbox manager) ------------------------

    def open_window(self, component, t):
        if self._open_at[component] is None:
            self._open_at[component] = t

    def close_window(self, component, t):
        start = self._open_at[component]
        if start is None:
            return
        self._open_at[component] = None
        if t > start:
            self._windows[component].append((start, t))

    def windows(self, component, t0, t1):
        """Observation windows clipped to [t0, t1), including an open one."""
        if component == "gps" and self.platform.gps is not None:
            return self.platform.gps.operating_windows(t0, t1)
        clipped = []
        for start, end in self._windows[component]:
            lo, hi = max(start, t0), min(end, t1)
            if hi > lo:
                clipped.append((lo, hi))
        start = self._open_at[component]
        if start is not None and t1 > start:
            lo = max(start, t0)
            if t1 > lo:
                clipped.append((lo, t1))
        return clipped

    # -- readings -----------------------------------------------------------------

    def energy(self, t0, t1, component=None):
        """Joules observed over [t0, t1): rail energy inside windows, idle
        power outside."""
        components = [component] if component else self.components
        total = 0.0
        for comp in components:
            if comp == "display":
                total += self._display_energy(t0, t1)
                continue
            joules, covered = self.windowed_energy(comp, t0, t1)
            idle_w = self.platform.idle_power(comp)
            total += joules + idle_w * (t1 - t0 - covered) / 1e9
        return total

    def windowed_energy(self, component, t0, t1):
        """``(joules, covered_ns)`` attributed from the rail over [t0, t1).

        The rail energy falling inside this meter's observation windows and
        the window time covered — the window-attributed share of the rail,
        before idle fill.  This is what energy-conservation checks compare
        against the rail total (``repro.check``).
        """
        rail = self.platform.rails[component]
        joules = 0.0
        covered = 0
        for lo, hi in self.windows(component, t0, t1):
            joules += rail.energy(lo, hi)
            covered += hi - lo
        return joules, covered

    def _display_energy(self, t0, t1):
        if self.app_id is None:
            return 0.0
        return self.platform.display.app_energy(self.app_id, t0, t1)

    def samples(self, component, t0, t1, dt=None):
        """Timestamped power samples over [t0, t1) for one component."""
        meter = self.platform.meter
        dt = dt or meter.sample_interval
        if component == "display":
            trace = self.platform.display.app_traces.get(self.app_id)
            if trace is None:
                times = np.arange(t0, t1, dt, dtype=np.int64)
                return times, np.zeros(len(times))
            return trace.resample(t0, t1, dt)
        times, watts = meter.sample(component, t0, t1, dt)
        idle_w = self.platform.idle_power(component)
        edges = []
        for lo, hi in self.windows(component, t0, t1):
            edges.append(lo)
            edges.append(hi)
        if not edges:
            return times, np.full(len(times), idle_w)
        idx = np.searchsorted(np.asarray(edges, dtype=np.int64), times,
                              side="right")
        inside = idx % 2 == 1
        return times, np.where(inside, watts, idle_w)

    def observed_fraction(self, component, t0, t1):
        """Fraction of [t0, t1) covered by observation windows."""
        if t1 <= t0:
            return 0.0
        covered = sum(hi - lo for lo, hi in self.windows(component, t0, t1))
        return covered / (t1 - t0)
