"""Userspace multiplexing points (§7 "Userspace OS daemon").

On Android-like stacks, app requests are often multiplexed *above* the
kernel, by user-level daemons (the compositor, the media server).  A kernel
psbox cannot see through them: the daemon owns the device, so every
command is attributed to the daemon, and its internal queueing re-entangles
clients the kernel already separated.  The paper's fix is to make the
daemon's own request multiplexing respect psbox boundaries — implemented
here for a render-service daemon.
"""

from repro.userspace.render_service import RenderService

__all__ = ["RenderService"]
