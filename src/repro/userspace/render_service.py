"""A psbox-aware render-service daemon (SurfaceFlinger-shaped).

Clients never touch the GPU: they deposit render requests with the daemon,
which forwards them to the kernel GPU scheduler under its *own* identity —
exactly the structure that defeats a kernel-only psbox.

With ``psbox_aware=True`` the daemon mirrors the kernel's temporal-balloon
protocol at user level for its sandboxed client:

* requests from other clients are held while the sandboxed client's
  requests are in flight, and vice versa (drain -> flush -> serve);
* while the daemon is exclusively executing the sandboxed client's
  requests, it feeds that client's virtual power meter with GPU
  observation windows.

With ``psbox_aware=False`` the daemon multiplexes clients freely — the
ablation showing why kernel psbox alone is not enough on daemon stacks.
"""

from collections import deque

from repro.apps.base import App
from repro.core.vmeter import VirtualPowerMeter
from repro.sim.trace import EventTrace

NORMAL = "normal"
DRAIN_OTHERS = "drain_others"
SERVE = "serve"
DRAIN_CLIENT = "drain_client"


class _Client:
    __slots__ = ("app", "pending", "inflight", "meter")

    def __init__(self, app, meter):
        self.app = app
        self.pending = deque()
        self.inflight = 0
        self.meter = meter


class RenderService:
    """User-level GPU request multiplexer with optional psbox awareness."""

    def __init__(self, kernel, name="render_service", psbox_aware=True,
                 max_outstanding=2):
        self.kernel = kernel
        self.sim = kernel.sim
        self.psbox_aware = psbox_aware
        self.max_outstanding = max_outstanding
        # The daemon is an ordinary app to the kernel: all GPU commands it
        # forwards are billed to *it*.
        self.daemon_app = App(kernel, name)
        self.clients = {}
        self.state = NORMAL
        self.sandboxed_client = None
        self.outstanding = 0
        self.log = EventTrace(name)

    # -- client interface ---------------------------------------------------------

    def connect(self, app):
        """Register a client app; returns its insulated virtual meter."""
        if app.id not in self.clients:
            meter = VirtualPowerMeter(self.kernel.platform, ("gpu",),
                                      app_id=app.id)
            self.clients[app.id] = _Client(app, meter)
        return self.clients[app.id].meter

    def submit(self, app, kind, cycles, power_w, on_complete=None):
        """Deposit one render request on behalf of ``app``."""
        client = self.clients.get(app.id)
        if client is None:
            raise KeyError("client {!r} is not connected".format(app.name))
        client.pending.append((kind, cycles, power_w, on_complete))
        self.log.log(self.sim.now, "submit", client=app.id)
        self._pump()

    def enter_psbox(self, app):
        """The client's psbox covers the daemon's multiplexing too."""
        if self.sandboxed_client is not None:
            raise RuntimeError("render service already has a sandboxed "
                               "client")
        client = self.clients.get(app.id)
        if client is None:
            raise KeyError("client {!r} is not connected".format(app.name))
        if not self.psbox_aware:
            # The unaware daemon ignores sandbox boundaries entirely.
            self.sandboxed_client = client
            return
        self.sandboxed_client = client
        self._pump()

    def leave_psbox(self, app):
        client = self.sandboxed_client
        if client is None or client.app.id != app.id:
            return
        if self.psbox_aware and self.state in (SERVE, DRAIN_CLIENT):
            self._close_window()
        self.state = NORMAL
        self.sandboxed_client = None
        self._pump()

    # -- multiplexing --------------------------------------------------------------

    def _others_pending(self):
        return any(
            c.pending for c in self.clients.values()
            if c is not self.sandboxed_client
        )

    def _pick(self):
        """Round-robin-ish: the pending client with the fewest in flight."""
        best = None
        for client in self.clients.values():
            if not client.pending:
                continue
            if best is None or client.inflight < best.inflight:
                best = client
        return best

    def _pump(self):
        if not self.psbox_aware or self.sandboxed_client is None:
            self._pump_normal(respect_boundary=False)
            return
        if self.state == NORMAL and self.sandboxed_client.pending:
            self.state = DRAIN_OTHERS
            self.log.log(self.sim.now, "drain_others")
        if self.state == DRAIN_OTHERS:
            if self.outstanding == 0:
                self._open_window()
            else:
                return
        if self.state == DRAIN_CLIENT:
            if self.outstanding == 0:
                self._close_window()
            else:
                return
        if self.state == SERVE:
            self._pump_serve()
            return
        self._pump_normal(respect_boundary=True)

    def _pump_normal(self, respect_boundary):
        while self.outstanding < self.max_outstanding:
            client = self._pick()
            if client is None:
                return
            if respect_boundary and client is self.sandboxed_client:
                self.state = DRAIN_OTHERS
                self.log.log(self.sim.now, "drain_others")
                self._pump()
                return
            self._forward(client)

    def _pump_serve(self):
        client = self.sandboxed_client
        if not client.pending and self.outstanding == 0 \
                and self._others_pending():
            self.state = DRAIN_CLIENT
            self._close_window()
            self._pump_normal(respect_boundary=True)
            return
        while self.outstanding < self.max_outstanding and client.pending:
            self._forward(client)

    def _forward(self, client):
        kind, cycles, power_w, user_cb = client.pending.popleft()
        client.inflight += 1
        self.outstanding += 1
        self.log.log(self.sim.now, "forward", client=client.app.id)

        def on_complete(command):
            client.inflight -= 1
            self.outstanding -= 1
            client.app.note_command_complete("gpu", command)
            if user_cb is not None:
                user_cb(command)
            self._pump()

        self.kernel.gpu_sched.submit(self.daemon_app, kind, cycles, power_w,
                                     on_complete=on_complete)

    # -- window plumbing -------------------------------------------------------------

    def _open_window(self):
        self.state = SERVE
        self.log.log(self.sim.now, "window_open",
                     client=self.sandboxed_client.app.id)
        self.sandboxed_client.meter.open_window("gpu", self.sim.now)
        self._pump_serve()

    def _close_window(self):
        self.log.log(self.sim.now, "window_close",
                     client=self.sandboxed_client.app.id)
        self.sandboxed_client.meter.close_window("gpu", self.sim.now)
        self.state = NORMAL
