"""Utilization-scaled accounting: power times absolute utilization [100].

Each app is charged ``P * u_app / capacity``; whatever utilization does not
cover (shared/static power while partially idle) stays unattributed, so the
per-app energies do not sum to the system energy.
"""

from repro.accounting.base import AccountingBase
from repro.hw import platform as hwplat


class UtilizationAccounting(AccountingBase):
    def _capacity(self):
        if self.component == hwplat.CPU:
            return float(self.platform.cpu.n_cores)
        if self.component in (hwplat.GPU, hwplat.DSP):
            return float(self.platform.component(self.component).parallelism)
        return 1.0

    def _split(self, watts, usage, app_ids):
        capacity = self._capacity()
        return {
            app_id: watts * (usage[app_id] / capacity).clip(0.0, 1.0)
            for app_id in app_ids
        }
