"""Shapley-value power accounting for accelerators (Dong et al. [25]).

"Rethink energy accounting with cooperative game theory": treat each power
sample as a cooperative game among the apps concurrently using the device,
and attribute to each app its Shapley value — the average marginal power
contribution over all join orders.  This is the principled way to divide
*jointly caused* power, and it needs something the simple heuristics do
not: a model of what any *coalition* of apps would have drawn.

We give it the true hardware model (maximally favorable), and it still
cannot make an app's share match what the app would draw alone — because
entanglement is physical, not an artifact of the division rule: the
sub-additive overlap power simply has no per-app decomposition that is
simultaneously efficient and context-free.
"""

import itertools
import math

from repro.hw import platform as hwplat


class ShapleyAccounting:
    """Exact Shapley attribution over accelerator in-flight segments."""

    def __init__(self, platform, component):
        if component not in (hwplat.GPU, hwplat.DSP):
            raise ValueError(
                "Shapley accounting is defined for command-queue "
                "accelerators, not {!r}".format(component)
            )
        self.platform = platform
        self.component = component
        self.engine = platform.component(component)

    # -- coalition power under the true hardware model ----------------------------

    def _coalition_power(self, commands, freq_hz):
        """Rail power if exactly ``commands`` (list of watt weights) ran."""
        model = self.engine.power_model
        opp = self._opp_for(freq_hz)
        return model.rail_power(opp, self.engine.nominal_freq, commands)

    def _opp_for(self, freq_hz):
        for opp in self.engine.freq_domain.opps:
            if opp.freq_hz == freq_hz:
                return opp
        return self.engine.freq_domain.opp

    def _shapley_segment(self, per_app_commands, freq_hz):
        """Shapley values for one segment; exact over app permutations."""
        apps = sorted(per_app_commands)
        n = len(apps)
        if n == 0:
            return {}
        values = {app: 0.0 for app in apps}
        base = self._coalition_power([], freq_hz)
        for order in itertools.permutations(apps):
            coalition = []
            previous = base
            for app in order:
                coalition = coalition + per_app_commands[app]
                current = self._coalition_power(coalition, freq_hz)
                values[app] += current - previous
                previous = current
        scale = 1.0 / math.factorial(n)
        return {app: value * scale for app, value in values.items()}

    # -- the segment walk -----------------------------------------------------------

    def _segments(self, t0, t1):
        """Yield (start, end, {app: [command powers]}) over [t0, t1).

        Reconstructed from the engine's dispatch/complete log, split
        additionally at frequency changes.
        """
        edges = []
        for t, kind, payload in self.engine.log:
            if kind == "dispatch":
                edges.append((t, "d", payload["seq"], payload["app"],
                              payload["power"]))
            elif kind == "complete":
                edges.append((t, "c", payload["seq"], payload["app"], None))
        freq_trace = self.engine.freq_domain.freq_trace
        freq_edges = [t for t, _v1, _v2 in (
            (s, e, v) for s, e, v in freq_trace.segments(t0, t1)
        )]

        active = {}          # seq -> (app, power)
        events = sorted(edges)
        cut_points = sorted(
            {t0, t1}
            | {t for t, *_rest in events if t0 < t < t1}
            | {t for t in freq_edges if t0 < t < t1}
        )
        # Replay history up to t0 first.
        idx = 0
        while idx < len(events) and events[idx][0] <= t0:
            self._apply(active, events[idx])
            idx += 1
        for start, end in zip(cut_points, cut_points[1:]):
            while idx < len(events) and events[idx][0] <= start:
                self._apply(active, events[idx])
                idx += 1
            per_app = {}
            for app, power in active.values():
                per_app.setdefault(app, []).append(power)
            yield start, end, per_app, freq_trace.value_at(start)

    @staticmethod
    def _apply(active, event):
        t, kind, seq, app, power = event
        if kind == "d":
            active[seq] = (app, power)
        else:
            active.pop(seq, None)

    # -- public API --------------------------------------------------------------------

    def energies(self, app_ids, t0, t1):
        """Per-app Shapley-attributed energy (J) over [t0, t1)."""
        totals = {app_id: 0.0 for app_id in app_ids}
        for start, end, per_app, freq in self._segments(t0, t1):
            if not per_app:
                continue
            values = self._shapley_segment(per_app, freq)
            dt = (end - start) / 1e9
            for app, watts in values.items():
                if app in totals:
                    totals[app] += watts * dt
        return totals

    def unattributed(self, app_ids, t0, t1):
        """Idle/static energy no coalition is responsible for."""
        rail = self.platform.rails[self.component].energy(t0, t1)
        return rail - sum(self.energies(app_ids, t0, t1).values())
